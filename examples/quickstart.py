#!/usr/bin/env python3
"""Quickstart: mount SCFS, store files, share them, and survive a cloud outage.

This example walks through the core SCFS workflow on the cloud-of-clouds
backend (the SCFS-CoC-NB variant of Table 2):

1. build a deployment (four simulated storage clouds + a replicated DepSpace
   coordination service);
2. mount the file system for two users;
3. create directories and files, read them back;
4. share a file with the second user through ``setfacl``;
5. knock out one entire cloud provider and show that everything still works.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Permission, SCFSDeployment
from repro.simenv.failures import FaultKind


def main() -> None:
    # 1. The shared infrastructure: clouds, coordination service, simulation clock.
    deployment = SCFSDeployment.for_variant("SCFS-CoC-NB", seed=2024)

    # 2. Two users mount the file system on their (simulated) machines.
    alice = deployment.create_agent("alice")
    bob = deployment.create_agent("bob")

    # 3. Alice organises her work.
    alice.mkdir("/projects", shared=True)
    alice.write_file("/projects/design.md", b"# SCFS reproduction design\n", shared=True)
    alice.write_file("/projects/notes.txt", b"private scratchpad")
    print("alice's /projects:", alice.readdir("/projects"))
    print("alice reads back:", alice.read_file("/projects/design.md").decode().strip())

    # 4. Alice shares the design document with Bob (read-only).
    alice.setfacl("/projects/design.md", "bob", Permission.READ)
    deployment.drain(2.0)  # let the background upload finish (non-blocking mode)
    print("bob reads the shared file:", bob.read_file("/projects/design.md").decode().strip())
    print("bob cannot modify it:", end=" ")
    try:
        bob.write_file("/projects/design.md", b"bob was here")
    except Exception as exc:  # PermissionDeniedError
        print(type(exc).__name__)

    # 5. A whole provider goes down — the cloud-of-clouds shrugs it off.
    victim = deployment.clouds[0]
    victim.failures.add(FaultKind.UNAVAILABLE)
    print(f"provider {victim.name!r} is now unavailable")
    alice.agent.memory_cache.clear()
    alice.agent.disk_cache.clear()     # force a read from the remaining clouds
    print("alice still reads:", alice.read_file("/projects/design.md").decode().strip())

    # A quick look at what this cost so far (micro-dollars across providers).
    costs = deployment.costs()
    print(f"cloud bills so far: {costs.total * 1e6:.1f} micro-dollars "
          f"({costs.usage.put_requests} PUTs, {costs.usage.get_requests} GETs)")
    print(f"simulated time elapsed: {deployment.sim.now():.2f} s")


if __name__ == "__main__":
    main()
