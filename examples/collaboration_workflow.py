#!/usr/bin/env python3
"""Collaboration infrastructure: several users editing shared files safely.

The paper motivates SCFS as "a collaboration infrastructure — dependable
data-based collaborative applications without running code in the cloud" (§1).
This example shows three users working on a shared directory with the
*blocking* CoC variant, where consistency-on-close means that as soon as a
writer's ``close`` returns, every other client sees the new version:

* write-write conflicts are prevented by the coordination-service locks;
* updates propagate with strong consistency (no lost updates, no stale reads
  once the short metadata cache expires);
* the full version history remains available until the garbage collector
  trims it.

Run with::

    python examples/collaboration_workflow.py
"""

from __future__ import annotations

from repro import Permission, SCFSDeployment
from repro.common.errors import LockHeldError


def main() -> None:
    deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=7)
    owner = deployment.create_agent("owner")
    writer = deployment.create_agent("writer")
    reviewer = deployment.create_agent("reviewer")

    # The owner sets up the shared workspace and grants access.
    owner.mkdir("/paper", shared=True)
    owner.write_file("/paper/draft.tex", b"\\section{Introduction}\n", shared=True)
    owner.setfacl("/paper/draft.tex", "writer", Permission.READ_WRITE)
    owner.setfacl("/paper/draft.tex", "reviewer", Permission.READ)
    deployment.drain(2.0)

    # The writer starts editing: the file is locked for writing.
    handle = writer.open("/paper/draft.tex", "r+")
    print("writer holds the write lock")
    try:
        owner.open("/paper/draft.tex", "r+")
    except LockHeldError:
        print("owner cannot edit concurrently (write-write conflict prevented)")

    # The reviewer can still read the last committed version (no lock needed).
    print("reviewer reads:", reviewer.read_file("/paper/draft.tex").decode().strip())

    # The writer appends a paragraph and closes: consistency-on-close.
    writer.write(handle, b"\\section{Design}\nAlways write, avoid reading.\n")
    writer.close(handle)
    deployment.sim.advance(1.0)  # metadata caches expire
    print("after close, reviewer sees:")
    print(reviewer.read_file("/paper/draft.tex").decode())

    # Version history: the original version is still stored in the clouds.
    meta = owner.stat("/paper/draft.tex")
    versions = owner.agent.backend.list_versions(meta.file_id)
    print(f"versions stored in the cloud-of-clouds: {len(versions)}")

    # Housekeeping: the owner trims old versions with the garbage collector.
    report = owner.collect_garbage()
    print(f"garbage collector removed {report.versions_deleted} old version(s)")


if __name__ == "__main__":
    main()
