#!/usr/bin/env python3
"""Automatic disaster recovery with the cloud-of-clouds backend.

The paper lists "an automatic disaster recovery system" among SCFS's use
cases (§1): files survive the loss of the local IT infrastructure *and* the
failure of individual cloud providers.  This example:

1. backs up a small project tree through SCFS-CoC-B;
2. destroys the client machine (all local caches and the agent itself);
3. marks one storage provider as permanently failed and another as malicious
   (returning corrupted data);
4. mounts a brand-new machine and restores every file intact, verifying
   integrity end-to-end.

Run with::

    python examples/disaster_recovery.py
"""

from __future__ import annotations

import hashlib

from repro import SCFSDeployment
from repro.simenv.failures import FaultKind


def checksum(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:12]


def main() -> None:
    deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=99)
    laptop = deployment.create_agent("alice")

    # 1. Back up a project tree.
    files = {
        "/backup/thesis/chapter1.tex": b"Introduction " * 400,
        "/backup/thesis/chapter2.tex": b"Related work " * 700,
        "/backup/photos/holiday.raw": bytes(range(256)) * 2048,
        "/backup/keys/passwords.kdbx": b"\x01\x02secret vault\x03" * 64,
    }
    laptop.mkdir("/backup", shared=True)
    laptop.mkdir("/backup/thesis", shared=True)
    laptop.mkdir("/backup/photos", shared=True)
    laptop.mkdir("/backup/keys", shared=True)
    original_checksums = {}
    for path, data in files.items():
        laptop.write_file(path, data, shared=True)
        original_checksums[path] = checksum(data)
    deployment.drain(2.0)
    print(f"backed up {len(files)} files "
          f"({sum(len(d) for d in files.values()) / 1024:.0f} KiB logical)")
    print(f"bytes stored across the four clouds: {deployment.stored_bytes() / 1024:.0f} KiB "
          "(~1.5x thanks to erasure coding)")

    # 2. The laptop is destroyed.
    laptop.unmount()
    print("laptop lost!")

    # 3. And the cloud landscape degrades: one data-holding provider disappears
    #    for good (the f=1 fault SCFS-CoC is designed to survive), and on top of
    #    that the provider that only stores metadata copies turns malicious —
    #    its corrupted answers are filtered out by the digest checks.
    deployment.clouds[1].failures.add(FaultKind.UNAVAILABLE)
    deployment.clouds[3].failures.add(FaultKind.BYZANTINE)
    print(f"provider {deployment.clouds[1].name!r} is gone, "
          f"{deployment.clouds[3].name!r} is returning corrupted data")

    # 4. Recovery on a new machine: everything is rebuilt from the coordination
    #    service and the remaining healthy clouds, with integrity verified.
    new_machine = deployment.create_agent("alice")
    deployment.sim.advance(1.0)
    recovered = 0
    for directory in ("/backup/thesis", "/backup/photos", "/backup/keys"):
        for name in new_machine.readdir(directory):
            path = f"{directory}/{name}"
            data = new_machine.read_file(path)
            assert checksum(data) == original_checksums[path], f"integrity violated for {path}"
            recovered += 1
            print(f"  recovered {path} ({len(data)} bytes, checksum OK)")
    print(f"all {recovered} files recovered intact despite one outage and one "
          "malicious provider")


if __name__ == "__main__":
    main()
