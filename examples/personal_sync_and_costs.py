#!/usr/bin/env python3
"""Personal file synchronisation and the economics of *always write / avoid reading*.

Two things in one example:

1. A personal-cloud workflow (the "secure personal file system" use case of
   §1): a user keeps private documents in SCFS with Private Name Spaces
   enabled, so none of them consume coordination-service resources, and edits
   them with near-local latency in the non-blocking mode.
2. A cost mini-analysis in the spirit of Figure 11: how much a read, a write
   and a day of storage cost on the AWS and CoC backends, and why SCFS's
   design (read locally, always push writes) keeps the bill small.

Run with::

    python examples/personal_sync_and_costs.py
"""

from __future__ import annotations

from repro import SCFSDeployment
from repro.bench.costs import cached_read_cost, cost_per_file_day, cost_per_operation
from repro.common.units import MB


def personal_sync() -> None:
    print("== personal file synchronisation (SCFS-CoC-NB + PNS) ==")
    deployment = SCFSDeployment.for_variant("SCFS-CoC-NB", seed=5, private_name_spaces=True)
    fs = deployment.create_agent("ana")
    fs.mkdir("/Documents")

    start = deployment.sim.now()
    for i in range(20):
        fs.write_file(f"/Documents/report-{i:02d}.odt", b"Par." * 5000)
    elapsed = deployment.sim.now() - start
    print(f"saved 20 private documents in {elapsed:.2f} simulated seconds "
          f"({elapsed / 20 * 1000:.0f} ms per save, felt as local)")
    print(f"coordination-service entries used by those files: "
          f"{deployment.coordination_entries()} (private name spaces at work)")

    deployment.drain(2.0)
    print(f"after the background uploads: {deployment.stored_bytes() / MB:.1f} MB "
          "in the clouds (every document is durable against a disk crash)\n")


def cost_analysis() -> None:
    print("== what does it cost? (Figure 11 style) ==")
    print(f"reading a locally cached file: {cached_read_cost():.2f} micro-dollars "
          "(one metadata validation)")
    operation_costs = cost_per_operation(sizes=(1 * MB, 10 * MB))
    for series in ("AWS read", "AWS write", "CoC read", "CoC write"):
        one = operation_costs[series][1 * MB].total
        ten = operation_costs[series][10 * MB].total
        print(f"{series:10s}: {one:8.1f} u$ at 1MB   {ten:9.1f} u$ at 10MB")
    storage = cost_per_file_day(sizes=(10 * MB,))
    aws = storage["AWS"][10 * MB].micro_dollars_per_day
    coc = storage["CoC"][10 * MB].micro_dollars_per_day
    print(f"storing a 10MB file for a day: AWS {aws:.1f} u$, CoC {coc:.1f} u$ "
          f"({coc / aws:.2f}x, the price of tolerating a malicious provider)")
    print("writes are flat and cheap (inbound traffic is free); reads grow with size,")
    print("which is exactly why SCFS always writes to the cloud but avoids reading from it.")


def main() -> None:
    personal_sync()
    cost_analysis()


if __name__ == "__main__":
    main()
