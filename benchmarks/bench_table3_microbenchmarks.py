"""Table 3 — Filebench micro-benchmarks for the nine file systems.

Regenerates the full latency table: six micro-benchmarks (sequential and
random reads/writes, create files, copy files) across the six SCFS variants,
S3FS, S3QL and LocalFS.

The absolute numbers come from the simulation's latency models, so they do not
match the paper's testbed second-for-second; the assertions below check the
*shape* that Table 3 establishes:

* the IO-intensive benchmarks are nearly identical for all SCFS variants and
  LocalFS (they only touch the main-memory cache), with S3FS (no memory cache)
  and S3QL (slow small writes) as the outliers;
* the metadata-intensive benchmarks separate local/non-sharing systems from
  the shared variants by orders of magnitude, with blocking variants slower
  than non-blocking ones and S3FS slowest of all.
"""

from __future__ import annotations

import pytest

from repro.bench.filebench import MICRO_BENCHMARKS, MicroBenchmarkParams, run_microbenchmark_table
from repro.bench.report import render_read_paths, render_table
from repro.bench.targets import ALL_TARGET_NAMES

#: Number of random 4 KB operations actually executed (result scaled to 256 k).
SAMPLE_OPS = 1024

PARAMS = MicroBenchmarkParams(sample_ops=SAMPLE_OPS)


def test_table3_microbenchmarks(run_once, benchmark, capsys):
    read_paths: dict = {}
    table = run_once(run_microbenchmark_table, ALL_TARGET_NAMES, tuple(MICRO_BENCHMARKS),
                     0, PARAMS, read_paths)

    headers = ["micro-benchmark", *ALL_TARGET_NAMES]
    rows = [[name, *(table[name][target] for target in ALL_TARGET_NAMES)]
            for name in MICRO_BENCHMARKS]
    with capsys.disabled():
        print()
        print(render_table("Table 3 - Filebench micro-benchmarks (simulated seconds)",
                           headers, rows, float_format="{:.2f}"))
        print()
        print(render_read_paths("DepSky read paths (CoC targets, all benchmarks)", read_paths))
    benchmark.extra_info["table"] = {
        bench: {target: round(value, 3) for target, value in row.items()}
        for bench, row in table.items()
    }
    benchmark.extra_info["read_paths"] = {
        target: {"systematic": stats.systematic, "coded": stats.coded,
                 "fallback": stats.fallback_reads, "hedged": stats.hedged_requests}
        for target, stats in read_paths.items()
    }

    # Fault-free runs must serve every cloud read from the preferred quorum.
    for target, stats in read_paths.items():
        if stats.total:
            assert stats.systematic_rate == 1.0, (target, stats)

    create = table["create files"]
    copy = table["copy files"]
    random_write = table["random 4KB-write"]
    random_read = table["random 4KB-read"]

    # Metadata-intensive: NS/local vs shared variants differ by orders of magnitude.
    for coordinated in ("SCFS-AWS-NB", "SCFS-AWS-B", "SCFS-CoC-NB", "SCFS-CoC-B", "S3FS"):
        assert create[coordinated] > 20 * create["SCFS-CoC-NS"]
        assert create[coordinated] > 20 * create["LocalFS"]
        assert copy[coordinated] > 20 * copy["SCFS-CoC-NS"]

    # Blocking variants pay the cloud upload on every close: slower than non-blocking.
    assert create["SCFS-CoC-B"] > create["SCFS-CoC-NB"]
    assert create["SCFS-AWS-B"] > create["SCFS-AWS-NB"]

    # S3FS accesses the cloud on every create/open/close and is the slowest.
    assert create["S3FS"] > create["SCFS-AWS-NB"]

    # IO-intensive: every SCFS variant behaves like LocalFS (memory-cache reads/writes)...
    for variant in ("SCFS-AWS-NS", "SCFS-AWS-NB", "SCFS-AWS-B",
                    "SCFS-CoC-NS", "SCFS-CoC-NB", "SCFS-CoC-B"):
        assert random_read[variant] == pytest.approx(random_read["LocalFS"], rel=0.5)
    # ...S3QL's random 4 KB writes hit the documented slow path...
    assert random_write["S3QL"] > 3 * random_write["SCFS-CoC-NB"]
    # ...and S3FS pays for the missing main-memory cache.
    assert random_read["S3FS"] > random_read["SCFS-CoC-NB"]
