"""Coding-layer throughput: vectorised erasure encode/decode in MB/s.

Unlike the figure/table benchmarks, this one measures *wall-clock* throughput
of the GF(256) coding hot path (`repro.crypto.gf256` + `ErasureCoder`), which
every DepSky write and read crosses (PAPER Figure 6, step 3).  It reports
encode and decode MB/s at several ``(n, k)`` configurations and payload
sizes, and asserts that the vectorised implementation stays at least an
order of magnitude ahead of the retained scalar reference
(``gf256._matmul_scalar``) at the paper's default ``(4, 2)`` with a 1 MiB
payload.

Decode is measured on an all-parity block subset — the *worst* case, which
exercises the cached-inverse matrix path; the systematic best case (pure
concatenation) is reported alongside for contrast.

Two further tests bench the PR 7 hot paths: the nibble-split pair-table
kernel against the row-gather kernel it supersedes on long blocks
(``test_nibble_kernel_beats_row_gather``), and the full zero-copy DepSky
write pipeline against raw erasure encoding
(``test_write_pipeline_throughput`` — the end-to-end write must stay within
2x of the bare ``ErasureCoder.encode`` it is built around).

Set ``CODING_BENCH_FAST=1`` (the CI bench-smoke mode) to trim the sweeps to
the smallest configurations while keeping every assertion intact.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bench.report import render_table
from repro.bench.trajectory import record_bench
from repro.common.units import KB, MB
from repro.crypto import gf256
from repro.crypto.erasure import CodedBlock, ErasureCoder

FAST = os.environ.get("CODING_BENCH_FAST", "") == "1"

#: (n, k) sweep; the first entry is the paper's default f=1 configuration.
CONFIGS: tuple[tuple[int, int], ...] = ((4, 2), (6, 4)) if FAST else ((4, 2), (6, 4), (9, 6))
SIZES: tuple[int, ...] = (64 * KB, 1 * MB) if FAST else (64 * KB, 1 * MB, 4 * MB)
#: Timing repetitions (best-of) for the vectorised path.
REPEATS = 2 if FAST else 5


def _payload(size: int) -> bytes:
    pattern = bytes((i * 131 + 17) % 256 for i in range(4096))
    return (pattern * (size // len(pattern) + 1))[:size]


def _best_of(function, repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``function()``."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return best


def _mbps(size: int, seconds: float) -> float:
    return (size / MB) / seconds if seconds > 0 else float("inf")


def _parity_subset(coder: ErasureCoder, blocks: list[CodedBlock]) -> list[CodedBlock]:
    """A k-subset containing as many parity blocks as possible (worst case)."""
    parity = blocks[coder.k:]
    return (parity + blocks[: coder.k])[: coder.k]


def _encode_scalar(coder: ErasureCoder, data: bytes) -> list[CodedBlock]:
    """Encode ``data`` through the scalar reference matmul (baseline)."""
    from repro.crypto.erasure import _HEADER, _MAGIC

    framed = _HEADER.pack(_MAGIC, len(data)) + data
    block_len = (len(framed) + coder.k - 1) // coder.k
    padded = framed.ljust(block_len * coder.k, b"\x00")
    blocks = np.frombuffer(padded, dtype=np.uint8).reshape(coder.k, block_len)
    coded = gf256._matmul_scalar(coder._matrix, blocks)
    return [CodedBlock(index=i, payload=coded[i].tobytes()) for i in range(coder.n)]


def _decode_scalar(coder: ErasureCoder, subset: list[CodedBlock]) -> bytes:
    """Decode ``subset`` through the scalar reference matmul (baseline)."""
    chosen = sorted(subset, key=lambda b: b.index)[: coder.k]
    submatrix = coder._matrix[[b.index for b in chosen]]
    inverse = gf256.invert_matrix(submatrix)
    stacked = np.stack([np.frombuffer(b.payload, dtype=np.uint8) for b in chosen])
    return gf256._matmul_scalar(inverse, stacked).reshape(-1).tobytes()


def test_coding_throughput_table(run_once, benchmark, capsys):
    """Encode/decode MB/s across (n, k) configurations and payload sizes."""

    def sweep():
        rows = []
        for n, k in CONFIGS:
            coder = ErasureCoder(n, k)
            for size in SIZES:
                data = _payload(size)
                encode_s = _best_of(lambda: coder.encode(data))
                blocks = coder.encode(data)
                worst = _parity_subset(coder, blocks)
                best = blocks[: coder.k]
                coder.decode(worst)  # warm the decode-matrix cache
                decode_parity_s = _best_of(lambda: coder.decode(worst))
                decode_sys_s = _best_of(lambda: coder.decode(best))
                rows.append([
                    f"({n},{k})", size // KB,
                    _mbps(size, encode_s),
                    _mbps(size, decode_parity_s),
                    _mbps(size, decode_sys_s),
                ])
        return rows

    rows = run_once(sweep)
    headers = ["(n,k)", "size KiB", "encode MB/s", "decode(parity) MB/s", "decode(systematic) MB/s"]
    with capsys.disabled():
        print()
        print(render_table("Coding throughput - vectorised GF(256) erasure layer",
                           headers, rows, float_format="{:.0f}"))
    benchmark.extra_info["rows"] = [
        {"config": r[0], "size_kib": r[1], "encode_mbps": round(r[2], 1),
         "decode_parity_mbps": round(r[3], 1), "decode_systematic_mbps": round(r[4], 1)}
        for r in rows
    ]
    # Loose sanity floors (CI machines vary): the vectorised path must stay
    # far above anything a per-byte Python loop could reach (~2 MB/s).
    for row in rows:
        assert row[2] > 20, f"encode throughput collapsed: {row}"
        assert row[3] > 20, f"parity-decode throughput collapsed: {row}"
        assert row[4] > row[3], f"systematic decode should beat parity decode: {row}"

    # Trajectory entry: the largest payload of the paper's (4, 2) config.
    headline = max((r for r in rows if r[0] == "(4,2)"), key=lambda r: r[1])
    record_bench("coding", {
        "encode_mbps_4_2": round(headline[2], 1),
        "decode_parity_mbps_4_2": round(headline[3], 1),
        "decode_systematic_mbps_4_2": round(headline[4], 1),
    })


def test_vectorized_beats_scalar_reference(run_once, benchmark, capsys):
    """Acceptance gate: >= 10x over the scalar reference at (4, 2), 1 MiB."""
    size = 1 * MB
    data = _payload(size)
    coder = ErasureCoder(4, 2)

    def measure():
        encode_s = _best_of(lambda: coder.encode(data))
        blocks = coder.encode(data)
        worst = _parity_subset(coder, blocks)
        coder.decode(worst)  # warm the decode-matrix cache
        decode_s = _best_of(lambda: coder.decode(worst))
        # The scalar reference is slow — run it once, that is precise enough
        # for an order-of-magnitude assertion.
        scalar_blocks = None

        def encode_scalar():
            nonlocal scalar_blocks
            scalar_blocks = _encode_scalar(coder, data)

        scalar_encode_s = _best_of(encode_scalar, repeats=1)
        scalar_worst = _parity_subset(coder, scalar_blocks)
        scalar_decode_s = _best_of(lambda: _decode_scalar(coder, scalar_worst), repeats=1)
        assert [b.payload for b in scalar_blocks] == [b.payload for b in blocks], \
            "scalar reference and vectorised encode disagree"
        return encode_s, decode_s, scalar_encode_s, scalar_decode_s

    encode_s, decode_s, scalar_encode_s, scalar_decode_s = run_once(measure)
    encode_speedup = scalar_encode_s / encode_s
    decode_speedup = scalar_decode_s / decode_s
    with capsys.disabled():
        print()
        print(render_table(
            "Vectorised vs scalar reference - (n=4, k=2), 1 MiB payload",
            ["path", "vectorised MB/s", "scalar MB/s", "speedup"],
            [["encode", _mbps(size, encode_s), _mbps(size, scalar_encode_s), encode_speedup],
             ["decode(parity)", _mbps(size, decode_s), _mbps(size, scalar_decode_s), decode_speedup]],
            float_format="{:.1f}"))
    benchmark.extra_info["encode_speedup"] = round(encode_speedup, 1)
    benchmark.extra_info["decode_speedup"] = round(decode_speedup, 1)
    assert encode_speedup >= 10, f"vectorised encode only {encode_speedup:.1f}x over scalar"
    assert decode_speedup >= 10, f"vectorised decode only {decode_speedup:.1f}x over scalar"
    record_bench("coding", {
        "encode_speedup_vs_scalar": round(encode_speedup, 1),
        "decode_speedup_vs_scalar": round(decode_speedup, 1),
    })


#: (n, k) sweep for the kernel-strategy comparison; spans the paper's default
#: f=1 configuration up to a wide f=5 one.
KERNEL_CONFIGS: tuple[tuple[int, int], ...] = \
    ((4, 2), (16, 11)) if FAST else ((4, 2), (6, 4), (9, 6), (16, 11))
#: Per-row block length for the kernel comparison.  At >= 1 MiB the
#: nibble-split kernel's per-coefficient pair-table setup has fully amortised.
KERNEL_BLOCK_LEN = 1 * MB


def test_nibble_kernel_beats_row_gather(run_once, benchmark, capsys):
    """The nibble-split kernel must beat the row-gather kernel on long blocks.

    Both kernels compute the same parity matmul (the erasure-encode hot
    path); the row-gather path is forced by temporarily raising the
    nibble-split size threshold.  This is the acceptance gate for the PR 7
    kernel work: nibble-split must win on every ``(n, k)`` from the paper's
    default up to ``(16, 11)`` at 1 MiB blocks.
    """

    def sweep():
        rows = []
        rng = np.random.default_rng(0xC0DE)
        for n, k in KERNEL_CONFIGS:
            coder = ErasureCoder(n, k)
            parity_matrix = np.ascontiguousarray(coder._matrix[k:])
            blocks = rng.integers(0, 256, (k, KERNEL_BLOCK_LEN), dtype=np.uint8)
            processed = k * KERNEL_BLOCK_LEN
            expected = gf256.matmul(parity_matrix, blocks)
            nibble_s = _best_of(lambda: gf256.matmul(parity_matrix, blocks))
            saved = gf256._NIBBLE_MIN_BYTES
            gf256._NIBBLE_MIN_BYTES = 1 << 62  # force the row-gather kernel
            try:
                gathered = gf256.matmul(parity_matrix, blocks)
                gather_s = _best_of(lambda: gf256.matmul(parity_matrix, blocks))
            finally:
                gf256._NIBBLE_MIN_BYTES = saved
            assert np.array_equal(expected, gathered), \
                "nibble-split and row-gather kernels disagree"
            rows.append([
                f"({n},{k})",
                _mbps(processed, nibble_s),
                _mbps(processed, gather_s),
                gather_s / nibble_s,
            ])
        return rows

    rows = run_once(sweep)
    with capsys.disabled():
        print()
        print(render_table(
            f"Kernel strategies - parity matmul, {KERNEL_BLOCK_LEN // KB} KiB blocks",
            ["(n,k)", "nibble MB/s", "row-gather MB/s", "speedup"],
            rows, float_format="{:.1f}"))
    benchmark.extra_info["rows"] = [
        {"config": r[0], "nibble_mbps": round(r[1], 1),
         "gather_mbps": round(r[2], 1), "speedup": round(r[3], 2)}
        for r in rows
    ]
    for row in rows:
        assert row[3] > 1.0, \
            f"nibble-split kernel lost to row gather at {row[0]}: {row[3]:.2f}x"
    headline = next(r for r in rows if r[0] == "(4,2)")
    record_bench("coding", {
        "encode_nibble_mbps": round(headline[1], 1),
        "nibble_speedup_vs_gather": round(headline[3], 2),
    })


def test_write_pipeline_throughput(run_once, benchmark, capsys):
    """End-to-end DepSky write throughput versus raw erasure encoding.

    Measures the full Figure 6 write pipeline (key generation, in-place
    encryption, stripewise erasure coding, incremental per-cloud digests,
    quorum dispatch) on an in-memory cloud-of-clouds with latency charging
    disabled, so wall-clock time is pure pipeline cost.  The acceptance gate
    is that the *plain* (DepSky-A) write stays within 2x of bare
    ``ErasureCoder.encode`` — everything the write adds on top of coding
    (framing, digests, blob assembly, dispatch) must cost less than the
    coding itself.  The encrypted (DepSky-CA) write adds a keystream
    generation and XOR pass and is reported with a looser sanity bound.
    """
    from repro.clouds.providers import make_cloud_of_clouds
    from repro.common.types import Principal
    from repro.depsky.protocol import DepSkyClient
    from repro.simenv.environment import Simulation

    size = 4 * MB if FAST else 16 * MB
    data = _payload(size)

    def measure():
        coder = ErasureCoder(4, 2)

        def client(encrypt: bool) -> DepSkyClient:
            sim = Simulation(seed=7)
            clouds = make_cloud_of_clouds(sim)
            c = DepSkyClient(sim, clouds, Principal("alice"),
                             encrypt=encrypt, charge_latency=False)
            c.write("warm", b"w" * 1024)  # warm caches / code paths
            return c

        # Machine-load drift between separate best-of loops dwarfs the
        # pipeline overhead being measured, so each round times encode and
        # both writes back-to-back and the gate uses the best per-round
        # ratio — the write and its encode baseline always share the same
        # load conditions.  Fresh clients per round keep the in-memory
        # stores from accumulating multi-GiB version histories.
        rounds = []
        for _ in range(REPEATS):
            start = time.perf_counter()
            coder.encode(data)
            encode_s = time.perf_counter() - start
            plain = client(encrypt=False)
            start = time.perf_counter()
            plain.write("unit", data)
            plain_s = time.perf_counter() - start
            encrypted = client(encrypt=True)
            start = time.perf_counter()
            encrypted.write("unit", data)
            encrypted_s = time.perf_counter() - start
            rounds.append((encode_s, plain_s, encrypted_s))
        return rounds

    rounds = run_once(measure)
    encode_s = min(r[0] for r in rounds)
    plain_s = min(r[1] for r in rounds)
    encrypted_s = min(r[2] for r in rounds)
    plain_ratio = min(r[1] / r[0] for r in rounds)
    encrypted_ratio = min(r[2] / r[0] for r in rounds)
    with capsys.disabled():
        print()
        print(render_table(
            f"Write pipeline - (n=4, k=2), {size // MB} MiB payload",
            ["path", "MB/s", "vs raw encode"],
            [["raw erasure encode", _mbps(size, encode_s), 1.0],
             ["DepSky-A write (plain)", _mbps(size, plain_s), plain_ratio],
             ["DepSky-CA write (encrypted)", _mbps(size, encrypted_s),
              encrypted_ratio]],
            float_format="{:.2f}"))
    benchmark.extra_info["plain_ratio"] = round(plain_ratio, 2)
    benchmark.extra_info["encrypted_ratio"] = round(encrypted_ratio, 2)
    assert plain_ratio <= 2.0, \
        f"plain write pipeline is {plain_ratio:.2f}x raw encode (gate: 2x)"
    assert encrypted_ratio <= 4.0, \
        f"encrypted write pipeline is {encrypted_ratio:.2f}x raw encode"
    record_bench("coding", {
        "write_pipeline_mbps": round(_mbps(size, plain_s), 1),
        "write_pipeline_ca_mbps": round(_mbps(size, encrypted_s), 1),
    })
