"""Table 1 — durability levels reached by each system call.

Regenerates the four-row durability table (location, latency scale, fault
tolerance, example call) and verifies, on a live SCFS-CoC deployment, that the
measured latencies of write/fsync/close fall in the micro-/milli-/second
ranges the paper reports.
"""

from __future__ import annotations

from repro.bench.report import render_table
from repro.core.deployment import SCFSDeployment
from repro.core.filesystem import DURABILITY_TABLE


def _measure_call_latencies() -> dict[str, float]:
    deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=101)
    fs = deployment.create_agent("alice")
    handle = fs.open("/durability.bin", "w")

    start = deployment.sim.now()
    fs.write(handle, b"x" * 4096)
    write_latency = deployment.sim.now() - start

    start = deployment.sim.now()
    fs.fsync(handle)
    fsync_latency = deployment.sim.now() - start

    fs.write(handle, b"y" * 65536)
    start = deployment.sim.now()
    fs.close(handle)
    close_latency = deployment.sim.now() - start
    return {"write": write_latency, "fsync": fsync_latency, "close": close_latency}


def test_table1_durability_levels(run_once, capsys):
    latencies = run_once(_measure_call_latencies)

    rows = []
    for row in DURABILITY_TABLE:
        measured = latencies.get(row.example_call, float("nan"))
        rows.append([int(row.level), row.location, row.latency, row.fault_tolerance,
                     row.example_call, f"{measured:.6f}"])
    with capsys.disabled():
        print()
        print(render_table(
            "Table 1 - SCFS durability levels (measured seconds on SCFS-CoC-B)",
            ["level", "location", "latency", "fault tol.", "sys call", "measured (s)"],
            rows,
        ))

    # The orders of magnitude of the paper must hold: microseconds for write,
    # milliseconds for fsync, seconds for close (cloud-of-clouds upload).
    assert latencies["write"] < 1e-3
    assert 1e-4 < latencies["fsync"] < 0.5
    assert latencies["close"] > 0.5
