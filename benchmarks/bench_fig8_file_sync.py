"""Figure 8 — the file-synchronisation-service (OpenOffice-like) benchmark.

Regenerates the open/save/close action latencies of a 1.2 MB document for the
non-blocking systems (SCFS-AWS-NB, SCFS-CoC-NB, SCFS-CoC-NS, S3QL — Figure
8a) and the blocking systems (SCFS-AWS-B, SCFS-CoC-B, S3FS — Figure 8b), each
with lock files on the cloud-backed file system and with local lock files
(the "(L)" variants).

Shape assertions, mirroring §4.3:

* the non-sharing variant behaves like a local file system (sub-second save);
* saving on the non-blocking variants costs on the order of a second;
* the blocking variants are dominated by pushing the small lock files to the
  cloud(s), and become much more responsive once lock files are kept locally.
"""

from __future__ import annotations

from repro.bench.report import render_read_paths, render_table
from repro.bench.syncservice import run_sync_benchmark

NON_BLOCKING_SYSTEMS = ("SCFS-AWS-NB", "SCFS-CoC-NB", "SCFS-CoC-NS", "S3QL")
BLOCKING_SYSTEMS = ("SCFS-AWS-B", "SCFS-CoC-B", "S3FS")
RUNS = 3


def _run_all() -> dict[tuple[str, bool], object]:
    results = {}
    for system in NON_BLOCKING_SYSTEMS + BLOCKING_SYSTEMS:
        for local_locks in (False, True):
            results[(system, local_locks)] = run_sync_benchmark(
                system, local_locks=local_locks, runs=RUNS, seed=7
            )
    return results


def test_fig8_file_synchronization_benchmark(run_once, benchmark, capsys):
    results = run_once(_run_all)

    rows = []
    for (system, local_locks), result in sorted(results.items()):
        label = f"{system}(L)" if local_locks else system
        rows.append([label, result.open_latency, result.save_latency,
                     result.close_latency, result.total])
    read_paths = {
        f"{system}{'(L)' if local else ''}": result.read_paths
        for (system, local), result in sorted(results.items())
        if result.read_paths is not None
    }
    with capsys.disabled():
        print()
        print(render_table(
            "Figure 8 - file synchronisation benchmark, 1.2MB document (simulated seconds)",
            ["system", "open", "save", "close", "total"], rows, float_format="{:.2f}"))
        print()
        print(render_read_paths("DepSky read paths (CoC systems)", read_paths))
    benchmark.extra_info["results"] = {
        f"{system}{'(L)' if local else ''}": round(result.total, 3)
        for (system, local), result in results.items()
    }
    benchmark.extra_info["read_paths"] = {
        label: {"systematic": stats.systematic, "coded": stats.coded}
        for label, stats in read_paths.items()
    }

    def total(system, local=False):
        return results[(system, local)].total

    def save(system, local=False):
        return results[(system, local)].save_latency

    # The non-sharing variant behaves like a local file system.
    assert save("SCFS-CoC-NS") < 0.3

    # Non-blocking save is around a second (coordination accesses + lock files).
    assert 0.3 < save("SCFS-CoC-NB") < 6.0
    assert save("SCFS-CoC-NB") > save("SCFS-CoC-NS")

    # Blocking variants are far slower because the lock files are pushed to the
    # cloud synchronously; S3FS behaves like a blocking system too.
    assert total("SCFS-CoC-B") > 2 * total("SCFS-CoC-NB")
    assert total("S3FS") > total("SCFS-CoC-NS")

    # Keeping lock files locally makes the blocking variants much more responsive.
    assert total("SCFS-CoC-B", local=True) < 0.6 * total("SCFS-CoC-B")
    assert total("SCFS-AWS-B", local=True) < 0.6 * total("SCFS-AWS-B")
