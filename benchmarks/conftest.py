"""Configuration shared by the benchmark harness.

Every benchmark in this directory regenerates one table or figure of the
paper's evaluation section (§4).  The measurements are *simulated* latencies
and dollar costs produced by the deterministic simulation substrate, so each
benchmark runs its experiment exactly once (``rounds=1``) — wall-clock numbers
reported by pytest-benchmark only describe how long the simulation itself took
to execute, while the regenerated rows/series are printed to stdout and stored
in ``benchmark.extra_info``.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark's timer."""

    def runner(function, *args, **kwargs):
        return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return runner
