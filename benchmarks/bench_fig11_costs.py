"""Figure 11 — operation and usage costs of SCFS.

Regenerates the three cost views of §4.5:

* 11(a): the fixed cost of running the coordination service (VM rental per
  day for one EC2 instance, four EC2 instances, or one instance in each CoC
  provider) and its expected metadata capacity — these numbers are taken from
  the same price list as the paper and must match it exactly;
* 11(b): the measured cost per read/write operation as a function of file
  size — reads are dominated by outbound traffic and grow linearly, writes
  cost only requests/coordination accesses and stay flat, CoC ≥ AWS;
* 11(c): the measured storage cost per file version per day — the
  cloud-of-clouds pays roughly 50 % more than the single cloud thanks to the
  erasure code with preferred quorums.
"""

from __future__ import annotations

import pytest

from repro.bench.costs import (
    cached_read_cost,
    cost_per_file_day,
    cost_per_operation,
    operation_costs_per_day,
)
from repro.bench.report import human_size, render_table
from repro.common.units import MB

SIZES = (1 * MB, 5 * MB, 10 * MB, 20 * MB, 30 * MB)


def test_fig11a_operation_costs_per_day(run_once, capsys):
    rows = run_once(operation_costs_per_day)
    table_rows = [[r.instance, r.ec2_per_day, r.ec2_times_four_per_day, r.coc_per_day,
                   f"{r.capacity_files / 1e6:.0f}M files"] for r in rows]
    with capsys.disabled():
        print()
        print(render_table("Figure 11(a) - coordination service cost per day ($) and capacity",
                           ["instance", "EC2", "EC2 x4", "CoC", "capacity"], table_rows))

    by_instance = {r.instance: r for r in rows}
    assert by_instance["large"].ec2_per_day == pytest.approx(6.24)
    assert by_instance["large"].ec2_times_four_per_day == pytest.approx(24.96)
    assert by_instance["large"].coc_per_day == pytest.approx(39.60)
    assert by_instance["large"].capacity_files == 7_000_000
    assert by_instance["extra_large"].ec2_per_day == pytest.approx(12.96)
    assert by_instance["extra_large"].ec2_times_four_per_day == pytest.approx(51.84)
    assert by_instance["extra_large"].coc_per_day == pytest.approx(77.04)
    assert by_instance["extra_large"].capacity_files == 15_000_000
    # The price of tolerating provider failures (the $451/month of §4.5) is the
    # difference between the CoC and the 4xEC2 deployments.
    fault_tolerance_premium = by_instance["large"].coc_per_day - by_instance["large"].ec2_times_four_per_day
    assert fault_tolerance_premium * 30 == pytest.approx(439.2, rel=0.05)


def test_fig11b_cost_per_operation(run_once, benchmark, capsys):
    results = run_once(cost_per_operation, SIZES)

    rows = []
    for series, per_size in results.items():
        for size in SIZES:
            rows.append([series, human_size(size), per_size[size].total,
                         per_size[size].read_path])
    with capsys.disabled():
        print()
        print(render_table("Figure 11(b) - cost per operation (micro-dollars)",
                           ["series", "file size", "cost/op (u$)", "read path"], rows))
        print(f"cached read (metadata validation only): {cached_read_cost():.2f} u$")

    # Fault-free measured CoC reads must hit the preferred (systematic) quorum.
    for size in SIZES:
        assert results["CoC read"][size].read_path == "systematic"
    benchmark.extra_info["series"] = {
        series: {human_size(size): round(cost.total, 1) for size, cost in per_size.items()}
        for series, per_size in results.items()
    }

    # Reads grow with the file size (outbound traffic is charged)...
    assert results["AWS read"][30 * MB].total > 10 * results["AWS read"][1 * MB].total
    assert results["CoC read"][30 * MB].total > 10 * results["CoC read"][1 * MB].total
    # ...while writes stay flat (inbound traffic is free).
    assert results["AWS write"][30 * MB].total < 2 * results["AWS write"][1 * MB].total
    assert results["CoC write"][30 * MB].total < 2 * results["CoC write"][1 * MB].total
    # Writing is much cheaper than reading for any non-trivial file size.
    assert results["AWS write"][10 * MB].total < results["AWS read"][10 * MB].total
    # The CoC backend costs at least as much as the single cloud for both.
    for size in SIZES:
        assert results["CoC read"][size].total >= 0.9 * results["AWS read"][size].total
        assert results["CoC write"][size].total >= results["AWS write"][size].total
    # Reading a locally cached file only pays the metadata validation (~11 u$).
    assert cached_read_cost() == pytest.approx(11.32, rel=0.05)


def test_fig11c_cost_per_file_per_day(run_once, benchmark, capsys):
    results = run_once(cost_per_file_day, SIZES)

    rows = []
    for system in ("AWS", "CoC"):
        for size in SIZES:
            entry = results[system][size]
            rows.append([system, human_size(size), entry.micro_dollars_per_day,
                         entry.stored_bytes])
    with capsys.disabled():
        print()
        print(render_table("Figure 11(c) - storage cost per version per day (micro-dollars)",
                           ["backend", "file size", "cost/day (u$)", "stored bytes"], rows))
    benchmark.extra_info["series"] = {
        system: {human_size(size): round(entry.micro_dollars_per_day, 2)
                 for size, entry in per_size.items()}
        for system, per_size in results.items()
    }

    for size in SIZES:
        ratio = results["CoC"][size].micro_dollars_per_day / results["AWS"][size].micro_dollars_per_day
        # The erasure code with preferred quorums costs ~50% extra storage (§4.5).
        assert 1.3 < ratio < 1.8
    # Cost grows linearly with the file size.
    assert results["AWS"][30 * MB].micro_dollars_per_day == pytest.approx(
        30 * results["AWS"][1 * MB].micro_dollars_per_day, rel=0.1)
