"""Figure 9 — file-sharing latency between two clients.

Regenerates the 50th/90th-percentile latency between the instant client A
closes a file written to a shared folder and the instant client B has that
exact version, for 256 KB–16 MB files, on SCFS-CoC-B/NB, SCFS-AWS-B/NB and a
Dropbox-like synchronisation service.

Shape assertions, mirroring §4.3:

* the blocking variants exhibit the *smallest* sharing latency — when close
  returns, the data is already in the clouds, so B only pays detection and
  download;
* the non-blocking variants add the (background) upload time;
* the Dropbox-like service is far slower than any SCFS variant;
* latency grows with the file size for the upload-bound systems.
"""

from __future__ import annotations

from repro.bench.report import human_size, render_table
from repro.bench.sharing import run_dropbox_sharing, run_sharing_benchmark
from repro.common.units import KB, MB

SIZES = (256 * KB, 1 * MB, 4 * MB, 16 * MB)
SYSTEMS = ("SCFS-CoC-B", "SCFS-CoC-NB", "SCFS-AWS-B", "SCFS-AWS-NB", "Dropbox")
TRIALS = 7


def _run_matrix():
    results = {}
    for system in SYSTEMS:
        for size in SIZES:
            if system == "Dropbox":
                results[(system, size)] = run_dropbox_sharing(size, trials=TRIALS, seed=5)
            else:
                results[(system, size)] = run_sharing_benchmark(system, size, trials=TRIALS, seed=5)
    return results


def test_fig9_sharing_latency(run_once, benchmark, capsys):
    results = run_once(_run_matrix)

    rows = []
    for system in SYSTEMS:
        for size in SIZES:
            result = results[(system, size)]
            rows.append([system, human_size(size), result.p50, result.p90])
    with capsys.disabled():
        print()
        print(render_table("Figure 9 - sharing latency, 50th/90th percentile (simulated seconds)",
                           ["system", "size", "p50", "p90"], rows, float_format="{:.2f}"))
    benchmark.extra_info["results"] = {
        f"{system}/{human_size(size)}": round(result.p50, 2)
        for (system, size), result in results.items()
    }

    def p50(system, size):
        return results[(system, size)].p50

    for size in SIZES:
        # Blocking beats non-blocking (the upload already happened inside close).
        assert p50("SCFS-CoC-B", size) < p50("SCFS-CoC-NB", size)
        assert p50("SCFS-AWS-B", size) < p50("SCFS-AWS-NB", size)
        # Every SCFS variant beats the Dropbox-like synchronisation pipeline.
        for system in ("SCFS-CoC-B", "SCFS-CoC-NB", "SCFS-AWS-B", "SCFS-AWS-NB"):
            assert p50(system, size) < p50("Dropbox", size)
        # Percentiles are ordered.
        for system in SYSTEMS:
            assert results[(system, size)].p90 >= results[(system, size)].p50

    # Upload-bound systems get slower as files grow.
    assert p50("SCFS-CoC-NB", 16 * MB) > p50("SCFS-CoC-NB", 256 * KB)
    assert p50("Dropbox", 16 * MB) > p50("Dropbox", 256 * KB)
