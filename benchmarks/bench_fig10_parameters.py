"""Figure 10 — varying SCFS parameters (metadata cache expiration and PNS sharing).

Regenerates the two §4.4 sweeps on SCFS-CoC-NB, using the create-files and
copy-files micro-benchmarks:

* Figure 10(a): metadata-cache expiration of 0, 250 and 500 ms — no cache is
  clearly worse, and the benefit saturates after a few hundred milliseconds;
* Figure 10(b): with Private Name Spaces enabled, the percentage of shared
  files varied from 0 to 100 % — latency decreases as more files are private,
  with the fully-private case close to a local file system.
"""

from __future__ import annotations

from repro.bench.filebench import MicroBenchmarkParams
from repro.bench.report import render_table
from repro.bench.sweeps import run_metadata_cache_sweep, run_pns_sweep

#: Slightly reduced file counts keep the wall-clock time of the sweep modest
#: while preserving the shape (the paper uses 200/100 files).
PARAMS = MicroBenchmarkParams(create_count=100, copy_count=50)


def test_fig10a_metadata_cache_expiration(run_once, benchmark, capsys):
    sweep = run_once(run_metadata_cache_sweep, (0.0, 0.250, 0.500), "SCFS-CoC-NB", 3, PARAMS)

    rows = [[f"{point.setting * 1000:.0f} ms", point.create_seconds, point.copy_seconds]
            for point in sweep.points]
    with capsys.disabled():
        print()
        print(render_table("Figure 10(a) - metadata cache expiration time (simulated seconds)",
                           ["expiration", "create files", "copy files"], rows))
    benchmark.extra_info["points"] = {
        f"{p.setting}": (round(p.create_seconds, 2), round(p.copy_seconds, 2))
        for p in sweep.points
    }

    by_setting = {point.setting: point for point in sweep.points}
    # Disabling the cache severely degrades both benchmarks...
    assert by_setting[0.0].create_seconds > 1.15 * by_setting[0.5].create_seconds
    assert by_setting[0.0].copy_seconds > 1.15 * by_setting[0.5].copy_seconds
    # ...while going from 250 ms to 500 ms changes little (the knee of Fig. 10a).
    assert by_setting[0.25].create_seconds <= 1.15 * by_setting[0.5].create_seconds


def test_fig10b_private_name_spaces(run_once, benchmark, capsys):
    sweep = run_once(run_pns_sweep, (0, 25, 50, 75, 100), "SCFS-CoC-NB", 3, PARAMS)

    rows = [[f"{point.setting:.0f} %", point.create_seconds, point.copy_seconds]
            for point in sweep.points]
    with capsys.disabled():
        print()
        print(render_table("Figure 10(b) - percentage of shared files with PNS (simulated seconds)",
                           ["shared files", "create files", "copy files"], rows))
    benchmark.extra_info["points"] = {
        f"{p.setting}": (round(p.create_seconds, 2), round(p.copy_seconds, 2))
        for p in sweep.points
    }

    by_percent = {point.setting: point for point in sweep.points}
    # Latency grows with the fraction of shared files...
    assert by_percent[0.0].create_seconds < by_percent[50.0].create_seconds < by_percent[100.0].create_seconds
    assert by_percent[0.0].copy_seconds < by_percent[100.0].copy_seconds
    # ...the fully-private case is near-local...
    assert by_percent[0.0].create_seconds < 0.1 * by_percent[100.0].create_seconds
    # ...and 25 % sharing is at least ~2x faster than full sharing (the paper
    # reports factors of 2.5 for create and 3.5 for copy).
    assert by_percent[100.0].create_seconds / by_percent[25.0].create_seconds > 2.0
    assert by_percent[100.0].copy_seconds / by_percent[25.0].copy_seconds > 2.0
