"""Discrete-event scale-out sweep: 1000+ agents against a 10^5-file namespace.

The scenario engine's scale path (PR 6) combines four mechanisms:

* the heap-based discrete-event scheduler interleaves per-agent steps instead
  of lockstep rounds (``ScenarioSpec.scheduling = "event-driven"``);
* the namespace is primed through :func:`repro.scenarios.pool.prime_pool`
  (interned metadata templates + shared coded blocks) instead of one DepSky
  write per file;
* metadata/PNS tuples are sharded over partitioned coordination services;
* identical same-instant metadata read quorums coalesce through one
  deployment-wide :class:`~repro.clouds.dispatch.InstantCoalescer`.

This harness sweeps the agent count at a fixed primed namespace, runs every
cell under all four trace invariant checkers, and asserts *sub-linear*
wall-clock growth: quadrupling the agent population (and with it the total op
count) must cost strictly less than 4x the wall-clock of the smallest cell.
A second facet measures the coalescer on a same-instant read burst — many
uncharged clients reading one hot data unit within a single virtual instant.

Results are appended to ``BENCH_scale.json`` (see
:mod:`repro.bench.trajectory`); CI gates the fast-mode wall-clock-per-op and
peak-RSS numbers against the last checked-in entry.

Set ``SCALE_BENCH_FAST=1`` (the CI mode) for a reduced sweep; the full sweep
reaches 1000 agents x 20 ops against 10^5 pooled files.
"""

from __future__ import annotations

import os
import resource
import time

from repro.bench.report import render_table
from repro.bench.trajectory import record_bench
from repro.clouds.dispatch import InstantCoalescer
from repro.clouds.providers import COC_STORAGE_PROVIDERS, make_cloud_of_clouds
from repro.common.types import Principal
from repro.depsky.protocol import DepSkyClient
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ScenarioSpec
from repro.simenv.environment import Simulation

FAST = os.environ.get("SCALE_BENCH_FAST", "") == "1"
MODE = "fast" if FAST else "full"
SEED = 17

#: (agents, ops per agent) cells, smallest to largest; the namespace is shared.
AGENT_SWEEP = ((50, 5), (100, 5), (200, 5)) if FAST else ((250, 20), (500, 20), (1000, 20))
FILES = 5_000 if FAST else 100_000
DIRECTORIES = 32
PARTITIONS = 4
BURST_READERS = 500 if FAST else 2_000


def _peak_rss_mb() -> float:
    """Peak resident set size of this process so far, in MiB (Linux: KiB units)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _run_cell(agents: int, ops: int) -> dict:
    spec = ScenarioSpec.generate_scale(
        seed=SEED, agents=agents, files=FILES, ops_per_agent=ops,
        directories=DIRECTORIES, partitions=PARTITIONS)
    start = time.perf_counter()
    result = ScenarioRunner(spec).run()
    wall = time.perf_counter() - start
    assert result.ok, result.violations
    return {
        "agents": agents,
        "total_ops": spec.total_ops,
        "wall_s": wall,
        "wall_per_op_ms": 1000.0 * wall / spec.total_ops,
        "events": result.stats["events"],
        "quorum_calls": result.stats["quorum_calls"],
        "fingerprint": result.fingerprint,
    }


def test_agent_scale_sweep(run_once, benchmark, capsys):
    cells = run_once(lambda: [_run_cell(agents, ops) for agents, ops in AGENT_SWEEP])
    peak_rss = _peak_rss_mb()

    rows = [[c["agents"], c["total_ops"], c["wall_s"], c["wall_per_op_ms"],
             c["events"], c["quorum_calls"]] for c in cells]
    with capsys.disabled():
        print()
        print(render_table(
            f"Agent scale sweep ({MODE}: {FILES} pooled files, "
            f"{PARTITIONS} coordination partitions, all invariant checkers on; "
            f"peak RSS {peak_rss:.0f} MiB)",
            ["agents", "ops", "wall s", "ms/op", "trace events", "quorum calls"],
            rows, float_format="{:.3f}"))

    smallest, largest = cells[0], cells[-1]
    growth = largest["total_ops"] / smallest["total_ops"]
    ratio = largest["wall_s"] / smallest["wall_s"]
    benchmark.extra_info["cells"] = [
        {k: v for k, v in c.items() if k != "fingerprint"} for c in cells]
    benchmark.extra_info["scaling_ratio"] = round(ratio, 2)

    # The acceptance bar: per-op wall-clock stays flat as the population
    # grows ``growth``x — no super-linear term (lock contention, namespace
    # scans, quorum amplification) creeps in with agent count.
    assert largest["wall_per_op_ms"] < 1.3 * smallest["wall_per_op_ms"], cells
    assert ratio < 1.1 * growth, (ratio, growth)
    if not FAST:
        # The full sweep amortises the fixed priming cost over 20k ops, so
        # total wall-clock growth is strictly sub-linear in the op count.
        assert ratio < 0.9 * growth, (ratio, growth)
    # Every cell held every invariant (asserted per cell) and the largest cell
    # actually ran at the advertised population.
    assert largest["agents"] == AGENT_SWEEP[-1][0]

    metrics = {f"{MODE}_wall_s_a{c['agents']}": round(c["wall_s"], 3) for c in cells}
    metrics[f"{MODE}_wall_per_op_ms"] = round(largest["wall_per_op_ms"], 3)
    metrics[f"{MODE}_scaling_ratio"] = round(ratio, 3)
    metrics[f"{MODE}_trace_events"] = largest["events"]
    metrics[f"{MODE}_agents"] = largest["agents"]
    metrics[f"{MODE}_files"] = FILES
    metrics[f"{MODE}_peak_rss_mb"] = round(peak_rss, 1)
    record_bench("scale", metrics)


def _burst(coalesce: bool) -> dict:
    """Many uncharged clients read one hot unit within a single virtual instant."""
    sim = Simulation(seed=SEED)
    clouds = make_cloud_of_clouds(sim, COC_STORAGE_PROVIDERS, charge_latency=False)

    def principal(name: str) -> Principal:
        return Principal(name=name, canonical_ids=tuple(
            (c.name, f"{name}@{c.name}") for c in clouds))

    coalescer = InstantCoalescer(sim) if coalesce else None
    writer = DepSkyClient(sim, clouds, principal("burst"), charge_latency=False,
                          coalescer=coalescer)
    writer.write("hot-unit", b"burst payload " * 16)
    sim.advance(60.0)  # let the put propagate

    readers = [DepSkyClient(sim, clouds, principal("burst"), charge_latency=False,
                            coalescer=coalescer) for _ in range(BURST_READERS)]
    start = time.perf_counter()
    for reader in readers:
        metadata, _ = reader._read_metadata("hot-unit", use_cached=False)
        assert metadata is not None and metadata.latest().version == 1
    wall = time.perf_counter() - start
    return {"wall_s": wall, "hits": coalescer.hits if coalescer else 0}


def test_same_instant_read_burst(run_once, benchmark, capsys):
    results = run_once(lambda: {
        "plain": _burst(coalesce=False),
        "coalesced": _burst(coalesce=True),
    })
    plain, coalesced = results["plain"], results["coalesced"]
    speedup = plain["wall_s"] / coalesced["wall_s"] if coalesced["wall_s"] else 0.0
    with capsys.disabled():
        print()
        print(render_table(
            f"Same-instant metadata read burst ({BURST_READERS} readers, one hot unit)",
            ["mode", "wall s", "coalesced", "speedup"],
            [["plain", plain["wall_s"], plain["hits"], 1.0],
             ["coalesced", coalesced["wall_s"], coalesced["hits"], speedup]],
            float_format="{:.4f}"))
    benchmark.extra_info["burst"] = {
        "plain_wall_s": round(plain["wall_s"], 4),
        "coalesced_wall_s": round(coalesced["wall_s"], 4),
        "speedup": round(speedup, 2),
    }

    # All but the first read of the instant ride on the first call's result...
    assert coalesced["hits"] == BURST_READERS - 1
    # ...which must be materially cheaper than re-dispatching every quorum.
    assert speedup > 2.0, speedup

    record_bench("scale", {
        f"{MODE}_burst_readers": BURST_READERS,
        f"{MODE}_burst_coalesced": coalesced["hits"],
        f"{MODE}_burst_speedup": round(speedup, 2),
    })
