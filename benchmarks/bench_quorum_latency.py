"""Quorum dispatch engine — latency under jitter, stragglers and faults.

Sweeps fault schedules against dispatch policies for a DepSky cloud-of-clouds
client and reports the simulated read/write latency distributions together
with the preferred-quorum hit rates:

* ``fault-free``      — all four providers healthy (jittered latencies);
* ``one-down``        — one preferred (systematic) cloud UNAVAILABLE, so every
                        read pays the staged parity fallback and every write
                        spills over to the fourth cloud;
* ``degraded``        — one preferred cloud DEGRADED (latency x8, a gray
                        failure): it still answers, so without hedging every
                        read waits for the straggler.

Policies: plain staged dispatch, a per-request timeout with one retry, and
hedged fallback dispatch.  The assertions pin the behaviours the dispatch
engine exists to model:

* fault-free reads are 100 % preferred-quorum hits;
* with a failed preferred cloud, the charged read latency *strictly exceeds*
  the fault-free systematic read (staged fallback is not free);
* hedged backup requests beat the DEGRADED straggler, cutting p99 read
  latency by a wide margin versus plain dispatch.

Set ``QUORUM_BENCH_FAST=1`` to run a reduced sweep (CI smoke mode).
"""

from __future__ import annotations

import os

from repro.clouds.dispatch import DispatchPolicy
from repro.common.types import Principal
from repro.common.units import KB
from repro.bench.report import percentile, render_table
from repro.clouds.providers import make_cloud_of_clouds
from repro.depsky.protocol import DepSkyClient
from repro.simenv.environment import Simulation
from repro.simenv.failures import FaultKind

FAST = bool(os.environ.get("QUORUM_BENCH_FAST"))
READS = 24 if FAST else 96
WRITES = 8 if FAST else 24
PAYLOAD = 256 * KB
JITTER = 0.15
DEGRADED_FACTOR = 8.0

SCHEDULES = ("fault-free", "one-down", "degraded")
POLICIES: dict[str, DispatchPolicy | None] = {
    "plain": None,
    "timeout": DispatchPolicy(timeout=0.6, retries=1),
    "hedged": DispatchPolicy(hedge_delay=0.25),
}


def _apply_schedule(clouds, schedule: str, start: float) -> None:
    if schedule == "one-down":
        clouds[0].failures.add(FaultKind.UNAVAILABLE, start=start)
    elif schedule == "degraded":
        clouds[0].failures.add(FaultKind.DEGRADED, start=start, factor=DEGRADED_FACTOR)
    elif schedule != "fault-free":
        raise ValueError(f"unknown schedule {schedule!r}")


def _run_scenario(schedule: str, policy: DispatchPolicy | None, seed: int = 11) -> dict:
    sim = Simulation(seed=seed)
    clouds = make_cloud_of_clouds(sim, jitter=JITTER)
    principal = Principal("bench-user")
    client = DepSkyClient(sim, clouds, principal, f=1, policy=policy)

    # Populate the data units while healthy, then let them propagate and
    # activate the fault schedule for the measured phase.
    payload = bytes((i * 73) % 256 for i in range(PAYLOAD))
    client.write("unit-read", payload)
    sim.advance(3.0)
    _apply_schedule(clouds, schedule, start=sim.now())

    read_latencies = []
    paths = {"systematic": 0, "coded": 0}
    hedged_requests = 0
    for _ in range(READS):
        start = sim.now()
        result = client.read_latest("unit-read")
        read_latencies.append(sim.now() - start)
        paths[result.path] += 1
        if result.stats is not None:
            hedged_requests += result.stats.hedged
    write_latencies = []
    for index in range(WRITES):
        start = sim.now()
        client.write(f"unit-write-{index}", payload)
        write_latencies.append(sim.now() - start)
        sim.advance(0.5)

    return {
        "reads": read_latencies,
        "writes": write_latencies,
        "paths": paths,
        "hedged": hedged_requests,
    }


def _sweep() -> dict[tuple[str, str], dict]:
    return {
        (schedule, policy_name): _run_scenario(schedule, policy)
        for schedule in SCHEDULES
        for policy_name, policy in POLICIES.items()
    }


def test_quorum_latency_sweep(run_once, benchmark, capsys):
    results = run_once(_sweep)

    rows = []
    for (schedule, policy_name), result in results.items():
        reads, writes = result["reads"], result["writes"]
        total = sum(result["paths"].values())
        hit_rate = result["paths"]["systematic"] / total if total else 0.0
        rows.append([
            schedule, policy_name,
            percentile(reads, 50), percentile(reads, 95), percentile(reads, 99),
            percentile(writes, 50), percentile(writes, 99),
            f"{100.0 * hit_rate:.0f}%", result["hedged"],
        ])
    with capsys.disabled():
        print()
        print(render_table(
            "Quorum dispatch latency sweep (simulated seconds, "
            f"{READS} reads / {WRITES} writes of 256K)",
            ["schedule", "policy", "read p50", "read p95", "read p99",
             "write p50", "write p99", "pref. hits", "hedged"],
            rows, float_format="{:.3f}"))
    benchmark.extra_info["sweep"] = {
        f"{schedule}/{policy}": {
            "read_p50": round(percentile(result["reads"], 50), 4),
            "read_p99": round(percentile(result["reads"], 99), 4),
            "write_p50": round(percentile(result["writes"], 50), 4),
            "paths": result["paths"],
            "hedged": result["hedged"],
        }
        for (schedule, policy), result in results.items()
    }

    def reads(schedule, policy):
        return results[(schedule, policy)]["reads"]

    # Fault-free reads are pure preferred-quorum hits for every policy.
    for policy in POLICIES:
        assert results[("fault-free", policy)]["paths"]["coded"] == 0

    # Staged fallback is charged: with a failed preferred cloud every read is
    # coded and strictly slower than the fault-free systematic read.
    assert results[("one-down", "plain")]["paths"]["systematic"] == 0
    assert percentile(reads("one-down", "plain"), 50) > percentile(reads("fault-free", "plain"), 50)
    assert min(reads("one-down", "plain")) > max(reads("fault-free", "plain")) * 0.9

    # Without hedging, a DEGRADED straggler dominates the read latency; hedged
    # backup requests beat it (the engine's raison d'etre) by a wide margin.
    plain_p99 = percentile(reads("degraded", "plain"), 99)
    hedged_p99 = percentile(reads("degraded", "hedged"), 99)
    assert hedged_p99 < 0.7 * plain_p99, (plain_p99, hedged_p99)
    assert results[("degraded", "hedged")]["hedged"] > 0
    # Per-request timeouts also dodge the straggler, though later than a hedge.
    timeout_p99 = percentile(reads("degraded", "timeout"), 99)
    assert timeout_p99 < plain_p99
