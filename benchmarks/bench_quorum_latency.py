"""Quorum dispatch engine — latency under jitter, stragglers and faults.

Sweeps fault schedules against dispatch policies for a DepSky cloud-of-clouds
client and reports the simulated read/write latency distributions together
with the preferred-quorum hit rates:

* ``fault-free``      — all four providers healthy (jittered latencies);
* ``one-down``        — one preferred (systematic) cloud UNAVAILABLE, so every
                        read pays the staged parity fallback and every write
                        spills over to the fourth cloud;
* ``degraded``        — one preferred cloud DEGRADED (latency x8, a gray
                        failure): it still answers, so without hedging every
                        read waits for the straggler.

Policies: plain staged dispatch, a per-request timeout with one retry, and
hedged fallback dispatch.  The assertions pin the behaviours the dispatch
engine exists to model:

* fault-free reads are 100 % preferred-quorum hits;
* with a failed preferred cloud, the charged read latency *strictly exceeds*
  the fault-free systematic read (staged fallback is not free);
* hedged backup requests beat the DEGRADED straggler, cutting p99 read
  latency by a wide margin versus plain dispatch.

The *outage-recovery* sweep (``test_outage_recovery_sweep``) downs one
preferred cloud for a bounded window — as a crash (every request fails) and as
a hang (latency x600, so every request burns the full per-request timeout) —
and compares the same timeout policy with and without cloud health tracking:

* with suspicion, the mean latency of the 2nd..Nth reads during the outage is
  *strictly lower* than without (the suspect list stops the client from
  re-probing the dead provider on every call — no repeated timeout tax);
* under the hang, untracked reads pay at least the full timeout each, while
  suspected-cloud demotion collapses them back to near fault-free latency;
* after the outage ends, a background probe succeeds and the cloud rejoins
  the preferred quorum (suspicions/probes/recoveries are reported).

Set ``QUORUM_BENCH_FAST=1`` to run a reduced sweep (CI smoke mode).
"""

from __future__ import annotations

import os

from repro.clouds.dispatch import DispatchPolicy
from repro.clouds.eventual import EventuallyConsistentStore
from repro.clouds.health import CloudHealthTracker, QuorumPlanner, SuspicionPolicy
from repro.clouds.pricing import StoragePricing
from repro.clouds.quorums import WeightedQuorumSystem
from repro.common.types import Principal
from repro.common.units import KB
from repro.bench.report import percentile, render_table
from repro.bench.trajectory import record_bench
from repro.clouds.providers import (
    COC_STORAGE_PROVIDERS,
    PROVIDER_PROFILES,
    make_cloud_of_clouds,
)
from repro.depsky.protocol import DepSkyClient
from repro.simenv.environment import Simulation
from repro.simenv.failures import FaultKind

FAST = bool(os.environ.get("QUORUM_BENCH_FAST"))
READS = 24 if FAST else 96
WRITES = 8 if FAST else 24
PAYLOAD = 256 * KB
JITTER = 0.15
DEGRADED_FACTOR = 8.0

SCHEDULES = ("fault-free", "one-down", "degraded")
POLICIES: dict[str, DispatchPolicy | None] = {
    "plain": None,
    "timeout": DispatchPolicy(timeout=0.6, retries=1),
    "hedged": DispatchPolicy(hedge_delay=0.25),
}


def _apply_schedule(clouds, schedule: str, start: float) -> None:
    if schedule == "one-down":
        clouds[0].failures.add(FaultKind.UNAVAILABLE, start=start)
    elif schedule == "degraded":
        clouds[0].failures.add(FaultKind.DEGRADED, start=start, factor=DEGRADED_FACTOR)
    elif schedule != "fault-free":
        raise ValueError(f"unknown schedule {schedule!r}")


def _run_scenario(schedule: str, policy: DispatchPolicy | None, seed: int = 11) -> dict:
    sim = Simulation(seed=seed)
    clouds = make_cloud_of_clouds(sim, jitter=JITTER)
    principal = Principal("bench-user")
    client = DepSkyClient(sim, clouds, principal, f=1, policy=policy)

    # Populate the data units while healthy, then let them propagate and
    # activate the fault schedule for the measured phase.
    payload = bytes((i * 73) % 256 for i in range(PAYLOAD))
    client.write("unit-read", payload)
    sim.advance(3.0)
    _apply_schedule(clouds, schedule, start=sim.now())

    read_latencies = []
    paths = {"systematic": 0, "coded": 0}
    hedged_requests = 0
    for _ in range(READS):
        start = sim.now()
        result = client.read_latest("unit-read")
        read_latencies.append(sim.now() - start)
        paths[result.path] += 1
        if result.stats is not None:
            hedged_requests += result.stats.hedged
    write_latencies = []
    for index in range(WRITES):
        start = sim.now()
        client.write(f"unit-write-{index}", payload)
        write_latencies.append(sim.now() - start)
        sim.advance(0.5)

    return {
        "reads": read_latencies,
        "writes": write_latencies,
        "paths": paths,
        "hedged": hedged_requests,
    }


def _sweep() -> dict[tuple[str, str], dict]:
    return {
        (schedule, policy_name): _run_scenario(schedule, policy)
        for schedule in SCHEDULES
        for policy_name, policy in POLICIES.items()
    }


def test_quorum_latency_sweep(run_once, benchmark, capsys):
    results = run_once(_sweep)

    rows = []
    for (schedule, policy_name), result in results.items():
        reads, writes = result["reads"], result["writes"]
        total = sum(result["paths"].values())
        hit_rate = result["paths"]["systematic"] / total if total else 0.0
        rows.append([
            schedule, policy_name,
            percentile(reads, 50), percentile(reads, 95), percentile(reads, 99),
            percentile(writes, 50), percentile(writes, 99),
            f"{100.0 * hit_rate:.0f}%", result["hedged"],
        ])
    with capsys.disabled():
        print()
        print(render_table(
            "Quorum dispatch latency sweep (simulated seconds, "
            f"{READS} reads / {WRITES} writes of 256K)",
            ["schedule", "policy", "read p50", "read p95", "read p99",
             "write p50", "write p99", "pref. hits", "hedged"],
            rows, float_format="{:.3f}"))
    benchmark.extra_info["sweep"] = {
        f"{schedule}/{policy}": {
            "read_p50": round(percentile(result["reads"], 50), 4),
            "read_p99": round(percentile(result["reads"], 99), 4),
            "write_p50": round(percentile(result["writes"], 50), 4),
            "paths": result["paths"],
            "hedged": result["hedged"],
        }
        for (schedule, policy), result in results.items()
    }

    def reads(schedule, policy):
        return results[(schedule, policy)]["reads"]

    # Fault-free reads are pure preferred-quorum hits for every policy.
    for policy in POLICIES:
        assert results[("fault-free", policy)]["paths"]["coded"] == 0

    # Staged fallback is charged: with a failed preferred cloud every read is
    # coded and strictly slower than the fault-free systematic read.
    assert results[("one-down", "plain")]["paths"]["systematic"] == 0
    assert percentile(reads("one-down", "plain"), 50) > percentile(reads("fault-free", "plain"), 50)
    assert min(reads("one-down", "plain")) > max(reads("fault-free", "plain")) * 0.9

    # Without hedging, a DEGRADED straggler dominates the read latency; hedged
    # backup requests beat it (the engine's raison d'etre) by a wide margin.
    plain_p99 = percentile(reads("degraded", "plain"), 99)
    hedged_p99 = percentile(reads("degraded", "hedged"), 99)
    assert hedged_p99 < 0.7 * plain_p99, (plain_p99, hedged_p99)
    assert results[("degraded", "hedged")]["hedged"] > 0
    # Per-request timeouts also dodge the straggler, though later than a hedge.
    timeout_p99 = percentile(reads("degraded", "timeout"), 99)
    assert timeout_p99 < plain_p99

    record_bench("quorum", {
        "faultfree_read_p50_s": round(percentile(reads("fault-free", "plain"), 50), 4),
        "faultfree_write_p50_s": round(
            percentile(results[("fault-free", "plain")]["writes"], 50), 4),
        "onedown_read_p50_s": round(percentile(reads("one-down", "plain"), 50), 4),
        "degraded_plain_read_p99_s": round(plain_p99, 4),
        "degraded_hedged_read_p99_s": round(hedged_p99, 4),
    })


# --------------------------------------------------------------------------
# Outage-recovery sweep: suspect lists vs re-probing a downed provider.
# --------------------------------------------------------------------------

OUTAGE_SECONDS = 18.0 if FAST else 36.0
RECOVERY_SECONDS = 16.0 if FAST else 30.0
READ_GAP = 1.5
REQUEST_TIMEOUT = 1.5
#: A hanging provider: latency x600 means every request exceeds the timeout.
HANG_FACTOR = 600.0
OUTAGE_KINDS = ("crash", "hang")

SUSPICION = SuspicionPolicy(
    threshold=2,          # one read = metadata + block call: suspected fast
    probe_backoff=8.0,
    probe_backoff_factor=1.5,
    probe_backoff_max=30.0,
)


def _run_outage_scenario(kind: str, suspicion: bool, seed: int = 13) -> dict:
    sim = Simulation(seed=seed)
    clouds = make_cloud_of_clouds(sim, jitter=JITTER)
    policy = DispatchPolicy(timeout=REQUEST_TIMEOUT)
    health = CloudHealthTracker(SUSPICION) if suspicion else None
    client = DepSkyClient(sim, clouds, Principal("bench-user"), f=1,
                          policy=policy, health=health)

    payload = bytes((i * 73) % 256 for i in range(PAYLOAD))
    client.write("unit-outage", payload)
    sim.advance(3.0)
    outage_start = sim.now()
    if kind == "crash":
        clouds[0].failures.add_outage(outage_start, OUTAGE_SECONDS)
    elif kind == "hang":
        clouds[0].failures.add_outage(outage_start, OUTAGE_SECONDS,
                                      kind=FaultKind.DEGRADED, factor=HANG_FACTOR)
    else:
        raise ValueError(f"unknown outage kind {kind!r}")
    outage_end = clouds[0].failures.next_transition(outage_start)

    outage_reads: list[float] = []
    recovery_reads: list[float] = []
    recovery_paths: list[str] = []
    while sim.now() < outage_end + RECOVERY_SECONDS:
        in_outage = sim.now() < outage_end
        start = sim.now()
        result = client.read_latest("unit-outage")
        elapsed = sim.now() - start
        if in_outage:
            outage_reads.append(elapsed)
        else:
            recovery_reads.append(elapsed)
            recovery_paths.append(result.path)
        sim.advance(READ_GAP)

    snapshot = health.snapshot() if health is not None else None
    return {
        "outage_reads": outage_reads,
        "recovery_reads": recovery_reads,
        "recovery_paths": recovery_paths,
        "health": snapshot,
        "suspected_at_end": health.suspected_clouds() if health is not None else (),
    }


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def test_outage_recovery_sweep(run_once, benchmark, capsys):
    results = run_once(lambda: {
        (kind, "suspect" if suspicion else "timeout"): _run_outage_scenario(kind, suspicion)
        for kind in OUTAGE_KINDS
        for suspicion in (False, True)
    })

    rows = []
    for (kind, policy_name), result in results.items():
        outage = result["outage_reads"]
        health = result["health"]
        rows.append([
            kind, policy_name, len(outage),
            outage[0] if outage else 0.0, _mean(outage[1:]),
            _mean(result["recovery_reads"]),
            health.suspicions if health else "-",
            health.probes if health else "-",
            health.recoveries if health else "-",
        ])
    with capsys.disabled():
        print()
        print(render_table(
            f"Outage-recovery sweep ({OUTAGE_SECONDS:.0f} s outage of one preferred cloud, "
            f"timeout {REQUEST_TIMEOUT} s, reads every {READ_GAP} s)",
            ["outage", "policy", "reads", "read 1", "mean 2..N",
             "mean post-outage", "suspicions", "probes", "recoveries"],
            rows, float_format="{:.3f}"))
    benchmark.extra_info["outage_sweep"] = {
        f"{kind}/{policy}": {
            "first_read": round(result["outage_reads"][0], 4),
            "mean_rest": round(_mean(result["outage_reads"][1:]), 4),
            "mean_recovery": round(_mean(result["recovery_reads"]), 4),
            "suspicions": result["health"].suspicions if result["health"] else 0,
            "probes": result["health"].probes if result["health"] else 0,
            "recoveries": result["health"].recoveries if result["health"] else 0,
        }
        for (kind, policy), result in results.items()
    }

    for kind in OUTAGE_KINDS:
        tracked = results[(kind, "suspect")]
        untracked = results[(kind, "timeout")]
        # The acceptance bar: with one preferred cloud down, suspicion makes
        # the 2nd..Nth reads strictly cheaper than re-probing the dead cloud.
        assert _mean(tracked["outage_reads"][1:]) < _mean(untracked["outage_reads"][1:]), kind
        health = tracked["health"]
        assert health is not None and health.suspicions >= 1
        # The outage ends, a background probe succeeds, the cloud recovers...
        assert health.probes >= 1 and health.recoveries >= 1, kind
        assert tracked["suspected_at_end"] == ()
        # ...and post-recovery reads return to the preferred (systematic) path.
        assert tracked["recovery_paths"][-1] == "systematic", kind

    # Under a hang, every untracked read burns at least the full per-request
    # timeout waiting for the dead preferred cloud; demotion collapses the
    # steady-state read back under the timeout.
    hang_untracked = results[("hang", "timeout")]["outage_reads"]
    hang_tracked = results[("hang", "suspect")]["outage_reads"]
    assert _mean(hang_untracked[1:]) > REQUEST_TIMEOUT
    assert _mean(hang_tracked[2:]) < REQUEST_TIMEOUT

    record_bench("quorum", {
        "hang_untracked_mean_s": round(_mean(hang_untracked[1:]), 4),
        "hang_suspect_mean_s": round(_mean(hang_tracked[1:]), 4),
        "crash_suspect_mean_s": round(
            _mean(results[("crash", "suspect")]["outage_reads"][1:]), 4),
    })


# --------------------------------------------------------------------------
# Weighted-quorum frontier: cost x latency of weighted vs threshold quorums
# under heterogeneous pricing and a DEGRADED gray failure (Figure 11 style).
# --------------------------------------------------------------------------

FRONTIER_READS = 16 if FAST else 48
FRONTIER_WARMUP = 5
FRONTIER_SCHEDULES = ("healthy", "degraded")
#: The gray-failed provider of the degraded schedule: a *systematic* cloud,
#: so the classic threshold read pays its straggler latency on every call.
FRONTIER_STRAGGLER = 1

#: Heterogeneous per-provider pricing: in the classic threshold layout the
#: *systematic* clouds (the first two) are the expensive ones, so preferring
#: them is exactly the wrong call economically — the planner's opportunity.
FRONTIER_PRICING: dict[str, StoragePricing] = {
    "amazon-s3": StoragePricing(outbound_gb=0.19, get_request=0.00001),
    "google-storage": StoragePricing(outbound_gb=0.13, get_request=0.000005),
    "rackspace-files": StoragePricing(outbound_gb=0.09, get_request=0.000004),
    "windows-azure": StoragePricing(outbound_gb=0.10, get_request=0.000004),
}

#: Trust weights of the weighted arm (the heavy provider cannot certify alone).
FRONTIER_WEIGHTS = (("amazon-s3", 1.2), ("google-storage", 1.0),
                    ("rackspace-files", 1.0), ("windows-azure", 1.0))


def _make_frontier_clouds(sim: Simulation) -> list[EventuallyConsistentStore]:
    clouds = []
    for name in COC_STORAGE_PROVIDERS:
        profile = PROVIDER_PROFILES[name]
        clouds.append(EventuallyConsistentStore(
            sim, name=name, profile=profile.network.with_jitter(JITTER),
            pricing=FRONTIER_PRICING[name], charge_latency=False))
    return clouds


def _run_frontier_arm(arm: str, schedule: str, seed: int = 17) -> dict:
    sim = Simulation(seed=seed)
    clouds = _make_frontier_clouds(sim)
    stores = {cloud.name: cloud for cloud in clouds}
    tracker = CloudHealthTracker(SUSPICION)
    system = planner = None
    if arm == "weighted":
        system = WeightedQuorumSystem(universe=COC_STORAGE_PROVIDERS,
                                      weights=FRONTIER_WEIGHTS, fault_budget=1.2)
        system.validate()

        def latency_of(name: str, kind: str, payload: int) -> float:
            expected = stores[name].expected_request_latency(kind, payload)
            record = tracker.health(name)
            if (record.samples >= tracker.policy.min_samples
                    and record.ewma_latency is not None):
                # The EWMA covers whole requests, the profile expectation the
                # same: take the pessimistic blend (a straggler's measured
                # latency dominates its advertised one).
                expected = max(expected, record.ewma_latency)
            return expected

        def cost_of(name: str, kind: str, payload: int) -> float:
            return stores[name].costs.pricing.request_cost(kind, payload)

        planner = QuorumPlanner(latency_of=latency_of, cost_of=cost_of,
                                tracker=tracker)
    elif arm != "threshold":
        raise ValueError(f"unknown frontier arm {arm!r}")

    client = DepSkyClient(sim, clouds, Principal("bench-user"), f=1,
                          health=tracker, quorum=system, planner=planner)
    payload = bytes((i * 73) % 256 for i in range(PAYLOAD))
    client.write("unit-frontier", payload)
    sim.advance(3.0)
    # Warm the latency EWMAs (and, under the degraded schedule, let them see
    # the straggler) before the measured window.
    if schedule == "degraded":
        clouds[FRONTIER_STRAGGLER].failures.add(
            FaultKind.DEGRADED, start=sim.now(), factor=DEGRADED_FACTOR)
    elif schedule != "healthy":
        raise ValueError(f"unknown frontier schedule {schedule!r}")
    for _ in range(FRONTIER_WARMUP):
        client.read_latest("unit-frontier")
        sim.advance(READ_GAP)

    def spent() -> float:
        return sum(cloud.costs.request_cost() + cloud.costs.traffic_cost()
                   for cloud in clouds)

    baseline = spent()
    latencies = []
    for _ in range(FRONTIER_READS):
        start = sim.now()
        client.read_latest("unit-frontier")
        latencies.append(sim.now() - start)
        sim.advance(READ_GAP)
    dollars = spent() - baseline
    return {
        "latencies": latencies,
        "cost": dollars,
        "cost_per_read": dollars / FRONTIER_READS,
        "mean_latency": _mean(latencies),
    }


def test_weighted_quorum_frontier(run_once, benchmark, capsys):
    results = run_once(lambda: {
        (schedule, arm): _run_frontier_arm(arm, schedule)
        for schedule in FRONTIER_SCHEDULES
        for arm in ("threshold", "weighted")
    })

    rows = []
    for (schedule, arm), result in results.items():
        rows.append([
            schedule, arm,
            result["mean_latency"], percentile(result["latencies"], 99),
            result["cost_per_read"] * 1e3,
            result["mean_latency"] * result["cost_per_read"] * 1e3,
        ])
    with capsys.disabled():
        print()
        print(render_table(
            f"Weighted-quorum frontier ({FRONTIER_READS} reads of 256K, "
            "heterogeneous pricing, straggler = systematic cloud)",
            ["schedule", "quorums", "read mean", "read p99",
             "m$/read", "m$*s/read"],
            rows, float_format="{:.3f}"))
    benchmark.extra_info["frontier"] = {
        f"{schedule}/{arm}": {
            "mean_latency_s": round(result["mean_latency"], 4),
            "cost_per_read_usd": round(result["cost_per_read"], 8),
        }
        for (schedule, arm), result in results.items()
    }

    def product(schedule: str, arm: str) -> float:
        result = results[(schedule, arm)]
        return result["mean_latency"] * result["cost_per_read"]

    # Weighted quorums strictly dominate the threshold layout on the cost x
    # latency frontier: cheaper *and* no slower when healthy (the planner
    # routes reads to the cheap, fast providers instead of the expensive
    # systematic pair), and both cheaper and faster under the gray failure
    # (the straggler is planned around instead of waited out or hedged).
    for schedule in FRONTIER_SCHEDULES:
        threshold, weighted = results[(schedule, "threshold")], results[(schedule, "weighted")]
        assert weighted["cost_per_read"] < threshold["cost_per_read"], schedule
        assert weighted["mean_latency"] < 1.05 * threshold["mean_latency"], schedule
    assert product("degraded", "weighted") < product("degraded", "threshold")

    # The CI-gated headline: how many times more cost x latency the classic
    # threshold quorums burn versus weighted planning under the gray failure.
    ratio = product("degraded", "threshold") / product("degraded", "weighted")
    assert ratio > 1.0
    record_bench("quorum", {
        "weighted_quorum_cost_ratio": round(ratio, 3),
        "frontier_weighted_degraded_read_s": round(
            results[("degraded", "weighted")]["mean_latency"], 4),
        "frontier_threshold_degraded_read_s": round(
            results[("degraded", "threshold")]["mean_latency"], 4),
    })
