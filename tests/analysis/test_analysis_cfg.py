"""Targeted unit tests for the lock-flow CFG walk (LCK001 edge cases)."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source


def _lck001(body: str) -> list[int]:
    source = textwrap.dedent(body)
    return [f.line for f in analyze_source(source) if f.rule == "LCK001"]


def test_straight_line_pairing_is_clean():
    assert _lck001("""
        def f(locks, meta):
            locks.acquire(meta)
            work(meta)
            locks.release(meta)
    """) == []


def test_early_return_between_acquire_and_release_flags():
    assert _lck001("""
        def f(locks, meta, flag):
            locks.acquire(meta)
            if flag:
                return None
            locks.release(meta)
    """) != []


def test_raise_between_acquire_and_release_flags():
    assert _lck001("""
        def f(locks, meta, flag):
            locks.acquire(meta)
            if flag:
                raise ValueError("boom")
            locks.release(meta)
    """) != []


def test_try_finally_release_covers_raise_and_return():
    assert _lck001("""
        def f(locks, meta, flag):
            locks.acquire(meta)
            try:
                if flag:
                    raise ValueError("boom")
                return work(meta)
            finally:
                locks.release(meta)
    """) == []


def test_caught_exception_does_not_leak():
    assert _lck001("""
        def f(locks, meta, flag):
            locks.acquire(meta)
            try:
                if flag:
                    raise ValueError("boom")
            except Exception:
                pass
            locks.release(meta)
    """) == []


def test_release_only_in_handler_still_leaks_on_fall_through():
    assert _lck001("""
        def f(locks, meta):
            locks.acquire(meta)
            try:
                work(meta)
            except ValueError:
                locks.release(meta)
                raise
    """) != []


def test_canonical_loop_acquire_finally_reversed_release_is_clean():
    # The repo's own commit pattern: may-acquire in the loop, must-release
    # in the finally loop.  The zero-iteration path must not false-positive.
    assert _lck001("""
        def f(locks, metas):
            locked = []
            try:
                for meta in sorted(metas):
                    locks.acquire(meta)
                    locked.append(meta)
                work(metas)
            finally:
                for meta in reversed(locked):
                    locks.release(meta)
    """) == []


def test_release_all_in_finally_is_clean():
    assert _lck001("""
        def f(locks, metas):
            try:
                for meta in sorted(metas):
                    locks.acquire(meta)
                return work(metas)
            finally:
                locks.release_all()
    """) == []


def test_break_out_of_loop_before_release_flags():
    assert _lck001("""
        def f(locks, metas, stop):
            for meta in sorted(metas):
                locks.acquire(meta)
                if meta == stop:
                    break
                locks.release(meta)
    """) != []


def test_with_statement_acquire_is_out_of_scope():
    # `with locks.acquire(meta):` style guards release structurally; the
    # pairing rule only tracks explicit acquire/release receivers.
    assert _lck001("""
        def f(locks, meta):
            with locks.guard(meta):
                work(meta)
    """) == []


def test_acquire_only_function_is_out_of_scope():
    # Ownership hand-off (mount acquires, unmount releases) is intra-function
    # out of scope by design.
    assert _lck001("""
        def mount(locks, meta):
            locks.acquire(meta)
            register(meta)
    """) == []


def test_nested_function_does_not_confuse_outer_flow():
    assert _lck001("""
        def f(locks, meta):
            def inner():
                locks.acquire(meta)
            locks.acquire(meta)
            work(meta)
            locks.release(meta)
    """) == []


def test_two_receivers_tracked_independently():
    findings = _lck001("""
        def f(a, b, meta, flag):
            a.locks.acquire(meta)
            b.locks.acquire(meta)
            if flag:
                return None
            a.locks.release(meta)
            b.locks.release(meta)
    """)
    assert len(findings) == 2
