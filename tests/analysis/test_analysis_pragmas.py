"""Unit tests for the pragma/directive layer of the static analyzer."""

from __future__ import annotations

from repro.analysis import analyze_source
from repro.analysis.pragmas import PragmaTable

SIM = "# repro: sim-visible\n"
WALLCLOCK = "import time\n\n\ndef f():\n    return time.time()\n"


def _rules(findings):
    return [f.rule for f in findings]


def test_justified_pragma_on_same_line_suppresses():
    source = SIM + WALLCLOCK.replace(
        "return time.time()",
        "return time.time()  # repro: allow[DET001] -- host watchdog only")
    assert analyze_source(source) == []


def test_justified_pragma_on_line_above_suppresses():
    source = SIM + WALLCLOCK.replace(
        "    return time.time()",
        "    # repro: allow[DET001] -- host watchdog only\n    return time.time()")
    assert analyze_source(source) == []


def test_unjustified_pragma_suppresses_nothing_and_is_flagged():
    source = SIM + WALLCLOCK.replace(
        "return time.time()", "return time.time()  # repro: allow[DET001]")
    assert sorted(_rules(analyze_source(source))) == ["DET001", "PRG001"]


def test_pragma_for_a_different_rule_does_not_suppress():
    source = SIM + WALLCLOCK.replace(
        "return time.time()",
        "return time.time()  # repro: allow[DET002] -- wrong rule id")
    assert "DET001" in _rules(analyze_source(source))


def test_prg001_cannot_be_pragmad_away():
    source = SIM + WALLCLOCK.replace(
        "    return time.time()",
        "    # repro: allow[PRG001] -- nice try\n"
        "    # repro: allow[DET001]\n"
        "    return time.time()")
    rules = _rules(analyze_source(source))
    assert "PRG001" in rules and "DET001" in rules


def test_sim_visible_directive_opts_in():
    # Outside src/repro the path-based classifier says "not sim-visible";
    # the directive turns the determinism rules on.
    assert analyze_source(WALLCLOCK, path="elsewhere.py") == []
    assert _rules(analyze_source(SIM + WALLCLOCK, path="elsewhere.py")) == ["DET001"]


def test_not_sim_visible_directive_opts_out():
    source = "# repro: not-sim-visible\n" + WALLCLOCK
    assert analyze_source(source, path="src/repro/core/fake.py") == []


def test_directive_outside_header_window_is_ignored():
    padding = "\n" * 30
    source = padding + "# repro: sim-visible\n" + WALLCLOCK
    assert analyze_source(source, path="elsewhere.py") == []


def test_pragma_table_records_justifications():
    table = PragmaTable(
        "x = 1  # repro: allow[LCK001] -- hand-off to close()\n", "f.py")
    assert table.suppresses("LCK001", 1)
    assert not table.suppresses("LCK002", 1)
    assert table.unjustified() == []
