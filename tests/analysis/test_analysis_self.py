"""Integration: the repository's own source must lint clean.

This is the CI gate in test form — if a change introduces a determinism
hazard, a lock leak, an undeclared trace event or a swallowed exception,
this test (and the ``static-analysis`` CI job) goes red.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths
from repro.scenarios.trace import TRACE_SCHEMA

REPO = Path(__file__).resolve().parents[2]


def test_src_repro_lints_clean():
    report = analyze_paths([str(REPO / "src" / "repro")])
    assert report.files_analyzed > 50
    assert report.ok, "\n" + report.render_text()


def test_every_schema_kind_has_fields_declared_as_frozenset():
    for kind, fields in TRACE_SCHEMA.items():
        assert isinstance(fields, frozenset), kind
        assert all(isinstance(f, str) for f in fields), kind


def test_schema_covers_all_kinds_the_scenario_suite_emits():
    # A crash/restart transactional mix exercises agents, quorums, faults,
    # locks and transactions at once; every event it records — kind and
    # fields — must be declared in the registry.
    from repro.scenarios.runner import ScenarioRunner
    from repro.scenarios.spec import ScenarioSpec

    spec = ScenarioSpec.generate(7, mix="txn-crash-restart", agents=3,
                                 ops_per_agent=8)
    result = ScenarioRunner(spec).run()
    emitted = {event.kind for event in result.trace.events}
    undeclared = emitted - set(TRACE_SCHEMA)
    assert not undeclared, f"emitted but undeclared kinds: {sorted(undeclared)}"
    for event in result.trace.events:
        extra = set(event.fields) - TRACE_SCHEMA[event.kind]
        assert not extra, f"{event.kind} carries undeclared fields {sorted(extra)}"
