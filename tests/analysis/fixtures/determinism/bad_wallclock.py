# repro: sim-visible
"""Bad: reads the host wall clock inside simulation-visible code."""
import time
from datetime import datetime


def stamp_operation(trace):
    # expect: DET001
    started = time.time()
    trace.append(("op", started))


def label_run(trace):
    # expect: DET001
    trace.append(datetime.now().isoformat())
