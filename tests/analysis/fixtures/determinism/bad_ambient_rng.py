# repro: sim-visible
"""Bad: draws from ambient entropy instead of a forked simulation stream."""
import os
import random


def jitter():
    # expect: DET002
    return random.random() * 0.5


def fresh_nonce():
    # expect: DET002
    return os.urandom(16)
