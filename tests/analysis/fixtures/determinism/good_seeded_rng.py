# repro: sim-visible
"""Good twin: randomness is a seeded stream threaded from the simulation."""
import random


def jitter(rng):
    return rng.random() * 0.5


def fork_stream(sim):
    return sim.fork_rng("jitter")


def make_stream(seed):
    return random.Random(seed)
