# repro: sim-visible
"""Good twin: time only ever comes from the simulation clock."""


def stamp_operation(sim, trace):
    trace.append(("op", sim.now()))


def label_run(sim, trace):
    trace.append(f"t={sim.now():.3f}")
