# repro: sim-visible
"""Good twin: set iteration is sorted, or feeds order-insensitive reductions."""


def drain(items):
    pending = set(items)
    return [item for item in sorted(pending)]


def quorum_met(responders, needed):
    distinct = {cloud for cloud in responders}
    return len(distinct) >= needed


def any_dirty(handles):
    return any(handle.dirty for handle in handles)
