# repro: sim-visible
"""Bad: iterates unordered sets where the order reaches scheduling/traces."""


def drain(items):
    pending = set(items)
    order = []
    # expect: DET003
    for item in pending:
        order.append(item)
    return order


def schedule(ready):
    waiting = {agent for agent in ready}
    # expect: DET003
    return [agent for agent in waiting]
