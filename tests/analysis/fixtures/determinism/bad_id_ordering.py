# repro: sim-visible
"""Bad: orders by CPython object identity, which varies run to run."""


def arbitration_order(handles):
    # expect: DET004
    return sorted(handles, key=id)


def winner(left, right):
    # expect: DET004
    if id(left) < id(right):
        return left
    return right
