# repro: sim-visible
"""Bad: a pragma without a justification suppresses nothing and adds PRG001."""
import time


def stamp():
    # expect: DET001, PRG001
    return time.time()  # repro: allow[DET001]
