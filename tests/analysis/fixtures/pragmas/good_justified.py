# repro: sim-visible
"""Good twin: a justified pragma suppresses the finding it names."""
import time


def wall_deadline(seconds):
    # repro: allow[DET001] -- host-side watchdog, compared only against the host clock
    return time.time() + seconds


def wall_deadline_trailing(seconds):
    return time.time() + seconds  # repro: allow[DET001] -- host-side watchdog, never simulated
