# repro: sim-visible
"""Good twin: a broad handler that cleans up and re-raises is legitimate."""


class Committer:
    def commit(self, meta):
        try:
            self.backend.put(meta)
        except Exception:
            self.stats.errors += 1
            raise

    def guarded(self, meta):
        try:
            return self.backend.get(meta)
        except Exception as exc:
            raise RuntimeError("commit path failed") from exc
