# repro: sim-visible
"""Good twin: handlers name the errors they actually expect."""


class Committer:
    def commit(self, meta):
        try:
            self.backend.put(meta)
        except KeyError:
            self.stats.missing += 1

    def read(self, meta):
        try:
            return self.backend.get(meta)
        except (KeyError, ValueError):
            return None
