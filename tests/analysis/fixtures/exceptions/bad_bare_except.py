"""Bad: bare except catches SystemExit/KeyboardInterrupt too."""


class Dispatcher:
    def dispatch(self, op):
        try:
            return self.apply(op)
        # expect: EXC001
        except:
            return None

    def probe(self, op):
        try:
            self.apply(op)
        # expect: EXC001
        except:
            pass
        return True
