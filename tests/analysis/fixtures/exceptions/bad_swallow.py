# repro: sim-visible
"""Bad: broad handlers on commit paths swallow protocol error subclasses."""


class Committer:
    def commit(self, meta):
        try:
            self.backend.put(meta)
        # expect: EXC002
        except Exception:
            pass

    def read(self, meta):
        try:
            return self.backend.get(meta)
        # expect: EXC002
        except BaseException:
            return None
