"""Bad: an exception path escapes with the lock still held."""


class Committer:
    def commit(self, meta, payload):
        # expect: LCK001
        self.locks.acquire(meta)
        if not self.validate(payload):
            raise ValueError("invalid payload")
        self.backend.put(meta, payload)
        self.locks.release(meta)
