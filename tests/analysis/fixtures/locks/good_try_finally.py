"""Good twin: sorted acquisition, release on every path via try/finally."""


class Committer:
    def commit_all(self, metas):
        locked = []
        try:
            for meta in sorted(metas, key=self.lock_name):
                self.locks.acquire(meta)
                locked.append(meta)
            self.apply(metas)
        finally:
            for meta in reversed(locked):
                self.locks.release(meta)
