"""Bad: an early return leaves the lock held."""


class Committer:
    def update(self, meta, payload):
        # expect: LCK001
        self.locks.acquire(meta)
        if payload is None:
            return None
        self.backend.put(meta, payload)
        self.locks.release(meta)
        return meta
