"""Good twin: release_all() in a finally covers every exit path."""


class Committer:
    def serve(self, meta):
        self.locks.acquire(meta)
        try:
            return self.render(meta)
        finally:
            self.locks.release_all()

    def lock_sorted_name(self, metas):
        ordered = sorted(metas)
        for meta in ordered:
            self.locks.acquire(meta)
        self.apply(metas)
        self.locks.release_all()
