"""Bad: multi-lock acquisition loop without a global (sorted) order."""


class Committer:
    def lock_all(self, metas):
        locked = []
        # expect: LCK002
        for meta in metas:
            self.locks.acquire(meta)
            locked.append(meta)
        return locked
