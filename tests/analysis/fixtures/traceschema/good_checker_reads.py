"""Good twin: checkers read only fields the selected kinds declare."""


def committed_versions(trace):
    for event in trace.by_kind("commit"):
        yield event.get("file_id"), event.get("version")


def crash_count(trace):
    return len([e for e in trace.events if e.kind == "agent_crash"])
