"""Bad: emits trace kinds the TRACE_SCHEMA registry does not declare."""


def announce(recorder, now):
    # expect: TRC001
    recorder.record("file_opened", agent="a0", time=now, path="/f")


class Agent:
    def emit_dynamic(self, action):
        # expect: TRC001
        self._emit(f"op_{action}", path="/f")
