"""Bad: declared kinds used with undeclared fields, on both sides."""


class Agent:
    def emit_open(self, handle):
        # expect: TRC002
        self._emit("open", pathname="/f")


def orphaned_unlinks(trace):
    for event in trace.by_kind("unlink"):
        # expect: TRC003
        if event.get("version") is not None:
            yield event
