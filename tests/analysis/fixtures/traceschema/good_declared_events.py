"""Good twin: every emission uses a declared kind with declared fields."""


class Agent:
    def emit_open(self, handle):
        self._emit("open", path="/f", handle=handle)


def announce(recorder, now):
    recorder.record("scenario_done", agent=None, time=now, ops=42)
