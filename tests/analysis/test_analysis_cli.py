"""CLI contract tests: exit codes, JSON shape, --out, --list-rules."""

from __future__ import annotations

import json

import pytest

from repro.analysis.__main__ import main
from repro.analysis.registry import ALL_RULES

CLEAN = "def f():\n    return 1\n"
DIRTY = ("# repro: sim-visible\n"
         "import time\n\n\ndef f():\n    return time.time()\n")


@pytest.fixture
def tree(tmp_path):
    (tmp_path / "clean.py").write_text(CLEAN)
    (tmp_path / "dirty.py").write_text(DIRTY)
    return tmp_path


def test_exit_zero_on_clean_file(tree, capsys):
    assert main([str(tree / "clean.py")]) == 0
    out = capsys.readouterr().out
    assert "1 file(s) analyzed, 0 finding(s)" in out


def test_exit_one_on_findings(tree, capsys):
    assert main([str(tree / "dirty.py")]) == 1
    assert "DET001" in capsys.readouterr().out


def test_exit_two_on_usage_errors(tree, capsys):
    assert main([]) == 2
    assert main([str(tree / "no_such_dir")]) == 2
    empty = tree / "empty"
    empty.mkdir()
    assert main([str(empty)]) == 2


def test_json_format_shape(tree, capsys):
    assert main([str(tree), "--format=json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["version"] == 1
    assert report["files_analyzed"] == 2
    assert report["ok"] is False
    assert report["summary"] == {"DET001": 1}
    (finding,) = report["findings"]
    assert set(finding) == {"path", "line", "col", "rule", "message"}
    assert finding["rule"] == "DET001"
    assert finding["path"].endswith("dirty.py")


def test_out_writes_report_file(tree, capsys):
    out_file = tree / "reports" / "analysis.json"
    assert main([str(tree), "--format=json", "--out", str(out_file)]) == 1
    on_disk = json.loads(out_file.read_text())
    assert on_disk == json.loads(capsys.readouterr().out)


def test_list_rules_covers_every_rule(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule in out


def test_syntax_error_is_a_finding_not_a_crash(tree, capsys):
    (tree / "broken.py").write_text("def f(:\n")
    assert main([str(tree / "broken.py")]) == 1
    assert "PARSE" in capsys.readouterr().out
