"""Self-test of the static analyzer against its fixture corpus.

Every ``bad_*.py`` fixture must flag *exactly* the findings its ``# expect:``
markers declare (a marker names the rules expected on the next source line);
every ``good_*.py`` twin must analyze clean.  This pins both directions of
each rule: the defect is caught, and the idiomatic fix is not harassed.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.analysis import analyze_source

FIXTURES = Path(__file__).parent / "fixtures"
FAMILIES = ("determinism", "locks", "traceschema", "exceptions", "pragmas")

_EXPECT_RE = re.compile(
    r"#\s*expect:\s*(?P<rules>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)\s*$"
)


def _expected(source: str) -> set[tuple[int, str]]:
    """``(line, rule)`` pairs declared by ``# expect:`` marker lines."""
    expected: set[tuple[int, str]] = set()
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _EXPECT_RE.search(text)
        if match is not None:
            for rule in re.split(r"\s*,\s*", match.group("rules")):
                expected.add((lineno + 1, rule))
    return expected


def _fixture_id(path: Path) -> str:
    return f"{path.parent.name}/{path.stem}"


BAD = sorted(FIXTURES.rglob("bad_*.py"))
GOOD = sorted(FIXTURES.rglob("good_*.py"))


def test_corpus_covers_every_family():
    assert {p.parent.name for p in BAD + GOOD} == set(FAMILIES)
    for family in ("determinism", "locks", "traceschema", "exceptions"):
        bad = list((FIXTURES / family).glob("bad_*.py"))
        good = list((FIXTURES / family).glob("good_*.py"))
        assert len(bad) >= 2, f"{family}: need >= 2 flagged fixtures"
        assert len(good) >= 2 or family == "pragmas", \
            f"{family}: need >= 2 passing fixtures"


@pytest.mark.parametrize("fixture", BAD, ids=_fixture_id)
def test_bad_fixture_flags_exactly_what_it_declares(fixture: Path):
    source = fixture.read_text(encoding="utf-8")
    expected = _expected(source)
    assert expected, f"bad fixture {fixture.name} declares no # expect: markers"
    findings = analyze_source(source, path=str(fixture))
    actual = {(f.line, f.rule) for f in findings}
    assert actual == expected, (
        f"{fixture.name}: expected {sorted(expected)}, got "
        + "\n".join(str(f) for f in findings)
    )


@pytest.mark.parametrize("fixture", GOOD, ids=_fixture_id)
def test_good_fixture_passes_clean(fixture: Path):
    source = fixture.read_text(encoding="utf-8")
    assert not _EXPECT_RE.search(source), \
        f"good fixture {fixture.name} must not declare expected findings"
    findings = analyze_source(source, path=str(fixture))
    assert findings == [], "\n".join(str(f) for f in findings)
