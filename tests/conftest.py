"""Shared fixtures for the SCFS reproduction test suite."""

from __future__ import annotations

import pytest

from repro.common.types import Principal
from repro.simenv.environment import Simulation


@pytest.fixture
def sim() -> Simulation:
    """A fresh deterministic simulation environment."""
    return Simulation(seed=1234)


@pytest.fixture
def alice() -> Principal:
    """A test principal with canonical ids for the four CoC providers."""
    return Principal(
        name="alice",
        canonical_ids=(
            ("amazon-s3", "alice@amazon-s3"),
            ("google-storage", "alice@google-storage"),
            ("rackspace-files", "alice@rackspace-files"),
            ("windows-azure", "alice@windows-azure"),
        ),
    )


@pytest.fixture
def bob() -> Principal:
    """A second test principal."""
    return Principal(name="bob", canonical_ids=(("amazon-s3", "bob@amazon-s3"),))
