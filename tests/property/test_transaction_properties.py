"""Property-based tests for the multi-file transaction layer.

Hypothesis drives 2-4 agents through random interleavings of transactional
and plain operations over a small shared file pool, then asserts the two
properties the layer exists for:

* every *committed* history is conflict-serializable (and the per-file
  version sequences stay linearizable) — checked by the same history
  checkers the scenario sweep uses;
* an aborted transaction leaves no visible partial state: its staged bytes
  (made globally unique by embedding the transaction id) are readable
  nowhere, and no per-file commit carries its transaction id.

The simulation is deterministic per drawn program, so every failing example
Hypothesis shrinks to is replayable as-is.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.common.errors import (
    LockHeldError,
    TransactionAbortedError,
    TransactionConflictError,
)
from repro.common.types import Permission
from repro.core.deployment import SCFSDeployment
from repro.scenarios.invariants import (
    check_serializability,
    check_version_linearizability,
)
from repro.scenarios.trace import TraceRecorder

FILES = ("/shared/f0", "/shared/f1", "/shared/f2")

#: One drawn step: (agent index, op kind, file index, payload tag).
#: ``txn`` reads a 2-file window and rewrites it; ``write``/``read`` are the
#: plain per-file paths racing the transactions.
_steps = st.lists(
    st.tuples(st.integers(0, 3), st.sampled_from(("txn", "write", "read")),
              st.integers(0, len(FILES) - 1), st.integers(0, 255)),
    min_size=1, max_size=24,
)


def _build(agent_count: int, recorder: TraceRecorder):
    deployment = SCFSDeployment.for_variant("SCFS-CoC-NB", seed=7)
    mounts = [deployment.create_agent(f"agent{i}", events=recorder.record)
              for i in range(agent_count)]
    owner = mounts[0]
    owner.mkdir("/shared", shared=True)
    for path in FILES:
        owner.write_file(path, b"seed:" + path.encode(), shared=True)
        for other in mounts[1:]:
            owner.setfacl(path, other.user, Permission.READ_WRITE)
    deployment.drain(2.0)
    return deployment, mounts


def _run_program(agent_count: int, steps) -> TraceRecorder:
    recorder = TraceRecorder()
    deployment, mounts = _build(agent_count, recorder)
    for agent_index, kind, file_index, tag in steps:
        fs = mounts[agent_index % agent_count]
        path = FILES[file_index]
        window = [path, FILES[(file_index + 1) % len(FILES)]]
        try:
            if kind == "txn":
                txn = fs.begin_transaction()
                # The txn id makes every staged payload globally unique: if
                # these bytes are ever readable, *this* transaction leaked.
                staged = {p: f"{txn.txn_id}:{tag}:{p}".encode() for p in window}
                try:
                    for p in window:
                        txn.read(p)
                    for p in window:
                        txn.write(p, staged[p])
                    txn.commit()
                except TransactionConflictError:
                    for p in window:
                        assert fs.read_file(p) != staged[p], (
                            f"aborted {txn.txn_id} leaked its write to {p}")
            elif kind == "write":
                fs.write_file(path, bytes([tag]) * 4, shared=True)
            else:
                fs.read_file(path)
        except (LockHeldError, TransactionAbortedError):
            pass
        deployment.sim.advance(0.05 * (tag % 3))
    deployment.drain(5.0)
    return recorder


@settings(max_examples=25, deadline=None)
@given(agent_count=st.integers(2, 4), steps=_steps)
def test_committed_histories_are_serializable(agent_count, steps) -> None:
    recorder = _run_program(agent_count, steps)
    assert check_serializability(recorder) == []
    assert check_version_linearizability(recorder) == []


@settings(max_examples=25, deadline=None)
@given(agent_count=st.integers(2, 4), steps=_steps)
def test_aborts_leave_no_visible_partial_state(agent_count, steps) -> None:
    """Beyond the read-back checks inside the program: no per-file commit is
    tagged with an aborted transaction's id, and every abort recorded the
    write set it dropped."""
    recorder = _run_program(agent_count, steps)
    aborted_ids = {e.get("txn") for e in recorder.by_kind("txn_abort")}
    committed_ids = {e.get("txn") for e in recorder.by_kind("txn_commit")}
    assert not aborted_ids & committed_ids
    for event in recorder.by_kind("commit"):
        txn_id = event.get("txn")
        assert txn_id is None or txn_id not in aborted_ids, (
            f"commit event anchored by aborted transaction {txn_id}")
