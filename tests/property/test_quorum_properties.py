"""Property-based tests of the quorum-system abstraction.

* every valid weighted system upholds the dissemination-quorum laws: any two
  quorums intersect in a set too heavy to be entirely faulty, certificates
  never fit inside a tolerated fault set, and a quorum survives every
  tolerated fault set (availability);
* the planner's primary stage always satisfies the quorum predicate it was
  planned for, never contains a suspected cloud unless it loudly reverted,
  and never beats the true cost×latency optimum among minimal quorums;
* threshold systems agree with the bare-integer counts they generalize.
"""

import itertools
from fractions import Fraction

from hypothesis import assume, given, settings, strategies as st

from repro.clouds.health import CloudHealthTracker, QuorumPlanner, SuspicionPolicy
from repro.clouds.quorums import (
    CountQuorum,
    ThresholdQuorumSystem,
    WeightedQuorumSystem,
    minimal_quorums,
)

NAMES = ("c0", "c1", "c2", "c3", "c4", "c5", "c6")

#: Weights drawn from a small grid keeps the subset-sum structure interesting
#: (ties, exactly-achievable budgets) without float-noise flakiness.
weight_values = st.sampled_from((0.5, 1.0, 1.2, 1.5, 2.0))


@st.composite
def weighted_systems(draw):
    """A *valid* weighted quorum system over 4–7 providers."""
    count = draw(st.integers(min_value=4, max_value=7))
    universe = NAMES[:count]
    weights = tuple((name, draw(weight_values)) for name in universe)
    total = sum(weight for _, weight in weights)
    budget = draw(st.sampled_from((0.5, 1.0, 1.2, 1.5, 2.0)))
    system = WeightedQuorumSystem(universe=universe, weights=weights,
                                  fault_budget=budget)
    try:
        system.validate()
    except ValueError:
        assume(False)
    return system


def fault_sets_of(system: WeightedQuorumSystem):
    """Every tolerated fault set: subsets of total weight within the budget.

    Exact sums, matching the implementation: float accumulation would
    misclassify fault sets whose weight lands exactly on the budget.
    """
    table = {name: Fraction(weight) for name, weight in system.weights}
    budget = Fraction(system.fault_budget)
    for size in range(len(system.universe) + 1):
        for combo in itertools.combinations(system.universe, size):
            if sum((table[name] for name in combo), start=Fraction(0)) <= budget:
                yield set(combo)


class TestWeightedSystemLaws:
    @settings(max_examples=60, deadline=None)
    @given(system=weighted_systems())
    def test_quorum_intersections_survive_every_fault_set(self, system):
        quorums = list(minimal_quorums(system.universe, system.quorum()))
        assert quorums, "a valid system must have at least one quorum"
        faults = list(fault_sets_of(system))
        for first, second in itertools.combinations_with_replacement(quorums, 2):
            overlap = set(first) & set(second)
            for fault_set in faults:
                assert overlap - fault_set, (
                    f"quorums {first} and {second} intersect entirely inside "
                    f"tolerated fault set {sorted(fault_set)}")

    @settings(max_examples=60, deadline=None)
    @given(system=weighted_systems())
    def test_certificates_never_fit_inside_a_fault_set(self, system):
        certificate = system.certificate()
        for fault_set in fault_sets_of(system):
            assert not certificate.satisfied_by(tuple(fault_set)), (
                f"fault set {sorted(fault_set)} certifies on its own")

    @settings(max_examples=60, deadline=None)
    @given(system=weighted_systems())
    def test_a_quorum_survives_every_fault_set(self, system):
        for fault_set in fault_sets_of(system):
            survivors = [name for name in system.universe if name not in fault_set]
            assert system.satisfied_by(survivors), (
                f"no quorum survives tolerated fault set {sorted(fault_set)}")


class TestPlannerProperties:
    @settings(max_examples=80, deadline=None)
    @given(
        system=weighted_systems(),
        latencies=st.lists(st.floats(0.01, 2.0), min_size=7, max_size=7),
        costs=st.lists(st.floats(0.001, 1.0), min_size=7, max_size=7),
        suspected_mask=st.integers(min_value=0, max_value=127),
    )
    def test_planned_primary_satisfies_the_quorum_predicate(
            self, system, latencies, costs, suspected_mask):
        latency = dict(zip(NAMES, latencies, strict=True))
        cost = dict(zip(NAMES, costs, strict=True))
        tracker = CloudHealthTracker(SuspicionPolicy(threshold=1))
        suspected = {name for i, name in enumerate(system.universe)
                     if suspected_mask & (1 << i)}
        for name in suspected:
            tracker.observe(name, succeeded=False, latency=0.1, now=0.0)
        planner = QuorumPlanner(
            latency_of=lambda c, kind, payload: latency[c],
            cost_of=lambda c, kind, payload: cost[c],
            tracker=tracker,
        )
        plan = planner.plan(system.universe, system.quorum(), "object_get", 0)
        # The chosen primary is always a real quorum of the system.
        assert system.satisfied_by(plan.primary)
        # Primary + fallback partition the candidates.
        assert sorted(plan.primary + plan.fallback) == sorted(system.universe)
        if not plan.reverted:
            # Without a revert, no suspected cloud rides in the primary stage.
            assert not (set(plan.primary) & suspected)
        else:
            # A revert only happens when the unsuspected clouds alone cannot
            # form a quorum.
            unsuspected = [n for n in system.universe if n not in suspected]
            assert not system.satisfied_by(unsuspected)

    @settings(max_examples=60, deadline=None)
    @given(
        system=weighted_systems(),
        latencies=st.lists(st.floats(0.01, 2.0), min_size=7, max_size=7),
        costs=st.lists(st.floats(0.001, 1.0), min_size=7, max_size=7),
    )
    def test_planner_matches_the_exhaustive_optimum(self, system, latencies, costs):
        latency = dict(zip(NAMES, latencies, strict=True))
        cost = dict(zip(NAMES, costs, strict=True))
        planner = QuorumPlanner(
            latency_of=lambda c, kind, payload: latency[c],
            cost_of=lambda c, kind, payload: cost[c],
        )
        plan = planner.plan(system.universe, system.quorum(), "object_get", 0)
        best = min(
            sum(cost[c] for c in members) * max(latency[c] for c in members)
            for members in minimal_quorums(system.universe, system.quorum())
        )
        achieved = (sum(cost[c] for c in plan.primary)
                    * max(latency[c] for c in plan.primary))
        assert achieved <= best * (1.0 + 1e-9)


class TestThresholdAgreement:
    @settings(max_examples=40, deadline=None)
    @given(f=st.integers(min_value=0, max_value=2),
           extra=st.integers(min_value=0, max_value=3),
           mask=st.integers(min_value=0, max_value=1023))
    def test_threshold_system_agrees_with_bare_counts(self, f, extra, mask):
        n = 3 * f + 1 + extra
        universe = tuple(f"c{i}" for i in range(n))
        system = ThresholdQuorumSystem(universe=universe, f=f)
        system.validate()
        responders = [name for i, name in enumerate(universe) if mask & (1 << i)]
        assert system.satisfied_by(responders) == CountQuorum(n - f).satisfied_by(responders)
        assert system.certifies(responders) == CountQuorum(f + 1).satisfied_by(responders)
