"""Property-based tests (hypothesis) for the coding/crypto substrate.

These check algebraic invariants that must hold for *any* input, not just the
hand-picked cases of the unit tests: GF(256) field axioms, erasure-coding
round trips through arbitrary block subsets, secret-sharing reconstruction and
authenticated-encryption round trips.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.crypto import gf256
from repro.crypto.cipher import SymmetricCipher, generate_key
from repro.crypto.erasure import ErasureCoder
from repro.crypto.hashing import content_digest
from repro.crypto.secret_sharing import combine_secret, split_secret

field_elements = st.integers(min_value=0, max_value=255)
nonzero_elements = st.integers(min_value=1, max_value=255)


class TestGF256Properties:
    @given(field_elements, field_elements)
    def test_multiplication_is_commutative(self, a, b):
        assert gf256.gf_mul(a, b) == gf256.gf_mul(b, a)

    @given(field_elements, field_elements, field_elements)
    def test_multiplication_is_associative(self, a, b, c):
        left = gf256.gf_mul(gf256.gf_mul(a, b), c)
        right = gf256.gf_mul(a, gf256.gf_mul(b, c))
        assert left == right

    @given(field_elements, field_elements, field_elements)
    def test_multiplication_distributes_over_addition(self, a, b, c):
        left = gf256.gf_mul(a, b ^ c)
        right = gf256.gf_mul(a, b) ^ gf256.gf_mul(a, c)
        assert left == right

    @given(nonzero_elements)
    def test_every_nonzero_element_has_an_inverse(self, a):
        assert gf256.gf_mul(a, gf256.gf_inv(a)) == 1

    @given(field_elements, nonzero_elements)
    def test_division_inverts_multiplication(self, a, b):
        assert gf256.gf_div(gf256.gf_mul(a, b), b) == a

    @given(field_elements)
    def test_one_is_multiplicative_identity(self, a):
        assert gf256.gf_mul(a, 1) == a

    @given(nonzero_elements, st.integers(min_value=0, max_value=300))
    def test_pow_matches_iterated_multiplication(self, a, exponent):
        expected = 1
        for _ in range(exponent):
            expected = gf256.gf_mul(expected, a)
        assert gf256.gf_pow(a, exponent) == expected


class TestErasureCodingProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        data=st.binary(min_size=0, max_size=5000),
        params=st.sampled_from([(4, 2), (4, 3), (6, 3), (7, 5)]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_any_k_of_n_blocks_reconstruct_the_data(self, data, params, seed):
        n, k = params
        coder = ErasureCoder(n, k)
        blocks = coder.encode(data)
        chosen = random.Random(seed).sample(blocks, k)
        assert coder.decode(chosen) == data

    @settings(max_examples=30, deadline=None)
    @given(data=st.binary(min_size=1, max_size=2000))
    def test_total_storage_is_n_over_k_of_the_payload(self, data):
        coder = ErasureCoder(4, 2)
        blocks = coder.encode(data)
        total = sum(len(b.payload) for b in blocks)
        # Framing adds a constant 10-byte header before the n/k expansion.
        assert total <= (len(data) + 16) * coder.storage_overhead() + coder.n
        assert total >= len(data) * coder.storage_overhead() * 0.9


class TestSecretSharingProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        secret=st.binary(min_size=1, max_size=64),
        params=st.sampled_from([(4, 2), (5, 3), (7, 4)]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_any_t_of_n_shares_reconstruct_the_secret(self, secret, params, seed):
        n, t = params
        rng = random.Random(seed)
        shares = split_secret(secret, n, t, rng)
        chosen = rng.sample(shares, t)
        assert combine_secret(chosen, t) == secret

    @settings(max_examples=30, deadline=None)
    @given(secret=st.binary(min_size=16, max_size=32), seed=st.integers(0, 2**16))
    def test_shares_differ_from_the_secret(self, secret, seed):
        shares = split_secret(secret, 4, 2, random.Random(seed))
        assert all(share.data != secret or set(secret) == {0} for share in shares[1:])


class TestCipherProperties:
    @settings(max_examples=50, deadline=None)
    @given(data=st.binary(min_size=0, max_size=5000), seed=st.integers(0, 2**16))
    def test_decrypt_inverts_encrypt(self, data, seed):
        rng = random.Random(seed)
        cipher = SymmetricCipher(generate_key(rng))
        assert cipher.decrypt(cipher.encrypt(data, rng)) == data

    @settings(max_examples=50, deadline=None)
    @given(data=st.binary(min_size=1, max_size=1000), seed=st.integers(0, 2**16))
    def test_ciphertext_has_fixed_overhead(self, data, seed):
        rng = random.Random(seed)
        cipher = SymmetricCipher(generate_key(rng))
        assert len(cipher.encrypt(data, rng)) == len(data) + cipher.overhead()


class TestHashingProperties:
    @given(st.binary(max_size=4096), st.binary(max_size=4096))
    def test_equal_digests_imply_equal_data_in_practice(self, a, b):
        if content_digest(a) == content_digest(b):
            assert a == b

    @given(st.binary(max_size=4096))
    def test_digest_is_stable(self, data):
        assert content_digest(data) == content_digest(bytes(data))
