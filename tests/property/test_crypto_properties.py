"""Property-based tests (hypothesis) for the coding/crypto substrate.

These check algebraic invariants that must hold for *any* input, not just the
hand-picked cases of the unit tests: GF(256) field axioms, erasure-coding
round trips through arbitrary block subsets, secret-sharing reconstruction and
authenticated-encryption round trips.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import erasure, gf256
from repro.crypto.cipher import SymmetricCipher, generate_key
from repro.crypto.erasure import ErasureCoder
from repro.crypto.hashing import content_digest
from repro.crypto.secret_sharing import combine_secret, split_secret

field_elements = st.integers(min_value=0, max_value=255)
nonzero_elements = st.integers(min_value=1, max_value=255)


class TestGF256Properties:
    @given(field_elements, field_elements)
    def test_multiplication_is_commutative(self, a, b):
        assert gf256.gf_mul(a, b) == gf256.gf_mul(b, a)

    @given(field_elements, field_elements, field_elements)
    def test_multiplication_is_associative(self, a, b, c):
        left = gf256.gf_mul(gf256.gf_mul(a, b), c)
        right = gf256.gf_mul(a, gf256.gf_mul(b, c))
        assert left == right

    @given(field_elements, field_elements, field_elements)
    def test_multiplication_distributes_over_addition(self, a, b, c):
        left = gf256.gf_mul(a, b ^ c)
        right = gf256.gf_mul(a, b) ^ gf256.gf_mul(a, c)
        assert left == right

    @given(nonzero_elements)
    def test_every_nonzero_element_has_an_inverse(self, a):
        assert gf256.gf_mul(a, gf256.gf_inv(a)) == 1

    @given(field_elements, nonzero_elements)
    def test_division_inverts_multiplication(self, a, b):
        assert gf256.gf_div(gf256.gf_mul(a, b), b) == a

    @given(field_elements)
    def test_one_is_multiplicative_identity(self, a):
        assert gf256.gf_mul(a, 1) == a

    @given(nonzero_elements, st.integers(min_value=0, max_value=300))
    def test_pow_matches_iterated_multiplication(self, a, exponent):
        expected = 1
        for _ in range(exponent):
            expected = gf256.gf_mul(expected, a)
        assert gf256.gf_pow(a, exponent) == expected


def _reference_encode(coder: ErasureCoder, data: bytes) -> list[bytes]:
    """Erasure-encode ``data`` through the retained scalar matmul."""
    framed = erasure._HEADER.pack(erasure._MAGIC, len(data)) + data
    block_len = (len(framed) + coder.k - 1) // coder.k
    padded = framed.ljust(block_len * coder.k, b"\x00")
    blocks = np.frombuffer(padded, dtype=np.uint8).reshape(coder.k, block_len)
    coded = gf256._matmul_scalar(coder._matrix, blocks)
    return [coded[i].tobytes() for i in range(coder.n)]


def _reference_decode_framed(coder: ErasureCoder, subset) -> bytes:
    """Recover the framed payload from ``subset`` through the scalar matmul."""
    chosen = sorted(subset, key=lambda b: b.index)[: coder.k]
    submatrix = coder._matrix[[b.index for b in chosen]]
    inverse = gf256.invert_matrix(submatrix)
    stacked = np.stack([np.frombuffer(b.payload, dtype=np.uint8) for b in chosen])
    return gf256._matmul_scalar(inverse, stacked).reshape(-1).tobytes()


class TestVectorizedAgainstScalarReference:
    """The vectorised hot path must agree byte-for-byte with `_matmul_scalar`."""

    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=12),
        cols=st.integers(min_value=1, max_value=12),
        length=st.integers(min_value=0, max_value=600),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_matmul_agrees_with_scalar_reference(self, rows, cols, length, seed):
        # rows*cols spans both matmul strategies (accumulate and 3-D gather).
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)
        blocks = rng.integers(0, 256, size=(cols, length), dtype=np.uint8)
        assert np.array_equal(gf256.matmul(matrix, blocks),
                              gf256._matmul_scalar(matrix, blocks))

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.one_of(
            st.sampled_from([b"", b"\x00", b"x"]),  # 0, 1 byte edge cases
            st.binary(min_size=0, max_size=3000),
        ),
        params=st.sampled_from([(4, 2), (4, 3), (5, 5), (6, 3), (7, 5)]),
    )
    def test_encode_agrees_with_scalar_reference(self, data, params):
        # Payload sizes include 0, 1 and lengths that are no multiple of k.
        n, k = params
        coder = ErasureCoder(n, k)
        payloads = [b.payload for b in coder.encode(data)]
        assert payloads == _reference_encode(coder, data)

    @settings(max_examples=60, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=8),
        cols=st.integers(min_value=1, max_value=8),
        # Lengths straddle every alignment case of the nibble kernel: empty,
        # odd (scalar tail byte), non-multiples of 8 (uint16 accumulation
        # lanes), and multiples of 8 (uint64 lanes).
        length=st.one_of(st.sampled_from([0, 1, 2, 7, 8, 9, 15, 16, 17]),
                         st.integers(min_value=0, max_value=500)),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        sprinkle_edge_coeffs=st.booleans(),
    )
    def test_nibble_kernel_agrees_with_scalar_reference(
            self, rows, cols, length, seed, sprinkle_edge_coeffs):
        # The production heuristic only routes blocks >= 32 KiB through the
        # nibble-split kernel; dropping the threshold to 1 byte lets
        # hypothesis drive the same kernel over small shapes cheaply.
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)
        if sprinkle_edge_coeffs:
            # Zero and one coefficients take dedicated skip/XOR-copy paths.
            mask = rng.integers(0, 3, size=(rows, cols))
            matrix[mask == 0] = 0
            matrix[mask == 1] = 1
        blocks = rng.integers(0, 256, size=(cols, length), dtype=np.uint8)
        expected = gf256._matmul_scalar(matrix, blocks)
        saved = gf256._NIBBLE_MIN_BYTES
        gf256._NIBBLE_MIN_BYTES = 1
        try:
            assert np.array_equal(gf256.matmul(matrix, blocks), expected)
            out = np.full((rows, length), 0xCD, dtype=np.uint8)
            assert np.array_equal(gf256.matmul(matrix, blocks, out=out),
                                  expected)
            # Strided views (the stripe encoder's shape): rows stay
            # contiguous, the 2-D arrays do not.
            backing_in = np.zeros((cols, length + 32), dtype=np.uint8)
            backing_in[:, 16:16 + length] = blocks
            backing_out = np.zeros((rows, length + 32), dtype=np.uint8)
            strided_out = backing_out[:, 16:16 + length]
            gf256.matmul(matrix, backing_in[:, 16:16 + length],
                         out=strided_out)
            assert np.array_equal(strided_out, expected)
        finally:
            gf256._NIBBLE_MIN_BYTES = saved

    @settings(max_examples=20, deadline=None)
    @given(
        length=st.integers(min_value=0, max_value=300),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_out_aliasing_an_input_is_rejected_loudly(self, length, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 256, size=(2, 2), dtype=np.uint8)
        blocks = rng.integers(0, 256, size=(2, length), dtype=np.uint8)
        saved = gf256._NIBBLE_MIN_BYTES
        gf256._NIBBLE_MIN_BYTES = 1
        try:
            if length:  # zero-length arrays share no memory
                with pytest.raises(ValueError, match="alias"):
                    gf256.matmul(matrix, blocks, out=blocks)
        finally:
            gf256._NIBBLE_MIN_BYTES = saved

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.binary(min_size=0, max_size=2000),
        params=st.sampled_from([(4, 2), (4, 3), (6, 3), (7, 5)]),
        stripe_bytes=st.sampled_from([1, 3, 8, 100, 1 << 17]),
    )
    def test_streaming_encode_agrees_with_scalar_reference(
            self, data, params, stripe_bytes):
        n, k = params
        coder = ErasureCoder(n, k)
        buffer = coder.encode_into(data, stripe_bytes=stripe_bytes)
        assert [row.tobytes() for row in buffer] == _reference_encode(coder, data)

    @settings(max_examples=30, deadline=None)
    @given(
        data=st.binary(min_size=0, max_size=2000),
        params=st.sampled_from([(4, 2), (4, 3), (6, 3), (7, 5)]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_decode_agrees_with_scalar_reference(self, data, params, seed):
        # Random erasure patterns: any surviving k-subset must round-trip and
        # match the scalar reference's framed reconstruction byte-for-byte.
        n, k = params
        coder = ErasureCoder(n, k)
        blocks = coder.encode(data)
        subset = random.Random(seed).sample(blocks, k)
        assert coder.decode(subset) == data
        reference_framed = _reference_decode_framed(coder, subset)
        chosen = sorted(subset, key=lambda b: b.index)[:k]
        block_len = len(chosen[0].payload)
        if all(b.index < k for b in chosen):
            vectorised_framed = b"".join(b.payload for b in chosen)
        else:
            stacked = np.stack([np.frombuffer(b.payload, dtype=np.uint8) for b in chosen])
            vectorised_framed = gf256.matmul(
                coder._decode_matrix(tuple(b.index for b in chosen)), stacked
            ).reshape(-1).tobytes()
        assert vectorised_framed[: coder.k * block_len] == reference_framed[: coder.k * block_len]


class TestErasureCodingProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        data=st.binary(min_size=0, max_size=5000),
        params=st.sampled_from([(4, 2), (4, 3), (6, 3), (7, 5)]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_any_k_of_n_blocks_reconstruct_the_data(self, data, params, seed):
        n, k = params
        coder = ErasureCoder(n, k)
        blocks = coder.encode(data)
        chosen = random.Random(seed).sample(blocks, k)
        assert coder.decode(chosen) == data

    @settings(max_examples=30, deadline=None)
    @given(data=st.binary(min_size=1, max_size=2000))
    def test_total_storage_is_n_over_k_of_the_payload(self, data):
        coder = ErasureCoder(4, 2)
        blocks = coder.encode(data)
        total = sum(len(b.payload) for b in blocks)
        # Framing adds a constant 10-byte header before the n/k expansion.
        assert total <= (len(data) + 16) * coder.storage_overhead() + coder.n
        assert total >= len(data) * coder.storage_overhead() * 0.9


class TestSecretSharingProperties:
    @settings(max_examples=50, deadline=None)
    @given(
        secret=st.binary(min_size=1, max_size=64),
        params=st.sampled_from([(4, 2), (5, 3), (7, 4)]),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_any_t_of_n_shares_reconstruct_the_secret(self, secret, params, seed):
        n, t = params
        rng = random.Random(seed)
        shares = split_secret(secret, n, t, rng)
        chosen = rng.sample(shares, t)
        assert combine_secret(chosen, t) == secret

    @settings(max_examples=30, deadline=None)
    @given(secret=st.binary(min_size=16, max_size=32), seed=st.integers(0, 2**16))
    def test_shares_differ_from_the_secret(self, secret, seed):
        shares = split_secret(secret, 4, 2, random.Random(seed))
        assert all(share.data != secret or set(secret) == {0} for share in shares[1:])


class TestCipherProperties:
    @settings(max_examples=50, deadline=None)
    @given(data=st.binary(min_size=0, max_size=5000), seed=st.integers(0, 2**16))
    def test_decrypt_inverts_encrypt(self, data, seed):
        rng = random.Random(seed)
        cipher = SymmetricCipher(generate_key(rng))
        assert cipher.decrypt(cipher.encrypt(data, rng)) == data

    @settings(max_examples=50, deadline=None)
    @given(data=st.binary(min_size=1, max_size=1000), seed=st.integers(0, 2**16))
    def test_ciphertext_has_fixed_overhead(self, data, seed):
        rng = random.Random(seed)
        cipher = SymmetricCipher(generate_key(rng))
        assert len(cipher.encrypt(data, rng)) == len(data) + cipher.overhead()


class TestHashingProperties:
    @given(st.binary(max_size=4096), st.binary(max_size=4096))
    def test_equal_digests_imply_equal_data_in_practice(self, a, b):
        if content_digest(a) == content_digest(b):
            assert a == b

    @given(st.binary(max_size=4096))
    def test_digest_is_stable(self, data):
        assert content_digest(data) == content_digest(bytes(data))
