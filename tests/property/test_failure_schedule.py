"""Property-based tests (hypothesis) for :class:`FailureSchedule`.

The scenario engine drives the fault machinery through overlapping,
runner-composed windows, so the schedule's algebra must be exact: the active
set is the union of the covering windows, degradation factors compound
multiplicatively, ``next_transition`` walks every boundary monotonically
without skipping one, and ``add_outage`` round-trips through ``active_at``.
"""

from __future__ import annotations

import math

from hypothesis import given, strategies as st

from repro.simenv.failures import FailureSchedule, FaultKind, FaultWindow

_KINDS = st.sampled_from(list(FaultKind))
_TIMES = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
_FACTORS = st.floats(min_value=1.0, max_value=100.0, allow_nan=False,
                     allow_infinity=False)


@st.composite
def windows(draw):
    kind = draw(_KINDS)
    start = draw(_TIMES)
    length = draw(st.floats(min_value=1e-6, max_value=1e5, allow_nan=False))
    end = start + length if draw(st.booleans()) else math.inf
    factor = draw(_FACTORS)
    return FaultWindow(kind, start=start, end=end, factor=factor)


@st.composite
def schedules(draw):
    return FailureSchedule(windows=draw(st.lists(windows(), max_size=8)))


# ---------------------------------------------------------------------------
# active set composition
# ---------------------------------------------------------------------------


@given(schedules(), _TIMES)
def test_active_set_is_the_union_of_covering_windows(schedule, now):
    expected = {w.kind for w in schedule.windows if w.start <= now < w.end}
    assert schedule.active(now) == expected
    for kind in FaultKind:
        assert schedule.is_active(kind, now) == (kind in expected)


@given(schedules(), _TIMES)
def test_overlapping_degraded_windows_compound_multiplicatively(schedule, now):
    expected = 1.0
    for window in schedule.windows:
        if window.kind is FaultKind.DEGRADED and window.active_at(now):
            expected *= window.factor
    assert math.isclose(schedule.degradation(now), expected, rel_tol=1e-12)


@given(schedules())
def test_clear_removes_everything(schedule):
    schedule.clear()
    assert schedule.windows == []
    assert schedule.active(0.0) == set()
    assert schedule.degradation(0.0) == 1.0


# ---------------------------------------------------------------------------
# next_transition: monotone, complete, and faithful to the active set
# ---------------------------------------------------------------------------


@given(schedules(), _TIMES)
def test_next_transition_is_strictly_in_the_future(schedule, now):
    nxt = schedule.next_transition(now)
    if nxt is not None:
        assert nxt > now
        assert math.isfinite(nxt)


@given(schedules())
def test_next_transition_walk_visits_every_finite_boundary(schedule):
    boundaries = sorted({
        t for w in schedule.windows for t in (w.start, w.end)
        if math.isfinite(t) and t > 0.0
    })
    visited = []
    now = 0.0
    for _ in range(len(boundaries) + 1):
        nxt = schedule.next_transition(now)
        if nxt is None:
            break
        visited.append(nxt)
        now = nxt
    assert visited == boundaries  # monotone, exhaustive, no boundary skipped


@given(schedules())
def test_active_set_is_constant_between_transitions(schedule):
    now = 0.0
    for _ in range(20):
        nxt = schedule.next_transition(now)
        if nxt is None:
            break
        quarter = now + (nxt - now) * 0.25
        mid = now + (nxt - now) * 0.5
        if quarter != now and quarter != nxt and mid != nxt:
            assert schedule.active(quarter) == schedule.active(mid)
        now = nxt


# ---------------------------------------------------------------------------
# add_outage round trip
# ---------------------------------------------------------------------------


@given(_KINDS, _TIMES,
       st.floats(min_value=1e-6, max_value=1e5, allow_nan=False), _FACTORS)
def test_add_outage_round_trips_through_active_at(kind, start, duration, factor):
    schedule = FailureSchedule()
    if kind is FaultKind.DEGRADED:
        schedule.add_outage(start, duration, kind=kind, factor=factor)
    else:
        schedule.add_outage(start, duration, kind=kind)
    end = start + duration
    assert schedule.is_active(kind, start)
    assert schedule.is_active(kind, start + duration * 0.5)
    assert not schedule.is_active(kind, end)  # windows are end-exclusive
    if start > 0:
        assert not schedule.is_active(kind, math.nextafter(start, -math.inf))
    assert not schedule.is_active(kind, math.nextafter(end, math.inf))
    # The outage contributes exactly its two boundaries to the walk.
    assert schedule.next_transition(0.0) == (start if start > 0 else end)


@given(_TIMES, st.floats(min_value=1e-6, max_value=1e5, allow_nan=False))
def test_add_outage_rejects_nonpositive_durations(start, duration):
    schedule = FailureSchedule()
    try:
        schedule.add_outage(start, -duration)
    except ValueError:
        pass
    else:  # pragma: no cover - the guard must fire
        raise AssertionError("negative duration accepted")
    assert schedule.windows == []
