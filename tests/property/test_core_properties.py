"""Property-based tests for core data structures and protocols.

* the LRU caches never exceed their capacity and never corrupt values;
* the consistency-anchor composition always returns the latest completed
  write, for arbitrary interleavings of writes and reads of many objects;
* the DepSpace tuple space behaves like a simple model (a multiset of tuples)
  under arbitrary operation sequences;
* the SCFS file system agrees with a plain in-memory dictionary model under
  arbitrary sequences of whole-file operations.
"""

from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.clouds.providers import make_provider
from repro.common.errors import FileExistsErrorFS, FileNotFoundErrorFS
from repro.common.types import Principal
from repro.core.backend import SingleCloudBackend
from repro.core.cache import LRUByteCache
from repro.core.consistency import AnchoredStorage, DictConsistencyAnchor
from repro.core.deployment import SCFSDeployment
from repro.coordination.tuplespace import ANY, DepSpace
from repro.simenv.clock import SimClock
from repro.simenv.environment import Simulation


class TestLRUCacheProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=64),
        operations=st.lists(
            st.tuples(st.sampled_from("pgr"), st.integers(0, 9), st.binary(max_size=16)),
            max_size=80,
        ),
    )
    def test_capacity_never_exceeded_and_values_never_corrupted(self, capacity, operations):
        cache = LRUByteCache(capacity, SimClock())
        model: dict[str, bytes] = {}
        for op, key_index, value in operations:
            key = f"k{key_index}"
            if op == "p":
                cache.put(key, value)
                if len(value) <= capacity:
                    model[key] = value
            elif op == "g":
                cached = cache.get(key)
                if cached is not None:
                    assert cached == model.get(key)
            else:
                cache.remove(key)
                model.pop(key, None)
            assert cache.used_bytes <= capacity
            assert cache.used_bytes == sum(len(v) for k, v in
                                           ((k, cache._entries[k]) for k in cache._entries))


class TestConsistencyAnchorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        script=st.lists(
            st.tuples(st.sampled_from("wr"), st.integers(0, 3), st.binary(min_size=1, max_size=64)),
            min_size=1, max_size=25,
        )
    )
    def test_reads_always_return_the_latest_completed_write(self, script):
        sim = Simulation(seed=7)
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        anchored = AnchoredStorage(sim, DictConsistencyAnchor(),
                                   SingleCloudBackend(sim, store, Principal("alice")),
                                   retry_interval=0.5)
        latest: dict[str, bytes] = {}
        for op, object_index, payload in script:
            object_id = f"object-{object_index}"
            if op == "w":
                anchored.write(object_id, payload)
                latest[object_id] = payload
            else:
                observed = anchored.read(object_id)
                assert observed == latest.get(object_id)


class TestDepSpaceModelProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        script=st.lists(
            st.tuples(st.sampled_from(["out", "inp", "rdp", "cas"]),
                      st.integers(0, 4), st.integers(0, 4)),
            max_size=60,
        )
    )
    def test_tuple_space_matches_a_multiset_model(self, script):
        space = DepSpace()
        model: list[tuple] = []
        for op, key, value in script:
            fields = ("entry", f"k{key}", value)
            template = ("entry", f"k{key}", ANY)
            if op == "out":
                space.out(fields, now=0.0)
                model.append(fields)
            elif op == "cas":
                inserted = space.cas(template, fields, now=0.0)
                model_has = any(t[1] == f"k{key}" for t in model)
                assert inserted == (not model_has)
                if inserted:
                    model.append(fields)
            elif op == "rdp":
                found = space.rdp(template, now=0.0)
                assert (found is not None) == any(t[1] == f"k{key}" for t in model)
            else:  # inp
                removed = space.inp(template, now=0.0)
                matching = [t for t in model if t[1] == f"k{key}"]
                assert (removed is not None) == bool(matching)
                if removed is not None:
                    model.remove(removed)
        assert space.total_tuples(now=0.0) == len(model)


class SCFSFileSystemModel(RuleBasedStateMachine):
    """Stateful test: SCFS behaves like a dict of path -> bytes.

    Whole-file writes, reads, deletes and renames on a single agent must agree
    with a trivial in-memory model regardless of the operation order, with
    background uploads drained at arbitrary points.
    """

    paths = st.sampled_from([f"/dir/file-{i}.dat" for i in range(4)])
    payloads = st.binary(min_size=0, max_size=256)

    @initialize()
    def setup(self):
        self.deployment = SCFSDeployment.for_variant("SCFS-AWS-NB", seed=99)
        self.fs = self.deployment.create_agent("alice")
        self.fs.mkdir("/dir")
        self.model: dict[str, bytes] = {}

    @rule(path=paths, data=payloads)
    def write(self, path, data):
        self.fs.write_file(path, data)
        self.model[path] = data

    @rule(path=paths)
    def read(self, path):
        if path in self.model:
            assert self.fs.read_file(path) == self.model[path]
        else:
            try:
                self.fs.read_file(path)
                assert False, "read of a missing file must fail"
            except FileNotFoundErrorFS:
                pass

    @rule(path=paths)
    def delete(self, path):
        if path in self.model:
            self.fs.unlink(path)
            del self.model[path]
        else:
            try:
                self.fs.unlink(path)
                assert False, "unlink of a missing file must fail"
            except FileNotFoundErrorFS:
                pass

    @rule(src_path=paths, dst_path=paths)
    def rename(self, src_path, dst_path):
        if src_path == dst_path:
            return
        try:
            self.fs.rename(src_path, dst_path)
        except FileNotFoundErrorFS:
            assert src_path not in self.model
            return
        except FileExistsErrorFS:
            assert dst_path in self.model
            return
        assert src_path in self.model and dst_path not in self.model
        self.model[dst_path] = self.model.pop(src_path)

    @rule()
    def drain_background_work(self):
        self.deployment.drain(0.5)

    @invariant()
    def directory_listing_matches_model(self):
        listed = set(self.fs.readdir("/dir"))
        expected = {path.rsplit("/", 1)[1] for path in self.model}
        assert listed == expected


SCFSFileSystemModel.TestCase.settings = settings(
    max_examples=12, stateful_step_count=20, deadline=None
)
TestSCFSAgainstDictModel = SCFSFileSystemModel.TestCase
