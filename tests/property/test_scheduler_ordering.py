"""Property-based tests (hypothesis) for the discrete-event scheduler.

The scenario engine's replay guarantee rests on one scheduling invariant:
tasks execute in ``(deadline, schedule order)`` — equal-deadline tasks run in
the order they were scheduled, no matter how the clock is driven there.  The
programs below interleave ``schedule``/``advance``/``run_until``/``step`` and
cancellation arbitrarily (with dyadic delays, so equal deadlines are *exact*
float collisions) and assert the executed order always equals the stable sort
of the surviving tasks.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.simenv.environment import Simulation

#: Dyadic delays: sums of these are exact in binary floating point, so two
#: tasks meant to collide on a deadline really do compare equal.
_DELAYS = st.sampled_from([0.0, 0.5, 0.5, 1.0, 1.0, 2.0, 4.0])
_STEPS = st.sampled_from([0.5, 1.0, 2.0])

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), _DELAYS),
        st.tuples(st.just("advance"), _STEPS),
        st.tuples(st.just("run_until"), _STEPS),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=63)),
        st.tuples(st.just("step"), st.just(None)),
    ),
    min_size=1, max_size=48,
)


@settings(max_examples=200, deadline=None)
@given(_OPS)
def test_equal_deadline_tasks_never_reorder(program) -> None:
    sim = Simulation(seed=0)
    executed: list[int] = []
    scheduled: list[dict] = []  # {"when", "seq", "handle"}

    for op, arg in program:
        if op == "schedule":
            seq = len(scheduled)
            handle = sim.schedule(arg, lambda seq=seq: executed.append(seq),
                                  name=f"task-{seq}")
            scheduled.append({"when": sim.now() + arg, "seq": seq,
                              "handle": handle, "cancelled": False})
        elif op == "advance":
            sim.advance(arg)
        elif op == "run_until":
            sim.run_until(sim.now() + arg)
        elif op == "cancel":
            if scheduled:
                entry = scheduled[arg % len(scheduled)]
                entry["handle"].cancel()
                # Cancelling an already-run task is a no-op.
                if entry["seq"] not in executed:
                    entry["cancelled"] = True
        elif op == "step":
            sim.step()

    sim.drain()

    survivors = [e for e in scheduled if not e["cancelled"]]
    expected = [e["seq"] for e in sorted(survivors, key=lambda e: (e["when"], e["seq"]))]
    assert executed == expected, (
        f"execution order {executed} != stable (deadline, schedule-order) "
        f"sort {expected}")


@settings(max_examples=100, deadline=None)
@given(st.lists(_DELAYS, min_size=1, max_size=16), _STEPS)
def test_run_until_matches_advance_for_equal_deadlines(delays, chunk) -> None:
    """Driving the clock with run_until in chunks executes the exact same
    order as one big advance (neither skips nor reorders due events)."""

    def run(drive) -> list[int]:
        sim = Simulation(seed=0)
        log: list[int] = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, lambda index=index: log.append(index))
        drive(sim)
        return log

    horizon = max(delays) + chunk

    def chunked(sim: Simulation) -> None:
        while sim.now() < horizon:
            sim.run_until(sim.now() + chunk)

    def single(sim: Simulation) -> None:
        sim.advance(horizon)

    assert run(chunked) == run(single)
