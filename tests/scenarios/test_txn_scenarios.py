"""Targeted scenario tests for the transactional mixes.

The generic sweep (``test_random_scenarios``) already runs every seed of the
``txn`` / ``txn-crash-restart`` / ``txn-partition`` mixes through all six
checkers; the tests here pin the *specific* behaviours those mixes exist to
exercise — transactions really commit and abort, crashed agents really lose
their ops and remount after the lease, partitions really cut a replica off —
so the sweep cannot silently degenerate into plain traffic.
"""

from __future__ import annotations

from dataclasses import replace

from repro.scenarios import run_scenario
from repro.scenarios.runner import ScenarioRunner
from repro.scenarios.spec import ScenarioSpec


def test_txn_mix_commits_and_aborts_transactions() -> None:
    result = run_scenario(11, mix="txn", agents=3, ops_per_agent=25)
    assert result.ok, "\n" + result.report()
    assert result.trace.count("txn_begin") > 0
    assert result.trace.count("txn_commit") > 0
    # Seed 11's interleaving produces real conflicts: the abort path (and its
    # retry loop) is exercised, not just the happy path.
    assert result.trace.count("txn_abort") >= 1
    # Multi-file atomicity: at least one committed txn anchored several files.
    assert any(len(e.get("writes", ())) >= 2
               for e in result.trace.by_kind("txn_commit"))


def test_txn_commit_events_carry_their_transaction() -> None:
    """Every committed transaction's per-file commits are tagged with its id
    (what the serializability checker folds into txn nodes)."""
    result = run_scenario(3, mix="txn", agents=3, ops_per_agent=20)
    assert result.ok, "\n" + result.report()
    committed = {e.get("txn") for e in result.trace.by_kind("txn_commit")}
    tagged = [e for e in result.trace.by_kind("commit")
              if e.get("txn") is not None]
    assert tagged, "no transactional per-file commits recorded"
    assert {e.get("txn") for e in tagged} <= committed


def test_crash_restart_mix_crashes_and_remounts_after_lease() -> None:
    result = run_scenario(11, mix="txn-crash-restart", agents=3, ops_per_agent=25)
    assert result.ok, "\n" + result.report()
    crashes = list(result.trace.by_kind("agent_crash"))
    restarts = list(result.trace.by_kind("agent_restart"))
    assert len(crashes) == 1 and len(restarts) == 1
    crash, restart = crashes[0], restarts[0]
    assert restart.agent == crash.agent
    # The remount happens only after the crashed session's leases expired.
    assert restart.time >= crash.time + crash.get("lease")
    # The victim really lost ops while down, and really resumed afterwards.
    assert result.stats.get("ops_skipped_crashed", 0) > 0
    resumed = [e for e in result.trace.by_kind("open", "close", "txn_begin")
               if e.agent == crash.agent and e.time > restart.time]
    assert resumed, "the restarted agent never issued another operation"


def test_crash_restart_never_forks_a_version() -> None:
    """The no-fork assertion, stated directly on the histories: across seeds,
    no (file, version) is ever anchored by two different commits."""
    for seed in (1, 6, 11, 17, 23):
        result = run_scenario(seed, mix="txn-crash-restart",
                              agents=3, ops_per_agent=20)
        assert result.ok, "\n" + result.report()
        seen: dict[tuple, tuple] = {}
        for event in result.trace.by_kind("commit"):
            key = (event.get("file_id"), event.get("version"))
            anchor = (event.agent, event.get("digest"))
            assert seen.setdefault(key, anchor) == anchor, (
                f"seed {seed}: version fork on {key}")


def test_partition_mix_partitions_a_minority_and_heals() -> None:
    result = run_scenario(11, mix="txn-partition", agents=3, ops_per_agent=25)
    assert result.ok, "\n" + result.report()
    partitions = [e for e in result.trace.by_kind("fault_start")
                  if e.get("fault") == "partition"]
    heals = [e for e in result.trace.by_kind("fault_end")
             if e.get("fault") == "partition"]
    assert len(partitions) == 2 and len(heals) == 2
    # Two *different* replicas, sequentially (minority partitions only).
    assert len({e.get("target") for e in partitions}) == 2
    # Commits keep landing while a replica is cut off: the 3-replica quorum
    # linearizes on without the minority.
    for start, end in zip(partitions, heals, strict=True):
        during = [e for e in result.trace.by_kind("commit")
                  if start.time <= e.time <= end.time]
        assert during, "no commit landed during a partition window"


def test_txn_mixes_run_event_driven_too() -> None:
    """The transactional ops and the crash/restart fault path work on the
    event-heap scheduler with the same determinism contract."""
    for mix in ("txn", "txn-crash-restart"):
        spec = replace(ScenarioSpec.generate(7, mix=mix, agents=3,
                                             ops_per_agent=15),
                       scheduling="event-driven")
        first = ScenarioRunner(spec).run()
        second = ScenarioRunner(spec).run()
        assert first.ok, "\n" + first.report()
        assert first.fingerprint == second.fingerprint
        assert first.trace.count("txn_commit") > 0
