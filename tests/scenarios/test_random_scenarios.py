"""Randomized multi-agent scenario sweep with Jepsen-style invariant checking.

Runs ``SCENARIO_SEEDS`` seeds (default 25) across the four fault mixes and
asserts that every run upholds the paper's guarantees: consistency-on-close,
write-lock mutual exclusion, durability/replication of every committed
version, and upload → metadata-update → unlock commit ordering.

On failure, the assertion message contains the exact command that reruns the
failing seed — and a same-seed rerun reproduces the trace byte for byte (see
``test_replay_is_byte_identical``).

Sizing knobs (environment):

* ``SCENARIO_SEEDS`` — number of seeds per mix (default 25);
* ``SCENARIO_OPS`` — workload operations per agent (default 10; the CI
  ``scenario-smoke`` job uses the defaults, which is the "fast mode" — one
  scenario runs in tens of milliseconds).
"""

from __future__ import annotations

import os

import pytest

from repro.scenarios import FAULT_MIXES, ScenarioSpec, run_scenario

SEEDS = range(1, 1 + int(os.environ.get("SCENARIO_SEEDS", "25")))
OPS_PER_AGENT = int(os.environ.get("SCENARIO_OPS", "10"))
AGENTS = 3


@pytest.mark.parametrize("mix", FAULT_MIXES)
@pytest.mark.parametrize("seed", SEEDS)
def test_invariants_hold(seed: int, mix: str) -> None:
    """Every seed of every fault mix upholds all four invariants."""
    result = run_scenario(seed, mix=mix, agents=AGENTS, ops_per_agent=OPS_PER_AGENT)
    assert result.ok, "\n" + result.report()


@pytest.mark.parametrize("mix", FAULT_MIXES)
def test_replay_is_byte_identical(mix: str) -> None:
    """Two same-seed runs produce the identical trace — every event, time,
    digest and quorum outcome (the repro-command guarantee)."""
    first = run_scenario(101, mix=mix, agents=AGENTS, ops_per_agent=OPS_PER_AGENT)
    second = run_scenario(101, mix=mix, agents=AGENTS, ops_per_agent=OPS_PER_AGENT)
    assert first.fingerprint == second.fingerprint
    assert first.trace.to_jsonl() == second.trace.to_jsonl()


@pytest.mark.parametrize("mix", [m for m in FAULT_MIXES if m != "fault-free"])
def test_faults_are_actually_injected(mix: str) -> None:
    """Faulty mixes really schedule fault windows over live traffic (the sweep
    must not silently degenerate to fault-free runs)."""
    result = run_scenario(11, mix=mix, agents=AGENTS, ops_per_agent=OPS_PER_AGENT)
    assert result.ok, "\n" + result.report()
    assert result.trace.count("fault_start") >= 1
    assert result.trace.count("fault_end") >= 1


def test_sweep_is_not_vacuous() -> None:
    """A scenario exercises the machinery the invariants reason about:
    contention-capable locking, commits, quorum calls and served reads."""
    result = run_scenario(5, mix="crash-hang", agents=AGENTS,
                          ops_per_agent=OPS_PER_AGENT)
    assert result.ok, "\n" + result.report()
    assert result.trace.count("lock") > 0
    assert result.trace.count("commit") > 0
    assert result.trace.count("quorum") > 0
    assert any(e.get("served") for e in result.trace.by_kind("open"))


def test_repro_command_names_the_seed() -> None:
    """The printed repro command pins the seed, mix and sizing."""
    spec = ScenarioSpec.generate(42, mix="crash-hang", agents=AGENTS,
                                 ops_per_agent=OPS_PER_AGENT)
    command = spec.repro_command()
    assert "--seed 42" in command
    assert "--mix crash-hang" in command
    assert "python -m repro.scenarios" in command


def test_degraded_outage_exercises_the_health_stack() -> None:
    """The degraded-outage mix runs with suspicion tracking enabled; across a
    handful of seeds the suspect list must actually trip (a cloud becomes
    SUSPECTED during the outage) — otherwise the mix is not testing PR 3."""
    saw_health_transition = False
    for seed in range(1, 9):
        result = run_scenario(seed, mix="degraded-outage", agents=AGENTS,
                              ops_per_agent=OPS_PER_AGENT)
        assert result.ok, "\n" + result.report()
        if result.trace.count("health") > 0:
            saw_health_transition = True
            break
    assert saw_health_transition
