"""The discrete-event scale path: event-driven scheduling, pooled namespaces,
pinned replay fingerprints.

The scale-out refactor (PR 6) must not disturb a single byte of the existing
lockstep traces — the golden fingerprints below were recorded before the
scheduler refactor and pin that guarantee.  The new event-driven mode has the
same determinism contract (same spec, same trace bytes) and runs under the
same four invariant checkers.
"""

from __future__ import annotations

import pytest

from repro.scenarios import FAULT_MIXES, ScenarioSpec, run_scenario
from repro.scenarios.runner import ScenarioRunner

#: Trace fingerprints of the seed-101 lockstep sweep (3 agents x 10 ops),
#: recorded at PR 4.  A change here means existing replay commands no longer
#: reproduce their traces — that is a breaking change, not a refactor.
GOLDEN_LOCKSTEP = {
    "fault-free": "a18a14e6ca22872bd2c5a13d35db8c420fb829d9b5ec714c42948071b37bc0d1",
    "crash-hang": "fda090321762f2602bda5a7d7a5a17027c64096861b364090f34ddbe10fedae6",
    "corrupt-byzantine": "17fce7b259e95635df43352455bf11c56be2d8ff112e0176f45cd422c3b387b8",
    "degraded-outage": "86299db26465e31ba786ee51b536ed18e98ada47c901eecb49a79a35430e971a",
    # Recorded at PR 8 together with the weighted-quorum mix itself.
    "weighted-byzantine": "acc0ae4d0ad0f353da3874040c787b7d0623f52d4f8e1c959fbc9acbc66d8de3",
    # Recorded at PR 9 together with the transactional mixes themselves.
    "txn": "8e4724dc4705bc5d476e8777445db5309318a1714efa06ece41ccbf4e9c9bf63",
    "txn-crash-restart": "b86da0ec3e0dc4be904bb5e86e2e2a3a143f39f1ae83672039b2591d87537cee",
    "txn-partition": "cc7b0d05fd604cb3ad9f997fa9313f5223f248da0b53353dcde4dd6cb7be7e99",
}


@pytest.mark.parametrize("mix", FAULT_MIXES)
def test_lockstep_fingerprints_are_pinned(mix: str) -> None:
    result = run_scenario(101, mix=mix, agents=3, ops_per_agent=10)
    assert result.fingerprint == GOLDEN_LOCKSTEP[mix], (
        f"lockstep replay fingerprint changed for {mix}: byte-identical "
        f"replay of pre-refactor traces is broken")


def _scale_spec(**overrides) -> ScenarioSpec:
    defaults = dict(seed=23, agents=20, files=200, ops_per_agent=4,
                    directories=8, partitions=2)
    defaults.update(overrides)
    return ScenarioSpec.generate_scale(**defaults)


def test_event_driven_replay_is_byte_identical() -> None:
    spec = _scale_spec()
    first = ScenarioRunner(spec).run()
    second = ScenarioRunner(spec).run()
    assert first.fingerprint == second.fingerprint
    assert first.trace.to_jsonl() == second.trace.to_jsonl()


def test_pooled_scale_run_upholds_all_invariants() -> None:
    result = ScenarioRunner(_scale_spec()).run()
    assert result.ok, "\n" + result.report()
    # The pool really was primed (one setup event, no per-file write traffic)
    # and the workload ran against it.
    setup = [e for e in result.trace.by_kind("setup_done")]
    assert len(setup) == 1 and setup[0].fields["files"] == 200
    assert result.stats["events"] > 0 and result.stats["quorum_calls"] > 0


def test_scale_spec_shape() -> None:
    spec = _scale_spec(agents=30, partitions=4)
    assert len(spec.agents) == 30
    assert spec.scheduling == "event-driven"
    assert spec.pooled and spec.partitions == 4
    assert spec.dispatch is not None and spec.dispatch.coalesce_instant
    # Generated agent names extend past the fixed roster without collisions.
    names = [a.name for a in spec.agents]
    assert len(set(names)) == 30
    config = spec.config()
    assert config.coordination_partitions == 4
    assert config.encrypt_data is False
    assert config.gc.enabled is False


def test_event_driven_mode_differs_from_lockstep_but_both_hold() -> None:
    base = dict(seed=31, mix="fault-free", agents=4, ops_per_agent=6)
    lockstep = run_scenario(**base)
    spec = ScenarioSpec.generate(**base)
    event_driven = ScenarioRunner(
        spec.__class__(**{**spec.__dict__, "scheduling": "event-driven"})).run()
    assert lockstep.ok and event_driven.ok
    # Different interleavings, same guarantees.
    assert lockstep.fingerprint != event_driven.fingerprint


def test_scale_spec_rejects_bad_sizing() -> None:
    with pytest.raises(ValueError):
        ScenarioSpec.generate_scale(seed=1, agents=0)
    with pytest.raises(ValueError):
        ScenarioSpec.generate_scale(seed=1, files=0)
    with pytest.raises(ValueError):
        ScenarioSpec.generate_scale(seed=1, directories=0)
