"""Unit tests for the coordination substrate: tuple space, znodes, replication, locks."""

import pytest

from repro.common.errors import ConflictError, QuorumNotReachedError, TupleNotFoundError
from repro.common.errors import LockHeldError, NotLockOwnerError
from repro.common.types import Permission
from repro.coordination.adapters import (
    DepSpaceCoordination,
    ZooKeeperCoordination,
    make_coordination_service,
)
from repro.coordination.locks import LockManager
from repro.coordination.replication import FaultModel, ReplicatedStateMachine, replicas_required
from repro.coordination.tuplespace import ANY, DepSpace, make_depspace_with_triggers, matches
from repro.coordination.zookeeper import ZooKeeperLike


class TestTemplateMatching:
    def test_exact_match(self):
        assert matches(("a", 1), ("a", 1))

    def test_wildcard_matches_anything(self):
        assert matches((ANY, 1), ("whatever", 1))

    def test_arity_must_match(self):
        assert not matches(("a",), ("a", 1))

    def test_value_mismatch(self):
        assert not matches(("a", 2), ("a", 1))


class TestDepSpace:
    def test_out_and_rdp(self):
        space = DepSpace()
        space.out(("file", "x", 1), now=0.0)
        assert space.rdp(("file", ANY, ANY), now=0.0) == ("file", "x", 1)

    def test_rdp_returns_none_when_no_match(self):
        assert DepSpace().rdp(("missing",), now=0.0) is None

    def test_inp_removes_the_tuple(self):
        space = DepSpace()
        space.out(("t", 1), now=0.0)
        assert space.inp(("t", ANY), now=0.0) == ("t", 1)
        assert space.rdp(("t", ANY), now=0.0) is None

    def test_cas_inserts_only_when_template_unmatched(self):
        space = DepSpace()
        assert space.cas(("lock", "f", ANY), ("lock", "f", "s1"), now=0.0)
        assert not space.cas(("lock", "f", ANY), ("lock", "f", "s2"), now=0.0)
        assert space.rdp(("lock", "f", ANY), now=0.0) == ("lock", "f", "s1")

    def test_replace_swaps_atomically(self):
        space = DepSpace()
        space.out(("entry", "k", 1), now=0.0)
        assert space.replace(("entry", "k", ANY), ("entry", "k", 2), now=0.0)
        assert space.rdp(("entry", "k", ANY), now=0.0) == ("entry", "k", 2)

    def test_replace_fails_without_match(self):
        assert not DepSpace().replace(("entry", "k", ANY), ("entry", "k", 2), now=0.0)

    def test_timed_tuple_expires(self):
        space = DepSpace()
        space.out(("lock", "f", "s1"), now=0.0, lease=10.0)
        assert space.rdp(("lock", "f", ANY), now=5.0) is not None
        assert space.rdp(("lock", "f", ANY), now=10.0) is None

    def test_renew_extends_lease(self):
        space = DepSpace()
        space.out(("lock", "f", "s1"), now=0.0, lease=10.0)
        assert space.renew(("lock", "f", ANY), now=5.0, lease=10.0)
        assert space.rdp(("lock", "f", ANY), now=12.0) is not None

    def test_renew_of_persistent_tuple_returns_false(self):
        space = DepSpace()
        space.out(("x",), now=0.0)
        assert not space.renew(("x",), now=1.0, lease=5.0)

    def test_rdp_all_and_count(self):
        space = DepSpace()
        for i in range(3):
            space.out(("entry", f"k{i}"), now=0.0)
        assert len(space.rdp_all(("entry", ANY), now=0.0)) == 3
        assert space.count(("entry", ANY), now=0.0) == 3
        assert space.total_tuples(now=0.0) == 3

    def test_trigger_rewrites_matching_tuples(self):
        space = make_depspace_with_triggers()
        space.out(("entry", "/a/f1", "/a", 1), now=0.0)
        space.out(("entry", "/b/f2", "/b", 1), now=0.0)
        count = space.fire_trigger("rename_prefix", ("entry", ANY, ANY, ANY), ("/a", "/z"), now=0.0)
        assert count == 2  # both matched the template, only one had the prefix rewritten
        assert space.rdp(("entry", "/a/f1", ANY, ANY), now=0.0)[2] == "/z"
        assert space.rdp(("entry", "/b/f2", ANY, ANY), now=0.0)[2] == "/b"

    def test_unknown_trigger_raises(self):
        with pytest.raises(TupleNotFoundError):
            DepSpace().fire_trigger("nope", (ANY,), None, now=0.0)

    def test_stored_bytes_counts_fields(self):
        space = DepSpace()
        space.out(("key", b"\x00" * 100, 5), now=0.0)
        assert space.stored_bytes(now=0.0) >= 100

    def test_apply_dispatches_operations(self):
        space = DepSpace()
        space.apply(("out", (("k", 1), 0.0), {}))
        assert space.apply(("rdp", (("k", ANY), 0.0), {})) == ("k", 1)

    def test_apply_rejects_unknown_and_private_operations(self):
        with pytest.raises(ConflictError):
            DepSpace().apply(("_sweep", (0.0,), {}))
        with pytest.raises(ConflictError):
            DepSpace().apply(("not_an_op", (), {}))


class TestZooKeeperLike:
    def test_create_and_get(self):
        tree = ZooKeeperLike()
        tree.create("/a", b"data", now=0.0)
        assert tree.get("/a", now=0.0) == (b"data", 0)

    def test_create_requires_parent(self):
        with pytest.raises(TupleNotFoundError):
            ZooKeeperLike().create("/a/b", b"", now=0.0)

    def test_duplicate_create_rejected(self):
        tree = ZooKeeperLike()
        tree.create("/a", b"", now=0.0)
        with pytest.raises(ConflictError):
            tree.create("/a", b"", now=0.0)

    def test_invalid_paths_rejected(self):
        tree = ZooKeeperLike()
        with pytest.raises(ConflictError):
            tree.create("no-slash", b"", now=0.0)
        with pytest.raises(ConflictError):
            tree.create("/trailing/", b"", now=0.0)

    def test_set_bumps_version_and_checks_expected(self):
        tree = ZooKeeperLike()
        tree.create("/a", b"v0", now=0.0)
        assert tree.set("/a", b"v1", now=0.0) == 1
        with pytest.raises(ConflictError):
            tree.set("/a", b"v2", now=0.0, expected_version=0)
        assert tree.set("/a", b"v2", now=0.0, expected_version=1) == 2

    def test_delete_checks_version_and_children(self):
        tree = ZooKeeperLike()
        tree.create("/a", b"", now=0.0)
        tree.create("/a/b", b"", now=0.0)
        with pytest.raises(ConflictError):
            tree.delete("/a", now=0.0)
        tree.delete("/a/b", now=0.0)
        tree.delete("/a", now=0.0)
        assert not tree.exists("/a", now=0.0)

    def test_sequential_nodes_get_increasing_suffixes(self):
        tree = ZooKeeperLike()
        tree.create("/q", b"", now=0.0)
        first = tree.create("/q/item-", b"", now=0.0, sequential=True)
        second = tree.create("/q/item-", b"", now=0.0, sequential=True)
        assert first < second

    def test_ephemeral_nodes_vanish_on_session_expiry(self):
        tree = ZooKeeperLike()
        tree.register_session("s1", deadline=10.0)
        tree.create("/lock", b"", now=0.0, ephemeral_owner="s1")
        assert tree.exists("/lock", now=5.0)
        assert not tree.exists("/lock", now=11.0)

    def test_close_session_removes_ephemerals_immediately(self):
        tree = ZooKeeperLike()
        tree.register_session("s1", deadline=100.0)
        tree.create("/lock", b"", now=0.0, ephemeral_owner="s1")
        tree.close_session("s1", now=1.0)
        assert not tree.exists("/lock", now=1.0)

    def test_ephemeral_nodes_cannot_have_children(self):
        tree = ZooKeeperLike()
        tree.register_session("s1", deadline=100.0)
        tree.create("/e", b"", now=0.0, ephemeral_owner="s1")
        with pytest.raises(ConflictError):
            tree.create("/e/child", b"", now=0.0)

    def test_get_children_sorted(self):
        tree = ZooKeeperLike()
        tree.create("/d", b"", now=0.0)
        tree.create("/d/b", b"", now=0.0)
        tree.create("/d/a", b"", now=0.0)
        assert tree.get_children("/d", now=0.0) == ["/d/a", "/d/b"]

    def test_node_count_excludes_root(self):
        tree = ZooKeeperLike()
        tree.create("/x", b"", now=0.0)
        assert tree.node_count(now=0.0) == 1


class TestReplication:
    def test_replica_counts(self):
        assert replicas_required(FaultModel.CRASH, 1) == 3
        assert replicas_required(FaultModel.BYZANTINE, 1) == 4
        assert replicas_required(FaultModel.BYZANTINE, 0) == 1

    def test_invoke_keeps_replicas_in_sync(self, sim):
        rsm = ReplicatedStateMachine(sim, DepSpace, FaultModel.CRASH, f=1)
        rsm.invoke("out", ("k", 1), 0.0)
        for index in rsm.correct_replicas:
            assert rsm.replicas[index].rdp(("k", ANY), 0.0) == ("k", 1)

    def test_invoke_charges_latency(self, sim):
        rsm = ReplicatedStateMachine(sim, DepSpace, FaultModel.BYZANTINE, f=1)
        rsm.invoke("out", ("k", 1), 0.0)
        assert sim.now() > 0.0

    def test_tolerates_f_crashes(self, sim):
        rsm = ReplicatedStateMachine(sim, DepSpace, FaultModel.CRASH, f=1)
        rsm.crash_replica(0)
        rsm.invoke("out", ("k", 1), 0.0)
        assert rsm.reference_replica().rdp(("k", ANY), 0.0) == ("k", 1)

    def test_too_many_crashes_block_progress(self, sim):
        rsm = ReplicatedStateMachine(sim, DepSpace, FaultModel.CRASH, f=1)
        rsm.crash_replica(0)
        rsm.crash_replica(1)
        with pytest.raises(QuorumNotReachedError):
            rsm.invoke("out", ("k", 1), 0.0)

    def test_byzantine_replicas_do_not_block_below_threshold(self, sim):
        rsm = ReplicatedStateMachine(sim, DepSpace, FaultModel.BYZANTINE, f=1)
        rsm.make_byzantine(2)
        rsm.invoke("out", ("k", 1), 0.0)
        assert rsm.commands_executed == 1

    def test_recover_replica_restores_quorum(self, sim):
        rsm = ReplicatedStateMachine(sim, DepSpace, FaultModel.CRASH, f=1)
        rsm.crash_replica(0)
        rsm.crash_replica(1)
        rsm.recover_replica(1)
        rsm.invoke("out", ("k", 1), 0.0)

    def test_invalid_replica_index(self, sim):
        rsm = ReplicatedStateMachine(sim, DepSpace, FaultModel.CRASH, f=1)
        with pytest.raises(IndexError):
            rsm.crash_replica(10)


@pytest.fixture(params=["depspace", "zookeeper"])
def coordination(request, sim):
    """Both coordination adapters must behave identically through the interface."""
    return make_coordination_service(sim, request.param, f=1)


class TestCoordinationAdapters:
    def test_put_get_roundtrip(self, coordination, alice):
        session = coordination.open_session(alice)
        entry = coordination.put("meta:/f", b"payload", session)
        assert entry.version == 1
        assert coordination.get("meta:/f", session).value == b"payload"

    def test_version_increments_on_update(self, coordination, alice):
        session = coordination.open_session(alice)
        coordination.put("k", b"v1", session)
        entry = coordination.put("k", b"v2", session)
        assert entry.version == 2

    def test_conditional_update_detects_conflicts(self, coordination, alice):
        session = coordination.open_session(alice)
        coordination.put("k", b"v1", session)
        coordination.put("k", b"v2", session, expected_version=1)
        with pytest.raises(ConflictError):
            coordination.put("k", b"v3", session, expected_version=1)

    def test_conditional_create_of_missing_entry_fails(self, coordination, alice):
        session = coordination.open_session(alice)
        with pytest.raises(ConflictError):
            coordination.put("missing", b"v", session, expected_version=3)

    def test_get_missing_raises(self, coordination, alice):
        session = coordination.open_session(alice)
        with pytest.raises(TupleNotFoundError):
            coordination.get("nope", session)

    def test_delete_is_idempotent(self, coordination, alice):
        session = coordination.open_session(alice)
        coordination.put("k", b"v", session)
        coordination.delete("k", session)
        coordination.delete("k", session)
        with pytest.raises(TupleNotFoundError):
            coordination.get("k", session)

    def test_list_prefix(self, coordination, alice):
        session = coordination.open_session(alice)
        coordination.put("meta:/a/1", b"", session)
        coordination.put("meta:/a/2", b"", session)
        coordination.put("meta:/b/1", b"", session)
        assert coordination.list_prefix("meta:/a/", session) == ["meta:/a/1", "meta:/a/2"]

    def test_entry_acl_blocks_unauthorised_readers(self, coordination, alice, bob):
        alice_session = coordination.open_session(alice)
        bob_session = coordination.open_session(bob)
        coordination.put("k", b"secret", alice_session)
        with pytest.raises(ConflictError):
            coordination.get("k", bob_session)
        coordination.set_entry_acl("k", "bob", Permission.READ, alice_session)
        assert coordination.get("k", bob_session).value == b"secret"
        with pytest.raises(ConflictError):
            coordination.put("k", b"evil", bob_session)

    def test_only_owner_changes_entry_acl(self, coordination, alice, bob):
        alice_session = coordination.open_session(alice)
        bob_session = coordination.open_session(bob)
        coordination.put("k", b"v", alice_session)
        with pytest.raises((ConflictError, TupleNotFoundError)):
            coordination.set_entry_acl("k", "bob", Permission.READ, bob_session)

    def test_lock_mutual_exclusion(self, coordination, alice, bob):
        s1 = coordination.open_session(alice)
        s2 = coordination.open_session(bob)
        assert coordination.try_lock("file-1", s1)
        assert not coordination.try_lock("file-1", s2)
        coordination.unlock("file-1", s1)
        assert coordination.try_lock("file-1", s2)

    def test_unlock_by_non_holder_is_harmless(self, coordination, alice, bob):
        s1 = coordination.open_session(alice)
        s2 = coordination.open_session(bob)
        coordination.try_lock("file-1", s1)
        coordination.unlock("file-1", s2)
        assert coordination.lock_holder("file-1") == s1.session_id

    def test_close_session_releases_locks(self, coordination, alice, bob):
        s1 = coordination.open_session(alice)
        s2 = coordination.open_session(bob)
        coordination.try_lock("file-1", s1)
        coordination.close_session(s1)
        assert coordination.try_lock("file-1", s2)

    def test_entry_count_and_stored_bytes(self, coordination, alice):
        session = coordination.open_session(alice)
        before = coordination.entry_count()
        coordination.put("k1", b"x" * 100, session)
        coordination.put("k2", b"y" * 100, session)
        assert coordination.entry_count() == before + 2
        assert coordination.stored_bytes() > 0


class TestDepSpaceLockExpiry:
    def test_crashed_client_lock_expires_with_lease(self, sim, alice, bob):
        service = DepSpaceCoordination(sim, f=0)
        s1 = service.open_session(alice, lease_seconds=5.0)
        s2 = service.open_session(bob)
        assert service.try_lock("f", s1)
        # The client "crashes": it never unlocks nor renews.  After the lease,
        # the timed tuple disappears and another client can lock the file.
        assert not service.try_lock("f", s2)
        sim.advance(6.0)
        assert service.try_lock("f", s2)


class TestZooKeeperLockExpiry:
    def test_crashed_client_lock_expires_with_lease(self, sim, alice, bob):
        service = ZooKeeperCoordination(sim, f=1)
        s1 = service.open_session(alice, lease_seconds=5.0)
        s2 = service.open_session(bob)
        assert service.try_lock("f", s1)
        assert not service.try_lock("f", s2)
        sim.advance(6.0)
        assert service.try_lock("f", s2)


class TestLockManager:
    def _manager(self, sim, alice, retries=0):
        service = make_coordination_service(sim, "depspace", f=0)
        session = service.open_session(alice)
        return LockManager(sim=sim, service=service, session=session, max_retries=retries), service

    def test_acquire_and_release(self, sim, alice):
        manager, _ = self._manager(sim, alice)
        manager.acquire("L")
        assert manager.holds("L")
        manager.release("L")
        assert not manager.holds("L")

    def test_reentrant_acquire(self, sim, alice):
        manager, _ = self._manager(sim, alice)
        assert manager.try_acquire("L")
        assert manager.try_acquire("L")

    def test_release_unheld_lock_raises(self, sim, alice):
        manager, _ = self._manager(sim, alice)
        with pytest.raises(NotLockOwnerError):
            manager.release("L")

    def test_acquire_conflict_raises_after_retries(self, sim, alice, bob):
        service = make_coordination_service(sim, "depspace", f=0)
        s1 = service.open_session(alice)
        s2 = service.open_session(bob)
        holder = LockManager(sim=sim, service=service, session=s1)
        waiter = LockManager(sim=sim, service=service, session=s2, max_retries=2)
        holder.acquire("L")
        with pytest.raises(LockHeldError):
            waiter.acquire("L")

    def test_release_all(self, sim, alice):
        manager, service = self._manager(sim, alice)
        manager.acquire("L1")
        manager.acquire("L2")
        manager.release_all()
        assert service.lock_holder("L1") is None and service.lock_holder("L2") is None

    def test_make_coordination_service_rejects_unknown_kind(self, sim):
        with pytest.raises(ValueError):
            make_coordination_service(sim, "etcd")
