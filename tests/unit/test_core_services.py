"""Unit tests for the SCFS Agent's local services: PNS, metadata, locks, storage, GC, users."""

import pytest

from repro.clouds.providers import make_provider
from repro.common.errors import (
    FileExistsErrorFS,
    FileNotFoundErrorFS,
    LockHeldError,
    PermissionDeniedError,
)
from repro.common.types import Permission, Principal
from repro.coordination.adapters import make_coordination_service
from repro.core.backend import SingleCloudBackend
from repro.core.cache import MetadataCache, make_disk_cache, make_memory_cache
from repro.core.config import GarbageCollectionPolicy
from repro.core.gc import GarbageCollector
from repro.core.lock_service import LockService
from repro.core.metadata import FileMetadata, FileType
from repro.core.metadata_service import MetadataService
from repro.core.pns import PrivateNameSpace
from repro.core.storage_service import StorageService
from repro.core.users import UserRegistry
from repro.crypto.hashing import content_digest


@pytest.fixture
def single_backend(sim, alice):
    store = make_provider(sim, "amazon-s3", charge_latency=True)
    return SingleCloudBackend(sim, store, alice)


@pytest.fixture
def coordination(sim):
    return make_coordination_service(sim, "depspace", f=0)


def _file_meta(path="/f.txt", owner="alice", **kwargs):
    defaults = dict(path=path, file_type=FileType.FILE, owner=owner, file_id="file-1")
    defaults.update(kwargs)
    return FileMetadata(**defaults)


class TestPrivateNameSpace:
    def test_put_get_remove(self, single_backend):
        pns = PrivateNameSpace("alice", single_backend)
        meta = _file_meta()
        pns.put(meta)
        assert pns.contains("/f.txt")
        assert pns.get("/f.txt") == meta
        assert pns.remove("/f.txt") == meta
        assert not pns.contains("/f.txt")

    def test_get_returns_copy(self, single_backend):
        pns = PrivateNameSpace("alice", single_backend)
        pns.put(_file_meta())
        fetched = pns.get("/f.txt")
        fetched.grant("bob", Permission.READ)
        assert not pns.get("/f.txt").is_shared

    def test_save_and_load_round_trip_via_cloud(self, sim, single_backend, coordination, alice):
        session = coordination.open_session(alice)
        pns = PrivateNameSpace("alice", single_backend, coordination, session)
        pns.put(_file_meta("/a.txt"))
        pns.put(_file_meta("/b.txt", file_id="file-2"))
        digest = pns.save()
        assert digest is not None
        sim.advance(3.0)

        fresh = PrivateNameSpace("alice", single_backend, coordination, session)
        assert fresh.load()
        assert sorted(fresh.paths()) == ["/a.txt", "/b.txt"]

    def test_save_without_changes_is_noop(self, single_backend):
        pns = PrivateNameSpace("alice", single_backend)
        assert pns.save() is None

    def test_load_of_fresh_namespace_returns_false(self, single_backend, coordination, alice):
        session = coordination.open_session(alice)
        pns = PrivateNameSpace("alice", single_backend, coordination, session)
        assert not pns.load()

    def test_children_of(self, single_backend):
        pns = PrivateNameSpace("alice", single_backend)
        pns.put(_file_meta("/docs/a.txt"))
        pns.put(_file_meta("/docs/b.txt", file_id="file-2"))
        pns.put(_file_meta("/other/c.txt", file_id="file-3"))
        children = pns.children_of("/docs")
        assert sorted(m.path for m in children) == ["/docs/a.txt", "/docs/b.txt"]

    def test_uncharged_save_does_not_advance_clock(self, sim, single_backend):
        pns = PrivateNameSpace("alice", single_backend)
        pns.put(_file_meta())
        before = sim.now()
        pns.save(charge_latency=False)
        assert sim.now() == before


class TestMetadataService:
    def _service(self, sim, coordination, alice, pns=None, expiration=0.5):
        session = coordination.open_session(alice) if coordination else None
        cache = MetadataCache(sim.clock, expiration)
        return MetadataService(sim, alice, cache, coordination=coordination,
                               session=session, pns=pns)

    def test_requires_some_metadata_store(self, sim, alice):
        with pytest.raises(ValueError):
            MetadataService(sim, alice, MetadataCache(sim.clock, 0.5))

    def test_root_always_exists(self, sim, coordination, alice):
        service = self._service(sim, coordination, alice)
        assert service.get("/").is_directory

    def test_create_and_get(self, sim, coordination, alice):
        service = self._service(sim, coordination, alice)
        service.create(_file_meta("/x.txt"))
        assert service.get("/x.txt").path == "/x.txt"

    def test_create_duplicate_rejected(self, sim, coordination, alice):
        service = self._service(sim, coordination, alice)
        service.create(_file_meta("/x.txt"))
        with pytest.raises(FileExistsErrorFS):
            service.create(_file_meta("/x.txt"))

    def test_get_missing_raises(self, sim, coordination, alice):
        with pytest.raises(FileNotFoundErrorFS):
            self._service(sim, coordination, alice).get("/ghost")

    def test_cache_serves_repeated_lookups(self, sim, coordination, alice):
        service = self._service(sim, coordination, alice)
        service.create(_file_meta("/x.txt"))
        before = service.coordination_reads
        service.get("/x.txt")
        service.get("/x.txt")
        assert service.coordination_reads == before  # both served from cache

    def test_cache_expiration_forces_coordination_access(self, sim, coordination, alice):
        service = self._service(sim, coordination, alice, expiration=0.1)
        service.create(_file_meta("/x.txt"))
        sim.advance(1.0)
        before = service.coordination_reads
        service.get("/x.txt")
        assert service.coordination_reads == before + 1

    def test_update_requires_write_permission(self, sim, coordination, alice, bob):
        service = self._service(sim, coordination, alice)
        meta = _file_meta("/x.txt", owner="bob")
        with pytest.raises(PermissionDeniedError):
            service.update(meta)

    def test_mark_deleted_hides_from_get(self, sim, coordination, alice):
        service = self._service(sim, coordination, alice)
        meta = service.create(_file_meta("/x.txt"))
        service.mark_deleted(meta)
        with pytest.raises(FileNotFoundErrorFS):
            service.get("/x.txt")
        assert service.lookup("/x.txt").deleted

    def test_list_children_merges_shared_and_private(self, sim, coordination, alice, single_backend):
        pns = PrivateNameSpace("alice", single_backend)
        service = self._service(sim, coordination, alice, pns=pns)
        service.create(_file_meta("/d/shared.txt"), shared=True)
        service.create(_file_meta("/d/private.txt", file_id="file-2"))
        names = [m.name for m in service.list_children("/d")]
        assert names == ["private.txt", "shared.txt"]

    def test_private_files_avoid_coordination(self, sim, coordination, alice, single_backend):
        pns = PrivateNameSpace("alice", single_backend)
        service = self._service(sim, coordination, alice, pns=pns)
        service.create(_file_meta("/home/private.txt"))
        before_reads, before_writes = service.coordination_reads, service.coordination_writes
        service.get("/home/private.txt", use_cache=False)
        meta = service.get("/home/private.txt", use_cache=False)
        meta.size = 10
        service.update(meta)
        assert (service.coordination_reads, service.coordination_writes) == (before_reads, before_writes)

    def test_promote_to_shared_moves_entry_out_of_pns(self, sim, coordination, alice, single_backend):
        pns = PrivateNameSpace("alice", single_backend)
        service = self._service(sim, coordination, alice, pns=pns)
        meta = service.create(_file_meta("/home/file.txt"))
        assert pns.contains("/home/file.txt")
        meta.grant("bob", Permission.READ)
        service.promote_to_shared(meta)
        assert not pns.contains("/home/file.txt")
        assert service.get("/home/file.txt", use_cache=False).is_shared

    def test_demote_to_private_moves_entry_back(self, sim, coordination, alice, single_backend):
        pns = PrivateNameSpace("alice", single_backend)
        service = self._service(sim, coordination, alice, pns=pns)
        meta = service.create(_file_meta("/shared.txt"), shared=True)
        service.demote_to_private(meta)
        assert pns.contains("/shared.txt")

    def test_rename_file(self, sim, coordination, alice):
        service = self._service(sim, coordination, alice)
        service.create(_file_meta("/old.txt"))
        service.rename("/old.txt", "/new.txt")
        assert service.exists("/new.txt") and not service.exists("/old.txt")

    def test_rename_directory_moves_descendants(self, sim, coordination, alice):
        service = self._service(sim, coordination, alice)
        service.create(FileMetadata(path="/dir", file_type=FileType.DIRECTORY, owner="alice"))
        service.create(_file_meta("/dir/a.txt"))
        service.create(_file_meta("/dir/sub/b.txt", file_id="file-2"))
        service.rename("/dir", "/moved")
        assert service.exists("/moved/a.txt")
        assert service.exists("/moved/sub/b.txt")
        assert not service.exists("/dir/a.txt")

    def test_rename_to_existing_path_rejected(self, sim, coordination, alice):
        service = self._service(sim, coordination, alice)
        service.create(_file_meta("/a.txt"))
        service.create(_file_meta("/b.txt", file_id="file-2"))
        with pytest.raises(FileExistsErrorFS):
            service.rename("/a.txt", "/b.txt")

    def test_owned_paths(self, sim, coordination, alice, single_backend):
        pns = PrivateNameSpace("alice", single_backend)
        service = self._service(sim, coordination, alice, pns=pns)
        service.create(_file_meta("/mine-shared.txt"), shared=True)
        service.create(_file_meta("/mine-private.txt", file_id="file-2"))
        assert set(service.owned_paths()) >= {"/mine-shared.txt", "/mine-private.txt"}


class TestLockService:
    def test_disabled_without_coordination(self, sim):
        service = LockService(sim, None, None)
        assert not service.enabled
        assert service.acquire(_file_meta()) is False
        service.release(_file_meta())  # no-op, must not raise

    def test_acquire_and_release(self, sim, coordination, alice):
        session = coordination.open_session(alice)
        service = LockService(sim, coordination, session)
        meta = _file_meta()
        assert service.acquire(meta)
        assert service.holds(meta)
        service.release(meta)
        assert not service.holds(meta)

    def test_conflict_raises(self, sim, coordination, alice, bob):
        s1 = coordination.open_session(alice)
        s2 = coordination.open_session(bob)
        first = LockService(sim, coordination, s1)
        second = LockService(sim, coordination, s2)
        meta = _file_meta()
        first.acquire(meta)
        with pytest.raises(LockHeldError):
            second.acquire(meta)

    def test_release_all(self, sim, coordination, alice):
        session = coordination.open_session(alice)
        service = LockService(sim, coordination, session)
        service.acquire(_file_meta("/a", file_id="fa"))
        service.acquire(_file_meta("/b", file_id="fb"))
        service.release_all()
        assert not service.holds(_file_meta("/a", file_id="fa"))


class TestStorageService:
    def _service(self, sim, backend):
        return StorageService(sim, backend,
                              make_memory_cache(1 << 20, sim.clock),
                              make_disk_cache(1 << 24, sim.clock),
                              read_retry_interval=0.5)

    def test_push_then_read_comes_from_memory(self, sim, single_backend):
        service = self._service(sim, single_backend)
        data = b"hello" * 100
        ref = service.push_to_cloud("file-1", data)
        service.store_in_memory("file-1", ref.digest, data)
        outcome = service.read_version("file-1", ref.digest)
        assert outcome.source == "memory" and outcome.data == data

    def test_read_falls_back_to_disk_then_cloud(self, sim, single_backend):
        service = self._service(sim, single_backend)
        data = b"content" * 50
        ref = service.push_to_cloud("file-1", data)
        service.flush_to_disk("file-1", ref.digest, data)
        assert service.read_version("file-1", ref.digest).source == "disk"

        other = self._service(sim, single_backend)
        sim.advance(3.0)
        outcome = other.read_version("file-1", ref.digest)
        assert outcome.source == "cloud" and outcome.data == data

    def test_cloud_read_waits_for_propagation(self, sim, single_backend):
        service = self._service(sim, single_backend)
        data = b"slow cloud"
        with single_backend.uncharged():
            ref = single_backend.write_version("file-1", data)
        start = sim.now()
        outcome = service.read_version("file-1", ref.digest)
        assert outcome.data == data
        assert sim.now() > start  # had to poll at least once

    def test_empty_digest_means_empty_file(self, sim, single_backend):
        service = self._service(sim, single_backend)
        assert service.read_version("file-1", "").data == b""

    def test_memory_eviction_spills_to_disk(self, sim, single_backend):
        service = StorageService(sim, single_backend,
                                 make_memory_cache(150, sim.clock),
                                 make_disk_cache(1 << 20, sim.clock))
        service.store_in_memory("f1", "d1", b"x" * 100)
        service.store_in_memory("f2", "d2", b"y" * 100)  # evicts f1 from memory
        assert service.cached_locally("f1", "d1")
        assert service.read_version("f1", "d1").source == "disk"

    def test_bytes_pushed_counter(self, sim, single_backend):
        service = self._service(sim, single_backend)
        service.push_to_cloud("f", b"12345")
        service.push_to_cloud_uncharged("f", b"123")
        assert service.bytes_pushed == 8 and service.cloud_writes == 2

    def test_forget_drops_cached_version(self, sim, single_backend):
        service = self._service(sim, single_backend)
        service.store_in_memory("f", "d", b"x")
        service.flush_to_disk("f", "d", b"x")
        service.forget("f", "d")
        assert not service.cached_locally("f", "d")


class TestGarbageCollector:
    def _setup(self, sim, coordination, alice, single_backend, policy=None):
        session = coordination.open_session(alice)
        cache = MetadataCache(sim.clock, 0.5)
        metadata = MetadataService(sim, alice, cache, coordination=coordination, session=session)
        storage = StorageService(sim, single_backend,
                                 make_memory_cache(1 << 20, sim.clock),
                                 make_disk_cache(1 << 24, sim.clock))
        policy = policy or GarbageCollectionPolicy(written_bytes_threshold=1000, versions_to_keep=2)
        collector = GarbageCollector(sim, policy, metadata, storage, single_backend)
        return metadata, storage, collector

    def _write_versions(self, metadata, storage, path, payloads):
        meta = _file_meta(path, file_id=f"unit-{path.strip('/')}")
        for payload in payloads:
            ref = storage.push_to_cloud(meta.file_id, payload)
            meta.digest = ref.digest
            meta.size = len(payload)
            meta.data_version += 1
        if metadata.exists(path):
            metadata.update(meta)
        else:
            metadata.create(meta, shared=True)
        return meta

    def test_old_versions_are_reclaimed(self, sim, coordination, alice, single_backend):
        metadata, storage, collector = self._setup(sim, coordination, alice, single_backend)
        self._write_versions(metadata, storage, "/doc.txt", [b"v1", b"v2" * 5, b"v3" * 10])
        sim.advance(3.0)
        report = collector.run()
        assert report.files_examined == 1
        assert report.versions_deleted == 1  # keeps current + one older (V=2)
        assert len(single_backend.list_versions("unit-doc.txt")) == 2

    def test_current_version_always_survives(self, sim, coordination, alice, single_backend):
        metadata, storage, collector = self._setup(
            sim, coordination, alice, single_backend,
            policy=GarbageCollectionPolicy(written_bytes_threshold=1, versions_to_keep=1))
        meta = self._write_versions(metadata, storage, "/doc.txt", [b"old", b"current"])
        sim.advance(3.0)
        collector.run()
        remaining = single_backend.list_versions(meta.file_id)
        assert [r.digest for r in remaining] == [content_digest(b"current")]

    def test_deleted_files_are_purged_with_metadata(self, sim, coordination, alice, single_backend):
        metadata, storage, collector = self._setup(sim, coordination, alice, single_backend)
        meta = self._write_versions(metadata, storage, "/gone.txt", [b"data"])
        metadata.mark_deleted(meta)
        sim.advance(3.0)
        report = collector.run()
        assert report.deleted_files_purged == 1
        assert single_backend.list_versions(meta.file_id) == []
        assert metadata.lookup("/gone.txt", use_cache=False) is None

    def test_activation_threshold(self, sim, coordination, alice, single_backend):
        metadata, storage, collector = self._setup(sim, coordination, alice, single_backend)
        assert not collector.should_activate()
        storage.push_to_cloud("some-file", b"x" * 2000)
        assert collector.should_activate()
        assert collector.maybe_schedule()
        assert not collector.maybe_schedule()  # counter reset until next W bytes
        sim.drain()
        assert collector.runs == 1

    def test_disabled_policy_never_activates(self, sim, coordination, alice, single_backend):
        metadata, storage, collector = self._setup(
            sim, coordination, alice, single_backend,
            policy=GarbageCollectionPolicy(enabled=False))
        storage.push_to_cloud("f", b"x" * (1 << 20))
        assert not collector.should_activate()

    def test_gc_does_not_charge_foreground_latency(self, sim, coordination, alice, single_backend):
        metadata, storage, collector = self._setup(sim, coordination, alice, single_backend)
        self._write_versions(metadata, storage, "/doc.txt", [b"v1", b"v2", b"v3"])
        sim.advance(3.0)
        before = sim.now()
        collector.run()
        assert sim.now() == before


class TestUserRegistry:
    def test_register_and_lookup_across_sessions(self, sim, coordination, alice, bob):
        alice_session = coordination.open_session(alice)
        bob_session = coordination.open_session(bob)
        UserRegistry(coordination, bob_session).register(bob)
        registry = UserRegistry(coordination, alice_session)
        looked_up = registry.lookup("bob")
        assert looked_up.name == "bob"
        assert looked_up.canonical_id("amazon-s3") == "bob@amazon-s3"

    def test_unknown_user_raises(self, sim, coordination, alice):
        session = coordination.open_session(alice)
        registry = UserRegistry(coordination, session)
        with pytest.raises(FileNotFoundErrorFS):
            registry.lookup("nobody")

    def test_local_registry_without_coordination(self):
        registry = UserRegistry(None, None)
        registry.register(Principal("solo"))
        assert registry.lookup("solo").name == "solo"
        with pytest.raises(FileNotFoundErrorFS):
            registry.lookup("other")
