"""The BENCH_*.json perf-trajectory pipeline (:mod:`repro.bench.trajectory`)."""

from __future__ import annotations

import json

import pytest

from repro.bench import trajectory


@pytest.fixture
def root(tmp_path, monkeypatch):
    monkeypatch.setenv("BENCH_OUTPUT_DIR", str(tmp_path))
    monkeypatch.delenv("BENCH_PR", raising=False)
    monkeypatch.setenv("BENCH_DATE", "2026-08-07")
    return tmp_path


class TestRecord:
    def test_first_entry_seeds_the_trajectory(self, root):
        path = trajectory.record_bench("demo", {"latency_s": 1.5}, pr=3)
        assert path == root / "BENCH_demo.json"
        entries = json.loads(path.read_text())
        assert entries == [
            {"pr": 3, "date": "2026-08-07", "metrics": {"latency_s": 1.5}}]

    def test_same_pr_merges_metrics(self, root):
        trajectory.record_bench("demo", {"a": 1}, pr=3)
        trajectory.record_bench("demo", {"b": 2}, pr=3)
        [entry] = trajectory.load_trajectory("demo")
        assert entry["metrics"] == {"a": 1, "b": 2}

    def test_default_pr_appends_a_candidate_entry(self, root):
        trajectory.record_bench("demo", {"a": 1}, pr=5)
        trajectory.record_bench("demo", {"a": 2})  # no BENCH_PR: candidate
        entries = trajectory.load_trajectory("demo")
        assert [e["pr"] for e in entries] == [5, 6]

    def test_all_default_pr_calls_share_one_candidate(self, root):
        # A harness records from several tests; without BENCH_PR they must
        # all merge into a single candidate entry, not a chain of them.
        trajectory.record_bench("demo", {"a": 1}, pr=5)
        trajectory.record_bench("demo", {"sweep": 1.0})
        trajectory.record_bench("demo", {"burst": 2.0})
        entries = trajectory.load_trajectory("demo")
        assert [e["pr"] for e in entries] == [5, 6]
        assert entries[-1]["metrics"] == {"sweep": 1.0, "burst": 2.0}

    def test_bench_pr_env_pins_the_entry(self, root, monkeypatch):
        monkeypatch.setenv("BENCH_PR", "9")
        trajectory.record_bench("demo", {"a": 1})
        assert trajectory.load_trajectory("demo")[0]["pr"] == 9

    def test_entries_stay_sorted_by_pr(self, root):
        trajectory.record_bench("demo", {"a": 1}, pr=7)
        trajectory.record_bench("demo", {"a": 2}, pr=2)
        assert [e["pr"] for e in trajectory.load_trajectory("demo")] == [2, 7]

    def test_rejects_non_array_file(self, root):
        (root / "BENCH_demo.json").write_text('{"pr": 1}')
        with pytest.raises(ValueError):
            trajectory.load_trajectory("demo")


def _entries(*metric_dicts):
    return [{"pr": index + 1, "date": "2026-08-07", "metrics": metrics}
            for index, metrics in enumerate(metric_dicts)]


class TestGate:
    def test_within_tolerance_passes(self):
        report, violations = trajectory.gate(
            _entries({"wall_ms": 10.0}, {"wall_ms": 14.0}), {"wall_ms": 0.5})
        assert violations == []
        assert any("ok" in line for line in report)

    def test_regression_past_tolerance_fails(self):
        report, violations = trajectory.gate(
            _entries({"wall_ms": 10.0}, {"wall_ms": 16.0}), {"wall_ms": 0.5})
        assert len(violations) == 1 and "wall_ms" in violations[0]

    def test_single_entry_is_ungated(self):
        report, violations = trajectory.gate(
            _entries({"wall_ms": 10.0}), {"wall_ms": 0.5})
        assert violations == []

    def test_missing_metric_is_reported_not_failed(self):
        report, violations = trajectory.gate(
            _entries({"other": 1.0}, {"wall_ms": 99.0}), {"wall_ms": 0.5})
        assert violations == []
        assert any("ungated" in line for line in report)

    def test_compares_last_two_entries_only(self):
        entries = _entries({"wall_ms": 1.0}, {"wall_ms": 100.0}, {"wall_ms": 101.0})
        _, violations = trajectory.gate(entries, {"wall_ms": 0.5})
        assert violations == []


class TestFloorGate:
    """Higher-is-better metrics gated by maximum allowed drop."""

    def test_drop_within_floor_passes(self):
        report, violations = trajectory.gate(
            _entries({"mbps": 100.0}, {"mbps": 85.0}), {}, {"mbps": 0.2})
        assert violations == []
        assert any("ok" in line for line in report)

    def test_drop_past_floor_fails(self):
        report, violations = trajectory.gate(
            _entries({"mbps": 100.0}, {"mbps": 79.0}), {}, {"mbps": 0.2})
        assert len(violations) == 1 and "mbps" in violations[0]
        assert "floor" in violations[0]

    def test_improvement_always_passes(self):
        _, violations = trajectory.gate(
            _entries({"mbps": 100.0}, {"mbps": 250.0}), {}, {"mbps": 0.2})
        assert violations == []

    def test_missing_floor_metric_is_ungated(self):
        report, violations = trajectory.gate(
            _entries({"other": 1.0}, {"mbps": 50.0}), {}, {"mbps": 0.2})
        assert violations == []
        assert any("ungated" in line for line in report)

    def test_ceilings_and_floors_combine(self):
        entries = _entries({"wall_ms": 10.0, "mbps": 100.0},
                           {"wall_ms": 20.0, "mbps": 50.0})
        _, violations = trajectory.gate(
            entries, {"wall_ms": 0.5}, {"mbps": 0.2})
        assert len(violations) == 2


class TestCli:
    def test_gate_command_passes_and_fails(self, root, capsys):
        trajectory.record_bench("demo", {"wall_ms": 10.0}, pr=1)
        trajectory.record_bench("demo", {"wall_ms": 12.0}, pr=2)
        path = str(root / "BENCH_demo.json")
        assert trajectory.main(["gate", path, "--tol", "wall_ms=0.5"]) == 0
        trajectory.record_bench("demo", {"wall_ms": 40.0}, pr=3)
        assert trajectory.main(["gate", path, "--tol", "wall_ms=0.5"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_show_command_prints_sorted_entries(self, root, capsys):
        trajectory.record_bench("demo", {"a": 1}, pr=2)
        trajectory.record_bench("demo", {"a": 2}, pr=1)
        assert trajectory.main(["show", str(root / "BENCH_demo.json")]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert [e["pr"] for e in shown] == [1, 2]

    def test_bad_tolerance_syntax_rejected(self, root):
        trajectory.record_bench("demo", {"a": 1}, pr=1)
        with pytest.raises(SystemExit):
            trajectory.main(["gate", str(root / "BENCH_demo.json"),
                             "--tol", "nonsense"])

    def test_floor_flag_gates_throughput_drops(self, root, capsys):
        trajectory.record_bench("demo", {"mbps": 100.0}, pr=1)
        trajectory.record_bench("demo", {"mbps": 90.0}, pr=2)
        path = str(root / "BENCH_demo.json")
        assert trajectory.main(["gate", path, "--floor", "mbps=0.2"]) == 0
        trajectory.record_bench("demo", {"mbps": 60.0}, pr=3)
        assert trajectory.main(["gate", path, "--floor", "mbps=0.2"]) == 1
        assert "REGRESSION" in capsys.readouterr().out
