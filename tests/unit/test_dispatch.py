"""Unit tests for the quorum dispatch engine and its DepSky wiring."""

import pytest

from repro.clouds.dispatch import (
    DispatchPolicy,
    QuorumCall,
    QuorumRequest,
    RequestStatus,
    dispatch_quorum,
)
from repro.clouds.providers import make_cloud_of_clouds, make_provider
from repro.common.errors import CloudUnavailableError, QuorumNotReachedError
from repro.common.types import Principal
from repro.depsky.protocol import DepSkyClient
from repro.simenv.environment import Simulation
from repro.simenv.failures import FailureSchedule, FaultKind
from repro.simenv.latency import LatencyModel


def request(cloud: str, latencies, fail=False, counter=None):
    """Synthetic request: ``latencies`` is one value or a per-attempt sequence."""
    sequence = list(latencies) if isinstance(latencies, (list, tuple)) else [latencies]
    state = {"attempt": 0}

    def send():
        if counter is not None:
            counter[cloud] = counter.get(cloud, 0) + 1
        if fail:
            raise CloudUnavailableError(cloud)
        return cloud

    def latency(_value):
        index = min(state["attempt"], len(sequence) - 1)
        state["attempt"] += 1
        return sequence[index]

    return QuorumRequest(cloud=cloud, send=send, latency=latency)


class TestQuorumCallEngine:
    def test_completes_at_mth_success(self):
        stats = dispatch_quorum([[request("a", 3.0), request("b", 1.0), request("c", 2.0)]], 2)
        assert stats.reached
        assert stats.elapsed == pytest.approx(2.0)
        assert stats.winner_clouds == ("b", "c")
        # The slowest success is LATE, not a winner.
        late = [t for t in stats.traces if t.cloud == "a"]
        assert late[0].status is RequestStatus.LATE

    def test_failures_do_not_occupy_quorum_slots(self):
        # A fast failure plus a slow success: the call must wait for the
        # success, not complete at the failure's (earlier) resolution.
        stats = dispatch_quorum([[request("bad", 0.1, fail=True), request("ok", 5.0)]], 1)
        assert stats.elapsed == pytest.approx(5.0)
        assert stats.winner_clouds == ("ok",)

    def test_quorum_failure_reports_give_up_time(self):
        stats = dispatch_quorum([[request("a", 1.0, fail=True), request("b", 2.0, fail=True)]], 1)
        assert not stats.reached
        assert stats.elapsed is None
        assert stats.charged == pytest.approx(2.0)

    def test_fallback_stage_dispatches_at_end_of_triggering_round(self):
        stats = dispatch_quorum(
            [[request("a", 1.0, fail=True), request("b", 2.0)], [request("c", 1.0)]], 2
        )
        # Stage 1 starts when stage 0's last request resolved (t=2), so the
        # fallback's success lands at 3 — fallback work is never free.
        assert stats.stage_started_at == (0.0, 2.0)
        assert stats.elapsed == pytest.approx(3.0)
        assert stats.preferred_hit is False
        assert stats.fallback_dispatched

    def test_fallback_stage_skipped_when_quorum_reached(self):
        counter: dict[str, int] = {}
        stats = dispatch_quorum(
            [[request("a", 1.0, counter=counter)], [request("b", 1.0, counter=counter)]], 1
        )
        assert stats.elapsed == pytest.approx(1.0)
        assert stats.stage_started_at == (0.0,)
        assert "b" not in counter  # the fallback request was never sent
        assert stats.preferred_hit

    def test_timeout_abandons_straggler(self):
        policy = DispatchPolicy(timeout=2.0)
        stats = dispatch_quorum([[request("slow", 10.0), request("ok", 1.0)]], 2, policy)
        assert not stats.reached
        slow = next(t for t in stats.traces if t.cloud == "slow")
        assert slow.status is RequestStatus.TIMED_OUT
        assert slow.resolved_at == pytest.approx(2.0)

    def test_retry_after_timeout_succeeds(self):
        policy = DispatchPolicy(timeout=2.0, retries=1)
        stats = dispatch_quorum([[request("flaky", [10.0, 1.0])]], 1, policy)
        assert stats.reached
        # First attempt abandoned at t=2, retry dispatched then lands at t=3.
        assert stats.elapsed == pytest.approx(3.0)
        assert stats.winners[0].attempts == 2

    def test_bounded_retries_for_failures(self):
        counter: dict[str, int] = {}
        policy = DispatchPolicy(retries=2)
        stats = dispatch_quorum([[request("down", 1.0, fail=True, counter=counter)]], 1, policy)
        assert not stats.reached
        assert counter["down"] == 3  # initial attempt + 2 retries
        assert stats.charged == pytest.approx(3.0)

    def test_hedge_dispatches_backup_before_round_ends(self):
        policy = DispatchPolicy(hedge_delay=2.0)
        stats = dispatch_quorum([[request("straggler", 10.0)], [request("backup", 1.0)]], 1, policy)
        assert stats.stage_started_at == (0.0, 2.0)
        assert stats.elapsed == pytest.approx(3.0)
        assert stats.winner_clouds == ("backup",)
        assert stats.hedged == 1
        assert stats.winners[0].hedged

    def test_hedge_not_dispatched_when_quorum_is_fast(self):
        counter: dict[str, int] = {}
        policy = DispatchPolicy(hedge_delay=2.0)
        stats = dispatch_quorum(
            [[request("fast", 1.0, counter=counter)], [request("backup", 1.0, counter=counter)]],
            1, policy,
        )
        assert stats.elapsed == pytest.approx(1.0)
        assert stats.hedged == 0
        assert "backup" not in counter

    def test_rejects_empty_calls(self):
        with pytest.raises(ValueError):
            QuorumCall().execute(required=1)
        with pytest.raises(ValueError):
            dispatch_quorum([[request("a", 1.0)]], 0)

    def test_stage_waits_cover_each_round(self):
        stats = dispatch_quorum(
            [[request("a", 2.0, fail=True)], [request("b", 3.0)]], 1
        )
        assert stats.stage_waits == pytest.approx((2.0, 3.0))


class TestPrepareHook:
    """The lazy ``prepare`` hook runs once at dispatch, never for idle requests."""

    def _prepared_request(self, cloud, latencies, counter, fail=False):
        base = request(cloud, latencies, fail=fail)

        def prepare():
            counter[cloud] = counter.get(cloud, 0) + 1

        return QuorumRequest(cloud=base.cloud, send=base.send,
                             latency=base.latency, prepare=prepare)

    def test_prepare_runs_before_first_send(self):
        order: list[str] = []
        sent = QuorumRequest(
            cloud="a",
            send=lambda: order.append("send"),
            latency=lambda _: 1.0,
            prepare=lambda: order.append("prepare"),
        )
        stats = dispatch_quorum([[sent]], 1)
        assert stats.reached
        assert order == ["prepare", "send"]

    def test_prepare_skipped_for_undispatched_fallback(self):
        counter: dict[str, int] = {}
        stats = dispatch_quorum(
            [[self._prepared_request("a", 1.0, counter)],
             [self._prepared_request("b", 1.0, counter)]], 1
        )
        assert stats.reached
        assert counter == {"a": 1}  # the fallback never materialised its blob

    def test_prepare_not_repeated_on_retry(self):
        counter: dict[str, int] = {}
        policy = DispatchPolicy(timeout=2.0, retries=1)
        stats = dispatch_quorum(
            [[self._prepared_request("flaky", [10.0, 1.0], counter)]], 1, policy
        )
        assert stats.reached
        assert stats.winners[0].attempts == 2
        assert counter == {"flaky": 1}


class TestDegradedFaults:
    def test_degradation_factor_compounds_and_expires(self):
        schedule = FailureSchedule()
        schedule.add(FaultKind.DEGRADED, start=10.0, end=20.0, factor=4.0)
        schedule.add(FaultKind.DEGRADED, start=15.0, end=20.0, factor=2.0)
        assert schedule.degradation(5.0) == 1.0
        assert schedule.degradation(12.0) == 4.0
        assert schedule.degradation(16.0) == 8.0
        assert schedule.degradation(25.0) == 1.0

    def test_degraded_window_requires_positive_factor(self):
        schedule = FailureSchedule()
        with pytest.raises(ValueError):
            schedule.add(FaultKind.DEGRADED, factor=0.0)

    def test_degraded_store_charges_multiplied_latency(self):
        sim = Simulation(seed=3)
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        alice = Principal("alice")
        store.put("k", b"x" * 1000, alice)
        healthy = sim.now()
        store.failures.add(FaultKind.DEGRADED, start=healthy, factor=5.0)
        store.put("k2", b"x" * 1000, alice)
        degraded = sim.now() - healthy
        assert degraded == pytest.approx(5.0 * healthy)

    def test_request_latency_helpers_apply_degradation(self):
        sim = Simulation(seed=3)
        store = make_provider(sim, "amazon-s3", charge_latency=False)
        expected = store.expected_request_latency("object_get", 1000)
        store.failures.add(FaultKind.DEGRADED, factor=3.0)
        assert store.expected_request_latency("object_get", 1000) == pytest.approx(3.0 * expected)
        assert store.request_latency("object_get", 1000) == pytest.approx(3.0 * expected)


class TestLatencyEstimates:
    def test_expected_is_deterministic_and_jitter_free(self):
        model = LatencyModel(base=0.1, bandwidth=1000.0, jitter=0.5)
        assert model.expected(500) == pytest.approx(0.6)
        assert model.expected(500) == model.expected(500)

    def test_estimates_consume_no_rng_draws(self):
        from repro.core.backend import CloudOfCloudsBackend, SingleCloudBackend

        sim = Simulation(seed=9)
        alice = Principal("alice")
        single = SingleCloudBackend(sim, make_provider(sim, "amazon-s3", jitter=0.2), alice)
        coc = CloudOfCloudsBackend(sim, make_cloud_of_clouds(sim, jitter=0.2), alice)
        state = sim.rng.getstate()
        single.estimate_write_latency(1_000_000)
        single.estimate_read_latency(1_000_000)
        coc.estimate_write_latency(1_000_000)
        coc.estimate_read_latency(1_000_000)
        assert sim.rng.getstate() == state

    def test_single_cloud_estimate_reflects_bandwidth_term(self):
        from repro.core.backend import SingleCloudBackend

        sim = Simulation(seed=9)
        store = make_provider(sim, "amazon-s3", jitter=0.3)
        backend = SingleCloudBackend(sim, store, Principal("alice"))
        profile = store.profile
        assert backend.estimate_write_latency(10_000_000) == pytest.approx(
            profile.object_put.expected(10_000_000)
        )


class TestDepSkyDispatchAccounting:
    def _client(self, policy=None, seed=5):
        sim = Simulation(seed=seed)
        clouds = make_cloud_of_clouds(sim, jitter=0.1)
        client = DepSkyClient(sim, clouds, Principal("alice"), f=1, policy=policy)
        return sim, clouds, client

    def _read_elapsed(self, sim, client, unit="unit"):
        start = sim.now()
        result = client.read_latest(unit)
        return sim.now() - start, result

    def test_fallback_read_charges_more_than_systematic(self):
        # Same seed, same profiles: the only difference is one failed
        # preferred cloud, so the coded read must charge strictly more.
        sim_ok, _, client_ok = self._client()
        client_ok.write("unit", b"payload" * 500)
        sim_ok.advance(3.0)
        healthy_elapsed, healthy = self._read_elapsed(sim_ok, client_ok)

        sim_bad, clouds_bad, client_bad = self._client()
        client_bad.write("unit", b"payload" * 500)
        sim_bad.advance(3.0)
        clouds_bad[0].failures.add(FaultKind.UNAVAILABLE, start=sim_bad.now())
        degraded_elapsed, degraded = self._read_elapsed(sim_bad, client_bad)

        assert healthy.path == "systematic" and degraded.path == "coded"
        assert degraded.stats.fallback_dispatched
        assert degraded_elapsed > healthy_elapsed

    def test_hedged_request_beats_degraded_straggler(self):
        plain_elapsed = {}
        for name, policy in (("plain", None), ("hedged", DispatchPolicy(hedge_delay=0.25))):
            sim, clouds, client = self._client(policy=policy)
            client.write("unit", b"straggler" * 500)
            sim.advance(3.0)
            clouds[0].failures.add(FaultKind.DEGRADED, start=sim.now(), factor=10.0)
            plain_elapsed[name], result = self._read_elapsed(sim, client)
            if name == "hedged":
                assert result.stats.hedged > 0
        assert plain_elapsed["hedged"] < 0.5 * plain_elapsed["plain"]

    def test_byzantine_response_charged_full_transfer_latency(self):
        # A Byzantine block fails verification but its download still took the
        # full transfer time, not just the round trip.
        sim, clouds, client = self._client()
        client.write("unit", b"x" * 1_000_000)
        sim.advance(3.0)
        clouds[0].failures.add(FaultKind.BYZANTINE, start=sim.now())
        result = client.read_latest("unit")
        failed = next(t for t in result.stats.traces
                      if t.cloud == clouds[0].name and t.stage == 0)
        assert failed.status is RequestStatus.FAILED
        round_trip_only = clouds[0].profile.object_get.base * 1.2
        assert failed.resolved_at - failed.dispatched_at > round_trip_only

    def test_read_result_carries_dispatch_stats(self):
        sim, _, client = self._client()
        client.write("unit", b"stats" * 100)
        sim.advance(3.0)
        result = client.read_latest("unit")
        assert result.stats is not None and result.meta_stats is not None
        assert result.stats.preferred_hit
        # Winners are completion-ordered, clouds_used row-ordered: same set.
        assert set(result.stats.winner_clouds) == set(result.clouds_used)
        assert result.meta_stats.required == client.k

    def test_write_spillover_uses_fallback_stage(self):
        sim, clouds, client = self._client()
        clouds[0].failures.add(FaultKind.UNAVAILABLE)
        client.write("unit", b"spill" * 200)
        # The fourth cloud received a data block via the fallback stage.
        assert any("-b3" in key for kind, key, _ in clouds[3].request_log if kind == "put")

    def test_write_quorum_failure_still_raises(self):
        sim, clouds, client = self._client()
        clouds[0].failures.add(FaultKind.UNAVAILABLE)
        clouds[1].failures.add(FaultKind.UNAVAILABLE)
        with pytest.raises(QuorumNotReachedError):
            client.write("unit", b"too many failures")

    def test_backend_read_path_stats_accumulate(self):
        from repro.core.backend import CloudOfCloudsBackend

        sim = Simulation(seed=5)
        clouds = make_cloud_of_clouds(sim)
        backend = CloudOfCloudsBackend(sim, clouds, Principal("alice"))
        ref = backend.write_version("file", b"f" * 400)
        sim.advance(3.0)
        backend.read_version("file", ref.digest)
        clouds[0].failures.add(FaultKind.UNAVAILABLE, start=sim.now())
        backend.read_version("file", ref.digest)
        stats = backend.read_paths
        assert stats.total == 2
        assert stats.systematic == 1 and stats.coded == 1
        assert stats.fallback_reads == 1
        assert stats.systematic_rate == pytest.approx(0.5)
        merged = stats.merge(stats)
        assert merged.total == 4


class TestInstantCoalescer:
    """Same-instant quorum coalescing (the scale-out batching layer)."""

    def _world(self, seed=5):
        from repro.clouds.dispatch import InstantCoalescer

        sim = Simulation(seed=seed)
        clouds = make_cloud_of_clouds(sim)

        def principal(name):
            return Principal(name=name, canonical_ids=tuple(
                (c.name, f"{name}@{c.name}") for c in clouds))

        coalescer = InstantCoalescer(sim)

        def client(name="alice"):
            return DepSkyClient(sim, clouds, principal(name),
                                charge_latency=False, coalescer=coalescer)

        return sim, clouds, coalescer, client

    def test_same_instant_repeat_is_absorbed(self):
        sim, clouds, coalescer, client = self._world()
        client().write("unit", b"payload")
        sim.advance(60.0)
        first, second = client(), client()
        md1, stats1 = first._read_metadata("unit", use_cached=False)
        md2, stats2 = second._read_metadata("unit", use_cached=False)
        assert md1.latest().version == md2.latest().version == 1
        assert stats1.traces and not stats2.traces  # second call hit no wire
        assert stats2.charged == 0.0 and stats2.reached
        assert coalescer.hits == 1

    def test_absorbed_copies_are_private(self):
        sim, clouds, coalescer, client = self._world()
        client().write("unit", b"payload")
        sim.advance(60.0)
        md1, _ = client()._read_metadata("unit", use_cached=False)
        md1.remove_version(1)  # caller mutates its copy...
        md2, _ = client()._read_metadata("unit", use_cached=False)
        assert md2.latest().version == 1  # ...without poisoning the cache

    def test_mutation_invalidates_within_the_instant(self):
        sim, clouds, coalescer, client = self._world()
        writer = client()
        writer.write("unit", b"v1")
        sim.advance(60.0)
        reader = client()
        reader._read_metadata("unit", use_cached=False)
        generation = coalescer.generation
        writer.write("unit", b"v2")  # same instant: uncharged client
        assert coalescer.generation > generation
        md, stats = client()._read_metadata("unit", use_cached=False)
        assert stats.traces  # re-dispatched, not served from the stale cache

    def test_cache_never_crosses_principals(self):
        sim, clouds, coalescer, client = self._world()
        client("alice").write("unit", b"secret")
        sim.advance(60.0)
        client("alice")._read_metadata("unit", use_cached=False)
        hits = coalescer.hits
        # Bob lacks any grant on alice's unit: his read must go to the wire
        # (and fail there), not be served from alice's cached agreement.
        md, stats = client("bob")._read_metadata("unit", use_cached=False)
        assert coalescer.hits == hits
        assert md is None

    def test_clock_movement_expires_the_window(self):
        sim, clouds, coalescer, client = self._world()
        client().write("unit", b"payload")
        sim.advance(60.0)
        client()._read_metadata("unit", use_cached=False)
        sim.advance(1e-6)
        hits = coalescer.hits
        client()._read_metadata("unit", use_cached=False)
        assert coalescer.hits == hits

    def test_charged_clients_never_collide(self):
        # With latency charging on, every quorum call advances the clock, so
        # back-to-back reads land on different instants: the coalescer is
        # inert (zero hits) and the agreed values are unchanged.
        from repro.clouds.dispatch import InstantCoalescer

        sim = Simulation(seed=7)
        clouds = make_cloud_of_clouds(sim)
        coalescer = InstantCoalescer(sim)
        principal = Principal("alice", canonical_ids=tuple(
            (c.name, f"alice@{c.name}") for c in clouds))
        client = DepSkyClient(sim, clouds, principal, coalescer=coalescer)
        client.write("unit", b"payload")
        sim.advance(60.0)
        for _ in range(3):
            result = client.read_latest("unit")
            assert result.data == b"payload"
        assert coalescer.hits == 0

    def test_absorbed_stats_shape(self):
        from repro.clouds.dispatch import InstantCoalescer

        stats = InstantCoalescer.absorbed(required=2)
        assert stats.reached and stats.charged == 0.0
        assert stats.preferred_hit and not stats.fallback_dispatched
        assert stats.successes == [] and stats.winner_clouds == ()
