"""Unit tests for the DepSky cloud-of-clouds protocols."""

import pytest

from repro.clouds.providers import make_cloud_of_clouds
from repro.common.errors import ObjectNotFoundError, QuorumNotReachedError
from repro.common.types import Permission
from repro.depsky.dataunit import DataUnitMetadata, VersionRecord
from repro.depsky.protocol import DepSkyClient
from repro.simenv.failures import FaultKind


def make_client(sim, alice, **kwargs):
    clouds = make_cloud_of_clouds(sim)
    return DepSkyClient(sim, clouds, alice, f=1, **kwargs), clouds


class TestDataUnitMetadata:
    def _record(self, version=1, digest="d1"):
        return VersionRecord(version=version, data_digest=digest, size=10,
                             block_digests=("a", "b", "c", "d"), created_at=0.0, writer="alice")

    def test_serialisation_round_trip(self):
        metadata = DataUnitMetadata(unit_id="u1", versions=[self._record()])
        parsed = DataUnitMetadata.from_bytes(metadata.to_bytes())
        assert parsed.unit_id == "u1"
        assert parsed.versions == metadata.versions

    def test_latest_and_next_version(self):
        metadata = DataUnitMetadata(unit_id="u")
        assert metadata.latest() is None and metadata.next_version() == 1
        metadata.add(self._record(1))
        metadata.add(self._record(3))
        assert metadata.latest().version == 3 and metadata.next_version() == 4

    def test_find_by_digest_prefers_most_recent(self):
        metadata = DataUnitMetadata(unit_id="u")
        metadata.add(self._record(1, "x"))
        metadata.add(self._record(2, "x"))
        assert metadata.find_by_digest("x").version == 2
        assert metadata.find_by_digest("missing") is None

    def test_remove_version(self):
        metadata = DataUnitMetadata(unit_id="u", versions=[self._record(1), self._record(2)])
        assert metadata.remove_version(1)
        assert not metadata.remove_version(1)
        assert [v.version for v in metadata.versions] == [2]

    def test_malformed_blob_raises(self):
        with pytest.raises(ValueError):
            DataUnitMetadata.from_bytes(b"byzantine garbage")


class TestDepSkyClient:
    def test_requires_enough_clouds(self, sim, alice):
        clouds = make_cloud_of_clouds(sim)[:3]
        with pytest.raises(ValueError):
            DepSkyClient(sim, clouds, alice, f=1)

    def test_write_then_read_matching(self, sim, alice):
        client, _ = make_client(sim, alice)
        data = b"dependable storage" * 100
        record = client.write("unit", data)
        sim.advance(3.0)
        result = client.read_matching("unit", record.data_digest)
        assert result.data == data
        assert len(result.clouds_used) == client.k

    def test_read_latest_returns_newest_version(self, sim, alice):
        client, _ = make_client(sim, alice)
        client.write("unit", b"version one")
        sim.advance(3.0)
        record = client.write("unit", b"version two")
        sim.advance(3.0)
        assert client.read_latest("unit").data == b"version two"
        assert record.version == 2

    def test_read_matching_old_version_still_possible(self, sim, alice):
        client, _ = make_client(sim, alice)
        first = client.write("unit", b"version one")
        sim.advance(3.0)
        client.write("unit", b"version two")
        sim.advance(3.0)
        assert client.read_matching("unit", first.data_digest).data == b"version one"

    def test_read_unknown_unit_raises(self, sim, alice):
        client, _ = make_client(sim, alice)
        with pytest.raises(ObjectNotFoundError):
            client.read_latest("ghost")
        with pytest.raises(ObjectNotFoundError):
            client.read_matching("ghost", "digest")

    def test_read_not_yet_visible_digest_raises(self, sim, alice):
        client, _ = make_client(sim, alice)
        record = client.write("unit", b"data")
        sim.advance(3.0)
        with pytest.raises(ObjectNotFoundError):
            client.read_matching("unit", "digest-that-does-not-exist" + record.data_digest[:8])

    def test_write_charges_quorum_latency(self, sim, alice):
        client, _ = make_client(sim, alice)
        before = sim.now()
        client.write("unit", b"x" * 100_000)
        assert sim.now() > before

    def test_charge_latency_can_be_disabled(self, sim, alice):
        client, _ = make_client(sim, alice, charge_latency=False)
        client.write("unit", b"x" * 100_000)
        assert sim.now() == 0.0

    def test_tolerates_one_unavailable_cloud(self, sim, alice):
        client, clouds = make_client(sim, alice)
        clouds[0].failures.add(FaultKind.UNAVAILABLE)
        data = b"still available" * 50
        record = client.write("unit", data)
        sim.advance(3.0)
        assert client.read_matching("unit", record.data_digest).data == data

    def test_tolerates_one_byzantine_cloud_on_read(self, sim, alice):
        client, clouds = make_client(sim, alice)
        data = b"integrity matters" * 50
        record = client.write("unit", data)
        sim.advance(3.0)
        clouds[0].failures.add(FaultKind.BYZANTINE)
        result = client.read_matching("unit", record.data_digest)
        assert result.data == data
        assert clouds[0].name not in result.clouds_used

    def test_healthy_read_takes_systematic_path(self, sim, alice):
        client, clouds = make_client(sim, alice)
        data = b"fast path" * 64
        client.write("unit", data)
        sim.advance(3.0)
        result = client.read_latest("unit")
        assert result.data == data
        assert result.path == "systematic"
        assert result.block_indices == tuple(range(client.k))
        assert result.clouds_used == [c.name for c in clouds[: client.k]]

    def test_read_latest_falls_back_to_coded_blocks(self, sim, alice):
        """Regression: with exactly n - k systematic clouds failed, the read
        must succeed via the parity blocks and record the fallback."""
        clouds = make_cloud_of_clouds(sim)
        client = DepSkyClient(sim, clouds, alice, f=1, preferred_quorums=False)
        data = b"coded fallback" * 50
        client.write("unit", data)
        sim.advance(3.0)
        failed = client.n - client.k  # = k for f=1: both systematic clouds
        for cloud in clouds[:failed]:
            cloud.failures.add(FaultKind.UNAVAILABLE)
        result = client.read_latest("unit")
        assert result.data == data
        assert result.path == "coded"
        assert result.block_indices == (2, 3)
        # clouds_used reflects the fallback: only non-failed, parity-holding clouds.
        assert result.clouds_used == [c.name for c in clouds[failed:]]
        for cloud in clouds[:failed]:
            assert cloud.name not in result.clouds_used

    def test_single_failed_preferred_cloud_uses_spillover_block(self, sim, alice):
        client, clouds = make_client(sim, alice)
        data = b"one preferred cloud down" * 20
        client.write("unit", data)
        sim.advance(3.0)
        clouds[0].failures.add(FaultKind.UNAVAILABLE)
        result = client.read_latest("unit")
        assert result.data == data
        assert result.path == "coded"
        assert result.block_indices == (1, 2)
        assert clouds[0].name not in result.clouds_used

    def test_two_unavailable_clouds_block_writes(self, sim, alice):
        client, clouds = make_client(sim, alice)
        clouds[0].failures.add(FaultKind.UNAVAILABLE)
        clouds[1].failures.add(FaultKind.UNAVAILABLE)
        with pytest.raises(QuorumNotReachedError):
            client.write("unit", b"too many failures")

    def test_preferred_quorum_skips_last_cloud(self, sim, alice):
        client, clouds = make_client(sim, alice)
        client.write("unit", b"z" * 1000)
        # The fourth cloud receives only the metadata object, no data block.
        last = clouds[-1]
        keys = [key for kind, key, _ in last.request_log if kind == "put"]
        assert all(key.endswith("/metadata") for key in keys)

    def test_without_preferred_quorums_every_cloud_stores_a_block(self, sim, alice):
        clouds = make_cloud_of_clouds(sim)
        client = DepSkyClient(sim, clouds, alice, f=1, preferred_quorums=False)
        client.write("unit", b"z" * 1000)
        for cloud in clouds:
            assert any("-b" in key for kind, key, _ in cloud.request_log if kind == "put")

    def test_storage_overhead_about_one_and_a_half(self, sim, alice):
        client, _ = make_client(sim, alice)
        data = b"q" * 200_000
        client.write("unit", data)
        sim.advance(3.0)  # stored objects become listable once propagated
        stored = client.stored_bytes("unit")
        assert 1.3 * len(data) < stored < 1.8 * len(data)

    def test_unencrypted_mode_stores_plaintext_blocks(self, sim, alice):
        clouds = make_cloud_of_clouds(sim)
        client = DepSkyClient(sim, clouds, alice, f=1, encrypt=False)
        data = b"public data" * 20
        record = client.write("unit", data)
        sim.advance(3.0)
        assert client.read_matching("unit", record.data_digest).data == data

    def test_confidentiality_no_single_cloud_holds_plaintext(self, sim, alice):
        client, clouds = make_client(sim, alice)
        secret = b"TOPSECRET" * 100
        client.write("unit", secret)
        for cloud in clouds:
            for _key, obj in cloud._objects.items():
                assert secret not in obj.data

    def test_list_versions(self, sim, alice):
        client, _ = make_client(sim, alice)
        client.write("unit", b"one")
        sim.advance(3.0)
        client.write("unit", b"two")
        sim.advance(3.0)
        versions = client.list_versions("unit")
        assert [v.version for v in versions] == [1, 2]
        assert client.list_versions("ghost") == []

    def test_delete_version_removes_blocks_and_metadata_entry(self, sim, alice):
        client, _ = make_client(sim, alice)
        first = client.write("unit", b"one")
        sim.advance(3.0)
        client.write("unit", b"two")
        sim.advance(3.0)
        client.delete_version("unit", first.version)
        sim.advance(3.0)
        assert [v.version for v in client.list_versions("unit")] == [2]
        with pytest.raises((ObjectNotFoundError, QuorumNotReachedError)):
            client.read_matching("unit", first.data_digest)

    def test_destroy_unit_removes_everything(self, sim, alice):
        client, clouds = make_client(sim, alice)
        client.write("unit", b"bye")
        sim.advance(3.0)
        client.destroy_unit("unit")
        for cloud in clouds:
            assert cloud.list_keys("depsky/unit/", alice).keys == []

    def test_set_acl_lets_grantee_read(self, sim, alice, bob):
        client, clouds = make_client(sim, alice)
        bob_full = bob
        for cloud in clouds:
            bob_full = bob_full.with_canonical_id(cloud.name, f"bob@{cloud.name}")
        record = client.write("unit", b"shared data" * 30)
        client.set_acl("unit", bob_full, Permission.READ)
        sim.advance(3.0)
        reader = DepSkyClient(sim, clouds, bob_full, f=1)
        assert reader.read_matching("unit", record.data_digest).data == b"shared data" * 30

    def test_acl_grant_covers_future_versions(self, sim, alice, bob):
        client, clouds = make_client(sim, alice)
        bob_full = bob
        for cloud in clouds:
            bob_full = bob_full.with_canonical_id(cloud.name, f"bob@{cloud.name}")
        client.write("unit", b"v1")
        client.set_acl("unit", bob_full, Permission.READ)
        record = client.write("unit", b"v2 new version")
        sim.advance(3.0)
        reader = DepSkyClient(sim, clouds, bob_full, f=1)
        assert reader.read_matching("unit", record.data_digest).data == b"v2 new version"
