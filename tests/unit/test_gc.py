"""Direct coverage of the garbage collector (§2.5.3) and of the non-blocking
close ordering — both previously exercised only through integration flows."""

from __future__ import annotations

import pytest

from repro.common.errors import CloudUnavailableError
from repro.core.config import GarbageCollectionPolicy
from repro.core.deployment import SCFSDeployment
from repro.scenarios.trace import TraceRecorder


def make_deployment(seed=61, variant="SCFS-CoC-B", **gc_overrides):
    policy = GarbageCollectionPolicy(
        written_bytes_threshold=gc_overrides.pop("written_bytes_threshold", 4096),
        versions_to_keep=gc_overrides.pop("versions_to_keep", 2),
        **gc_overrides,
    )
    return SCFSDeployment.for_variant(variant, seed=seed, gc=policy)


class TestActivationPolicy:
    def test_activates_only_past_the_written_bytes_threshold(self):
        deployment = make_deployment(written_bytes_threshold=10_000)
        fs = deployment.create_agent("alice")
        gc = fs.agent.gc
        fs.write_file("/small.txt", b"x" * 100)
        deployment.drain(1.0)
        assert gc.runs == 0  # 100 bytes < W: close did not trigger a run
        fs.write_file("/big.txt", b"x" * 20_000)
        deployment.drain(1.0)
        assert gc.runs == 1  # crossing W triggers exactly one background run

    def test_maybe_schedule_defers_a_background_run(self):
        deployment = make_deployment()
        fs = deployment.create_agent("alice")
        fs.write_file("/data.txt", b"x" * 8192)
        # close() already calls maybe_schedule; once the deferred task ran,
        # the byte counter is rearmed and a second schedule is a no-op.
        deployment.drain(1.0)
        assert fs.agent.gc.runs >= 1
        assert fs.agent.gc.maybe_schedule() is False

    def test_disabled_policy_never_activates(self):
        deployment = make_deployment(enabled=False)
        fs = deployment.create_agent("alice")
        fs.write_file("/data.txt", b"x" * 100_000)
        assert not fs.agent.gc.should_activate()


class TestCollection:
    def test_keeps_only_the_last_v_versions(self):
        deployment = make_deployment(versions_to_keep=2)
        fs = deployment.create_agent("alice")
        for i in range(5):
            fs.write_file("/versioned.txt", b"generation-%d" % i)
            deployment.drain(3.0)
        report = fs.collect_garbage()
        meta = fs.stat("/versioned.txt")
        refs = fs.agent.backend.list_versions(meta.file_id)
        assert len(refs) == 2
        assert meta.digest in {r.digest for r in refs}
        assert report.versions_deleted == 3
        assert report.bytes_reclaimed > 0

    def test_current_version_is_always_kept(self):
        deployment = make_deployment(versions_to_keep=1)
        fs = deployment.create_agent("alice")
        for i in range(3):
            fs.write_file("/current.txt", b"rev-%d" % i)
            deployment.drain(3.0)
        fs.collect_garbage()
        fs.agent.memory_cache.clear()
        fs.agent.disk_cache.clear()
        assert fs.read_file("/current.txt") == b"rev-2"

    def test_purges_user_deleted_files(self):
        deployment = make_deployment()
        fs = deployment.create_agent("alice")
        fs.write_file("/doomed.txt", b"payload" * 50)
        deployment.drain(3.0)
        meta = fs.stat("/doomed.txt")
        fs.unlink("/doomed.txt")
        report = fs.collect_garbage()
        assert report.deleted_files_purged == 1
        assert fs.agent.backend.list_versions(meta.file_id) == []
        assert not fs.exists("/doomed.txt")

    def test_purge_disabled_keeps_deleted_files_recoverable(self):
        deployment = make_deployment(purge_deleted_files=False)
        fs = deployment.create_agent("alice")
        fs.write_file("/kept.txt", b"payload")
        deployment.drain(3.0)
        meta = fs.stat("/kept.txt")
        fs.unlink("/kept.txt")
        report = fs.collect_garbage()
        assert report.deleted_files_purged == 0
        assert len(fs.agent.backend.list_versions(meta.file_id)) == 1

    def test_keep_interval_retains_newest_version_per_bucket(self):
        deployment = make_deployment(versions_to_keep=1, keep_interval_seconds=100.0)
        fs = deployment.create_agent("alice")
        for i in range(4):
            fs.write_file("/daily.txt", b"day-%d" % i)
            deployment.drain(0.0)
            deployment.sim.advance(100.0)  # one version per retention bucket
        fs.collect_garbage()
        meta = fs.stat("/daily.txt")
        refs = fs.agent.backend.list_versions(meta.file_id)
        # One version per 100 s bucket survives, not just the current one.
        assert len(refs) == 4

    def test_only_owned_files_are_collected(self):
        deployment = make_deployment(variant="SCFS-CoC-B")
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        alice.write_file("/mine.txt", b"alice data")
        bob.write_file("/yours.txt", b"bob data")
        deployment.drain(3.0)
        report = alice.collect_garbage()
        assert report.files_examined == 1  # only /mine.txt

    def test_backend_errors_are_reported_not_raised(self):
        deployment = make_deployment(versions_to_keep=1)
        fs = deployment.create_agent("alice")
        for i in range(3):
            fs.write_file("/flaky.txt", b"v%d" % i)
            deployment.drain(3.0)

        def explode(file_id, digest, anchored_digest=None):
            raise CloudUnavailableError("provider offline")

        fs.agent.backend.delete_version = explode
        report = fs.collect_garbage()
        assert report.errors and "provider offline" in report.errors[0]

    def test_gc_is_latency_free_for_the_foreground(self):
        deployment = make_deployment()
        fs = deployment.create_agent("alice")
        for i in range(3):
            fs.write_file("/quiet.txt", b"v%d" % i)
            deployment.drain(3.0)
        before = deployment.sim.now()
        fs.collect_garbage()
        assert deployment.sim.now() == before


class TestNonBlockingCloseOrdering:
    @pytest.mark.parametrize("variant", ["SCFS-CoC-NB", "SCFS-CoC-B"])
    def test_upload_then_commit_then_unlock(self, variant):
        """The commit pipeline preserves upload → metadata-update → unlock in
        both modes; in the non-blocking mode all three happen after close
        returned (§3.1)."""
        recorder = TraceRecorder()
        deployment = SCFSDeployment.for_variant(variant, seed=62)
        fs = deployment.create_agent("alice", events=recorder.record)
        handle = fs.open("/ordered.txt", "w", shared=True)
        fs.write(handle, b"payload" * 20)
        fs.close(handle)
        if variant.endswith("-NB"):
            # close returned before the cloud saw anything.
            assert recorder.count("upload") == 0
            assert fs.agent.stats.pending_uploads == 1
        deployment.drain(3.0)
        upload = next(recorder.by_kind("upload"))
        commit = next(recorder.by_kind("commit"))
        unlock = next(recorder.by_kind("unlock"))
        assert upload.seq < commit.seq < unlock.seq
        assert upload.get("background") is (variant.endswith("-NB"))

    def test_fsync_reaches_local_disk_only(self):
        recorder = TraceRecorder()
        deployment = SCFSDeployment.for_variant("SCFS-CoC-NB", seed=63)
        fs = deployment.create_agent("alice", events=recorder.record)
        handle = fs.open("/fsynced.txt", "w", shared=True)
        fs.write(handle, b"durable level 1")
        fs.fsync(handle)
        assert recorder.count("fsync") == 1
        assert recorder.count("upload") == 0  # nothing went to the cloud yet
        fs.close(handle)
        deployment.drain(3.0)
        assert recorder.count("commit") == 1
