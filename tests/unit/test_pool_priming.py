"""Pool priming (:mod:`repro.scenarios.pool`): interned files behave exactly
like organically written ones."""

from __future__ import annotations

import pytest

from repro.scenarios.pool import POOL_PAYLOAD, pool_file_id, prime_pool
from repro.scenarios.spec import ScenarioSpec
from repro.core.deployment import SCFSDeployment
from repro.simenv.environment import Simulation


def _spec(files=6, directories=2, partitions=2):
    return ScenarioSpec.generate_scale(
        seed=9, agents=2, files=files, ops_per_agent=1,
        directories=directories, partitions=partitions)


def _primed_deployment(spec):
    deployment = SCFSDeployment(spec.config(), sim=Simulation(seed=spec.seed))
    stats = prime_pool(deployment, spec)
    return deployment, stats


class TestPrimePool:
    def test_priming_counts(self):
        spec = _spec(files=6, directories=2)
        deployment, stats = _primed_deployment(spec)
        assert stats["files"] == 6
        # n metadata objects + (n - f) block objects per file.
        n, f = len(deployment.clouds), deployment.config.fault_tolerance
        assert stats["cloud_objects"] == 6 * (n + n - f)
        # One coordination entry per file plus one per pool directory.
        assert stats["coordination_entries"] == 6 + 2

    def test_primed_file_reads_back_for_any_agent(self):
        spec = _spec()
        deployment, _ = _primed_deployment(spec)
        fs = deployment.create_agent("carol")
        path = spec.shared_files[0]
        handle = fs.open(path, "r")
        assert fs.read(handle) == POOL_PAYLOAD
        fs.close(handle)
        listed = fs.readdir(path.rsplit("/", 1)[0])
        assert path.rsplit("/", 1)[1] in listed

    def test_primed_file_accepts_a_new_version(self):
        spec = _spec()
        deployment, _ = _primed_deployment(spec)
        fs = deployment.create_agent("dave")
        path = spec.shared_files[1]
        handle = fs.open(path, "w")
        fs.write(handle, b"overwritten by dave")
        fs.close(handle)
        deployment.sim.advance(60.0)  # let the puts propagate
        reader = deployment.create_agent("erin")
        handle = reader.open(path, "r")
        assert reader.read(handle) == b"overwritten by dave"
        reader.close(handle)

    def test_pool_ids_do_not_collide_with_fresh_ids(self):
        sim = Simulation(seed=3)
        fresh = {sim.fresh_id("file") for _ in range(100)}
        pooled = {pool_file_id(index) for index in range(100)}
        assert not fresh & pooled

    def test_priming_requires_encryption_off(self):
        spec = _spec()
        from dataclasses import replace

        config = replace(spec.config(), encrypt_data=True)
        deployment = SCFSDeployment(config, sim=Simulation(seed=1))
        with pytest.raises(ValueError, match="encrypt_data"):
            prime_pool(deployment, spec)

    def test_priming_requires_depspace_coordination(self):
        spec = _spec()
        from dataclasses import replace

        config = replace(spec.config(), coordination_kind="zookeeper",
                         coordination_partitions=1)
        deployment = SCFSDeployment(config, sim=Simulation(seed=1))
        with pytest.raises(TypeError, match="DepSpace"):
            prime_pool(deployment, spec)
