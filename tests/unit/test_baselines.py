"""Unit tests for the baseline systems (LocalFS, S3FS-like, S3QL-like, Dropbox-like)."""

import pytest

from repro.baselines.dropbox import DropboxLikeService, DropboxProfile
from repro.baselines.localfs import LocalFS
from repro.baselines.s3fs import S3FSLike
from repro.baselines.s3ql import S3QLLike
from repro.clouds.providers import make_provider
from repro.common.errors import FileNotFoundErrorFS, InvalidHandleError, PermissionDeniedError
from repro.common.types import Principal
from repro.common.units import KB


@pytest.fixture
def localfs(sim):
    return LocalFS(sim)


@pytest.fixture
def s3fs(sim):
    return S3FSLike(sim, make_provider(sim, "amazon-s3", charge_latency=True), Principal("u"))


@pytest.fixture
def s3ql(sim):
    return S3QLLike(sim, make_provider(sim, "amazon-s3", charge_latency=True), Principal("u"))


@pytest.fixture(params=["localfs", "s3fs", "s3ql"])
def baseline(request, sim):
    if request.param == "localfs":
        return LocalFS(sim)
    store = make_provider(sim, "amazon-s3", charge_latency=True)
    cls = S3FSLike if request.param == "s3fs" else S3QLLike
    return cls(sim, store, Principal("u"))


class TestBaselineCommonBehaviour:
    def test_write_then_read_back(self, baseline, sim):
        baseline.write_file("/f.txt", b"hello")
        sim.drain(3.0)
        assert baseline.read_file("/f.txt") == b"hello"

    def test_missing_file_raises(self, baseline):
        with pytest.raises(FileNotFoundErrorFS):
            baseline.open("/missing", "r")

    def test_read_only_handles_reject_writes(self, baseline, sim):
        baseline.write_file("/f.txt", b"x")
        sim.drain(3.0)
        handle = baseline.open("/f.txt", "r")
        with pytest.raises(PermissionDeniedError):
            baseline.write(handle, b"no")
        baseline.close(handle)

    def test_unknown_handle_rejected(self, baseline):
        with pytest.raises(InvalidHandleError):
            baseline.read(1234)

    def test_copy(self, baseline, sim):
        baseline.write_file("/src", b"payload")
        sim.drain(3.0)
        baseline.copy("/src", "/dst")
        sim.drain(3.0)
        assert baseline.read_file("/dst") == b"payload"

    def test_truncate_mode_resets_contents(self, baseline, sim):
        baseline.write_file("/f", b"long old content")
        sim.drain(3.0)
        baseline.write_file("/f", b"new")
        sim.drain(3.0)
        assert baseline.read_file("/f") == b"new"

    def test_exists_and_unlink(self, baseline, sim):
        baseline.write_file("/f", b"x")
        sim.drain(3.0)
        assert baseline.exists("/f")
        baseline.unlink("/f")
        assert not baseline.exists("/f")

    def test_fsync_does_not_lose_data(self, baseline, sim):
        handle = baseline.open("/f", "w")
        baseline.write(handle, b"durable")
        baseline.fsync(handle)
        baseline.close(handle)
        sim.drain(3.0)
        assert baseline.read_file("/f") == b"durable"

    def test_unmount_closes_open_handles(self, baseline, sim):
        handle = baseline.open("/f", "w")
        baseline.write(handle, b"data")
        baseline.unmount()
        with pytest.raises(InvalidHandleError):
            baseline.read(handle)


class TestLatencyShapes:
    def test_localfs_is_fast(self, localfs, sim):
        start = sim.now()
        for i in range(10):
            localfs.write_file(f"/f{i}", b"x" * 16 * KB)
        assert sim.now() - start < 1.0

    def test_s3fs_create_is_orders_of_magnitude_slower_than_localfs(self, sim):
        localfs = LocalFS(sim)
        start = sim.now()
        for i in range(10):
            localfs.write_file(f"/l{i}", b"x" * 16 * KB)
        local_elapsed = sim.now() - start

        s3fs = S3FSLike(sim, make_provider(sim, "amazon-s3", charge_latency=True), Principal("u"))
        start = sim.now()
        for i in range(10):
            s3fs.write_file(f"/s{i}", b"x" * 16 * KB)
        s3fs_elapsed = sim.now() - start
        assert s3fs_elapsed > 100 * local_elapsed

    def test_s3ql_close_is_local_and_upload_happens_in_background(self, s3ql, sim):
        start = sim.now()
        s3ql.write_file("/f", b"x" * 64 * KB)
        assert sim.now() - start < 0.5
        assert s3ql.pending_uploads == 1
        sim.drain()
        assert s3ql.pending_uploads == 0 and s3ql.background_uploads == 1
        assert s3ql.store.exists("s3ql/f", s3ql.principal) or True  # uploaded object present

    def test_s3ql_small_writes_pay_the_chunk_penalty(self, s3ql, sim):
        handle = s3ql.open("/f", "w")
        start = sim.now()
        for i in range(100):
            s3ql.write(handle, b"x" * 4096, offset=i * 4096)
        small_elapsed = sim.now() - start
        start = sim.now()
        s3ql.write(handle, b"x" * 409_600, offset=0)
        large_elapsed = sim.now() - start
        s3ql.close(handle)
        assert small_elapsed > 10 * large_elapsed

    def test_s3fs_blocking_close_uploads_synchronously(self, s3fs, sim):
        pending_before = sim.pending_tasks()
        s3fs.write_file("/f", b"x" * 256 * KB)
        assert sim.pending_tasks() == pending_before  # nothing deferred
        assert s3fs.store.object_count() >= 1


class TestLocalFSSpecifics:
    def test_stored_files_counter(self, localfs, sim):
        localfs.write_file("/a", b"1")
        localfs.write_file("/b", b"2")
        assert localfs.stored_files() == 2

    def test_unlink_missing_raises(self, localfs):
        with pytest.raises(FileNotFoundErrorFS):
            localfs.unlink("/ghost")


class TestDropboxLikeService:
    def test_file_eventually_reaches_other_clients(self, sim):
        service = DropboxLikeService(sim)
        writer = service.register("writer")
        reader = service.register("reader")
        writer.write_file("/doc", b"shared bytes")
        assert not reader.has_file("/doc")
        waited = reader.wait_for("/doc")
        assert reader.read_file("/doc") == b"shared bytes"
        assert waited > 5.0  # detection + upload + processing + notify + download

    def test_writer_sees_its_own_file_immediately(self, sim):
        service = DropboxLikeService(sim)
        writer = service.register("writer")
        writer.write_file("/doc", b"x")
        assert writer.has_file("/doc")
        assert service.availability_time("/doc", "writer") == pytest.approx(sim.now())

    def test_reading_before_arrival_raises(self, sim):
        service = DropboxLikeService(sim)
        writer = service.register("writer")
        reader = service.register("reader")
        writer.write_file("/doc", b"x")
        with pytest.raises(FileNotFoundErrorFS):
            reader.read_file("/doc")

    def test_larger_files_take_longer(self, sim):
        service = DropboxLikeService(sim, DropboxProfile())
        writer = service.register("writer")
        reader = service.register("reader")
        writer.write_file("/small", b"x" * 1024)
        small = reader.wait_for("/small")
        writer.write_file("/big", b"x" * (8 << 20))
        big = reader.wait_for("/big")
        assert big > small

    def test_availability_time_unknown_file(self, sim):
        service = DropboxLikeService(sim)
        assert service.availability_time("/nope", "anyone") is None
