"""Unit tests for the multi-file transaction layer (``repro.transactions``)."""

from __future__ import annotations

import pytest

from repro.common.errors import (
    FileNotFoundErrorFS,
    FileSystemError,
    IsADirectoryErrorFS,
    LockHeldError,
    TransactionAbortedError,
    TransactionConflictError,
    TransactionError,
)
from repro.common.types import Permission
from repro.core.deployment import SCFSDeployment
from repro.transactions import ABORTED, COMMITTED


def _shared_pair(variant: str = "SCFS-CoC-NB", **overrides):
    """A deployment with alice owning /shared/a + /shared/b, bob granted RW."""
    deployment = SCFSDeployment.for_variant(variant, seed=11, **overrides)
    alice = deployment.create_agent("alice")
    bob = deployment.create_agent("bob")
    alice.mkdir("/shared", shared=True)
    for path in ("/shared/a", "/shared/b"):
        alice.write_file(path, b"v1:" + path.encode(), shared=True)
        alice.setfacl(path, "bob", Permission.READ_WRITE)
    deployment.drain(2.0)
    return deployment, alice, bob


@pytest.fixture
def shared():
    return _shared_pair()


class TestCommit:
    def test_write_files_is_atomic_and_visible(self, shared):
        deployment, alice, bob = shared
        alice.write_files({"/shared/a": b"A2", "/shared/b": b"B2"})
        assert alice.read_file("/shared/a") == b"A2"
        assert bob.read_file("/shared/a") == b"A2"
        assert bob.read_file("/shared/b") == b"B2"

    def test_context_manager_commits_on_success(self, shared):
        _, alice, bob = shared
        with alice.transaction() as txn:
            before = txn.read("/shared/a")
            txn.write("/shared/a", before + b"+more")
        assert txn.status == COMMITTED
        assert bob.read_file("/shared/a") == before + b"+more"

    def test_reads_your_own_staged_writes(self, shared):
        _, alice, _ = shared
        txn = alice.begin_transaction()
        txn.write("/shared/a", b"staged")
        assert txn.read("/shared/a") == b"staged"
        # Nothing visible outside the transaction before commit.
        assert alice.read_file("/shared/a") != b"staged"
        txn.commit()
        assert alice.read_file("/shared/a") == b"staged"

    def test_empty_transaction_commits(self, shared):
        _, alice, _ = shared
        txn = alice.begin_transaction()
        txn.commit()
        assert txn.status == COMMITTED

    def test_read_only_transaction_commits(self, shared):
        _, alice, _ = shared
        txn = alice.begin_transaction()
        assert txn.read("/shared/a").startswith(b"v1:")
        txn.commit()
        assert txn.status == COMMITTED

    def test_write_to_missing_file_fails(self, shared):
        _, alice, _ = shared
        txn = alice.begin_transaction()
        txn.write("/shared/missing", b"data")
        with pytest.raises(FileNotFoundErrorFS):
            txn.commit()

    def test_read_of_directory_fails(self, shared):
        _, alice, _ = shared
        txn = alice.begin_transaction()
        with pytest.raises(IsADirectoryErrorFS):
            txn.read("/shared")

    def test_finished_transaction_refuses_operations(self, shared):
        _, alice, _ = shared
        txn = alice.begin_transaction()
        txn.commit()
        with pytest.raises(TransactionError):
            txn.read("/shared/a")
        with pytest.raises(TransactionError):
            txn.write("/shared/a", b"x")

    def test_pending_background_upload_is_flushed_first(self, shared):
        """A non-blocking close of this agent must anchor before the txn
        bases its read set on the metadata (else the background commit's
        unconditional update would clobber the txn's CAS)."""
        _, alice, bob = shared
        handle = alice.open("/shared/a", "w", shared=True)
        alice.write(handle, b"pre-txn")
        alice.close(handle)  # upload still in flight (NB mode)
        with alice.transaction() as txn:
            assert txn.read("/shared/a") == b"pre-txn"
            txn.write("/shared/a", b"post-txn")
        assert bob.read_file("/shared/a") == b"post-txn"


class TestConflicts:
    def test_stale_read_aborts_commit(self, shared):
        _, alice, bob = shared
        txn = alice.begin_transaction()
        txn.read("/shared/a")
        bob.write_file("/shared/a", b"bob won", shared=True)
        bob.agent.sim.drain(1.0)
        txn.write("/shared/a", b"alice lost")
        with pytest.raises(TransactionConflictError):
            txn.commit()
        assert txn.status == ABORTED
        assert alice.read_file("/shared/a") == b"bob won"

    def test_run_retries_conflicts_and_succeeds(self, shared):
        _, alice, bob = shared
        attempts = []

        def body(txn):
            attempts.append(txn.txn_id)
            data = txn.read("/shared/a")
            if len(attempts) == 1:
                bob.write_file("/shared/a", b"interference", shared=True)
                bob.agent.sim.drain(1.0)
            txn.write("/shared/a", data + b"!")

        alice.run_transaction(body)
        assert len(attempts) == 2
        assert alice.read_file("/shared/a") == b"interference!"

    def test_run_gives_up_after_max_attempts(self, shared):
        deployment, alice, bob = shared

        def body(txn):
            txn.read("/shared/a")
            bob.write_file("/shared/a", b"always racing", shared=True)
            bob.agent.sim.drain(1.0)
            txn.write("/shared/a", b"never lands")

        with pytest.raises(TransactionAbortedError):
            alice.run_transaction(body)
        assert alice.read_file("/shared/a") == b"always racing"

    def test_held_lock_is_a_conflict(self, shared):
        _, alice, bob = shared
        meta = bob.agent.metadata.get("/shared/a", use_cache=False)
        bob.agent.locks.acquire(meta)
        txn = alice.begin_transaction()
        txn.read("/shared/a")
        txn.write("/shared/a", b"blocked")
        with pytest.raises(TransactionConflictError):
            txn.commit()
        bob.agent.locks.release(meta)

    def test_abort_leaves_no_visible_state(self, shared):
        _, alice, bob = shared
        before_a = alice.read_file("/shared/a")
        before_b = alice.read_file("/shared/b")
        txn = alice.begin_transaction()
        txn.write("/shared/a", b"partial")
        txn.write("/shared/b", b"partial")
        txn.abort()
        assert txn.status == ABORTED
        assert alice.read_file("/shared/a") == before_a
        assert bob.read_file("/shared/b") == before_b

    def test_body_exception_aborts(self, shared):
        _, alice, _ = shared
        before = alice.read_file("/shared/a")
        with pytest.raises(RuntimeError):
            with alice.transaction() as txn:
                txn.write("/shared/a", b"doomed")
                raise RuntimeError("application bug")
        assert txn.status == ABORTED
        assert alice.read_file("/shared/a") == before


class TestIntentRecords:
    def test_committed_intent_lifecycle(self, shared):
        _, alice, _ = shared
        with alice.transaction() as txn:
            txn.write("/shared/a", b"recorded")
        record = alice.agent.transactions.intent_record(txn.txn_id)
        assert record is not None
        assert record["status"] == "committed"
        assert record["writer"] == "alice"
        assert [f[0] for f in record["files"]] == ["/shared/a"]
        old_version, new_version = record["files"][0][2], record["files"][0][3]
        assert new_version == old_version + 1

    def test_aborted_transaction_leaves_no_intent(self, shared):
        _, alice, _ = shared
        txn = alice.begin_transaction()
        txn.write("/shared/a", b"never intended")
        txn.abort()
        assert alice.agent.transactions.intent_record(txn.txn_id) is None


class TestRenameTree:
    def test_rename_tree_moves_a_nested_tree(self, shared):
        _, alice, _ = shared
        alice.mkdir("/shared/dir", shared=True)
        alice.mkdir("/shared/dir/sub", shared=True)
        alice.write_file("/shared/dir/f1", b"one", shared=True)
        alice.write_file("/shared/dir/sub/f2", b"two", shared=True)
        alice.agent.sim.drain(1.0)
        alice.rename_tree("/shared/dir", "/shared/moved")
        assert not alice.exists("/shared/dir")
        assert alice.read_file("/shared/moved/f1") == b"one"
        assert alice.read_file("/shared/moved/sub/f2") == b"two"

    def test_rename_tree_on_a_plain_file(self, shared):
        _, alice, _ = shared
        alice.rename_tree("/shared/a", "/shared/renamed")
        assert not alice.exists("/shared/a")
        assert alice.read_file("/shared/renamed").startswith(b"v1:")

    def test_rename_tree_conflicts_on_locked_file(self, shared):
        _, alice, bob = shared
        alice.mkdir("/shared/dir", shared=True)
        alice.write_file("/shared/dir/f1", b"one", shared=True)
        alice.setfacl("/shared/dir/f1", "bob", Permission.READ_WRITE)
        alice.agent.sim.drain(1.0)
        meta = bob.agent.metadata.get("/shared/dir/f1", use_cache=False)
        bob.agent.locks.acquire(meta)
        with pytest.raises(TransactionConflictError):
            alice.rename_tree("/shared/dir", "/shared/moved")
        assert alice.exists("/shared/dir/f1")
        bob.agent.locks.release(meta)

    def test_rename_tree_falls_back_without_coordination(self):
        deployment = SCFSDeployment.for_variant("SCFS-CoC-NS", seed=11)
        fs = deployment.create_agent("alice")
        assert fs.agent.transactions is None
        fs.write_file("/f", b"data")
        fs.rename_tree("/f", "/g")
        assert fs.read_file("/g") == b"data"
        with pytest.raises(FileSystemError):
            fs.begin_transaction()


class TestLeaseExpiry:
    def test_still_held_while_lease_valid(self):
        deployment, alice, _ = _shared_pair(lock_lease=10.0)
        meta = alice.agent.metadata.get("/shared/a", use_cache=False)
        alice.agent.locks.acquire(meta)
        assert alice.agent.locks.holds(meta)
        assert alice.agent.locks.still_held(meta)
        alice.agent.locks.release(meta)

    def test_still_held_false_after_lease_expiry(self):
        deployment, alice, _ = _shared_pair(lock_lease=10.0)
        meta = alice.agent.metadata.get("/shared/a", use_cache=False)
        alice.agent.locks.acquire(meta)
        deployment.sim.advance(11.0)
        # Local bookkeeping still says held; the service disagrees.
        assert alice.agent.locks.holds(meta)
        assert not alice.agent.locks.still_held(meta)

    def test_other_agent_takes_over_after_expiry(self):
        deployment, alice, bob = _shared_pair(lock_lease=10.0)
        meta = alice.agent.metadata.get("/shared/a", use_cache=False)
        alice.agent.locks.acquire(meta)
        bob_meta = bob.agent.metadata.get("/shared/a", use_cache=False)
        with pytest.raises(LockHeldError):
            bob.agent.locks.acquire(bob_meta)
        deployment.sim.advance(11.0)
        bob.agent.locks.acquire(bob_meta)
        assert bob.agent.locks.still_held(bob_meta)
        assert not alice.agent.locks.still_held(meta)

    def test_crashed_holders_lock_expires_not_leaks(self):
        """A crash never releases locks; the lease does.  The survivor is
        blocked exactly until the lease runs out, then writes normally."""
        deployment, alice, bob = _shared_pair(lock_lease=10.0)
        handle = alice.open("/shared/a", "w", shared=True)
        alice.write(handle, b"dying words")
        alice.close(handle)  # NB mode: lock held until the background commit
        alice.agent.crash()
        with pytest.raises(LockHeldError):
            bob.write_file("/shared/a", b"too early", shared=True)
        deployment.sim.advance(11.0)
        bob.write_file("/shared/a", b"after the lease", shared=True)
        deployment.drain(1.0)
        assert bob.read_file("/shared/a") == b"after the lease"

    def test_still_held_true_without_lock_service(self):
        deployment = SCFSDeployment.for_variant("SCFS-CoC-NS", seed=11)
        fs = deployment.create_agent("alice")
        fs.write_file("/f", b"data")
        meta = fs.agent.metadata.get("/f", use_cache=False)
        assert fs.agent.locks.still_held(meta)
