"""Unit tests of the scenario engine: specs, traces, invariant checkers,
determinism seams and regressions for the bugs the first sweeps caught."""

from __future__ import annotations

import pytest

from repro.common.types import Permission
from repro.coordination.replication import ReplicatedStateMachine
from repro.core.deployment import SCFSDeployment
from repro.scenarios.invariants import (
    check_commit_ordering,
    check_consistency_on_close,
    check_durability,
    check_mutual_exclusion,
    check_unexpected_errors,
)
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import FAULT_MIXES, ScenarioSpec, WorkloadMix
from repro.scenarios.trace import TraceRecorder
from repro.simenv.environment import Simulation, derive_rng
from repro.simenv.failures import FaultKind


# ---------------------------------------------------------------------------
# determinism seams
# ---------------------------------------------------------------------------


class TestDeterminismSeams:
    def test_derive_rng_is_reproducible_and_label_independent(self):
        a1 = derive_rng(7, "agent:alice")
        a2 = derive_rng(7, "agent:alice")
        b = derive_rng(7, "agent:bob")
        draws1 = [a1.random() for _ in range(8)]
        draws2 = [a2.random() for _ in range(8)]
        assert draws1 == draws2
        assert draws1 != [b.random() for _ in range(8)]

    def test_fork_rng_does_not_perturb_the_main_stream(self):
        sim1, sim2 = Simulation(seed=5), Simulation(seed=5)
        sim1.fork_rng("side").random()  # consuming a fork draws nothing from rng
        assert sim1.rng.random() == sim2.rng.random()

    def test_sim_fresh_id_restarts_per_simulation(self):
        first = Simulation(seed=1)
        assert first.fresh_id("file") == "file-00000000"
        assert first.fresh_id("file") == "file-00000001"
        second = Simulation(seed=1)
        assert second.fresh_id("file") == "file-00000000"

    def test_agent_file_ids_are_per_simulation(self):
        """Two same-seed deployments in one process mint identical file ids
        (a process-global counter would break byte-identical replay)."""
        ids = []
        for _ in range(2):
            deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=9)
            fs = deployment.create_agent("alice")
            fs.write_file("/a.txt", b"x")
            ids.append(fs.stat("/a.txt").file_id)
        assert ids[0] == ids[1]

    def test_same_seed_spec_generation_is_pure(self):
        assert ScenarioSpec.generate(3, mix="crash-hang") == \
            ScenarioSpec.generate(3, mix="crash-hang")

    def test_specs_differ_across_seeds(self):
        specs = {ScenarioSpec.generate(seed, mix="crash-hang").faults
                 for seed in range(6)}
        assert len(specs) > 1


# ---------------------------------------------------------------------------
# spec validation and fault budget
# ---------------------------------------------------------------------------


class TestSpecValidation:
    def test_unknown_mix_rejected(self):
        with pytest.raises(ValueError, match="unknown fault mix"):
            ScenarioSpec.generate(1, mix="nonsense")

    def test_unknown_workload_op_rejected(self):
        with pytest.raises(ValueError, match="unknown workload op"):
            WorkloadMix(weights=(("explode", 1.0),)).validate()

    def test_fault_budget_one_nongray_cloud_at_a_time(self):
        """Every generated mix keeps ≤1 cloud with a non-gray fault at any
        op-fraction instant (f = 1): overlapping damaging windows must target
        the same cloud."""
        damaging = {FaultKind.UNAVAILABLE.value, FaultKind.CORRUPTION.value,
                    FaultKind.BYZANTINE.value, FaultKind.DROP_WRITES.value}
        for mix in FAULT_MIXES:
            for seed in range(12):
                spec = ScenarioSpec.generate(seed, mix=mix)
                phases = [p for p in spec.faults
                          if p.target.startswith("cloud") and p.kind in damaging]
                for i, a in enumerate(phases):
                    for b in phases[i + 1:]:
                        overlap = (a.start_frac < b.end_frac
                                   and b.start_frac < a.end_frac)
                        assert not overlap or a.target == b.target, \
                            f"{mix} seed {seed}: {a} overlaps {b}"

    def test_persistent_damage_stays_on_one_cloud(self):
        """Corruption/drop-writes damage data *at rest*, so all such phases
        of one scenario must target the same (single adversarial) cloud."""
        persistent = {FaultKind.CORRUPTION.value, FaultKind.DROP_WRITES.value}
        for seed in range(12):
            spec = ScenarioSpec.generate(seed, mix="corrupt-byzantine")
            targets = {p.target for p in spec.faults if p.kind in persistent}
            assert len(targets) <= 1

    def test_repro_command_round_trips_the_seed(self):
        spec = ScenarioSpec.generate(99, mix="degraded-outage")
        assert "--seed 99" in spec.repro_command()
        assert "--mix degraded-outage" in spec.repro_command()


# ---------------------------------------------------------------------------
# trace recorder
# ---------------------------------------------------------------------------


class TestTraceRecorder:
    def test_sequence_numbers_are_total_and_monotone(self):
        recorder = TraceRecorder()
        for i in range(5):
            recorder.record("tick", time=float(i))
        assert [e.seq for e in recorder.events] == list(range(5))

    def test_fingerprint_is_sensitive_to_every_field(self):
        base = TraceRecorder()
        base.record("open", agent="alice", time=1.0, path="/f")
        same = TraceRecorder()
        same.record("open", agent="alice", time=1.0, path="/f")
        different = TraceRecorder()
        different.record("open", agent="alice", time=1.0000001, path="/f")
        assert base.fingerprint() == same.fingerprint()
        assert base.fingerprint() != different.fingerprint()

    def test_enum_fields_serialize_to_their_values(self):
        recorder = TraceRecorder()
        event = recorder.record("fault", time=0.0, fault=FaultKind.BYZANTINE)
        assert event.get("fault") == "byzantine"
        assert '"byzantine"' in event.to_json()


# ---------------------------------------------------------------------------
# the checkers must catch planted violations (non-vacuity)
# ---------------------------------------------------------------------------


def _commit(recorder, agent, fid, version, digest, time):
    recorder.record("upload", agent=agent, time=time, path="/f", file_id=fid,
                    digest=digest, version=version, background=True)
    recorder.record("commit", agent=agent, time=time, path="/f", file_id=fid,
                    digest=digest, version=version, background=True)


class TestCheckersCatchViolations:
    def test_mutual_exclusion_flags_two_holders(self):
        recorder = TraceRecorder()
        recorder.record("lock", agent="alice", time=1.0, lock="filelock:f1")
        recorder.record("lock", agent="bob", time=2.0, lock="filelock:f1")
        found = check_mutual_exclusion(recorder)
        assert len(found) == 1 and "alice" in found[0].message

    def test_mutual_exclusion_accepts_handover(self):
        recorder = TraceRecorder()
        recorder.record("lock", agent="alice", time=1.0, lock="filelock:f1")
        recorder.record("unlock", agent="alice", time=2.0, lock="filelock:f1")
        recorder.record("lock", agent="bob", time=2.0, lock="filelock:f1")
        assert check_mutual_exclusion(recorder) == []

    def test_stale_read_flagged(self):
        recorder = TraceRecorder()
        _commit(recorder, "alice", "f1", 1, "d1", time=1.0)
        _commit(recorder, "alice", "f1", 2, "d2", time=2.0)
        recorder.record("open", agent="bob", time=10.0, path="/f", file_id="f1",
                        digest="d1", version=1, served=True, began=10.0)
        found = check_consistency_on_close(recorder, staleness=0.5)
        assert len(found) == 1 and "version 2" in found[0].message

    def test_staleness_window_is_honoured(self):
        recorder = TraceRecorder()
        _commit(recorder, "alice", "f1", 1, "d1", time=1.0)
        _commit(recorder, "alice", "f1", 2, "d2", time=9.8)
        recorder.record("open", agent="bob", time=10.0, path="/f", file_id="f1",
                        digest="d1", version=1, served=True, began=10.0)
        assert check_consistency_on_close(recorder, staleness=0.5) == []

    def test_freshness_judged_at_snapshot_not_emission(self):
        """A slow data fetch between the metadata snapshot and the event must
        not turn a legal read into a violation (``began`` anchors the check)."""
        recorder = TraceRecorder()
        _commit(recorder, "alice", "f1", 1, "d1", time=1.0)
        _commit(recorder, "alice", "f1", 2, "d2", time=5.0)
        recorder.record("open", agent="bob", time=9.0, path="/f", file_id="f1",
                        digest="d1", version=1, served=True, began=4.9)
        assert check_consistency_on_close(recorder, staleness=0.5) == []

    def test_version_fork_flagged(self):
        recorder = TraceRecorder()
        recorder.record("close", agent="alice", time=1.0, path="/f", file_id="f1",
                        digest="dA", version=2, dirty=True)
        recorder.record("close", agent="bob", time=2.0, path="/f", file_id="f1",
                        digest="dB", version=2, dirty=True)
        found = check_consistency_on_close(recorder)
        assert found and "two digests" in found[0].message

    def test_unlock_before_commit_flagged(self):
        recorder = TraceRecorder()
        recorder.record("close", agent="alice", time=1.0, path="/f", file_id="f1",
                        digest="d1", version=1, dirty=True)
        recorder.record("unlock", agent="alice", time=1.5, lock="filelock:f1")
        _commit(recorder, "alice", "f1", 1, "d1", time=2.0)
        found = check_commit_ordering(recorder)
        assert found and "released the write lock" in found[0].message

    def test_commit_before_upload_flagged(self):
        recorder = TraceRecorder()
        recorder.record("commit", agent="alice", time=1.0, path="/f",
                        file_id="f1", digest="d1", version=1, background=True)
        recorder.record("upload", agent="alice", time=1.0, path="/f",
                        file_id="f1", digest="d1", version=1, background=True)
        found = check_commit_ordering(recorder)
        assert found and "before the upload" in found[0].message

    def test_correct_order_passes(self):
        recorder = TraceRecorder()
        recorder.record("close", agent="alice", time=1.0, path="/f", file_id="f1",
                        digest="d1", version=1, dirty=True)
        _commit(recorder, "alice", "f1", 1, "d1", time=2.0)
        recorder.record("unlock", agent="alice", time=2.0, lock="filelock:f1")
        assert check_commit_ordering(recorder) == []

    def test_unexpected_error_surfaces(self):
        recorder = TraceRecorder()
        recorder.record("op_error", agent="bob", time=1.0, op="read", path="/f",
                        benign=False, error="QuorumNotReachedError: boom")
        recorder.record("op_error", agent="bob", time=1.0, op="read", path="/f",
                        benign=True, error="LockHeldError: busy")
        found = check_unexpected_errors(recorder)
        assert len(found) == 1 and "boom" in found[0].message

    def test_durability_flags_a_version_wiped_from_the_clouds(self):
        deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=77)
        fs = deployment.create_agent("alice")
        fs.write_file("/doomed.txt", b"x" * 512)
        deployment.drain(2.0)
        meta = fs.stat("/doomed.txt")
        recorder = TraceRecorder()
        recorder.record("commit", agent="alice", time=deployment.sim.now(),
                        path="/doomed.txt", file_id=meta.file_id,
                        digest=meta.digest, version=1)
        assert check_durability(recorder, deployment) == []
        for cloud in deployment.clouds:
            for key in list(cloud._objects):
                if key.startswith(f"depsky/{meta.file_id}/v"):
                    del cloud._objects[key]
        found = check_durability(recorder, deployment)
        assert found and found[0].invariant == "durability"


# ---------------------------------------------------------------------------
# regressions for bugs the first sweeps caught
# ---------------------------------------------------------------------------


class TestSweepRegressions:
    def _shared_file(self, deployment, writer, reader, path):
        fs = deployment.agent_for(writer)
        fs.write_file(path, b"v1", shared=True)
        fs.setfacl(path, reader, Permission.READ_WRITE)
        deployment.drain(2.0)

    def test_reentrant_lock_held_until_last_release(self):
        """NB mode: two quick closes of the same file keep the write lock
        held until the *second* background commit completes (refcounting) —
        the first completion must not hand the lock to another client while
        this one still has a dirty handle pending."""
        deployment = SCFSDeployment.for_variant("SCFS-CoC-NB", seed=41)
        alice = deployment.create_agent("alice")
        deployment.create_agent("bob")
        self._shared_file(deployment, "alice", "bob", "/contended.txt")

        handle = alice.open("/contended.txt", "w")
        alice.write(handle, b"v2")
        alice.close(handle)
        handle = alice.open("/contended.txt", "w")
        alice.write(handle, b"v3")
        alice.close(handle)
        lock_name = alice.agent.locks.lock_name(alice.agent.stat("/contended.txt"))
        assert alice.agent.locks._manager.hold_count(lock_name) == 2
        deployment.drain(3.0)
        assert alice.agent.locks._manager.hold_count(lock_name) == 0
        assert alice.read_file("/contended.txt") == b"v3"

    def test_writer_revalidates_metadata_after_taking_the_lock(self):
        """TOCTOU regression: the lock acquisition round trip can overlap the
        previous holder's in-flight commit; the writer must base its version
        on the post-acquisition anchor state, never forking the history."""
        deployment = SCFSDeployment.for_variant("SCFS-CoC-NB", seed=43)
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        self._shared_file(deployment, "alice", "bob", "/handoff.txt")
        versions = set()
        for writer, payload in ((alice, b"from-alice"), (bob, b"from-bob")):
            handle = writer.open("/handoff.txt", "w")
            writer.write(handle, payload)
            writer.close(handle)
            deployment.drain(2.0)
            versions.add(writer.stat("/handoff.txt").data_version)
        assert versions == {2, 3}
        assert bob.read_file("/handoff.txt") == b"from-bob"

    def test_two_commits_within_propagation_window_do_not_collide(self):
        """Eventual-consistency regression: DepSky metadata re-read within the
        propagation window of the previous commit must not mint the same
        version number twice (anchored min_version + last-written cache)."""
        deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=44)
        alice = deployment.create_agent("alice")
        payloads = [b"gen-%d" % i for i in range(4)]
        for payload in payloads:
            alice.write_file("/rapid.txt", payload)  # no drain in between
        meta = alice.stat("/rapid.txt")
        backend = alice.agent.backend
        versions = [r.version for r in backend.client.list_versions(meta.file_id)]
        assert len(versions) == len(set(versions)) == len(payloads)
        alice.agent.memory_cache.clear()
        alice.agent.disk_cache.clear()
        assert alice.read_file("/rapid.txt") == payloads[-1]

    def test_gc_never_erases_the_anchored_version(self):
        """GC regression: collecting immediately after a commit (metadata not
        yet propagated) must not rewrite the DepSky metadata from the stale
        history and erase the anchored version."""
        deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=45)
        alice = deployment.create_agent("alice")
        for i in range(5):
            alice.write_file("/churn.txt", b"ver-%d" % i)
        alice.collect_garbage()  # runs at the commit instant — worst case
        alice.agent.memory_cache.clear()
        alice.agent.disk_cache.clear()
        assert alice.read_file("/churn.txt") == b"ver-4"

    def test_corrupted_share_does_not_poison_the_key(self):
        """Share-integrity regression: a cloud corrupting blobs at write time
        flips the stored share header; the block digest covers the whole blob,
        so the bad copy is rejected instead of poisoning key reconstruction."""
        deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=46)
        deployment.clouds[0].failures.add(FaultKind.CORRUPTION)
        alice = deployment.create_agent("alice")
        alice.write_file("/secret.txt", b"sealed" * 100)
        deployment.clouds[0].failures.clear()
        deployment.drain(2.0)
        alice.agent.memory_cache.clear()
        alice.agent.disk_cache.clear()
        assert alice.read_file("/secret.txt") == b"sealed" * 100

    def test_replica_recovery_transfers_state(self):
        """BFT regression: a replica that missed commands while crashed must
        not rejoin with stale state (invoke answers from the first correct
        replica, which recovery makes the recovered one)."""
        sim = Simulation(seed=47)

        class Register:
            def __init__(self):
                self.value = None

            def apply(self, command):
                op, args, _kwargs = command
                if op == "set":
                    self.value = args[0]
                return self.value

        rsm = ReplicatedStateMachine(sim, Register, f=1, charge_latency=False)
        rsm.crash_replica(0)
        rsm.invoke("set", "committed-during-crash")
        rsm.recover_replica(0)
        assert rsm.invoke("get") == "committed-during-crash"

    def test_scenario_runner_smoke(self):
        result = run_scenario(123, mix="fault-free", agents=2, ops_per_agent=6)
        assert result.ok, "\n" + result.report()
        kinds = {event.kind for event in result.trace.events}
        assert {"open", "close", "commit", "quorum", "setup_done",
                "scenario_done"} <= kinds
