"""Unit tests for the simulation environment (clock, scheduler, latency, failures)."""

import pytest

from repro.simenv.clock import SimClock, Stopwatch
from repro.simenv.environment import Simulation
from repro.simenv.failures import FailureSchedule, FaultKind
from repro.simenv.latency import LatencyModel, NetworkProfile, MEMORY_LATENCY, DISK_LATENCY


class TestSimClock:
    def test_starts_at_zero_by_default(self):
        assert SimClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert SimClock(5.0).now() == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            SimClock(-1.0)

    def test_advance_moves_time_forward(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == pytest.approx(2.0)

    def test_advance_rejects_negative(self):
        clock = SimClock()
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_advance_zero_is_noop(self):
        clock = SimClock(3.0)
        assert clock.advance(0) == 3.0

    def test_advance_to_future_deadline(self):
        clock = SimClock()
        clock.advance_to(7.0)
        assert clock.now() == 7.0

    def test_advance_to_past_deadline_raises(self):
        clock = SimClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)
        assert clock.now() == 10.0

    def test_advance_to_current_time_is_noop(self):
        clock = SimClock(10.0)
        seen = []
        clock.subscribe(lambda old, new: seen.append((old, new)))
        assert clock.advance_to(10.0) == 10.0
        assert seen == []

    def test_observers_receive_old_and_new_time(self):
        clock = SimClock()
        seen = []
        clock.subscribe(lambda old, new: seen.append((old, new)))
        clock.advance(2.0)
        assert seen == [(0.0, 2.0)]

    def test_unsubscribe_stops_notifications(self):
        clock = SimClock()
        seen = []
        observer = lambda old, new: seen.append(new)  # noqa: E731
        clock.subscribe(observer)
        clock.advance(1.0)
        clock.unsubscribe(observer)
        clock.advance(1.0)
        assert seen == [1.0]

    def test_stopwatch_measures_elapsed_time(self):
        clock = SimClock()
        watch = clock.stopwatch()
        clock.advance(4.0)
        assert watch.elapsed() == pytest.approx(4.0)

    def test_stopwatch_reset(self):
        clock = SimClock()
        watch = Stopwatch(clock)
        clock.advance(4.0)
        watch.reset()
        clock.advance(1.0)
        assert watch.elapsed() == pytest.approx(1.0)


class TestSimulation:
    def test_same_seed_same_random_sequence(self):
        a, b = Simulation(seed=7), Simulation(seed=7)
        assert [a.rng.random() for _ in range(5)] == [b.rng.random() for _ in range(5)]

    def test_scheduled_task_runs_when_time_reaches_deadline(self):
        sim = Simulation()
        ran = []
        sim.schedule(2.0, lambda: ran.append(sim.now()))
        sim.advance(1.0)
        assert ran == []
        sim.advance(1.5)
        assert ran == [pytest.approx(2.5)]

    def test_tasks_run_in_deadline_order(self):
        sim = Simulation()
        order = []
        sim.schedule(3.0, lambda: order.append("late"))
        sim.schedule(1.0, lambda: order.append("early"))
        sim.advance(5.0)
        assert order == ["early", "late"]

    def test_cancelled_task_does_not_run(self):
        sim = Simulation()
        ran = []
        handle = sim.schedule(1.0, lambda: ran.append(1))
        handle.cancel()
        sim.advance(2.0)
        assert ran == [] and handle.cancelled

    def test_pending_tasks_counts_only_live_tasks(self):
        sim = Simulation()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        assert sim.pending_tasks() == 1

    def test_drain_runs_everything(self):
        sim = Simulation()
        ran = []
        sim.schedule(1.0, lambda: ran.append("a"))
        sim.schedule(10.0, lambda: ran.append("b"))
        sim.drain()
        assert ran == ["a", "b"]
        assert sim.pending_tasks() == 0

    def test_drain_extra_advances_past_last_deadline(self):
        sim = Simulation()
        sim.schedule(1.0, lambda: None)
        sim.drain(extra=2.0)
        assert sim.now() == pytest.approx(3.0)

    def test_task_scheduled_by_task_runs_on_later_advance(self):
        sim = Simulation()
        ran = []

        def outer():
            sim.schedule(1.0, lambda: ran.append("inner"))

        sim.schedule(1.0, outer)
        sim.drain()
        assert ran == ["inner"]

    def test_schedule_rejects_negative_delay(self):
        sim = Simulation()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_run_until_drains_tasks_at_their_own_deadlines(self):
        # The PR 6 bugfix: run_until used to jump straight to the deadline, so
        # tasks observed the *deadline* time instead of their scheduled time.
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.now()))
        sim.schedule(2.5, lambda: seen.append(sim.now()))
        sim.run_until(4.0)
        assert seen == [pytest.approx(1.0), pytest.approx(2.5)]
        assert sim.now() == pytest.approx(4.0)

    def test_run_until_rejects_past_deadline(self):
        sim = Simulation()
        sim.advance(5.0)
        with pytest.raises(ValueError):
            sim.run_until(2.0)

    def test_run_until_runs_tasks_scheduled_by_tasks(self):
        sim = Simulation()
        seen = []

        def outer():
            sim.schedule(1.0, lambda: seen.append(sim.now()))

        sim.schedule(1.0, outer)
        sim.run_until(3.0)
        assert seen == [pytest.approx(2.0)]

    def test_run_until_leaves_later_tasks_pending(self):
        sim = Simulation()
        sim.schedule(10.0, lambda: None)
        sim.run_until(5.0)
        assert sim.pending_tasks() == 1
        assert sim.now() == pytest.approx(5.0)

    def test_step_advances_to_next_event_only(self):
        sim = Simulation()
        seen = []
        sim.schedule(1.0, lambda: seen.append("a"))
        sim.schedule(3.0, lambda: seen.append("b"))
        assert sim.step() is True
        assert seen == ["a"] and sim.now() == pytest.approx(1.0)
        assert sim.step() is True
        assert seen == ["a", "b"] and sim.now() == pytest.approx(3.0)
        assert sim.step() is False

    def test_step_skips_cancelled_heads(self):
        sim = Simulation()
        seen = []
        handle = sim.schedule(1.0, lambda: seen.append("cancelled"))
        sim.schedule(2.0, lambda: seen.append("live"))
        handle.cancel()
        assert sim.step() is True
        assert seen == ["live"] and sim.now() == pytest.approx(2.0)

    def test_run_all_visits_each_event_time(self):
        sim = Simulation()
        seen = []
        for delay in (3.0, 1.0, 2.0):
            sim.schedule(delay, lambda: seen.append(sim.now()))
        steps = sim.run_all()
        assert steps == 3
        assert seen == [pytest.approx(1.0), pytest.approx(2.0), pytest.approx(3.0)]

    def test_run_all_bounds_task_storms(self):
        sim = Simulation()

        def respawn():
            sim.schedule(1.0, respawn)

        sim.schedule(1.0, respawn)
        with pytest.raises(RuntimeError):
            sim.run_all(max_events=10)

    def test_equal_deadline_tasks_run_in_schedule_order(self):
        sim = Simulation()
        order = []
        sim.schedule(1.0, lambda: order.append("first"))
        sim.schedule(1.0, lambda: order.append("second"))
        sim.schedule(1.0, lambda: order.append("third"))
        sim.run_all()
        assert order == ["first", "second", "third"]

    def test_schedule_at_absolute_time_runs_at_or_after_deadline(self):
        sim = Simulation()
        ran = []
        sim.advance(5.0)
        sim.schedule_at(6.0, lambda: ran.append(sim.now()))
        sim.advance(0.5)
        assert ran == []
        # Tasks run as soon as the clock passes their deadline; within a single
        # coarse advance they observe the post-advance time.
        sim.advance(1.5)
        assert len(ran) == 1 and ran[0] >= 6.0


class TestLatencyModel:
    def test_base_only(self):
        assert LatencyModel(base=0.1).sample(10_000) == pytest.approx(0.1)

    def test_bandwidth_term_scales_with_payload(self):
        model = LatencyModel(base=0.0, bandwidth=1000.0)
        assert model.sample(500) == pytest.approx(0.5)

    def test_jitter_stays_within_bounds(self):
        sim = Simulation(seed=3)
        model = LatencyModel(base=1.0, jitter=0.2)
        for _ in range(100):
            assert 0.8 <= model.sample(0, sim.rng) <= 1.2

    def test_no_rng_means_no_jitter(self):
        model = LatencyModel(base=1.0, jitter=0.5)
        assert model.sample(0, None) == pytest.approx(1.0)

    def test_scaled_multiplies_base(self):
        model = LatencyModel(base=2.0, bandwidth=10.0).scaled(0.5)
        assert model.base == pytest.approx(1.0)
        assert model.bandwidth == 10.0

    def test_memory_faster_than_disk(self):
        assert MEMORY_LATENCY.sample(4096) < DISK_LATENCY.sample(4096)

    def test_network_profile_with_jitter_preserves_bases(self):
        profile = NetworkProfile(name="p").with_jitter(0.3)
        assert profile.object_get.jitter == 0.3
        assert profile.object_get.base == NetworkProfile().object_get.base


class TestFailureSchedule:
    def test_empty_schedule_has_no_active_faults(self):
        assert FailureSchedule().active(10.0) == set()

    def test_window_bounds_are_half_open(self):
        schedule = FailureSchedule()
        schedule.add(FaultKind.UNAVAILABLE, start=1.0, end=2.0)
        assert not schedule.is_active(FaultKind.UNAVAILABLE, 0.5)
        assert schedule.is_active(FaultKind.UNAVAILABLE, 1.0)
        assert schedule.is_active(FaultKind.UNAVAILABLE, 1.999)
        assert not schedule.is_active(FaultKind.UNAVAILABLE, 2.0)

    def test_default_window_is_forever(self):
        schedule = FailureSchedule()
        schedule.add(FaultKind.CORRUPTION)
        assert schedule.is_active(FaultKind.CORRUPTION, 1e9)

    def test_multiple_kinds_can_overlap(self):
        schedule = FailureSchedule()
        schedule.add(FaultKind.UNAVAILABLE, 0, 10)
        schedule.add(FaultKind.BYZANTINE, 5, 15)
        assert schedule.active(7.0) == {FaultKind.UNAVAILABLE, FaultKind.BYZANTINE}

    def test_clear_removes_everything(self):
        schedule = FailureSchedule()
        schedule.add(FaultKind.DROP_WRITES)
        schedule.clear()
        assert schedule.active(0.0) == set()
