"""Self-tests for the history-based serializability / linearizability checkers.

A checker that never fires is worse than no checker: the scenario sweeps only
prove anything if the invariants actually reject broken histories.  Each test
here hand-writes a small history — the classic anomalies (lost update, write
skew, torn multi-file commit, forked CAS register) and their legal
counterparts — and asserts the checkers flag exactly the broken ones.
"""

from __future__ import annotations

from repro.scenarios.invariants import (
    check_all,
    check_consistency_on_close,
    check_mutual_exclusion,
    check_serializability,
    check_version_linearizability,
)
from repro.scenarios.trace import TraceRecorder


def _commit(trace: TraceRecorder, time: float, agent: str, fid: str,
            version: int, digest: str = "", txn: str | None = None) -> None:
    fields = dict(file_id=fid, version=version,
                  digest=digest or f"digest-{fid}-{version}",
                  path=f"/shared/{fid}")
    if txn is not None:
        fields["txn"] = txn
    trace.record("commit", agent=agent, time=time, **fields)


def _txn_commit(trace: TraceRecorder, time: float, agent: str, txn: str,
                reads: list[tuple[str, int]],
                writes: list[tuple[str, int]]) -> None:
    """Record a txn_commit plus the per-file commit events a real one emits."""
    for fid, version in writes:
        _commit(trace, time, agent, fid, version,
                digest=f"digest-{txn}-{fid}-{version}", txn=txn)
    trace.record(
        "txn_commit", agent=agent, time=time, txn=txn,
        reads=[[f"/shared/{fid}", fid, version] for fid, version in reads],
        writes=[[f"/shared/{fid}", fid, version, f"digest-{txn}-{fid}-{version}"]
                for fid, version in writes],
    )


def _of(violations, invariant: str):
    return [v for v in violations if v.invariant == invariant]


# ---------------------------------------------------------------------- legal


def test_serial_history_passes() -> None:
    trace = TraceRecorder()
    _commit(trace, 1.0, "alice", "a", 1)
    _commit(trace, 1.0, "alice", "b", 1)
    _txn_commit(trace, 2.0, "bob", "t1", reads=[("a", 1), ("b", 1)],
                writes=[("a", 2), ("b", 2)])
    _txn_commit(trace, 3.0, "carol", "t2", reads=[("a", 2), ("b", 2)],
                writes=[("a", 3), ("b", 3)])
    assert check_serializability(trace) == []
    assert check_version_linearizability(trace) == []
    # check_all runs both new checkers (the minimal history has no uploads,
    # so only the commit-ordering bookkeeping checker may remark on it).
    assert not _of(check_all(trace), "serializability")
    assert not _of(check_all(trace), "linearizability")


def test_concurrent_but_serializable_history_passes() -> None:
    """Disjoint write sets with shared reads serialize fine (no anti-cycle)."""
    trace = TraceRecorder()
    _commit(trace, 1.0, "alice", "a", 1)
    _commit(trace, 1.0, "alice", "b", 1)
    # Both read the other's file but only one of them writes each file.
    _txn_commit(trace, 2.0, "bob", "t1", reads=[("a", 1)], writes=[("b", 2)])
    _txn_commit(trace, 3.0, "carol", "t2", reads=[("b", 2)], writes=[("a", 2)])
    assert check_serializability(trace) == []


def test_history_starting_midway_passes() -> None:
    """Pooled scenarios prime files at v>0: the first observed version of a
    file is accepted as-is, only the continuation must be gapless."""
    trace = TraceRecorder()
    _commit(trace, 1.0, "alice", "a", 7)
    _commit(trace, 2.0, "bob", "a", 8)
    assert check_version_linearizability(trace) == []


# ------------------------------------------------------------------ anomalies


def test_lost_update_is_flagged() -> None:
    """Two read-modify-writes from the same snapshot: the second clobbers the
    first's update (rw + ww cycle)."""
    trace = TraceRecorder()
    _commit(trace, 1.0, "alice", "a", 1)
    _txn_commit(trace, 2.0, "bob", "t1", reads=[("a", 1)], writes=[("a", 2)])
    _txn_commit(trace, 3.0, "carol", "t2", reads=[("a", 1)], writes=[("a", 3)])
    found = check_serializability(trace)
    assert any("not serializable" in v.message for v in found)


def test_write_skew_is_flagged() -> None:
    """The textbook write-skew: each txn reads both files, writes the other."""
    trace = TraceRecorder()
    _commit(trace, 1.0, "alice", "a", 1)
    _commit(trace, 1.0, "alice", "b", 1)
    _txn_commit(trace, 2.0, "bob", "t1", reads=[("a", 1), ("b", 1)],
                writes=[("a", 2)])
    _txn_commit(trace, 2.5, "carol", "t2", reads=[("a", 1), ("b", 1)],
                writes=[("b", 2)])
    found = check_serializability(trace)
    assert any("not serializable" in v.message for v in found)


def test_torn_multi_file_commit_is_flagged() -> None:
    """A per-file commit tagged with a transaction that never committed."""
    trace = TraceRecorder()
    _commit(trace, 1.0, "alice", "a", 1)
    _commit(trace, 1.0, "alice", "b", 1)
    # t1 anchored file a but died before file b and before its txn_commit.
    _commit(trace, 2.0, "bob", "a", 2, txn="t1")
    found = check_serializability(trace)
    assert any("torn transactional commit" in v.message for v in found)


def test_version_fork_is_flagged() -> None:
    """Two writers anchoring the same (file, version) — the CAS was bypassed."""
    trace = TraceRecorder()
    _commit(trace, 1.0, "alice", "a", 1)
    _commit(trace, 2.0, "bob", "a", 2, digest="digest-bob")
    _commit(trace, 2.5, "carol", "a", 2, digest="digest-carol")
    found = check_serializability(trace)
    assert any("version fork" in v.message for v in found)
    # The forked register is also non-linearizable (duplicate version).
    assert _of(check_version_linearizability(trace), "linearizability")


def test_read_of_unwritten_version_is_flagged() -> None:
    trace = TraceRecorder()
    _commit(trace, 1.0, "alice", "a", 1)
    _txn_commit(trace, 2.0, "bob", "t1", reads=[("a", 5)], writes=[])
    found = check_serializability(trace)
    assert any("no recorded commit anchored" in v.message for v in found)


def test_nonlinearizable_cas_duplicate_is_flagged() -> None:
    trace = TraceRecorder()
    _commit(trace, 1.0, "alice", "a", 1)
    _commit(trace, 2.0, "bob", "a", 2)
    _commit(trace, 3.0, "carol", "a", 2, digest="digest-other")
    found = check_version_linearizability(trace)
    assert any("duplicate/regression" in v.message for v in found)


def test_nonlinearizable_cas_gap_is_flagged() -> None:
    trace = TraceRecorder()
    _commit(trace, 1.0, "alice", "a", 1)
    _commit(trace, 2.0, "bob", "a", 4)
    found = check_version_linearizability(trace)
    assert any("gap" in v.message for v in found)


def test_version_regression_is_flagged() -> None:
    trace = TraceRecorder()
    _commit(trace, 1.0, "alice", "a", 3)
    _commit(trace, 2.0, "bob", "a", 2)
    assert _of(check_version_linearizability(trace), "linearizability")


# --------------------------------------------------- crash / lease semantics


def test_lock_takeover_before_lease_expiry_is_flagged() -> None:
    trace = TraceRecorder()
    trace.record("lock", agent="alice", time=10.0, lock="lock:a")
    trace.record("lock", agent="bob", time=20.0, lock="lock:a")
    found = check_mutual_exclusion(trace, lock_lease=25.0)
    assert any("while alice still held it" in v.message for v in found)


def test_lock_takeover_after_lease_expiry_is_legal() -> None:
    trace = TraceRecorder()
    trace.record("lock", agent="alice", time=10.0, lock="lock:a")
    trace.record("lock", agent="bob", time=36.0, lock="lock:a")
    assert check_mutual_exclusion(trace, lock_lease=25.0) == []
    # The default (infinite lease) keeps the strict rule of the plain mixes.
    assert check_mutual_exclusion(trace)


def test_crashed_agents_uncommitted_close_is_not_a_violation() -> None:
    """The documented non-blocking data-loss window: a dirty close whose
    commit never landed because the agent crashed."""
    trace = TraceRecorder()
    _commit(trace, 1.0, "alice", "a", 1)
    trace.record("close", agent="alice", time=2.0, file_id="a", version=2,
                 digest="digest-lost", path="/shared/a")
    trace.record("agent_crash", agent="alice", time=2.1, lease=25.0)
    # After the lease, bob re-writes version 2 with different content.
    _commit(trace, 30.0, "bob", "a", 2, digest="digest-bob")
    assert check_consistency_on_close(trace) == []


def test_committed_close_survives_a_later_crash() -> None:
    """Only closes whose commit was wiped by the crash are forgiven — a close
    whose commit landed first stays authoritative."""
    trace = TraceRecorder()
    trace.record("close", agent="alice", time=2.0, file_id="a", version=1,
                 digest="digest-x", path="/shared/a")
    _commit(trace, 2.5, "alice", "a", 1, digest="digest-x")
    trace.record("agent_crash", agent="alice", time=3.0, lease=25.0)
    _commit(trace, 30.0, "bob", "a", 1, digest="digest-y")
    found = check_consistency_on_close(trace)
    assert any("two digests" in v.message for v in found)
