"""Unit tests for cloud health tracking: suspect lists, probes, config plumbing."""

import pytest

from repro.clouds.dispatch import DispatchPolicy, QuorumRequest, dispatch_quorum
from repro.clouds.health import (
    CloudHealthTracker,
    CloudStatus,
    HealthStats,
    SuspicionPolicy,
)
from repro.clouds.providers import make_cloud_of_clouds, make_provider
from repro.common.errors import (
    CloudUnavailableError,
    ConfigurationError,
    IntegrityError,
)
from repro.common.types import Principal
from repro.core.backend import CloudOfCloudsBackend, ReadPathStats, SingleCloudBackend
from repro.core.config import DispatchPolicyConfig, SCFSConfig
from repro.core.consistency import AnchoredStorage, DictConsistencyAnchor
from repro.core.deployment import SCFSDeployment
from repro.crypto.hashing import content_digest
from repro.depsky.protocol import DepSkyClient
from repro.simenv.environment import Simulation
from repro.simenv.failures import FailureSchedule, FaultKind


def request(cloud: str, latency: float = 1.0, fail: bool = False, counter: dict | None = None):
    """Synthetic quorum request with a fixed latency."""

    def send():
        if counter is not None:
            counter[cloud] = counter.get(cloud, 0) + 1
        if fail:
            raise CloudUnavailableError(cloud)
        return cloud

    return QuorumRequest(cloud=cloud, send=send, latency=lambda _value: latency)


def tracker(threshold=2, backoff=10.0, factor=2.0, cap=40.0) -> CloudHealthTracker:
    return CloudHealthTracker(SuspicionPolicy(
        threshold=threshold, probe_backoff=backoff,
        probe_backoff_factor=factor, probe_backoff_max=cap,
    ))


class TestSuspicionLifecycle:
    def test_consecutive_failures_suspect_then_success_recovers(self):
        t = tracker(threshold=3)
        for _ in range(2):
            t.observe("a", succeeded=False, latency=0.5, now=0.0)
        assert not t.is_suspected("a")
        t.observe("a", succeeded=False, latency=0.5, now=1.0)
        assert t.is_suspected("a")
        assert t.status("a") is CloudStatus.SUSPECTED
        assert t.suspicions == 1
        t.observe("a", succeeded=True, latency=0.2, now=2.0)
        assert not t.is_suspected("a")
        assert t.recoveries == 1
        assert t.health("a").consecutive_failures == 0

    def test_success_resets_consecutive_failure_count(self):
        t = tracker(threshold=3)
        t.observe("a", succeeded=False, latency=0.5, now=0.0)
        t.observe("a", succeeded=False, latency=0.5, now=0.1)
        t.observe("a", succeeded=True, latency=0.2, now=0.2)
        t.observe("a", succeeded=False, latency=0.5, now=0.3)
        assert not t.is_suspected("a")

    def test_probe_window_backs_off_exponentially_and_caps(self):
        t = tracker(threshold=1, backoff=10.0, factor=2.0, cap=30.0)
        t.observe("a", succeeded=False, latency=0.5, now=0.0)
        health = t.health("a")
        assert health.probe_at == pytest.approx(10.0)
        assert not t.probe_due("a", 5.0)
        assert t.probe_due("a", 10.0)
        # Failed probes widen the window: 20, then capped at 30.
        t.observe("a", succeeded=False, latency=0.5, now=10.0)
        assert health.probe_at == pytest.approx(30.0)
        t.observe("a", succeeded=False, latency=0.5, now=30.0)
        assert health.probe_at == pytest.approx(60.0)  # 30 (cap) after the fail

    def test_degraded_flagged_against_peer_median(self):
        t = CloudHealthTracker(SuspicionPolicy(degraded_factor=3.0, min_samples=2))
        for now in range(4):
            t.observe("slow", succeeded=True, latency=2.0, now=float(now))
            t.observe("b", succeeded=True, latency=0.2, now=float(now))
            t.observe("c", succeeded=True, latency=0.25, now=float(now))
        assert t.is_degraded("slow")
        assert not t.is_degraded("b")
        assert t.status("slow") is CloudStatus.DEGRADED
        assert "slow" in t.degraded_clouds()
        assert t.auto_hedge_delay(["slow", "b"]) is not None
        assert t.auto_hedge_delay(["b", "c"]) is None

    def test_snapshot_and_merge(self):
        t = tracker(threshold=1)
        t.observe("a", succeeded=False, latency=0.5, now=0.0)
        snap = t.snapshot()
        assert snap.suspicions == 1 and snap.suspected_now == ("a",)
        merged = snap.merge(HealthStats(suspicions=2, suspected_now=("a", "b")))
        assert merged.suspicions == 3
        assert merged.suspected_now == ("a", "b")

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            SuspicionPolicy(threshold=0).validate()
        with pytest.raises(ValueError):
            SuspicionPolicy(probe_backoff=0.0).validate()
        with pytest.raises(ValueError):
            SuspicionPolicy(probe_backoff=10.0, probe_backoff_max=5.0).validate()
        with pytest.raises(ValueError):
            SuspicionPolicy(degraded_factor=1.0).validate()


class TestHealthAwareDispatch:
    def test_suspected_cloud_demoted_out_of_stage0(self):
        t = tracker(threshold=1)
        t.observe("a", succeeded=False, latency=0.5, now=0.0)
        counter: dict[str, int] = {}
        stats = dispatch_quorum(
            [[request("a", 5.0, fail=True, counter=counter), request("b", 1.0, counter=counter)],
             [request("c", 1.0, counter=counter), request("d", 1.0, counter=counter)]],
            required=2, health=t, now=1.0,
        )
        # "a" was demoted (probe not due), "c" promoted into stage 0.
        assert stats.demoted == ("a",)
        assert "a" not in counter
        assert all(trace.cloud != "a" for trace in stats.traces)
        stage0 = {trace.cloud for trace in stats.traces if trace.stage == 0}
        assert stage0 == {"b", "c"}
        # Both stage-0 clouds answer in 1 s: no fallback round, no timeout tax.
        assert stats.elapsed == pytest.approx(1.0)
        assert not stats.fallback_dispatched

    def test_probe_dispatched_in_background_when_window_due(self):
        t = tracker(threshold=1, backoff=10.0)
        t.observe("a", succeeded=False, latency=0.5, now=0.0)
        counter: dict[str, int] = {}
        stats = dispatch_quorum(
            [[request("a", 9.0, fail=True, counter=counter), request("b", 1.0, counter=counter)],
             [request("c", 1.0, counter=counter)]],
            required=2, health=t, now=20.0,
        )
        assert stats.probes == 1 and counter["a"] == 1
        probe = next(trace for trace in stats.traces if trace.cloud == "a")
        assert probe.probe
        # The quorum comes from b+c; the slow failed probe gates neither the
        # elapsed time nor the give-up time.
        assert stats.elapsed == pytest.approx(1.0)
        assert stats.gave_up_at < 9.0
        # The failed probe widened the window: no probe on the next call.
        assert not t.probe_due("a", 21.0)

    def test_probe_success_recovers_cloud(self):
        t = tracker(threshold=1, backoff=5.0)
        t.observe("a", succeeded=False, latency=0.5, now=0.0)
        stats = dispatch_quorum(
            [[request("a", 0.5, counter=None), request("b", 1.0)], [request("c", 1.0)]],
            required=2, health=t, now=6.0,
        )
        assert stats.probes == 1
        assert not t.is_suspected("a")
        assert t.recoveries == 1

    def test_plan_reverts_when_quorum_would_be_unreachable(self):
        t = tracker(threshold=1)
        t.observe("a", succeeded=False, latency=0.5, now=0.0)
        t.observe("b", succeeded=False, latency=0.5, now=0.0)
        counter: dict[str, int] = {}
        stats = dispatch_quorum(
            [[request("a", 1.0, counter=counter), request("b", 1.0, counter=counter),
              request("c", 1.0, counter=counter)]],
            required=2, health=t, now=1.0,
        )
        # Demoting both suspects would leave 1 < required requests: revert.
        assert stats.demoted == ()
        assert counter == {"a": 1, "b": 1, "c": 1}
        assert stats.reached

    def test_degraded_straggler_hedged_without_explicit_hedge_delay(self):
        t = CloudHealthTracker(SuspicionPolicy(degraded_factor=3.0, min_samples=2,
                                               hedge_multiple=2.0))
        for now in range(4):
            t.observe("slow", succeeded=True, latency=2.0, now=float(now))
            t.observe("b", succeeded=True, latency=0.2, now=float(now))
            t.observe("c", succeeded=True, latency=0.2, now=float(now))
        stats = dispatch_quorum(
            [[request("slow", 8.0)], [request("c", 0.2)]],
            required=1, health=t, now=10.0,
        )
        # Auto-hedge at 2 x 0.2 s: the backup beats the straggler by far.
        assert stats.hedged == 1
        assert stats.elapsed == pytest.approx(0.6)

    def test_without_health_behaviour_unchanged(self):
        stats = dispatch_quorum([[request("a", 1.0), request("b", 2.0)]], required=2)
        assert stats.probes == 0 and stats.demoted == ()
        assert stats.elapsed == pytest.approx(2.0)


class TestDepSkySuspicionEndToEnd:
    def _client(self, seed=5, **suspicion_overrides):
        sim = Simulation(seed=seed)
        clouds = make_cloud_of_clouds(sim, jitter=0.1)
        policy_kwargs = dict(threshold=2, probe_backoff=10.0, probe_backoff_factor=2.0)
        policy_kwargs.update(suspicion_overrides)
        health = CloudHealthTracker(SuspicionPolicy(**policy_kwargs))
        client = DepSkyClient(sim, clouds, Principal("alice"), f=1,
                              policy=DispatchPolicy(timeout=1.5), health=health)
        return sim, clouds, client, health

    def test_repeated_reads_stop_probing_downed_cloud(self):
        sim, clouds, client, health = self._client()
        client.write("unit", b"payload" * 500)
        sim.advance(3.0)
        clouds[0].failures.add(FaultKind.UNAVAILABLE, start=sim.now())

        start = sim.now()
        first = client.read_latest("unit")
        first_elapsed = sim.now() - start
        # One read = metadata call + block call: two consecutive failures.
        assert health.is_suspected(clouds[0].name)
        assert any(t.cloud == clouds[0].name for t in first.stats.traces)

        start = sim.now()
        second = client.read_latest("unit")
        second_elapsed = sim.now() - start
        # Regression: the suspected cloud must be demoted out of stage 0 of
        # both the metadata and the block quorum call.
        for stats in (second.stats, second.meta_stats):
            assert clouds[0].name in stats.demoted
            assert all(t.cloud != clouds[0].name for t in stats.traces)
        assert second_elapsed < first_elapsed
        assert not second.stats.fallback_dispatched

    def test_probe_recovers_cloud_after_outage_ends(self):
        sim, clouds, client, health = self._client()
        client.write("unit", b"payload" * 500)
        sim.advance(3.0)
        outage_start = sim.now()
        clouds[0].failures.add_outage(outage_start, 5.0)
        client.read_latest("unit")
        assert health.is_suspected(clouds[0].name)
        # Wait out both the outage and the probe window, then read again: the
        # probe succeeds and the cloud leaves the suspect list.
        sim.advance(12.0)
        result = client.read_latest("unit")
        assert result.stats.probes + result.meta_stats.probes >= 1
        assert not health.is_suspected(clouds[0].name)
        # The next read is served by the preferred quorum again.
        follow_up = client.read_latest("unit")
        assert follow_up.path == "systematic"

    def test_absent_reads_do_not_suspect_healthy_clouds(self):
        # A not-found answer is authoritative: the provider is alive.  Reading
        # nonexistent units must never build suspicion against healthy clouds.
        from repro.common.errors import ObjectNotFoundError

        sim, clouds, client, health = self._client()
        for _ in range(3):
            with pytest.raises(ObjectNotFoundError):
                client.read_latest("no-such-unit")
        assert health.suspicions == 0
        assert all(not health.is_suspected(c.name) for c in clouds)

    def test_not_yet_visible_polling_does_not_suspect_single_cloud(self):
        sim = Simulation(seed=1)
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        backend = SingleCloudBackend(sim, store, Principal("alice"),
                                     dispatch=DispatchPolicyConfig(suspicion_threshold=2))
        ref = backend.write_version("file", b"data")  # propagation delay: 1 s
        from repro.common.errors import ObjectNotFoundError

        for _ in range(3):  # eventual-consistency misses, not provider faults
            with pytest.raises(ObjectNotFoundError):
                backend.read_version("file", ref.digest)
        assert not backend.health.is_suspected(store.name)
        assert backend.health_stats().suspicions == 0

    def test_suspected_cloud_still_receives_background_writes(self):
        # Replication must not silently shrink: a PUT at a suspected cloud is
        # dispatched in the background, so a *hanging* (slow but functional)
        # provider still stores the new version server-side.
        sim, clouds, client, health = self._client()
        client.write("unit", b"v1" * 200)
        sim.advance(3.0)
        clouds[0].failures.add(FaultKind.DEGRADED, start=sim.now(), factor=600.0)
        client.read_latest("unit")  # two timeouts build the suspicion
        assert health.is_suspected(clouds[0].name)
        start = sim.now()
        client.write("unit", b"v2" * 200)
        elapsed = sim.now() - start
        # The charged write latency excludes the hanging cloud entirely...
        assert elapsed < 2.0
        # ...yet its background PUT attempts still stored block 0 and the
        # updated metadata copy server-side (timeout abandons the wait, not
        # the side effect).
        assert any(kind == "put" and "v00000002-b0" in key
                   for kind, key, _ in clouds[0].request_log)
        meta_blob = clouds[0]._objects["depsky/unit/metadata"].data
        from repro.depsky.dataunit import DataUnitMetadata

        assert DataUnitMetadata.from_bytes(meta_blob).latest().version == 2

    def test_writes_spill_over_without_waiting_for_suspected_cloud(self):
        sim, clouds, client, health = self._client()
        client.write("warmup", b"x" * 400)
        sim.advance(3.0)
        clouds[0].failures.add(FaultKind.UNAVAILABLE, start=sim.now())
        client.read_latest("warmup")  # builds the suspicion
        assert health.is_suspected(clouds[0].name)
        record = client.write("unit", b"y" * 400)
        assert record.version == 1
        # The suspected cloud received no block PUT; the fourth cloud did.
        assert not any(kind == "put" and "unit" in key
                       for kind, key, _ in clouds[0].request_log)
        assert any(kind == "put" and "-b3" in key
                   for kind, key, _ in clouds[3].request_log)


class TestDispatchConfigPlumbing:
    def test_dispatch_config_validation(self):
        DispatchPolicyConfig().validate()
        with pytest.raises(ConfigurationError):
            DispatchPolicyConfig(timeout=0.0).validate()
        with pytest.raises(ConfigurationError):
            DispatchPolicyConfig(retries=-1).validate()
        with pytest.raises(ConfigurationError):
            DispatchPolicyConfig(hedge_delay=-0.5).validate()
        with pytest.raises(ConfigurationError):
            DispatchPolicyConfig(suspicion_threshold=-1).validate()
        with pytest.raises(ConfigurationError):
            DispatchPolicyConfig(suspicion_threshold=2, probe_backoff=0.0).validate()
        with pytest.raises(ConfigurationError):
            DispatchPolicyConfig(suspicion_threshold=2, probe_backoff=10.0,
                                 probe_backoff_max=1.0).validate()

    def test_scfs_config_rejects_bad_lease_and_retry_limit(self):
        with pytest.raises(ConfigurationError):
            SCFSConfig(lock_lease=0.0).validate()
        with pytest.raises(ConfigurationError):
            SCFSConfig(lock_lease=-1.0).validate()
        with pytest.raises(ConfigurationError):
            SCFSConfig(read_retry_limit=-1).validate()

    def test_hedge_delay_requires_fallback_stage(self):
        # The single-cloud backend has no fallback stage to hedge with.
        with pytest.raises(ConfigurationError):
            SCFSConfig.for_variant("SCFS-AWS-B",
                                   dispatch=DispatchPolicyConfig(hedge_delay=0.25))
        config = SCFSConfig.for_variant("SCFS-CoC-B",
                                        dispatch=DispatchPolicyConfig(hedge_delay=0.25))
        assert config.dispatch.hedge_delay == 0.25

    def test_tracker_factory_disabled_by_default(self):
        config = DispatchPolicyConfig()
        assert not config.tracks_health
        assert config.make_tracker() is None
        enabled = DispatchPolicyConfig(suspicion_threshold=3)
        assert enabled.make_tracker() is not None

    def test_config_reaches_depsky_client_through_agent(self):
        dispatch = DispatchPolicyConfig(timeout=1.2, retries=1, hedge_delay=0.3,
                                        suspicion_threshold=2)
        deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=3, dispatch=dispatch)
        fs = deployment.create_agent("alice")
        backend = fs.agent.backend
        assert isinstance(backend, CloudOfCloudsBackend)
        # Config-driven hedging reaches the DepSky client end-to-end.
        assert backend.client.policy.hedge_delay == pytest.approx(0.3)
        assert backend.client.policy.timeout == pytest.approx(1.2)
        assert backend.client.policy.retries == 1
        assert backend.client.health is backend.health is not None
        assert backend.health.policy.threshold == 2
        assert backend.health_stats() is not None

    def test_config_driven_suspicion_through_filesystem_io(self):
        dispatch = DispatchPolicyConfig(timeout=1.5, suspicion_threshold=2)
        deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=3, dispatch=dispatch)
        fs = deployment.create_agent("alice")
        fs.write_file("/f.txt", b"payload" * 400)
        deployment.clouds[0].failures.add(FaultKind.UNAVAILABLE,
                                          start=deployment.sim.now())
        # Evict local caches so the reads must hit the clouds.
        fs.agent.memory_cache.clear()
        fs.agent.disk_cache.clear()
        fs.agent.metadata_cache.clear()
        assert fs.read_file("/f.txt") == b"payload" * 400
        snapshot = fs.agent.backend.health_stats()
        assert snapshot.suspicions >= 1
        assert deployment.clouds[0].name in snapshot.suspected_now

    def test_single_cloud_backend_tracks_outages(self):
        sim = Simulation(seed=1)
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        backend = SingleCloudBackend(sim, store, Principal("alice"),
                                     dispatch=DispatchPolicyConfig(suspicion_threshold=2))
        ref = backend.write_version("file", b"data")
        store.failures.add(FaultKind.UNAVAILABLE, start=sim.now())
        for _ in range(2):
            with pytest.raises(CloudUnavailableError):
                backend.read_version("file", ref.digest)
        assert backend.health.is_suspected(store.name)
        assert backend.health_stats().suspicions == 1


class TestReadPathSuspicionStats:
    def test_demotions_and_probes_flow_into_read_path_stats(self):
        sim = Simulation(seed=5)
        clouds = make_cloud_of_clouds(sim)
        backend = CloudOfCloudsBackend(
            sim, clouds, Principal("alice"),
            dispatch=DispatchPolicyConfig(timeout=1.5, suspicion_threshold=2),
        )
        ref = backend.write_version("file", b"f" * 400)
        sim.advance(3.0)
        clouds[0].failures.add(FaultKind.UNAVAILABLE, start=sim.now())
        backend.read_version("file", ref.digest)  # builds the suspicion
        backend.read_version("file", ref.digest)  # demoted read
        stats = backend.read_paths
        assert stats.demoted_requests >= 2  # metadata + block call demotions
        merged = stats.merge(stats)
        assert merged.demoted_requests == 2 * stats.demoted_requests

    def test_render_read_paths_includes_suspicion_columns(self):
        from repro.bench.report import render_read_paths

        stats = ReadPathStats(systematic=3, coded=1, demoted_requests=4, probe_requests=2)
        table = render_read_paths("paths", {"CoC": stats})
        assert "demoted" in table and "probes" in table
        assert "4" in table and "2" in table


class TestConsistencyAnchorIntegrity:
    def test_digest_mismatch_raises_integrity_error_not_none(self):
        # A backend that always returns wrong data for the anchored digest must
        # surface an IntegrityError once the retry budget is exhausted, not a
        # silent None (which is indistinguishable from "file absent").
        sim = Simulation(seed=2)

        class StaleBackend:
            def read_version(self, file_id, digest):
                return b"stale version"

            def write_version(self, file_id, data):
                raise NotImplementedError

        anchored = AnchoredStorage(sim, DictConsistencyAnchor(), StaleBackend(),
                                   retry_interval=0.1, retry_limit=3)
        anchored.anchor.write_hash("obj", content_digest(b"anchored version"))
        with pytest.raises(IntegrityError):
            anchored.read("obj")

    def test_mismatch_keeps_polling_until_fresh_version_visible(self):
        sim = Simulation(seed=2)

        class EventuallyFreshBackend:
            def __init__(self):
                self.calls = 0

            def read_version(self, file_id, digest):
                self.calls += 1
                return b"stale" if self.calls < 3 else b"fresh"

        backend = EventuallyFreshBackend()
        anchored = AnchoredStorage(sim, DictConsistencyAnchor(), backend,
                                   retry_interval=0.5, retry_limit=10)
        anchored.anchor.write_hash("obj", content_digest(b"fresh"))
        start = sim.now()
        assert anchored.read("obj") == b"fresh"
        # Two stale responses -> two retry waits on the simulated clock.
        assert sim.now() - start == pytest.approx(1.0)

    def test_absent_object_still_returns_none(self):
        sim = Simulation(seed=2)
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        anchored = AnchoredStorage(sim, DictConsistencyAnchor(),
                                   SingleCloudBackend(sim, store, Principal("alice")))
        assert anchored.read("ghost") is None


class TestStorageAccountingSinceCreation:
    def test_stored_since_initialized_from_creation_clock(self):
        from repro.clouds.eventual import _StoredObject
        from repro.clouds.access_control import ObjectACL

        obj = _StoredObject(key="k", data=b"x", acl=ObjectACL(owner="o"),
                            created_at=100.0, visible_at=100.0, digest="d")
        assert obj.stored_since == pytest.approx(100.0)

    def test_byte_seconds_charged_from_creation_not_simulation_start(self):
        sim = Simulation(seed=4)
        store = make_provider(sim, "amazon-s3", charge_latency=False)
        alice = Principal("alice")
        sim.advance(1000.0)  # long idle prefix before the object exists
        store.put("k", b"x" * 1000, alice)
        created = sim.now()
        sim.advance(50.0)
        store.delete("k", alice)
        deleted = sim.now()
        expected = 1000 * (deleted - created)
        assert store.costs.usage.byte_seconds_stored == pytest.approx(expected)
        assert store.costs.usage.byte_seconds_stored < 1000 * deleted / 2


class TestFailureScheduleHelpers:
    def test_add_outage_bounds_window(self):
        schedule = FailureSchedule()
        schedule.add_outage(10.0, 5.0)
        assert schedule.is_active(FaultKind.UNAVAILABLE, 12.0)
        assert not schedule.is_active(FaultKind.UNAVAILABLE, 15.0)
        with pytest.raises(ValueError):
            schedule.add_outage(0.0, 0.0)

    def test_next_transition(self):
        schedule = FailureSchedule()
        schedule.add_outage(10.0, 5.0)
        schedule.add(FaultKind.DEGRADED, start=20.0, factor=2.0)
        assert schedule.next_transition(0.0) == pytest.approx(10.0)
        assert schedule.next_transition(10.0) == pytest.approx(15.0)
        assert schedule.next_transition(15.0) == pytest.approx(20.0)
        assert schedule.next_transition(20.0) is None
