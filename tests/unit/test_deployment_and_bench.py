"""Unit tests for deployments, benchmark targets, workloads and cost model."""

import pytest

from repro.bench.costs import cached_read_cost, operation_costs_per_day
from repro.bench.filebench import MICRO_BENCHMARKS, MicroBenchmarkParams, run_microbenchmark
from repro.bench.report import human_size, render_table
from repro.bench.targets import ALL_TARGET_NAMES, SCFS_VARIANT_NAMES, build_target
from repro.common.units import KB, MB
from repro.core.deployment import SCFSDeployment, build_variant_matrix
from repro.core.modes import BackendKind


class TestDeployment:
    def test_aws_deployment_has_one_cloud(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=1)
        assert len(deployment.clouds) == 1
        assert deployment.coordination is not None

    def test_coc_deployment_has_four_clouds(self):
        deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=1)
        assert len(deployment.clouds) == 4
        assert deployment.config.backend is BackendKind.COC

    def test_non_sharing_deployment_has_no_coordination(self):
        deployment = SCFSDeployment.for_variant("SCFS-CoC-NS", seed=1)
        assert deployment.coordination is None

    def test_agents_share_the_infrastructure(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=1)
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        assert alice.agent.coordination is bob.agent.coordination
        assert deployment.agent_for("alice") is alice

    def test_costs_accumulate_with_usage(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=1)
        fs = deployment.create_agent("alice")
        assert deployment.costs().total == pytest.approx(0.0, abs=1e-9)
        fs.write_file("/f.bin", b"x" * MB)
        costs = deployment.costs()
        assert costs.usage.put_requests >= 1
        assert costs.total > 0.0
        deployment.reset_costs()
        assert deployment.costs().usage.put_requests == 0

    def test_coordination_entries_counted(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=1)
        fs = deployment.create_agent("alice")
        before = deployment.coordination_entries()
        fs.write_file("/f.bin", b"1", shared=True)
        assert deployment.coordination_entries() == before + 1

    def test_variant_matrix_builds_all_six(self):
        matrix = build_variant_matrix(seed=1)
        assert set(matrix) == set(SCFS_VARIANT_NAMES) | {v for v in matrix}
        assert len(matrix) == 6

    def test_unmount_all(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-NB", seed=1)
        deployment.create_agent("alice")
        deployment.create_agent("bob")
        deployment.unmount_all()
        deployment.drain()


class TestBenchTargets:
    def test_all_targets_build_and_serve_files(self):
        for name in ALL_TARGET_NAMES:
            target = build_target(name, seed=3)
            target.fs.write_file("/probe.txt", b"probe")
            target.drain(3.0)
            assert target.fs.read_file("/probe.txt") == b"probe", name

    def test_unknown_target_rejected(self):
        with pytest.raises(KeyError):
            build_target("NFS")

    def test_scfs_targets_report_deployment(self):
        assert build_target("SCFS-CoC-NB").is_scfs()
        assert not build_target("LocalFS").is_scfs()

    def test_config_overrides_reach_the_agent(self):
        target = build_target("SCFS-CoC-NB", private_name_spaces=True)
        assert target.fs.config.private_name_spaces


class TestMicroBenchmarks:
    @pytest.fixture(scope="class")
    def quick_params(self):
        return MicroBenchmarkParams(sample_ops=64, create_count=6, copy_count=4)

    def test_all_six_benchmarks_run_on_localfs(self, quick_params):
        for name in MICRO_BENCHMARKS:
            seconds = run_microbenchmark(name, "LocalFS", params=quick_params)
            assert seconds >= 0.0

    def test_metadata_benchmarks_rank_variants_as_in_table3(self, quick_params):
        ns = run_microbenchmark("create files", "SCFS-CoC-NS", params=quick_params)
        nb = run_microbenchmark("create files", "SCFS-CoC-NB", params=quick_params)
        blocking = run_microbenchmark("create files", "SCFS-CoC-B", params=quick_params)
        assert ns < nb < blocking

    def test_io_benchmarks_are_mode_independent(self, quick_params):
        nb = run_microbenchmark("random 4KB-read", "SCFS-CoC-NB", params=quick_params)
        blocking = run_microbenchmark("random 4KB-read", "SCFS-CoC-B", params=quick_params)
        assert nb == pytest.approx(blocking, rel=0.35)

    def test_random_ops_are_scaled_to_full_count(self, quick_params):
        full = quick_params.random_ops
        sampled = run_microbenchmark("random 4KB-read", "LocalFS", params=quick_params)
        per_op = sampled / full
        assert 1e-6 < per_op < 1e-3

    def test_scaled_params(self):
        params = MicroBenchmarkParams().scaled(0.1)
        assert params.create_count == 20 and params.copy_count == 10


class TestCostModel:
    def test_operation_costs_match_figure_11a(self):
        rows = {r.instance: r for r in operation_costs_per_day()}
        large = rows["large"]
        assert large.ec2_per_day == pytest.approx(6.24)
        assert large.ec2_times_four_per_day == pytest.approx(24.96)
        assert large.coc_per_day == pytest.approx(39.60)
        assert large.capacity_files == 7_000_000
        extra = rows["extra_large"]
        assert extra.ec2_per_day == pytest.approx(12.96)
        assert extra.coc_per_day == pytest.approx(77.04)
        assert extra.capacity_files == 15_000_000

    def test_cached_read_costs_about_eleven_microdollars(self):
        assert cached_read_cost() == pytest.approx(11.32, rel=0.05)


class TestReport:
    def test_render_table_includes_all_cells(self):
        text = render_table("Title", ["a", "b"], [[1, 2.5], ["x", 3.0]])
        assert "Title" in text and "2.50" in text and "x" in text

    def test_human_size(self):
        assert human_size(256 * KB) == "256K"
        assert human_size(16 * MB) == "16M"
        assert human_size(100) == "100B"
