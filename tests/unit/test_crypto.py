"""Unit tests for the cryptographic and coding substrate."""

import random

import numpy as np
import pytest

from repro.common.errors import SingularMatrixError
from repro.crypto import gf256
from repro.crypto.cipher import KEY_SIZE, SymmetricCipher, generate_key
from repro.crypto.erasure import CodedBlock, ErasureCoder
from repro.crypto.hashing import content_digest, hmac_digest, short_digest, verify_hmac
from repro.crypto.secret_sharing import SecretShare, combine_secret, split_secret


class TestHashing:
    def test_digest_is_deterministic(self):
        assert content_digest(b"hello") == content_digest(b"hello")

    def test_digest_differs_for_different_data(self):
        assert content_digest(b"hello") != content_digest(b"hello!")

    def test_short_digest_is_prefix(self):
        assert content_digest(b"x").startswith(short_digest(b"x"))

    def test_hmac_verifies(self):
        tag = hmac_digest(b"key", b"data")
        assert verify_hmac(b"key", b"data", tag)
        assert not verify_hmac(b"key", b"other", tag)
        assert not verify_hmac(b"other", b"data", tag)


class TestGF256:
    def test_multiplication_by_zero_and_one(self):
        assert gf256.gf_mul(0, 77) == 0
        assert gf256.gf_mul(1, 77) == 77

    def test_inverse_round_trip(self):
        for a in range(1, 256):
            assert gf256.gf_mul(a, gf256.gf_inv(a)) == 1

    def test_division_is_inverse_of_multiplication(self):
        for a, b in [(3, 7), (200, 99), (255, 2)]:
            assert gf256.gf_div(gf256.gf_mul(a, b), b) == a

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            gf256.gf_div(5, 0)
        with pytest.raises(ZeroDivisionError):
            gf256.gf_inv(0)

    def test_pow_matches_repeated_multiplication(self):
        value = 1
        for exponent in range(8):
            assert gf256.gf_pow(29, exponent) == value
            value = gf256.gf_mul(value, 29)

    def test_mul_block_matches_scalar_multiplication(self):
        block = np.array([0, 1, 2, 250, 255], dtype=np.uint8)
        result = gf256.mul_block(7, block)
        expected = [gf256.gf_mul(7, int(b)) for b in block]
        assert list(result) == expected

    def test_matrix_inverse_round_trip(self):
        matrix = gf256.vandermonde(3, 3)
        inverse = gf256.invert_matrix(matrix)
        identity = gf256.matmul_matrix(matrix, inverse)
        assert np.array_equal(identity, np.eye(3, dtype=np.uint8))

    def test_singular_matrix_raises(self):
        singular = np.array([[1, 2], [1, 2]], dtype=np.uint8)
        with pytest.raises(ValueError):
            gf256.invert_matrix(singular)

    def test_singular_matrix_raises_dedicated_error(self):
        singular = np.array([[3, 5, 6], [1, 1, 1], [2, 4, 7]], dtype=np.uint8)
        singular[2] = singular[0] ^ singular[1]  # linearly dependent row
        with pytest.raises(SingularMatrixError):
            gf256.invert_matrix(singular)

    def test_matmul_validates_shapes(self):
        with pytest.raises(ValueError):
            gf256.matmul(np.zeros((2, 3), dtype=np.uint8), np.zeros((2, 4), dtype=np.uint8))

    def test_matmul_matches_scalar_reference(self):
        rng = np.random.default_rng(7)
        matrix = rng.integers(0, 256, size=(3, 4), dtype=np.uint8)
        blocks = rng.integers(0, 256, size=(4, 129), dtype=np.uint8)
        assert np.array_equal(gf256.matmul(matrix, blocks),
                              gf256._matmul_scalar(matrix, blocks))

    def test_matmul_large_matrix_path_matches_scalar_reference(self):
        # rows * cols > _DENSE_GATHER_MIN_ENTRIES exercises the chunked
        # 3-D gather + bitwise_xor.reduce strategy.
        rng = np.random.default_rng(8)
        matrix = rng.integers(0, 256, size=(9, 9), dtype=np.uint8)
        blocks = rng.integers(0, 256, size=(9, 257), dtype=np.uint8)
        assert matrix.size > gf256._DENSE_GATHER_MIN_ENTRIES
        assert np.array_equal(gf256.matmul(matrix, blocks),
                              gf256._matmul_scalar(matrix, blocks))

    def test_matmul_chunking_is_invisible(self, monkeypatch):
        rng = np.random.default_rng(9)
        matrix = rng.integers(0, 256, size=(9, 9), dtype=np.uint8)
        blocks = rng.integers(0, 256, size=(9, 1000), dtype=np.uint8)
        whole = gf256.matmul(matrix, blocks)
        monkeypatch.setattr(gf256, "_MAX_GATHER_BYTES", 1024)
        assert np.array_equal(gf256.matmul(matrix, blocks), whole)

    def test_matmul_empty_blocks(self):
        matrix = np.array([[1, 2], [3, 4]], dtype=np.uint8)
        result = gf256.matmul(matrix, np.zeros((2, 0), dtype=np.uint8))
        assert result.shape == (2, 0)


class TestMatmulOutParameter:
    """The ``out=`` destination path of matmul/mul_block."""

    def _case(self, rows, cols, length, seed=0):
        rng = np.random.default_rng(seed)
        matrix = rng.integers(0, 256, size=(rows, cols), dtype=np.uint8)
        blocks = rng.integers(0, 256, size=(cols, length), dtype=np.uint8)
        return matrix, blocks

    def test_out_matches_plain_result_on_every_strategy(self, monkeypatch):
        for rows, cols, length in [(2, 2, 64),     # row gather
                                   (9, 9, 257),    # 3-D gather
                                   (2, 2, 200)]:   # nibble (threshold lowered)
            if length == 200:
                monkeypatch.setattr(gf256, "_NIBBLE_MIN_BYTES", 1)
            matrix, blocks = self._case(rows, cols, length)
            expected = gf256.matmul(matrix, blocks)
            out = np.full((rows, length), 0xAB, dtype=np.uint8)  # dirty buffer
            returned = gf256.matmul(matrix, blocks, out=out)
            assert returned is out
            assert np.array_equal(out, expected)

    def test_out_rows_may_be_strided_views(self):
        # The stripe encoder writes into column slices of a larger buffer:
        # each row is contiguous but the 2-D view is strided.
        matrix, blocks = self._case(2, 2, gf256._NIBBLE_MIN_BYTES)
        backing = np.zeros((2, blocks.shape[1] + 64), dtype=np.uint8)
        out = backing[:, 32:32 + blocks.shape[1]]
        gf256.matmul(matrix, blocks, out=out)
        assert np.array_equal(out, gf256.matmul(matrix, blocks))

    def test_strided_input_blocks_match_contiguous(self):
        matrix, blocks = self._case(2, 2, gf256._NIBBLE_MIN_BYTES + 65)
        sliced = blocks[:, 17:-13]  # strided 2-D view, contiguous rows
        assert np.array_equal(gf256.matmul(matrix, sliced),
                              gf256.matmul(matrix, np.ascontiguousarray(sliced)))

    def test_out_aliasing_inputs_is_rejected(self):
        matrix, blocks = self._case(2, 2, 128)
        with pytest.raises(ValueError, match="alias"):
            gf256.matmul(matrix, blocks, out=blocks)
        backing = np.zeros((4, 128), dtype=np.uint8)
        with pytest.raises(ValueError, match="alias"):
            gf256.matmul(matrix, backing[:2], out=backing[:2])

    def test_out_shape_and_dtype_validated(self):
        matrix, blocks = self._case(2, 2, 64)
        with pytest.raises(ValueError, match="shape"):
            gf256.matmul(matrix, blocks, out=np.zeros((3, 64), dtype=np.uint8))
        with pytest.raises(ValueError, match="uint8"):
            gf256.matmul(matrix, blocks, out=np.zeros((2, 64), dtype=np.uint16))

    def test_mul_block_out(self):
        block = np.arange(256, dtype=np.uint8)
        for scalar in (0, 1, 7):
            out = np.full(256, 0xEE, dtype=np.uint8)
            assert gf256.mul_block(scalar, block, out=out) is out
            assert np.array_equal(out, gf256.mul_block(scalar, block))
        with pytest.raises(ValueError, match="alias"):
            gf256.mul_block(7, block, out=block)


class TestNibbleKernel:
    """The nibble-split pair-table kernel used for long blocks."""

    def test_production_threshold_path_matches_row_gather(self, monkeypatch):
        rng = np.random.default_rng(11)
        matrix = rng.integers(0, 256, size=(2, 2), dtype=np.uint8)
        blocks = rng.integers(0, 256,
                              size=(2, gf256._NIBBLE_MIN_BYTES + 1),  # odd tail
                              dtype=np.uint8)
        nibble = gf256.matmul(matrix, blocks)
        monkeypatch.setattr(gf256, "_NIBBLE_MIN_BYTES", 1 << 62)
        assert np.array_equal(gf256.matmul(matrix, blocks), nibble)

    def test_zero_and_one_coefficients(self, monkeypatch):
        monkeypatch.setattr(gf256, "_NIBBLE_MIN_BYTES", 1)
        matrix = np.array([[0, 1], [1, 0], [0, 0], [1, 1]], dtype=np.uint8)
        blocks = np.random.default_rng(12).integers(
            0, 256, size=(2, 99), dtype=np.uint8)
        result = gf256.matmul(matrix, blocks)
        assert np.array_equal(result[0], blocks[1])
        assert np.array_equal(result[1], blocks[0])
        assert not result[2].any()
        assert np.array_equal(result[3], blocks[0] ^ blocks[1])

    def test_pair_table_is_cached_and_bounded(self):
        gf256._pair_cache.clear()
        first = gf256._pair_table(7)
        assert gf256._pair_table(7) is first
        for coeff in range(2, 2 + gf256._PAIR_CACHE_MAX + 5):
            gf256._pair_table(coeff)
        assert len(gf256._pair_cache) <= gf256._PAIR_CACHE_MAX

    def test_pair_table_entries_are_two_products(self):
        table = gf256._pair_table(29)
        pair = np.array([0x12, 0xF3], dtype=np.uint8)
        word = int(pair.view(np.uint16)[0])
        products = np.array([table[word]], dtype=np.uint16).view(np.uint8)
        assert list(products) == [gf256.gf_mul(29, 0x12), gf256.gf_mul(29, 0xF3)]


class TestVandermonde:
    def test_matches_elementwise_gf_pow(self):
        matrix = gf256.vandermonde(9, 7)
        for r in range(9):
            for c in range(7):
                assert int(matrix[r, c]) == gf256.gf_pow(r + 1, c)

    def test_empty_dimensions(self):
        assert gf256.vandermonde(0, 3).shape == (0, 3)
        assert gf256.vandermonde(3, 0).shape == (3, 0)


class TestErasureCoder:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ErasureCoder(2, 3)
        with pytest.raises(ValueError):
            ErasureCoder(300, 2)

    def test_round_trip_with_all_blocks(self):
        coder = ErasureCoder(4, 2)
        data = bytes(range(256)) * 17
        assert coder.decode(coder.encode(data)) == data

    def test_round_trip_with_any_k_subset(self):
        coder = ErasureCoder(4, 2)
        data = b"the quick brown fox jumps over the lazy dog" * 9
        blocks = coder.encode(data)
        for i in range(4):
            for j in range(i + 1, 4):
                assert coder.decode([blocks[i], blocks[j]]) == data

    def test_decode_with_fewer_than_k_blocks_fails(self):
        coder = ErasureCoder(4, 2)
        blocks = coder.encode(b"payload")
        with pytest.raises(ValueError):
            coder.decode(blocks[:1])

    def test_duplicate_blocks_do_not_count_twice(self):
        coder = ErasureCoder(4, 2)
        blocks = coder.encode(b"payload")
        with pytest.raises(ValueError):
            coder.decode([blocks[0], CodedBlock(blocks[0].index, blocks[0].payload)])

    def test_empty_payload_round_trips(self):
        coder = ErasureCoder(4, 2)
        assert coder.decode(coder.encode(b"")) == b""

    def test_storage_overhead(self):
        assert ErasureCoder(4, 2).storage_overhead() == pytest.approx(2.0)
        assert ErasureCoder(7, 5).storage_overhead() == pytest.approx(1.4)

    def test_block_size_is_about_payload_over_k(self):
        coder = ErasureCoder(4, 2)
        assert coder.block_size(1000) == pytest.approx(505, abs=2)

    def test_larger_configuration(self):
        coder = ErasureCoder(7, 3)
        data = bytes(random.Random(1).randrange(256) for _ in range(10_000))
        blocks = coder.encode(data)
        assert coder.decode([blocks[6], blocks[2], blocks[4]]) == data

    def test_invalid_block_index_rejected(self):
        coder = ErasureCoder(4, 2)
        with pytest.raises(ValueError):
            coder.decode([CodedBlock(9, b"xx"), CodedBlock(1, b"yy")])

    def test_systematic_blocks_are_plain_data_slices(self):
        coder = ErasureCoder(4, 2)
        data = b"systematic fast path" * 40
        blocks = coder.encode(data)
        framed = b"".join(b.payload for b in blocks[:2])
        assert data in framed  # the first k blocks carry the framed payload verbatim

    def test_systematic_and_parity_decodes_agree(self):
        coder = ErasureCoder(4, 2)
        data = bytes(range(256)) * 13
        blocks = coder.encode(data)
        assert coder.decode(blocks[:2]) == data          # concatenation path
        assert coder.decode(blocks[2:]) == data          # matrix path
        assert coder.decode([blocks[0], blocks[3]]) == data  # mixed

    def test_decode_matrix_is_cached_per_erasure_pattern(self):
        coder = ErasureCoder(4, 2)
        blocks = coder.encode(b"cache me" * 100)
        assert coder._decode_cache == {}
        coder.decode(blocks[2:])
        first = coder._decode_cache[(2, 3)]
        coder.decode(blocks[2:])
        assert coder._decode_cache[(2, 3)] is first
        coder.decode(blocks[:2])  # systematic path does not populate the cache
        assert set(coder._decode_cache) == {(2, 3)}

    def test_dependent_blocks_raise_singular_matrix_error(self):
        coder = ErasureCoder(4, 2)
        blocks = coder.encode(b"payload" * 50)
        # Force two linearly dependent rows to simulate a degenerate code.
        coder._matrix[3] = coder._matrix[2]
        coder._decode_cache.clear()
        with pytest.raises(SingularMatrixError, match="insufficient independent blocks"):
            coder.decode(blocks[2:])


class TestStreamingEncode:
    """frame_into / encode_stripes / stream / encode_into — the zero-copy path."""

    def test_encode_into_rows_equal_encode_payloads(self):
        coder = ErasureCoder(4, 2)
        data = b"streaming must not change wire bytes" * 70
        buffer = coder.encode_into(data)
        assert [row.tobytes() for row in buffer] == \
            [b.payload for b in coder.encode(data)]

    def test_stream_yields_stripes_covering_the_buffer(self):
        coder = ErasureCoder(4, 2)
        data = bytes(range(256)) * 40
        reference = coder.encode_into(data)
        stripes = list(coder.stream(data, stripe_bytes=1000))
        assert stripes[0].start == 0
        assert stripes[-1].stop == reference.shape[1]
        for before, after in zip(stripes, stripes[1:], strict=False):
            assert before.stop == after.start
        rebuilt = np.concatenate([s.blocks for s in stripes], axis=1)
        assert np.array_equal(rebuilt, reference)

    def test_stripe_width_does_not_change_the_bytes(self):
        coder = ErasureCoder(6, 4)
        data = b"width independence" * 123
        reference = coder.encode_into(data)
        for stripe_bytes in (1, 7, 64, 1 << 20):
            assert np.array_equal(
                coder.encode_into(data, stripe_bytes=stripe_bytes), reference)

    def test_frame_into_reuses_and_scrubs_a_dirty_buffer(self):
        coder = ErasureCoder(4, 2)
        first = coder.encode_into(b"\xff" * 1000)
        # Re-framing a shorter payload into the same buffer must zero the
        # padding tail left over from the longer one.
        short = b"tiny"
        block_len = coder.block_size(len(short))
        reused = np.full((4, block_len), 0xFF, dtype=np.uint8)
        buffer, payload_view = coder.frame_into(len(short), out=reused)
        assert buffer is reused
        payload_view[:] = np.frombuffer(short, dtype=np.uint8)
        for _ in coder.encode_stripes(buffer):
            pass
        fresh = coder.encode_into(short)
        assert np.array_equal(buffer, fresh)
        assert first is not buffer

    def test_frame_into_validates_out(self):
        coder = ErasureCoder(4, 2)
        with pytest.raises(ValueError, match="shape"):
            coder.frame_into(100, out=np.zeros((4, 3), dtype=np.uint8))
        with pytest.raises(ValueError, match="uint8"):
            coder.frame_into(
                100, out=np.zeros((4, coder.block_size(100)), dtype=np.uint16))

    def test_encode_stripes_validates_buffer(self):
        coder = ErasureCoder(4, 2)
        with pytest.raises(ValueError, match="rows"):
            list(coder.encode_stripes(np.zeros((3, 10), dtype=np.uint8)))
        with pytest.raises(ValueError, match="positive"):
            list(coder.encode_stripes(np.zeros((4, 10), dtype=np.uint8),
                                      stripe_bytes=0))

    def test_streamed_blocks_decode(self):
        coder = ErasureCoder(4, 2)
        data = b"round trip through the streaming encoder" * 55
        buffer = coder.encode_into(data, stripe_bytes=512)
        blocks = [CodedBlock(index=i, payload=buffer[i].tobytes())
                  for i in (1, 3)]
        assert coder.decode(blocks) == data

    def test_empty_payload_streams(self):
        coder = ErasureCoder(4, 2)
        stripes = list(coder.stream(b""))
        assert stripes  # header-only frame still yields a stripe
        assert coder.decode(coder.encode(b"")) == b""


class TestSecretSharing:
    def test_round_trip(self):
        secret = bytes(range(32))
        shares = split_secret(secret, n=4, t=2, rng=random.Random(0))
        assert combine_secret(shares[:2], 2) == secret
        assert combine_secret(shares[2:], 2) == secret

    def test_any_threshold_subset_recovers(self):
        secret = b"super secret key material 123456"
        shares = split_secret(secret, n=5, t=3, rng=random.Random(1))
        assert combine_secret([shares[4], shares[0], shares[2]], 3) == secret

    def test_too_few_shares_fail(self):
        shares = split_secret(b"secret", n=4, t=3, rng=random.Random(2))
        with pytest.raises(ValueError):
            combine_secret(shares[:2], 3)

    def test_single_share_reveals_nothing_obvious(self):
        secret = b"\x00" * 16
        shares = split_secret(secret, n=4, t=2, rng=random.Random(3))
        # With threshold 2, one share alone should not equal the secret.
        assert shares[0].data != secret

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            split_secret(b"s", n=2, t=3)
        with pytest.raises(ValueError):
            split_secret(b"s", n=300, t=2)

    def test_duplicate_shares_do_not_count(self):
        shares = split_secret(b"secret", n=4, t=2, rng=random.Random(4))
        with pytest.raises(ValueError):
            combine_secret([shares[0], SecretShare(shares[0].x, shares[0].data)], 2)


class TestSymmetricCipher:
    def test_round_trip(self):
        key = generate_key(random.Random(0))
        cipher = SymmetricCipher(key)
        data = b"attack at dawn" * 100
        assert cipher.decrypt(cipher.encrypt(data, random.Random(1))) == data

    def test_key_length_enforced(self):
        with pytest.raises(ValueError):
            SymmetricCipher(b"short")

    def test_generated_keys_have_expected_size(self):
        assert len(generate_key(random.Random(0))) == KEY_SIZE

    def test_ciphertext_differs_from_plaintext(self):
        cipher = SymmetricCipher(generate_key(random.Random(0)))
        data = b"x" * 64
        assert cipher.encrypt(data, random.Random(1))[16:-32] != data

    def test_tampering_is_detected(self):
        cipher = SymmetricCipher(generate_key(random.Random(0)))
        blob = bytearray(cipher.encrypt(b"data" * 50, random.Random(1)))
        blob[20] ^= 0xFF
        with pytest.raises(ValueError):
            cipher.decrypt(bytes(blob))

    def test_wrong_key_is_detected(self):
        blob = SymmetricCipher(generate_key(random.Random(0))).encrypt(b"data", random.Random(1))
        other = SymmetricCipher(generate_key(random.Random(2)))
        with pytest.raises(ValueError):
            other.decrypt(blob)

    def test_truncated_blob_rejected(self):
        cipher = SymmetricCipher(generate_key(random.Random(0)))
        with pytest.raises(ValueError):
            cipher.decrypt(b"tiny")

    def test_empty_plaintext(self):
        cipher = SymmetricCipher(generate_key(random.Random(0)))
        assert cipher.decrypt(cipher.encrypt(b"", random.Random(1))) == b""

    def test_overhead_is_constant(self):
        cipher = SymmetricCipher(generate_key(random.Random(0)))
        blob = cipher.encrypt(b"z" * 1000, random.Random(1))
        assert len(blob) - 1000 == cipher.overhead()


class TestGenerateKeyDerivation:
    """generate_key must keep the historic seeded-RNG byte stream forever.

    Pinned scenario fingerprints replay whole simulations; if key derivation
    consumed the underlying Mersenne Twister stream differently, every pinned
    run would silently re-key.  The pins below were produced by the original
    per-byte ``rng.randrange(256)`` loop.
    """

    def test_seeded_derivation_is_pinned(self):
        key = generate_key(random.Random(1234))
        assert key.hex() == ("e13b032e112a32b579080f08b1f7ed4c"
                             "2e5d3a07f97f21ee232d178a209af6b5")

    def test_rng_state_after_derivation_is_pinned(self):
        # The *state* the RNG is left in matters as much as the key bytes:
        # the simulation draws nonces and latencies from the same stream.
        rng = random.Random(1234)
        generate_key(rng)
        assert rng.random() == pytest.approx(0.2664542440261849, abs=0.0)

    def test_matches_historic_per_byte_loop(self):
        for seed in range(10):
            reference_rng = random.Random(seed)
            reference = bytes(reference_rng.randrange(256)
                              for _ in range(KEY_SIZE))
            rng = random.Random(seed)
            assert generate_key(rng) == reference
            assert rng.getstate() == reference_rng.getstate()

    def test_urandom_path_when_no_rng(self):
        first, second = generate_key(), generate_key()
        assert len(first) == KEY_SIZE
        assert first != second  # os.urandom, not a fixed stream


class TestEncryptInto:
    def test_matches_encrypt_byte_for_byte(self):
        cipher = SymmetricCipher(generate_key(random.Random(0)))
        data = b"in-place encryption" * 37
        blob = cipher.encrypt(data, random.Random(5))
        out = np.full(len(data) + cipher.overhead(), 0x55, dtype=np.uint8)
        returned = cipher.encrypt_into(data, out, random.Random(5))
        assert returned is out
        assert out.tobytes() == blob

    def test_round_trips_through_decrypt(self):
        cipher = SymmetricCipher(generate_key(random.Random(0)))
        data = b"decryptable" * 100
        out = np.empty(len(data) + cipher.overhead(), dtype=np.uint8)
        cipher.encrypt_into(data, out, random.Random(3))
        assert cipher.decrypt(out.tobytes()) == data

    def test_accepts_a_view_into_a_larger_buffer(self):
        # The write pipeline passes the erasure coder's framed payload region.
        cipher = SymmetricCipher(generate_key(random.Random(0)))
        data = b"view target" * 20
        backing = np.zeros(len(data) + cipher.overhead() + 64, dtype=np.uint8)
        view = backing[32:32 + len(data) + cipher.overhead()]
        cipher.encrypt_into(data, view, random.Random(9))
        assert cipher.decrypt(view.tobytes()) == data

    def test_validates_out(self):
        cipher = SymmetricCipher(generate_key(random.Random(0)))
        data = b"payload"
        with pytest.raises(ValueError, match="uint8"):
            cipher.encrypt_into(
                data, np.zeros(len(data) + cipher.overhead(), dtype=np.uint16))
        with pytest.raises(ValueError, match="uint8"):
            cipher.encrypt_into(data, np.zeros(5, dtype=np.uint8))
        two_d = np.zeros((1, len(data) + cipher.overhead()), dtype=np.uint8)
        with pytest.raises(ValueError, match="1-D"):
            cipher.encrypt_into(data, two_d)
