"""Unit tests for file metadata tuples, caches, configuration and modes."""

import pytest

from repro.common.errors import ConfigurationError, FileSystemError
from repro.common.types import Permission
from repro.core.cache import LRUByteCache, MetadataCache, make_disk_cache, make_memory_cache
from repro.core.config import CacheConfig, GarbageCollectionPolicy, SCFSConfig
from repro.core.metadata import (
    FileMetadata,
    FileType,
    basename,
    normalize_path,
    parent_path,
)
from repro.core.modes import BackendKind, OperationMode, VARIANTS, variant
from repro.simenv.clock import SimClock


class TestPaths:
    def test_normalize_adds_leading_slash(self):
        assert normalize_path("a/b") == "/a/b"

    def test_normalize_collapses_dots_and_slashes(self):
        assert normalize_path("/a//b/../c/.") == "/a/c"

    def test_root_is_preserved(self):
        assert normalize_path("/") == "/"

    def test_empty_path_rejected(self):
        with pytest.raises(FileSystemError):
            normalize_path("")

    def test_parent_path(self):
        assert parent_path("/a/b/c") == "/a/b"
        assert parent_path("/a") == "/"
        assert parent_path("/") == "/"

    def test_basename(self):
        assert basename("/a/b/c.txt") == "c.txt"
        assert basename("/") == ""


class TestFileMetadata:
    def _meta(self, **kwargs):
        defaults = dict(path="/docs/file.txt", file_type=FileType.FILE, owner="alice",
                        size=10, file_id="file-1", digest="abc")
        defaults.update(kwargs)
        return FileMetadata(**defaults)

    def test_serialisation_round_trip(self):
        meta = self._meta(grants={"bob": Permission.READ}, data_version=3, deleted=True)
        parsed = FileMetadata.from_bytes(meta.to_bytes())
        assert parsed == meta

    def test_tuple_is_about_one_kilobyte(self):
        meta = self._meta(path="/" + "d" * 100, grants={"bob": Permission.READ_WRITE})
        assert len(meta.to_bytes()) < 1024

    def test_owner_always_allowed(self):
        assert self._meta().allows("alice", Permission.READ_WRITE)

    def test_grants_control_other_users(self):
        meta = self._meta(grants={"bob": Permission.READ})
        assert meta.allows("bob", Permission.READ)
        assert not meta.allows("bob", Permission.WRITE)
        assert not meta.allows("carol", Permission.READ)

    def test_grant_and_revoke(self):
        meta = self._meta()
        meta.grant("bob", Permission.READ_WRITE)
        assert meta.is_shared
        meta.grant("bob", Permission.NONE)
        assert not meta.is_shared

    def test_name_and_parent(self):
        meta = self._meta()
        assert meta.name == "file.txt" and meta.parent == "/docs"

    def test_touch_updates_mtime_and_size(self):
        meta = self._meta()
        meta.touch(now=42.0, size=99)
        assert meta.modified_at == 42.0 and meta.size == 99

    def test_renamed_copy(self):
        meta = self._meta(grants={"bob": Permission.READ})
        moved = meta.renamed("/other/place.txt")
        assert moved.path == "/other/place.txt"
        assert moved.grants == meta.grants
        assert meta.path == "/docs/file.txt"

    def test_copy_is_deep_enough(self):
        meta = self._meta()
        clone = meta.copy()
        clone.grant("bob", Permission.READ)
        assert not meta.is_shared

    def test_type_predicates(self):
        assert self._meta().is_file
        directory = self._meta(file_type=FileType.DIRECTORY)
        assert directory.is_directory and not directory.is_file


class TestLRUByteCache:
    def _cache(self, capacity=100):
        return LRUByteCache(capacity, SimClock(), name="test")

    def test_get_miss_returns_none(self):
        assert self._cache().get("missing") is None

    def test_put_then_get(self):
        cache = self._cache()
        cache.put("a", b"12345")
        assert cache.get("a") == b"12345"
        assert cache.hits == 1 and cache.misses == 0

    def test_capacity_enforced_with_lru_eviction(self):
        cache = self._cache(capacity=10)
        cache.put("a", b"12345")
        cache.put("b", b"12345")
        cache.get("a")                      # refresh a; b becomes LRU
        evicted = cache.put("c", b"12345")
        assert [key for key, _ in evicted] == ["b"]
        assert cache.contains("a") and not cache.contains("b")

    def test_oversized_value_not_stored(self):
        cache = self._cache(capacity=4)
        assert cache.put("big", b"123456") == []
        assert not cache.contains("big")

    def test_replacing_key_updates_usage(self):
        cache = self._cache(capacity=10)
        cache.put("a", b"123456789")
        cache.put("a", b"12")
        assert cache.used_bytes == 2

    def test_remove_and_clear(self):
        cache = self._cache()
        cache.put("a", b"1")
        cache.remove("a")
        assert not cache.contains("a")
        cache.put("b", b"2")
        cache.clear()
        assert len(cache) == 0 and cache.used_bytes == 0

    def test_access_charges_latency(self):
        clock = SimClock()
        cache = LRUByteCache(1000, clock)
        cache.put("a", b"x" * 100)
        cache.get("a")
        assert clock.now() > 0.0

    def test_disk_cache_slower_than_memory_cache(self):
        clock_mem, clock_disk = SimClock(), SimClock()
        memory = make_memory_cache(1 << 20, clock_mem)
        disk = make_disk_cache(1 << 20, clock_disk)
        memory.put("k", b"x" * 10_000)
        disk.put("k", b"x" * 10_000)
        assert clock_disk.now() > clock_mem.now()

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUByteCache(-1, SimClock())


class TestMetadataCache:
    def test_entry_expires(self):
        clock = SimClock()
        cache = MetadataCache(clock, expiration=0.5)
        cache.put("k", "value")
        assert cache.get("k") == "value"
        clock.advance(0.6)
        assert cache.get("k") is None

    def test_zero_expiration_disables_caching(self):
        cache = MetadataCache(SimClock(), expiration=0.0)
        cache.put("k", "value")
        assert cache.get("k") is None

    def test_invalidate(self):
        cache = MetadataCache(SimClock(), expiration=10.0)
        cache.put("k", "value")
        cache.invalidate("k")
        assert cache.get("k") is None

    def test_hit_and_miss_counters(self):
        clock = SimClock()
        cache = MetadataCache(clock, expiration=1.0)
        cache.put("k", "v")
        cache.get("k")
        cache.get("other")
        assert cache.hits == 1 and cache.misses == 1

    def test_negative_expiration_rejected(self):
        with pytest.raises(ValueError):
            MetadataCache(SimClock(), expiration=-1.0)


class TestConfig:
    def test_default_config_is_valid(self):
        SCFSConfig().validate()

    def test_variant_configurations(self):
        blocking = SCFSConfig.for_variant("SCFS-CoC-B")
        assert blocking.mode is OperationMode.BLOCKING
        assert blocking.backend is BackendKind.COC
        assert blocking.fault_tolerance == 1 and blocking.encrypt_data

        aws_ns = SCFSConfig.for_variant("SCFS-AWS-NS")
        assert aws_ns.mode is OperationMode.NON_SHARING
        assert aws_ns.private_name_spaces
        assert aws_ns.fault_tolerance == 0 and not aws_ns.encrypt_data

    def test_non_sharing_requires_pns(self):
        with pytest.raises(ConfigurationError):
            SCFSConfig(mode=OperationMode.NON_SHARING, private_name_spaces=False).validate()

    def test_with_mode_forces_pns_for_non_sharing(self):
        config = SCFSConfig().with_mode(OperationMode.NON_SHARING)
        assert config.private_name_spaces
        config.validate()

    def test_bad_cache_config_rejected(self):
        with pytest.raises(ConfigurationError):
            SCFSConfig(caches=CacheConfig(memory_bytes=-1)).validate()

    def test_bad_gc_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            GarbageCollectionPolicy(versions_to_keep=0).validate()
        with pytest.raises(ConfigurationError):
            GarbageCollectionPolicy(written_bytes_threshold=0).validate()

    def test_unknown_coordination_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            SCFSConfig(coordination_kind="chubby").validate()

    def test_unknown_variant_rejected(self):
        with pytest.raises(KeyError):
            SCFSConfig.for_variant("SCFS-MOON-B")


class TestModes:
    def test_table2_has_six_variants(self):
        assert len(VARIANTS) == 6

    def test_variant_lookup_is_case_insensitive(self):
        assert variant("scfs-coc-nb").mode is OperationMode.NON_BLOCKING

    def test_labels(self):
        assert variant("SCFS-CoC-NB").label == "CoC-NB"
        assert variant("SCFS-AWS-B").label == "AWS-B"

    def test_mode_properties(self):
        assert OperationMode.BLOCKING.blocks_on_close
        assert not OperationMode.NON_BLOCKING.blocks_on_close
        assert not OperationMode.NON_SHARING.uses_coordination
        assert OperationMode.NON_BLOCKING.uses_coordination
