"""Unit tests for the extension features beyond the paper's base design.

* namespace-partitioned coordination (the §5 scalability extension);
* the refined age-based garbage-collection retention policy (§2.5.3 mentions
  "keep one version per day or week" as a possible policy).
"""

import pytest

from repro.common.errors import ConfigurationError, TupleNotFoundError
from repro.common.types import Permission
from repro.coordination.adapters import make_coordination_service
from repro.coordination.partitioned import (
    PartitionedCoordination,
    partition_by_top_level_directory,
)
from repro.core.config import GarbageCollectionPolicy, SCFSConfig
from repro.core.deployment import SCFSDeployment


def _partitioned(sim, partitions=3):
    services = [make_coordination_service(sim, "depspace", f=0) for _ in range(partitions)]
    return PartitionedCoordination(services)


class TestPartitionFunction:
    def test_same_subtree_same_partition(self):
        a = partition_by_top_level_directory("meta:/projects/a.txt", 4)
        b = partition_by_top_level_directory("meta:/projects/deep/b.txt", 4)
        assert a == b

    def test_partition_is_stable(self):
        assert (partition_by_top_level_directory("meta:/home/x", 4)
                == partition_by_top_level_directory("meta:/home/x", 4))

    def test_different_subtrees_spread_over_partitions(self):
        partitions = {partition_by_top_level_directory(f"meta:/dir-{i}/f", 4) for i in range(64)}
        assert len(partitions) > 1


class TestPartitionedCoordination:
    def test_requires_at_least_one_service(self):
        with pytest.raises(ValueError):
            PartitionedCoordination([])

    def test_put_get_delete_roundtrip(self, sim, alice):
        coordination = _partitioned(sim)
        session = coordination.open_session(alice)
        coordination.put("meta:/a/file", b"payload", session)
        assert coordination.get("meta:/a/file", session).value == b"payload"
        coordination.delete("meta:/a/file", session)
        with pytest.raises(TupleNotFoundError):
            coordination.get("meta:/a/file", session)

    def test_entries_are_spread_across_partitions(self, sim, alice):
        coordination = _partitioned(sim, partitions=4)
        session = coordination.open_session(alice)
        for i in range(32):
            coordination.put(f"meta:/subtree-{i}/file", b"x", session)
        per_partition = coordination.per_partition_entries()
        assert sum(per_partition) == 32
        assert sum(1 for count in per_partition if count > 0) >= 2

    def test_list_prefix_fans_out_over_all_partitions(self, sim, alice):
        coordination = _partitioned(sim, partitions=4)
        session = coordination.open_session(alice)
        keys = [f"meta:/tree-{i}/file" for i in range(10)]
        for key in keys:
            coordination.put(key, b"x", session)
        assert coordination.list_prefix("meta:/", session) == sorted(keys)

    def test_locks_and_sessions_work_across_partitions(self, sim, alice, bob):
        coordination = _partitioned(sim, partitions=3)
        s1 = coordination.open_session(alice)
        s2 = coordination.open_session(bob)
        assert coordination.try_lock("filelock:file-1", s1)
        assert not coordination.try_lock("filelock:file-1", s2)
        assert coordination.lock_holder("filelock:file-1") is not None
        coordination.close_session(s1)
        assert coordination.try_lock("filelock:file-1", s2)

    def test_entry_acl_applies_on_the_owning_partition(self, sim, alice, bob):
        coordination = _partitioned(sim)
        alice_session = coordination.open_session(alice)
        bob_session = coordination.open_session(bob)
        coordination.put("meta:/shared/doc", b"v", alice_session)
        coordination.set_entry_acl("meta:/shared/doc", "bob", Permission.READ, alice_session)
        assert coordination.get("meta:/shared/doc", bob_session).value == b"v"

    def test_charge_proxy_toggles_every_partition(self, sim, alice):
        coordination = _partitioned(sim, partitions=2)
        coordination.rsm.charge_latency = False
        session = coordination.open_session(alice)
        before = sim.now()
        coordination.put("meta:/x/file", b"x", session)
        assert sim.now() == before
        coordination.rsm.charge_latency = True
        coordination.put("meta:/x/file", b"y", session)
        assert sim.now() > before

    def test_entry_count_and_bytes_are_aggregated(self, sim, alice):
        coordination = _partitioned(sim)
        session = coordination.open_session(alice)
        coordination.put("meta:/a/1", b"x" * 10, session)
        coordination.put("meta:/b/2", b"y" * 10, session)
        assert coordination.entry_count() == 2
        assert coordination.stored_bytes() >= 20


class TestPartitionedDeployment:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SCFSConfig(coordination_partitions=0).validate()

    def test_full_stack_with_partitioned_namespace(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-NB", seed=61,
                                                coordination_partitions=3)
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        alice.mkdir("/projects", shared=True)
        alice.write_file("/projects/doc.txt", b"partitioned metadata", shared=True)
        alice.setfacl("/projects/doc.txt", "bob", Permission.READ)
        deployment.drain(2.0)
        assert bob.read_file("/projects/doc.txt") == b"partitioned metadata"
        assert len(deployment.coordination.services) == 3

    def test_partitions_multiply_capacity(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-NB", seed=62,
                                                coordination_partitions=4)
        fs = deployment.create_agent("alice")
        for i in range(12):
            fs.mkdir(f"/dir-{i}", shared=True)
            fs.write_file(f"/dir-{i}/file.txt", b"x", shared=True)
        deployment.drain()
        per_partition = deployment.coordination.per_partition_entries()
        assert sum(per_partition) >= 24
        assert max(per_partition) < sum(per_partition)


class TestAgeBasedGarbageCollection:
    def _deployment(self, interval):
        config = SCFSConfig.for_variant(
            "SCFS-AWS-B",
            gc=GarbageCollectionPolicy(written_bytes_threshold=1 << 30, versions_to_keep=1,
                                       keep_interval_seconds=interval),
        )
        return SCFSDeployment(config, seed=63)

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            GarbageCollectionPolicy(keep_interval_seconds=0).validate()

    def test_keeps_one_version_per_interval_bucket(self):
        deployment = self._deployment(interval=3600.0)
        fs = deployment.create_agent("alice")
        # Three "days" of edits, several versions per day.
        for day in range(3):
            for edit in range(3):
                fs.write_file("/journal.txt", f"day {day} edit {edit}".encode())
            deployment.sim.advance(3600.0)
        deployment.sim.advance(5.0)
        report = fs.collect_garbage()
        meta = fs.stat("/journal.txt")
        remaining = fs.agent.backend.list_versions(meta.file_id)
        # One survivor per hourly bucket (3) — the last of them is also the
        # current version; everything else was reclaimed.
        assert len(remaining) == 3
        assert report.versions_deleted == 6
        assert meta.digest in {r.digest for r in remaining}

    def test_without_interval_only_recent_versions_survive(self):
        deployment = SCFSDeployment(
            SCFSConfig.for_variant(
                "SCFS-AWS-B",
                gc=GarbageCollectionPolicy(written_bytes_threshold=1 << 30, versions_to_keep=1),
            ),
            seed=64,
        )
        fs = deployment.create_agent("alice")
        for day in range(3):
            for edit in range(3):
                fs.write_file("/journal.txt", f"day {day} edit {edit}".encode())
            deployment.sim.advance(3600.0)
        deployment.sim.advance(5.0)
        fs.collect_garbage()
        meta = fs.stat("/journal.txt")
        assert len(fs.agent.backend.list_versions(meta.file_id)) == 1
