"""Quorum-system abstraction: predicates, validity checks, planner, config.

* the legacy ``CountQuorum`` reproduces m-th-success counting exactly;
* weighted and explicit systems enforce the Malkhi–Reiter consistency and
  availability conditions at validation time;
* the planner picks the cheapest feasible quorum, demotes suspects and
  reverts loudly when demotion would kill feasibility;
* the config layer rejects infeasible quorum blocks before any deployment
  is built, and the deployment threads the system end to end.
"""

import pytest

from repro.clouds.health import CloudHealthTracker, QuorumPlanner, SuspicionPolicy
from repro.clouds.quorums import (
    CountQuorum,
    ExplicitQuorumSystem,
    SubsetQuorum,
    SurvivorQuorum,
    ThresholdQuorumSystem,
    WeightedCountQuorum,
    WeightedQuorumSystem,
    as_quorum,
    min_size,
    minimal_quorums,
)
from repro.common.errors import ConfigurationError
from repro.core.config import QuorumConfig, SCFSConfig
from repro.core.deployment import SCFSDeployment

CLOUDS = ("amazon-s3", "google-storage", "rackspace-files", "windows-azure")
WEIGHTS = (("amazon-s3", 1.2), ("google-storage", 1.0),
           ("rackspace-files", 1.0), ("windows-azure", 1.0))


class TestCountQuorum:
    def test_counts_responses_not_distinct_clouds(self):
        quorum = CountQuorum(3)
        # The legacy engine counts the m-th *success*, so duplicates count.
        assert quorum.satisfied_by(["a", "a", "a"])
        assert not quorum.satisfied_by(["a", "b"])
        assert quorum.min_size == 3

    def test_as_quorum_and_min_size_helpers(self):
        assert as_quorum(2) == CountQuorum(2)
        assert as_quorum(CountQuorum(2)) == CountQuorum(2)
        assert min_size(4) == 4
        assert min_size(CountQuorum(4)) == 4


class TestWeightedCountQuorum:
    def test_duplicate_responders_weigh_once(self):
        quorum = WeightedCountQuorum(weights=WEIGHTS, threshold_weight=2.7)
        assert not quorum.satisfied_by(["amazon-s3", "amazon-s3", "amazon-s3"])
        assert quorum.satisfied_by(["amazon-s3", "google-storage", "rackspace-files"])

    def test_min_size_takes_heaviest_first(self):
        quorum = WeightedCountQuorum(weights=WEIGHTS, threshold_weight=2.0)
        # amazon (1.2) + google (1.0) = 2.2 > 2.0 with two clouds.
        assert quorum.min_size == 2

    def test_unsatisfiable_bar_reports_oversized_min(self):
        quorum = WeightedCountQuorum(weights=WEIGHTS, threshold_weight=10.0)
        assert quorum.min_size == len(WEIGHTS) + 1
        assert not quorum.satisfied_by(list(CLOUDS))

    def test_weight_arithmetic_is_exact_on_the_bar(self):
        # Hypothesis-found counterexample: W = 6.6, B = 1.2, quorum bar
        # (W+B)/2 = 3.9.  Both sets below have true weight exactly 3.9, but
        # float accumulation (0.5+1.2+1.2+1.0 = 3.9000000000000004) pushed
        # them over the strict bar — and they intersect only in c1 (weight
        # 1.2 <= B), which a tolerated fault set can cover entirely.  The
        # exact-rational comparison must reject both.
        weights = (("c0", 0.5), ("c1", 1.2), ("c2", 1.2), ("c3", 1.2),
                   ("c4", 0.5), ("c5", 1.0), ("c6", 1.0))
        system = WeightedQuorumSystem(
            universe=tuple(name for name, _ in weights),
            weights=weights, fault_budget=1.2)
        system.validate()
        assert not system.satisfied_by(("c0", "c1", "c2", "c5"))
        assert not system.satisfied_by(("c1", "c3", "c4", "c6"))


class TestMinimalQuorums:
    def test_enumerates_only_minimal_sets_deterministically(self):
        found = list(minimal_quorums(CLOUDS, 2))
        assert all(len(combo) == 2 for combo in found)
        assert found == sorted(found, key=lambda c: [CLOUDS.index(n) for n in c])
        # Supersets of a satisfying set are not minimal.
        assert all(len(combo) < 3 for combo in found)

    def test_weighted_minimality(self):
        quorum = WeightedCountQuorum(weights=WEIGHTS, threshold_weight=2.0)
        found = list(minimal_quorums(CLOUDS, quorum))
        for combo in found:
            assert quorum.satisfied_by(combo)
            for i in range(len(combo)):
                assert not quorum.satisfied_by(combo[:i] + combo[i + 1:])


class TestThresholdSystem:
    def test_quorum_and_certificate_counts(self):
        system = ThresholdQuorumSystem(universe=CLOUDS, f=1)
        system.validate()
        assert system.quorum() == CountQuorum(3)
        assert system.certificate() == CountQuorum(2)
        assert system.satisfied_by(CLOUDS[:3])
        assert not system.certifies(CLOUDS[:1])

    def test_rejects_too_few_providers(self):
        with pytest.raises(ValueError, match="at least 4"):
            ThresholdQuorumSystem(universe=CLOUDS[:3], f=1).validate()

    def test_rejects_duplicate_providers(self):
        with pytest.raises(ValueError, match="twice"):
            ThresholdQuorumSystem(universe=("a", "a", "b", "c"), f=1).validate()


class TestWeightedSystem:
    def system(self) -> WeightedQuorumSystem:
        return WeightedQuorumSystem(universe=CLOUDS, weights=WEIGHTS, fault_budget=1.2)

    def test_valid_heterogeneous_system(self):
        system = self.system()
        system.validate()
        # W = 4.2, B = 1.2: quorum bar 2.7 (any three clouds), cert bar 1.2.
        assert system.satisfied_by(("google-storage", "rackspace-files", "windows-azure"))
        assert not system.satisfied_by(("amazon-s3", "google-storage"))
        # The heavy cloud alone cannot certify: its weight equals the budget.
        assert not system.certifies(("amazon-s3",))
        assert system.certifies(("amazon-s3", "google-storage"))
        assert system.certifies(("google-storage", "rackspace-files"))

    def test_rejects_budget_at_a_third_of_total_weight(self):
        with pytest.raises(ValueError, match="unavailable"):
            WeightedQuorumSystem(
                universe=CLOUDS,
                weights=(("amazon-s3", 1.5), *WEIGHTS[1:]),
                fault_budget=1.5,
            ).validate()

    def test_rejects_weights_not_covering_universe(self):
        with pytest.raises(ValueError, match="cover the universe"):
            WeightedQuorumSystem(universe=CLOUDS, weights=WEIGHTS[:3],
                                 fault_budget=1.0).validate()

    def test_rejects_non_positive_weights_and_budgets(self):
        with pytest.raises(ValueError, match="positive"):
            WeightedQuorumSystem(
                universe=CLOUDS,
                weights=(("amazon-s3", 0.0), *WEIGHTS[1:]),
                fault_budget=1.0,
            ).validate()
        with pytest.raises(ValueError, match="non-negative"):
            WeightedQuorumSystem(universe=CLOUDS, weights=WEIGHTS,
                                 fault_budget=-1.0).validate()


class TestExplicitSystem:
    def grid(self) -> ExplicitQuorumSystem:
        a, b, c, d = CLOUDS
        return ExplicitQuorumSystem(
            universe=CLOUDS,
            quorums=((a, b, c), (a, b, d), (a, c, d), (b, c, d)),
            fault_sets=((a,), (b,), (c,), (d,)),
        )

    def test_valid_asymmetric_system(self):
        system = self.grid()
        system.validate()
        assert isinstance(system.quorum(), SubsetQuorum)
        assert isinstance(system.certificate(), SurvivorQuorum)
        assert system.satisfied_by(CLOUDS[:3])
        assert not system.satisfied_by(CLOUDS[:2])
        # One responder inside a fail-prone set never certifies alone…
        assert not system.certifies(CLOUDS[:1])
        # …but two responders cannot both sit in one singleton fault set.
        assert system.certifies(CLOUDS[:2])

    def test_rejects_quorums_intersecting_inside_a_fault_set(self):
        a, b, c, d = CLOUDS
        with pytest.raises(ValueError, match="intersect entirely inside"):
            ExplicitQuorumSystem(
                universe=CLOUDS,
                quorums=((a, b), (a, c)),
                fault_sets=((a,),),
            ).validate()

    def test_rejects_unavailable_system(self):
        a, b, c, d = CLOUDS
        with pytest.raises(ValueError, match="unavailable"):
            ExplicitQuorumSystem(
                universe=CLOUDS,
                quorums=((a, b, c, d),),
                fault_sets=((a,),),
            ).validate()

    def test_rejects_providers_outside_the_universe(self):
        with pytest.raises(ValueError, match="outside the universe"):
            ExplicitQuorumSystem(
                universe=CLOUDS[:2],
                quorums=(("amazon-s3", "nimbus-9"),),
            ).validate()


class TestQuorumPlanner:
    def planner(self, latencies: dict, costs: dict,
                tracker: CloudHealthTracker | None = None) -> QuorumPlanner:
        return QuorumPlanner(
            latency_of=lambda cloud, kind, payload: latencies[cloud],
            cost_of=lambda cloud, kind, payload: costs[cloud],
            tracker=tracker,
        )

    def test_picks_cheapest_feasible_quorum(self):
        latencies = {"amazon-s3": 0.18, "google-storage": 0.17,
                     "rackspace-files": 0.09, "windows-azure": 0.095}
        costs = dict.fromkeys(CLOUDS, 1.0)
        plan = self.planner(latencies, costs).plan(CLOUDS, 2, "object_get", 0)
        assert set(plan.primary) == {"rackspace-files", "windows-azure"}
        assert set(plan.fallback) == {"amazon-s3", "google-storage"}
        assert not plan.reverted
        assert plan.expected_latency == pytest.approx(0.095)

    def test_primary_preserves_candidate_order(self):
        latencies = dict.fromkeys(CLOUDS, 0.1)
        costs = dict.fromkeys(CLOUDS, 1.0)
        plan = self.planner(latencies, costs).plan(CLOUDS, 3, "object_get", 0)
        assert plan.primary == tuple(c for c in CLOUDS if c in plan.primary)

    def test_demotes_suspected_clouds(self):
        tracker = CloudHealthTracker(SuspicionPolicy(threshold=1))
        tracker.observe("rackspace-files", succeeded=False, latency=0.1, now=0.0)
        latencies = {"amazon-s3": 0.18, "google-storage": 0.17,
                     "rackspace-files": 0.01, "windows-azure": 0.095}
        costs = dict.fromkeys(CLOUDS, 1.0)
        plan = self.planner(latencies, costs, tracker).plan(CLOUDS, 2, "object_get", 0)
        assert "rackspace-files" not in plan.primary
        assert not plan.reverted

    def test_reverts_loudly_when_demotion_kills_feasibility(self, caplog):
        tracker = CloudHealthTracker(SuspicionPolicy(threshold=1))
        for cloud in CLOUDS[1:]:
            tracker.observe(cloud, succeeded=False, latency=0.1, now=0.0)
        latencies = dict.fromkeys(CLOUDS, 0.1)
        costs = dict.fromkeys(CLOUDS, 1.0)
        planner = self.planner(latencies, costs, tracker)
        with caplog.at_level("WARNING"):
            plan = planner.plan(CLOUDS, 3, "object_get", 0)
        assert plan.reverted
        assert planner.reverts == 1
        assert len(plan.primary) == 3
        assert any("reverted" in record.message for record in caplog.records)

    def test_weighted_predicate_planning(self):
        system = WeightedQuorumSystem(universe=CLOUDS, weights=WEIGHTS,
                                      fault_budget=1.2)
        latencies = {"amazon-s3": 0.18, "google-storage": 0.17,
                     "rackspace-files": 0.09, "windows-azure": 0.095}
        costs = dict.fromkeys(CLOUDS, 1.0)
        plan = self.planner(latencies, costs).plan(
            CLOUDS, system.quorum(), "object_get", 0)
        assert system.satisfied_by(plan.primary)
        # Any three clouds clear the 2.7 bar; the cheapest triple wins.
        assert "amazon-s3" not in plan.primary


class TestQuorumConfig:
    def test_threshold_default_builds_no_system(self):
        config = QuorumConfig()
        config.validate()
        assert not config.enabled
        assert config.system_for(CLOUDS, f=1) is None

    def test_threshold_mode_rejects_stray_parameters(self):
        with pytest.raises(ConfigurationError, match="threshold quorum mode"):
            QuorumConfig(weights=WEIGHTS).validate()

    def test_infeasible_weighted_config_rejected_at_config_time(self):
        config = QuorumConfig(
            mode="weighted",
            weights=(("amazon-s3", 1.5), *WEIGHTS[1:]),
            fault_budget=1.5,
        )
        with pytest.raises(ConfigurationError, match="unavailable"):
            config.validate()

    def test_weighted_system_requires_matching_deployment(self):
        config = QuorumConfig(mode="weighted", weights=WEIGHTS, fault_budget=1.2)
        config.validate()
        with pytest.raises(ConfigurationError, match="deployment"):
            config.system_for(("amazon-s3", "google-storage", "rackspace-files",
                               "elastic-hosts"), f=1)

    def test_weighted_system_builds_over_deployment(self):
        config = QuorumConfig(mode="weighted", weights=WEIGHTS, fault_budget=1.2)
        system = config.system_for(CLOUDS, f=1)
        assert isinstance(system, WeightedQuorumSystem)
        assert set(system.universe) == set(CLOUDS)

    def test_quorum_block_requires_coc_backend(self):
        with pytest.raises(ConfigurationError, match="cloud-of-clouds"):
            SCFSConfig.for_variant(
                "SCFS-AWS-NB",
                quorum=QuorumConfig(mode="weighted", weights=WEIGHTS,
                                    fault_budget=1.2),
            ).validate()


class TestWeightedDeployment:
    def deployment(self) -> SCFSDeployment:
        return SCFSDeployment.for_variant(
            "SCFS-CoC-B", seed=7,
            quorum=QuorumConfig(mode="weighted", weights=WEIGHTS, fault_budget=1.2),
        )

    def test_end_to_end_write_read_under_weighted_quorums(self):
        deployment = self.deployment()
        alice = deployment.create_agent("alice")
        alice.write_file("/doc.txt", b"weighted quorums, threshold bytes")
        assert alice.read_file("/doc.txt") == b"weighted quorums, threshold bytes"
        deployment.unmount_all()

    def test_client_rejects_mismatched_universe(self):
        from repro.depsky.protocol import DepSkyClient
        from repro.clouds.providers import make_cloud_of_clouds
        from repro.common.types import Principal
        from repro.simenv.environment import Simulation

        sim = Simulation(seed=3)
        clouds = make_cloud_of_clouds(sim, CLOUDS, charge_latency=False)
        system = WeightedQuorumSystem(
            universe=("one", "two", "three", "four"),
            weights=(("one", 1.0), ("two", 1.0), ("three", 1.0), ("four", 1.0)),
            fault_budget=1.0)
        with pytest.raises(ValueError, match="does not\n?.*match the deployed"):
            DepSkyClient(sim, clouds, Principal(name="alice"), quorum=system)


class TestHealthSnapshotPersistence:
    def test_export_restore_roundtrip_warms_the_suspect_list(self):
        tracker = CloudHealthTracker(SuspicionPolicy(threshold=2))
        for _ in range(2):
            tracker.observe("amazon-s3", succeeded=False, latency=0.5, now=10.0)
        tracker.observe("google-storage", succeeded=True, latency=0.2, now=11.0)
        state = tracker.export_state()

        restored = CloudHealthTracker(SuspicionPolicy(threshold=2))
        restored.restore_state(state)
        assert restored.is_suspected("amazon-s3")
        assert not restored.is_suspected("google-storage")
        assert restored.health("google-storage").ewma_latency == pytest.approx(0.2)
        # Lifetime counters belong to the previous incarnation's report.
        assert restored.suspicions == 0
        assert restored.export_state() == state
