"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _parse_size, build_parser, main


class TestSizeParsing:
    def test_kilobytes_and_megabytes(self):
        assert _parse_size("256K") == 256 * 1024
        assert _parse_size("4M") == 4 * 1024 * 1024
        assert _parse_size("1000") == 1000

    def test_lowercase_and_fractions(self):
        assert _parse_size("1.5m") == int(1.5 * 1024 * 1024)


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands_parse(self):
        parser = build_parser()
        for argv in (["variants"], ["demo"], ["table3", "--quick"],
                     ["fig9", "--sizes", "256K"], ["fig10", "--quick"],
                     ["fig11", "--sizes", "1M"], ["fig8", "--runs", "1"]):
            args = parser.parse_args(argv)
            assert callable(args.func)


class TestCommands:
    def test_variants_lists_table2(self, capsys):
        assert main(["variants"]) == 0
        output = capsys.readouterr().out
        assert "SCFS-CoC-NB" in output and "non-blocking" in output

    def test_demo_runs_end_to_end(self, capsys):
        assert main(["demo"]) == 0
        output = capsys.readouterr().out
        assert "bob reads the shared file" in output
        assert "micro-dollars" in output

    def test_fig11a_costs_printed(self, capsys):
        assert main(["fig11", "--sizes", "1M"]) == 0
        output = capsys.readouterr().out
        assert "39.60" in output and "cached read" in output
