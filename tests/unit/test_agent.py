"""Unit tests for the SCFS Agent and the POSIX-like file-system façade."""

import pytest

from repro.common.errors import (
    DirectoryNotEmptyError,
    FileExistsErrorFS,
    FileNotFoundErrorFS,
    InvalidHandleError,
    IsADirectoryErrorFS,
    LockHeldError,
    NotADirectoryErrorFS,
    PermissionDeniedError,
)
from repro.common.types import Permission
from repro.core.agent import OpenFlags
from repro.core.deployment import SCFSDeployment
from repro.core.filesystem import DURABILITY_TABLE, DurabilityLevel
from repro.core.metadata import FileType
from repro.core.modes import OperationMode


@pytest.fixture
def coc_nb():
    deployment = SCFSDeployment.for_variant("SCFS-CoC-NB", seed=11)
    return deployment, deployment.create_agent("alice")


@pytest.fixture
def aws_b():
    deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=11)
    return deployment, deployment.create_agent("alice")


class TestOpenCloseSemantics:
    def test_open_missing_file_raises(self, coc_nb):
        _, fs = coc_nb
        with pytest.raises(FileNotFoundErrorFS):
            fs.open("/missing.txt", "r")

    def test_create_write_read_back(self, coc_nb):
        deployment, fs = coc_nb
        fs.write_file("/f.txt", b"hello world")
        assert fs.read_file("/f.txt") == b"hello world"

    def test_open_modes_map_to_flags(self, coc_nb):
        _, fs = coc_nb
        with pytest.raises(ValueError):
            fs.open("/f.txt", "x+")

    def test_unknown_handle_rejected(self, coc_nb):
        _, fs = coc_nb
        with pytest.raises(InvalidHandleError):
            fs.read(999)
        with pytest.raises(InvalidHandleError):
            fs.close(999)

    def test_double_close_rejected(self, coc_nb):
        _, fs = coc_nb
        handle = fs.open("/f.txt", "w")
        fs.close(handle)
        with pytest.raises(InvalidHandleError):
            fs.close(handle)

    def test_read_requires_read_mode(self, coc_nb):
        _, fs = coc_nb
        fs.write_file("/f.txt", b"data")
        handle = fs.agent.open("/f.txt", OpenFlags.WRITE)
        with pytest.raises(PermissionDeniedError):
            fs.agent.read(handle)
        fs.close(handle)

    def test_write_requires_write_mode(self, coc_nb):
        _, fs = coc_nb
        fs.write_file("/f.txt", b"data")
        handle = fs.open("/f.txt", "r")
        with pytest.raises(PermissionDeniedError):
            fs.write(handle, b"nope")
        fs.close(handle)

    def test_append_mode(self, coc_nb):
        deployment, fs = coc_nb
        fs.write_file("/log.txt", b"one;")
        fs.append_file("/log.txt", b"two;")
        deployment.drain()
        assert fs.read_file("/log.txt") == b"one;two;"

    def test_truncate_then_reopen(self, coc_nb):
        deployment, fs = coc_nb
        fs.write_file("/f.txt", b"0123456789")
        handle = fs.open("/f.txt", "r+")
        fs.truncate(handle, 4)
        fs.close(handle)
        deployment.drain()
        assert fs.read_file("/f.txt") == b"0123"

    def test_offset_reads_and_writes(self, coc_nb):
        _, fs = coc_nb
        handle = fs.open("/f.txt", "w")
        fs.write(handle, b"AAAAAAAA")
        fs.write(handle, b"BB", offset=2)
        assert fs.read(handle, 4, offset=1) == b"ABBA"
        fs.close(handle)

    def test_writing_past_end_zero_fills(self, coc_nb):
        _, fs = coc_nb
        handle = fs.open("/f.txt", "w")
        fs.write(handle, b"X", offset=4)
        assert fs.read(handle) == b"\x00\x00\x00\x00X"
        fs.close(handle)

    def test_open_directory_for_reading_fails(self, coc_nb):
        _, fs = coc_nb
        fs.mkdir("/dir")
        with pytest.raises(IsADirectoryErrorFS):
            fs.open("/dir", "r")

    def test_create_in_missing_parent_fails(self, coc_nb):
        _, fs = coc_nb
        with pytest.raises(FileNotFoundErrorFS):
            fs.write_file("/no-such-dir/f.txt", b"x")

    def test_stat_reflects_size_and_type(self, coc_nb):
        deployment, fs = coc_nb
        fs.write_file("/f.txt", b"12345")
        meta = fs.stat("/f.txt")
        assert meta.size == 5 and meta.file_type is FileType.FILE
        assert fs.stat("/").is_directory


class TestNamespaceOperations:
    def test_mkdir_readdir_rmdir(self, coc_nb):
        _, fs = coc_nb
        fs.mkdir("/docs")
        fs.write_file("/docs/a.txt", b"1")
        fs.write_file("/docs/b.txt", b"2")
        assert fs.readdir("/docs") == ["a.txt", "b.txt"]
        with pytest.raises(DirectoryNotEmptyError):
            fs.rmdir("/docs")
        fs.unlink("/docs/a.txt")
        fs.unlink("/docs/b.txt")
        fs.rmdir("/docs")
        assert not fs.exists("/docs")

    def test_mkdir_under_file_fails(self, coc_nb):
        _, fs = coc_nb
        fs.write_file("/f.txt", b"x")
        with pytest.raises(NotADirectoryErrorFS):
            fs.mkdir("/f.txt/sub")

    def test_readdir_of_file_fails(self, coc_nb):
        _, fs = coc_nb
        fs.write_file("/f.txt", b"x")
        with pytest.raises(NotADirectoryErrorFS):
            fs.readdir("/f.txt")

    def test_unlink_directory_fails(self, coc_nb):
        _, fs = coc_nb
        fs.mkdir("/dir")
        with pytest.raises(IsADirectoryErrorFS):
            fs.unlink("/dir")

    def test_unlinked_file_is_recoverable_until_gc(self, coc_nb):
        deployment, fs = coc_nb
        fs.write_file("/f.txt", b"precious")
        fs.unlink("/f.txt")
        assert not fs.exists("/f.txt")
        # The metadata still exists (marked deleted) until the GC purges it.
        assert fs.agent.metadata.lookup("/f.txt").deleted

    def test_recreate_after_unlink(self, coc_nb):
        deployment, fs = coc_nb
        fs.write_file("/f.txt", b"old")
        fs.unlink("/f.txt")
        fs.write_file("/f.txt", b"new")
        deployment.drain()
        assert fs.read_file("/f.txt") == b"new"

    def test_rename_file_and_directory(self, coc_nb):
        deployment, fs = coc_nb
        fs.mkdir("/dir")
        fs.write_file("/dir/f.txt", b"data")
        fs.rename("/dir/f.txt", "/dir/g.txt")
        assert fs.readdir("/dir") == ["g.txt"]
        fs.rename("/dir", "/renamed")
        deployment.drain()
        assert fs.read_file("/renamed/g.txt") == b"data"

    def test_rename_to_existing_target_fails(self, coc_nb):
        _, fs = coc_nb
        fs.write_file("/a.txt", b"a")
        fs.write_file("/b.txt", b"b")
        with pytest.raises(FileExistsErrorFS):
            fs.rename("/a.txt", "/b.txt")

    def test_symlink_and_readlink(self, coc_nb):
        _, fs = coc_nb
        fs.write_file("/target.txt", b"content")
        fs.symlink("/target.txt", "/link")
        assert fs.readlink("/link") == "/target.txt"
        with pytest.raises(Exception):
            fs.readlink("/target.txt")


class TestDurabilityAndModes:
    def test_durability_table_matches_paper(self):
        assert [row.level for row in DURABILITY_TABLE] == [0, 1, 2, 3]
        assert DURABILITY_TABLE[2].example_call == "close"

    def test_blocking_coc_close_reaches_level3(self):
        deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=1)
        fs = deployment.create_agent("alice")
        assert fs.durability_of("write") is DurabilityLevel.MAIN_MEMORY
        assert fs.durability_of("fsync") is DurabilityLevel.LOCAL_DISK
        assert fs.durability_of("close") is DurabilityLevel.CLOUD_OF_CLOUDS

    def test_blocking_aws_close_reaches_level2(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=1)
        fs = deployment.create_agent("alice")
        assert fs.durability_of("close") is DurabilityLevel.CLOUD

    def test_non_blocking_close_returns_at_level1(self, coc_nb):
        _, fs = coc_nb
        assert fs.durability_of("close") is DurabilityLevel.LOCAL_DISK
        assert fs.eventual_durability() is DurabilityLevel.CLOUD_OF_CLOUDS

    def test_durability_of_unknown_call_rejected(self, coc_nb):
        _, fs = coc_nb
        with pytest.raises(ValueError):
            fs.durability_of("mmap")

    def test_blocking_close_uploads_before_returning(self, aws_b):
        deployment, fs = aws_b
        fs.write_file("/f.txt", b"x" * 10_000)
        # No pending background work: the data is already in the cloud.
        assert fs.statistics().pending_uploads == 0
        assert deployment.clouds[0].stored_bytes() >= 10_000

    def test_non_blocking_close_defers_upload(self, coc_nb):
        deployment, fs = coc_nb
        before = deployment.sim.now()
        fs.write_file("/f.txt", b"x" * 1_000_000)
        foreground = deployment.sim.now() - before
        stats = fs.statistics()
        assert stats.pending_uploads == 1
        assert foreground < fs.agent.backend.estimate_write_latency(1_000_000)
        deployment.drain()
        assert fs.statistics().pending_uploads == 0
        assert fs.statistics().background_uploads == 1

    def test_fsync_only_touches_local_disk(self, coc_nb):
        deployment, fs = coc_nb
        handle = fs.open("/f.txt", "w")
        fs.write(handle, b"dirty data")
        before_writes = fs.agent.storage.cloud_writes
        fs.fsync(handle)
        assert fs.agent.storage.cloud_writes == before_writes
        fs.close(handle)

    def test_close_without_modification_does_not_upload(self, coc_nb):
        deployment, fs = coc_nb
        fs.write_file("/f.txt", b"data")
        deployment.drain()
        before = fs.agent.storage.cloud_writes
        handle = fs.open("/f.txt", "r")
        fs.read(handle)
        fs.close(handle)
        assert fs.agent.storage.cloud_writes == before

    def test_reads_of_unmodified_files_are_local(self, aws_b):
        deployment, fs = aws_b
        fs.write_file("/f.txt", b"cached content")
        before = fs.agent.storage.cloud_reads
        assert fs.read_file("/f.txt") == b"cached content"
        assert fs.agent.storage.cloud_reads == before  # served from the local cache


class TestACLs:
    def test_setfacl_requires_ownership(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=2)
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        alice.write_file("/f.txt", b"mine", shared=True)
        with pytest.raises(PermissionDeniedError):
            bob.setfacl("/f.txt", "bob", Permission.READ)

    def test_setfacl_unknown_user_rejected(self, aws_b):
        _, fs = aws_b
        fs.write_file("/f.txt", b"x", shared=True)
        with pytest.raises(FileNotFoundErrorFS):
            fs.setfacl("/f.txt", "stranger", Permission.READ)

    def test_getfacl_lists_grants(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=2)
        alice = deployment.create_agent("alice")
        deployment.create_agent("bob")
        alice.write_file("/f.txt", b"x", shared=True)
        alice.setfacl("/f.txt", "bob", Permission.READ_WRITE)
        assert alice.getfacl("/f.txt") == {"bob": Permission.READ_WRITE}

    def test_sharing_not_available_in_non_sharing_mode(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-NS", seed=2)
        fs = deployment.create_agent("alice")
        fs.write_file("/f.txt", b"x")
        with pytest.raises(PermissionDeniedError):
            fs.setfacl("/f.txt", "bob", Permission.READ)


class TestLockingBetweenClients:
    def test_write_write_conflict_detected(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=3)
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        alice.write_file("/shared.txt", b"v1", shared=True)
        alice.setfacl("/shared.txt", "bob", Permission.READ_WRITE)
        deployment.drain(2.0)
        handle = alice.open("/shared.txt", "r+")
        with pytest.raises(LockHeldError):
            bob.open("/shared.txt", "r+")
        alice.close(handle)
        bob_handle = bob.open("/shared.txt", "r+")
        bob.close(bob_handle)

    def test_reading_needs_no_lock(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=3)
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        alice.write_file("/shared.txt", b"v1", shared=True)
        alice.setfacl("/shared.txt", "bob", Permission.READ)
        deployment.drain(2.0)
        handle = alice.open("/shared.txt", "r+")
        assert bob.read_file("/shared.txt") == b"v1"
        alice.close(handle)


class TestStatisticsAndLifecycle:
    def test_statistics_track_calls(self, coc_nb):
        _, fs = coc_nb
        fs.write_file("/f.txt", b"x")
        fs.read_file("/f.txt")
        stats = fs.statistics()
        assert stats.opens == 2 and stats.closes == 2
        assert stats.writes == 1 and stats.reads == 1
        assert stats.syscalls >= 6

    def test_unmount_flushes_open_files(self, coc_nb):
        deployment, fs = coc_nb
        handle = fs.open("/f.txt", "w")
        fs.write(handle, b"pending")
        fs.unmount()
        deployment.drain()
        deployment.create_agent("alice2")
        # alice2 cannot read alice's file (no grant); check via alice's backend instead.
        assert fs.agent.open_handles() == 0

    def test_non_sharing_agent_has_no_coordination(self):
        deployment = SCFSDeployment.for_variant("SCFS-CoC-NS", seed=4)
        fs = deployment.create_agent("alice")
        assert fs.agent.coordination is None
        assert deployment.coordination_entries() == 0
        fs.write_file("/f.txt", b"private")
        deployment.drain()
        assert fs.read_file("/f.txt") == b"private"

    def test_mode_matrix_config(self):
        for name in ("SCFS-AWS-B", "SCFS-CoC-NB", "SCFS-CoC-NS"):
            deployment = SCFSDeployment.for_variant(name, seed=5)
            fs = deployment.create_agent("u")
            assert fs.config.mode in OperationMode
            fs.write_file("/x", b"1")
            deployment.drain()
            assert fs.read_file("/x") == b"1"
