"""Unit tests for the shared value objects and helpers."""

import pytest

from repro.common.errors import FileSystemError, QuorumNotReachedError
from repro.common.types import ObjectRef, Permission, Principal, fresh_id
from repro.common.units import GB, KB, MB, human_bytes, micro_dollars


class TestPermission:
    def test_read_write_contains_both(self):
        assert Permission.READ & Permission.READ_WRITE
        assert Permission.WRITE & Permission.READ_WRITE

    def test_none_is_falsey(self):
        assert not Permission.NONE

    def test_flag_composition(self):
        assert Permission.READ | Permission.WRITE == Permission.READ_WRITE


class TestPrincipal:
    def test_canonical_id_lookup(self):
        principal = Principal("alice", (("amazon-s3", "id-123"),))
        assert principal.canonical_id("amazon-s3") == "id-123"

    def test_canonical_id_falls_back_to_name(self):
        assert Principal("alice").canonical_id("unknown-cloud") == "alice"

    def test_with_canonical_id_adds_mapping(self):
        updated = Principal("alice").with_canonical_id("gcs", "alice-gcs")
        assert updated.canonical_id("gcs") == "alice-gcs"

    def test_with_canonical_id_replaces_existing(self):
        principal = Principal("alice", (("gcs", "old"),)).with_canonical_id("gcs", "new")
        assert principal.canonical_id("gcs") == "new"
        assert len(principal.canonical_ids) == 1

    def test_principals_are_hashable(self):
        assert {Principal("a"), Principal("a")} == {Principal("a")}


class TestObjectRef:
    def test_versioned_key_combines_id_and_hash(self):
        ref = ObjectRef(key="file-1", digest="abc", size=10)
        assert ref.versioned_key == "file-1#abc"

    def test_refs_are_value_objects(self):
        assert ObjectRef("k", "d", 1) == ObjectRef("k", "d", 1)


class TestFreshId:
    def test_ids_are_unique(self):
        ids = {fresh_id("x") for _ in range(1000)}
        assert len(ids) == 1000

    def test_prefix_is_used(self):
        assert fresh_id("file").startswith("file-")


class TestUnits:
    def test_constants(self):
        assert KB == 1024 and MB == 1024 * KB and GB == 1024 * MB

    def test_human_bytes(self):
        assert human_bytes(100) == "100B"
        assert human_bytes(2048) == "2.0KB"
        assert human_bytes(4 * MB) == "4.0MB"
        assert human_bytes(3 * GB) == "3.00GB"

    def test_micro_dollars(self):
        assert micro_dollars(0.000012) == pytest.approx(12.0)


class TestErrors:
    def test_quorum_error_carries_counts(self):
        err = QuorumNotReachedError("too few", responses=2, required=3)
        assert err.responses == 2 and err.required == 3

    def test_filesystem_errors_have_errno_names(self):
        assert FileSystemError.errno_name == "EIO"
