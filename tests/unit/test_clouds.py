"""Unit tests for the simulated cloud object stores, ACLs, pricing and accounting."""

import pytest

from repro.clouds.access_control import ObjectACL
from repro.clouds.accounting import CostTracker, UsageBreakdown
from repro.clouds.eventual import EventuallyConsistentStore
from repro.clouds.pricing import StoragePricing
from repro.clouds.providers import (
    COC_STORAGE_PROVIDERS,
    COMPUTE_PRICING,
    PROVIDER_PROFILES,
    make_cloud_of_clouds,
    make_provider,
)
from repro.common.errors import (
    AccessDeniedError,
    CloudUnavailableError,
    ObjectNotFoundError,
)
from repro.common.types import Permission, Principal
from repro.common.units import GB, MONTH_SECONDS
from repro.crypto.hashing import content_digest
from repro.simenv.failures import FailureSchedule, FaultKind
from repro.simenv.latency import NetworkProfile


class TestObjectACL:
    def test_owner_has_full_access(self):
        acl = ObjectACL(owner="alice")
        assert acl.allows("alice", Permission.READ_WRITE)

    def test_unknown_user_has_no_access(self):
        assert not ObjectACL(owner="alice").allows("bob", Permission.READ)

    def test_grant_and_revoke(self):
        acl = ObjectACL(owner="alice")
        acl.grant("bob", Permission.READ)
        assert acl.allows("bob", Permission.READ)
        assert not acl.allows("bob", Permission.WRITE)
        acl.revoke("bob")
        assert not acl.allows("bob", Permission.READ)

    def test_grant_none_removes_entry(self):
        acl = ObjectACL(owner="alice")
        acl.grant("bob", Permission.READ)
        acl.grant("bob", Permission.NONE)
        assert "bob" not in acl.grants

    def test_check_raises_for_denied(self):
        acl = ObjectACL(owner="alice@s3")
        with pytest.raises(AccessDeniedError):
            acl.check(Principal("bob"), "s3", Permission.READ)

    def test_copy_is_independent(self):
        acl = ObjectACL(owner="alice")
        clone = acl.copy()
        clone.grant("bob", Permission.READ)
        assert "bob" not in acl.grants


class TestPricing:
    def test_outbound_dominates_read_cost(self):
        pricing = StoragePricing()
        assert pricing.outbound_cost(GB) == pytest.approx(0.12)
        assert pricing.inbound_cost(GB) == 0.0

    def test_storage_cost_per_month(self):
        pricing = StoragePricing()
        assert pricing.storage_cost(GB, MONTH_SECONDS) == pytest.approx(0.09)

    def test_compute_pricing_lookup(self):
        ec2 = COMPUTE_PRICING["amazon-ec2"]
        assert ec2.price_per_day("large") == pytest.approx(6.24)
        with pytest.raises(KeyError):
            ec2.price_per_day("nano")

    def test_coc_vm_rental_matches_figure_11a(self):
        total = sum(COMPUTE_PRICING[p].price_per_day("large")
                    for p in ("amazon-ec2", "windows-azure", "rackspace", "elastichosts"))
        assert total == pytest.approx(39.60)


class TestCostTracker:
    def test_request_costs_accumulate(self):
        tracker = CostTracker(StoragePricing(put_request=1e-5, get_request=4e-6))
        tracker.record_put(100)
        tracker.record_get(100)
        tracker.record_get(100)
        assert tracker.request_cost() == pytest.approx(1e-5 + 8e-6)

    def test_traffic_cost_counts_only_outbound(self):
        tracker = CostTracker(StoragePricing())
        tracker.record_put(GB)   # inbound: free
        tracker.record_get(GB)   # outbound: $0.12
        assert tracker.traffic_cost() == pytest.approx(0.12)

    def test_storage_cost_uses_byte_seconds(self):
        tracker = CostTracker(StoragePricing())
        tracker.record_storage(GB, MONTH_SECONDS)
        assert tracker.storage_cost() == pytest.approx(0.09)

    def test_reset_clears_usage_but_keeps_pricing(self):
        tracker = CostTracker(StoragePricing())
        tracker.record_get(100)
        tracker.reset()
        assert tracker.total_cost() == 0.0

    def test_usage_merge(self):
        a = UsageBreakdown(put_requests=1, bytes_out=5)
        b = UsageBreakdown(put_requests=2, bytes_in=7)
        merged = a.merge(b)
        assert merged.put_requests == 3 and merged.bytes_out == 5 and merged.bytes_in == 7


class TestEventuallyConsistentStore:
    def _store(self, sim, **kwargs):
        return EventuallyConsistentStore(sim, name="amazon-s3", **kwargs)

    def test_put_then_get_after_propagation(self, sim, alice):
        store = self._store(sim)
        store.put("k", b"value", alice)
        sim.advance(store.profile.propagation_delay)
        assert store.get("k", alice) == b"value"

    def test_new_key_invisible_before_propagation(self, sim, alice):
        store = self._store(sim)
        profile = NetworkProfile(propagation_delay=100.0)
        store.profile = profile
        store.put("fresh", b"v", alice)
        with pytest.raises(ObjectNotFoundError):
            store.get("fresh", alice)

    def test_overwrite_returns_old_version_until_propagated(self, sim, alice):
        store = self._store(sim, profile=NetworkProfile(propagation_delay=50.0))
        store.put("k", b"old", alice)
        store.force_visibility()
        store.put("k", b"new", alice)
        assert store.get("k", alice) == b"old"
        sim.advance(60.0)
        assert store.get("k", alice) == b"new"

    def test_get_charges_latency(self, sim, alice):
        store = self._store(sim)
        store.put("k", b"x" * 1024, alice)
        store.force_visibility()
        before = sim.now()
        store.get("k", alice)
        assert sim.now() > before

    def test_charge_latency_flag_disables_clock_advance(self, sim, alice):
        store = self._store(sim, charge_latency=False)
        store.put("k", b"x", alice)
        assert sim.now() == 0.0

    def test_missing_key_raises(self, sim, alice):
        with pytest.raises(ObjectNotFoundError):
            self._store(sim).get("nope", alice)

    def test_head_returns_metadata_without_payload(self, sim, alice):
        store = self._store(sim)
        store.put("k", b"12345", alice)
        store.force_visibility()
        version = store.head("k", alice)
        assert version.size == 5 and version.key == "k"

    def test_head_digest_is_lazily_computed_and_cached(self, sim, alice):
        store = self._store(sim)
        store.put("k", b"payload", alice)
        store.force_visibility()
        stored = store._objects["k"]
        assert stored.digest is None  # fault-free put defers the sha256
        version = store.head("k", alice)
        assert version.digest == content_digest(b"payload")
        assert stored.digest == version.digest  # cached after the first head

    def test_faulty_put_hashes_the_sent_bytes_eagerly(self, sim, alice):
        # When the stored bytes differ from the sent bytes (DROP_WRITES),
        # the as-put digest cannot be derived lazily from the stored data —
        # it must be captured at put time.
        failures = FailureSchedule()
        failures.add(FaultKind.DROP_WRITES)
        store = self._store(sim, failures=failures)
        store.put("k", b"value", alice)
        store.force_visibility()
        assert store._objects["k"].digest == content_digest(b"value")
        assert store.head("k", alice).digest == content_digest(b"value")

    def test_delete_is_idempotent(self, sim, alice):
        store = self._store(sim)
        store.put("k", b"v", alice)
        store.delete("k", alice)
        store.delete("k", alice)
        assert not store.exists("k", alice)

    def test_acl_blocks_other_users(self, sim, alice, bob):
        store = self._store(sim)
        store.put("k", b"v", alice)
        store.force_visibility()
        with pytest.raises(AccessDeniedError):
            store.get("k", bob)

    def test_set_acl_grants_read(self, sim, alice, bob):
        store = self._store(sim)
        store.put("k", b"v", alice)
        store.force_visibility()
        store.set_acl("k", bob.canonical_id("amazon-s3"), Permission.READ, alice)
        assert store.get("k", bob) == b"v"
        with pytest.raises(AccessDeniedError):
            store.put("k", b"w", bob)

    def test_only_owner_may_set_acl(self, sim, alice, bob):
        store = self._store(sim)
        store.put("k", b"v", alice)
        store.force_visibility()
        with pytest.raises(AccessDeniedError):
            store.set_acl("k", "eve", Permission.READ, bob)

    def test_bucket_policy_covers_future_objects(self, sim, alice, bob):
        store = self._store(sim)
        store.set_bucket_policy("shared/", bob.canonical_id("amazon-s3"), Permission.READ, alice)
        store.put("shared/new.bin", b"v", alice)
        store.force_visibility()
        assert store.get("shared/new.bin", bob) == b"v"

    def test_list_keys_respects_prefix_and_acl(self, sim, alice, bob):
        store = self._store(sim)
        store.put("a/1", b"x", alice)
        store.put("a/2", b"y", alice)
        store.put("b/1", b"z", alice)
        store.force_visibility()
        assert store.list_keys("a/", alice).keys == ["a/1", "a/2"]
        assert store.list_keys("a/", bob).keys == []

    def test_unavailability_fault(self, sim, alice):
        failures = FailureSchedule()
        failures.add(FaultKind.UNAVAILABLE, start=0.0, end=100.0)
        store = self._store(sim, failures=failures)
        with pytest.raises(CloudUnavailableError):
            store.put("k", b"v", alice)

    def test_fault_window_expires(self, sim, alice):
        failures = FailureSchedule()
        failures.add(FaultKind.UNAVAILABLE, start=0.0, end=5.0)
        store = self._store(sim, failures=failures)
        sim.advance(6.0)
        store.put("k", b"v", alice)
        store.force_visibility()
        assert store.get("k", alice) == b"v"

    def test_byzantine_fault_corrupts_reads(self, sim, alice):
        failures = FailureSchedule()
        failures.add(FaultKind.BYZANTINE)
        store = self._store(sim, failures=failures)
        store.put("k", b"value", alice)
        store.force_visibility()
        assert store.get("k", alice) != b"value"

    def test_drop_writes_fault_loses_data(self, sim, alice):
        failures = FailureSchedule()
        failures.add(FaultKind.DROP_WRITES)
        store = self._store(sim, failures=failures)
        store.put("k", b"value", alice)
        store.force_visibility()
        assert store.get("k", alice) == b""

    def test_cost_tracking_records_requests_and_traffic(self, sim, alice):
        store = self._store(sim)
        store.put("k", b"x" * 1000, alice)
        store.force_visibility()
        store.get("k", alice)
        usage = store.costs.usage
        assert usage.put_requests == 1 and usage.get_requests == 1
        assert usage.bytes_in == 1000 and usage.bytes_out == 1000

    def test_stored_bytes_and_object_count(self, sim, alice):
        store = self._store(sim)
        store.put("a", b"12345", alice)
        store.put("b", b"123", alice)
        assert store.stored_bytes() == 8
        assert store.object_count() == 2


class TestProviders:
    def test_known_profiles_exist(self):
        assert set(COC_STORAGE_PROVIDERS) <= set(PROVIDER_PROFILES)

    def test_make_provider_unknown_name(self, sim):
        with pytest.raises(KeyError):
            make_provider(sim, "not-a-cloud")

    def test_make_cloud_of_clouds_returns_four_distinct_stores(self, sim):
        clouds = make_cloud_of_clouds(sim)
        assert len(clouds) == 4
        assert len({c.name for c in clouds}) == 4
        assert all(not c.charge_latency for c in clouds)

    def test_make_provider_charges_latency_by_default(self, sim):
        assert make_provider(sim, "amazon-s3").charge_latency
