"""Unit tests for the storage backends and the consistency-anchor algorithm."""

import pytest

from repro.clouds.providers import make_cloud_of_clouds, make_provider
from repro.common.errors import ObjectNotFoundError
from repro.common.types import Permission
from repro.core.backend import CloudOfCloudsBackend, SingleCloudBackend
from repro.core.consistency import (
    AnchoredStorage,
    CoordinationConsistencyAnchor,
    DictConsistencyAnchor,
)
from repro.coordination.adapters import make_coordination_service
from repro.core.config import DispatchPolicyConfig
from repro.crypto.hashing import content_digest


@pytest.fixture(params=["single", "coc"])
def backend(request, sim, alice):
    """Both backends must satisfy the same StorageBackend contract."""
    if request.param == "single":
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        return SingleCloudBackend(sim, store, alice)
    clouds = make_cloud_of_clouds(sim)
    return CloudOfCloudsBackend(sim, clouds, alice, f=1)


class TestStorageBackends:
    def test_write_returns_reference_with_content_digest(self, backend):
        data = b"some file contents" * 10
        ref = backend.write_version("file-1", data)
        assert ref.key == "file-1"
        assert ref.digest == content_digest(data)
        assert ref.size == len(data)

    def test_read_version_by_digest(self, backend, sim):
        data = b"versioned data" * 20
        ref = backend.write_version("file-1", data)
        sim.advance(3.0)
        assert backend.read_version("file-1", ref.digest) == data

    def test_old_versions_remain_readable(self, backend, sim):
        first = backend.write_version("file-1", b"one")
        sim.advance(3.0)
        backend.write_version("file-1", b"two")
        sim.advance(3.0)
        assert backend.read_version("file-1", first.digest) == b"one"

    def test_read_before_propagation_raises(self, backend):
        ref = backend.write_version("file-1", b"fresh")
        with pytest.raises(ObjectNotFoundError):
            backend.read_version("file-1", ref.digest)

    def test_list_versions(self, backend, sim):
        backend.write_version("file-1", b"one")
        sim.advance(3.0)
        backend.write_version("file-1", b"two")
        sim.advance(3.0)
        refs = backend.list_versions("file-1")
        assert len(refs) == 2
        assert {r.digest for r in refs} == {content_digest(b"one"), content_digest(b"two")}

    def test_delete_version(self, backend, sim):
        first = backend.write_version("file-1", b"one")
        sim.advance(3.0)
        backend.write_version("file-1", b"two")
        sim.advance(3.0)
        backend.delete_version("file-1", first.digest)
        sim.advance(3.0)
        assert {r.digest for r in backend.list_versions("file-1")} == {content_digest(b"two")}

    def test_destroy_removes_all_versions(self, backend, sim):
        backend.write_version("file-1", b"one")
        sim.advance(3.0)
        backend.destroy("file-1")
        sim.advance(3.0)
        assert backend.list_versions("file-1") == []

    def test_latency_estimates_grow_with_size(self, backend):
        assert backend.estimate_write_latency(10 * 1024 * 1024) > backend.estimate_write_latency(1024)
        assert backend.estimate_read_latency(10 * 1024 * 1024) > backend.estimate_read_latency(1024)

    def test_uncharged_context_suspends_clock(self, backend, sim):
        before = sim.now()
        with backend.uncharged():
            backend.write_version("file-2", b"background upload")
        assert sim.now() == before

    def test_stored_bytes_reflects_overhead(self, backend, sim):
        data = b"x" * 100_000
        backend.write_version("file-3", data)
        sim.advance(3.0)
        stored = backend.stored_bytes("file-3")
        assert stored >= len(data) * 0.95
        assert stored <= len(data) * (backend.storage_overhead() + 0.3)


class TestSingleCloudACL:
    def test_set_acl_lets_grantee_read_future_versions(self, sim, alice, bob):
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        backend = SingleCloudBackend(sim, store, alice)
        backend.write_version("file-1", b"v1")
        backend.set_acl("file-1", bob, Permission.READ)
        ref = backend.write_version("file-1", b"v2")
        sim.advance(3.0)
        reader = SingleCloudBackend(sim, store, bob)
        assert reader.read_version("file-1", ref.digest) == b"v2"

    def test_storage_overhead_is_one(self, sim, alice):
        store = make_provider(sim, "amazon-s3")
        assert SingleCloudBackend(sim, store, alice).storage_overhead() == 1.0

    def test_corrupted_version_fails_integrity_check(self, sim, alice):
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        backend = SingleCloudBackend(sim, store, alice)
        ref = backend.write_version("file-1", b"good data")
        sim.advance(3.0)
        # Tamper with the stored object behind the backend's back.
        key = f"scfs/file-1/{ref.digest}"
        store._objects[key].data = b"tampered"
        with pytest.raises(ObjectNotFoundError):
            backend.read_version("file-1", ref.digest)


class TestCloudOfCloudsOverhead:
    def test_storage_overhead_is_n_over_k(self, sim, alice):
        clouds = make_cloud_of_clouds(sim)
        backend = CloudOfCloudsBackend(sim, clouds, alice, f=1)
        assert backend.storage_overhead() == pytest.approx(2.0)


class TestEwmaLatencyEstimates:
    """``ewma_estimates`` blends observed health EWMAs into the estimates.

    Profiles describe how a provider *should* behave; a gray-failing provider
    is slower than its profile claims, and only the health tracker's observed
    latency EWMA knows it.  With the knob on, the estimates (which drive the
    non-blocking mode's background-upload schedule) follow the observation;
    with it off they stay pinned to the profile.
    """

    def _warm(self, backend, names, latency, now):
        for name in names:
            for _ in range(backend.health.policy.min_samples):
                backend.health.observe(name, succeeded=True, latency=latency, now=now)

    def test_single_cloud_estimates_follow_the_observed_ewma(self, sim, alice):
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        backend = SingleCloudBackend(
            sim, store, alice,
            dispatch=DispatchPolicyConfig(suspicion_threshold=3, ewma_estimates=True))
        baseline_read = backend.estimate_read_latency(1024)
        baseline_write = backend.estimate_write_latency(1024)
        slow = 100.0 * max(baseline_read, baseline_write)
        self._warm(backend, [store.name], slow, sim.now())
        assert backend.estimate_read_latency(1024) == pytest.approx(slow)
        assert backend.estimate_write_latency(1024) == pytest.approx(slow)

    def test_estimates_stay_on_the_profile_with_the_knob_off(self, sim, alice):
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        backend = SingleCloudBackend(
            sim, store, alice,
            dispatch=DispatchPolicyConfig(suspicion_threshold=3))
        baseline = backend.estimate_read_latency(1024)
        self._warm(backend, [store.name], 100.0 * baseline, sim.now())
        assert backend.estimate_read_latency(1024) == pytest.approx(baseline)

    def test_cloud_of_clouds_estimates_see_gray_slow_providers(self, sim, alice):
        clouds = make_cloud_of_clouds(sim)
        backend = CloudOfCloudsBackend(
            sim, clouds, alice, f=1,
            dispatch=DispatchPolicyConfig(suspicion_threshold=3, ewma_estimates=True))
        baseline = backend.estimate_read_latency(64 * 1024)
        # Every provider is observed far slower than its profile: the quorum
        # estimate cannot avoid the gray slowness and must rise above it.
        self._warm(backend, [c.name for c in clouds], 10.0 * baseline, sim.now())
        assert backend.estimate_read_latency(64 * 1024) >= 10.0 * baseline
        assert backend.estimate_write_latency(64 * 1024) >= 10.0 * baseline


class TestConsistencyAnchor:
    def test_read_returns_latest_completed_write(self, sim, alice):
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        anchored = AnchoredStorage(sim, DictConsistencyAnchor(),
                                   SingleCloudBackend(sim, store, alice))
        anchored.write("obj", b"first")
        anchored.write("obj", b"second")
        assert anchored.read("obj") == b"second"

    def test_read_of_unknown_object_returns_none(self, sim, alice):
        store = make_provider(sim, "amazon-s3")
        anchored = AnchoredStorage(sim, DictConsistencyAnchor(),
                                   SingleCloudBackend(sim, store, alice))
        assert anchored.read("ghost") is None

    def test_read_loop_waits_out_eventual_consistency(self, sim, alice):
        # Propagation of 30 s: the hash is anchored immediately but the data
        # only becomes visible later; the read loop (Figure 3, r2) must retry
        # until it does rather than return stale/absent data.
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        store.profile = store.profile.__class__(name=store.name, propagation_delay=30.0)
        backend = SingleCloudBackend(sim, store, alice)
        anchored = AnchoredStorage(sim, DictConsistencyAnchor(), backend, retry_interval=1.0)
        anchored.write("obj", b"slow to appear")
        start = sim.now()
        assert anchored.read("obj") == b"slow to appear"
        assert sim.now() - start >= 29.0

    def test_read_gives_up_after_retry_limit(self, sim, alice):
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        backend = SingleCloudBackend(sim, store, alice)
        anchored = AnchoredStorage(sim, DictConsistencyAnchor(), backend,
                                   retry_interval=0.1, retry_limit=3)
        # Anchor a hash whose data never reaches the storage service.
        anchored.anchor.write_hash("obj", content_digest(b"never stored"))
        assert anchored.read("obj") is None

    def test_cloud_of_clouds_backend_works_as_storage_service(self, sim, alice):
        clouds = make_cloud_of_clouds(sim)
        backend = CloudOfCloudsBackend(sim, clouds, alice, f=1)
        anchored = AnchoredStorage(sim, DictConsistencyAnchor(), backend, retry_interval=0.5)
        anchored.write("obj", b"cloud of clouds payload")
        assert anchored.read("obj") == b"cloud of clouds payload"

    def test_coordination_service_as_anchor(self, sim, alice):
        store = make_provider(sim, "amazon-s3", charge_latency=True)
        coordination = make_coordination_service(sim, "depspace", f=0)
        session = coordination.open_session(alice)
        anchor = CoordinationConsistencyAnchor(coordination, session)
        anchored = AnchoredStorage(sim, anchor, SingleCloudBackend(sim, store, alice))
        anchored.write("obj", b"anchored in DepSpace")
        assert anchored.read("obj") == b"anchored in DepSpace"
        assert anchor.read_hash("missing") is None
