"""Integration tests: dependability of the cloud-of-clouds backend and the
replicated coordination service under provider faults (§3.2).

SCFS-CoC tolerates f=1 arbitrary provider faults: data remains available and
uncorrupted when one storage cloud is down, returns garbage or silently drops
writes, and the coordination service keeps operating when one of its replicas
crashes (or, for DepSpace/BFT, behaves arbitrarily).
"""

import pytest

from repro.common.errors import QuorumNotReachedError
from repro.core.deployment import SCFSDeployment
from repro.simenv.failures import FaultKind


@pytest.fixture
def coc():
    deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=31)
    return deployment, deployment.create_agent("alice")


class TestStorageCloudFaults:
    def test_survives_one_unavailable_cloud(self, coc):
        deployment, fs = coc
        fs.write_file("/durable.txt", b"important data" * 100)
        deployment.drain(2.0)
        deployment.clouds[0].failures.add(FaultKind.UNAVAILABLE)
        fs.agent.memory_cache.clear()
        fs.agent.disk_cache.clear()
        assert fs.read_file("/durable.txt") == b"important data" * 100

    def test_survives_cloud_outage_during_writes(self, coc):
        deployment, fs = coc
        deployment.clouds[1].failures.add(FaultKind.UNAVAILABLE)
        fs.write_file("/written-during-outage.txt", b"still stored")
        deployment.drain(2.0)
        fs.agent.memory_cache.clear()
        fs.agent.disk_cache.clear()
        assert fs.read_file("/written-during-outage.txt") == b"still stored"

    def test_survives_one_byzantine_cloud(self, coc):
        deployment, fs = coc
        fs.write_file("/integrity.txt", b"must not be corrupted" * 50)
        deployment.drain(2.0)
        deployment.clouds[2].failures.add(FaultKind.BYZANTINE)
        fs.agent.memory_cache.clear()
        fs.agent.disk_cache.clear()
        assert fs.read_file("/integrity.txt") == b"must not be corrupted" * 50

    def test_survives_one_cloud_dropping_writes(self, coc):
        deployment, fs = coc
        deployment.clouds[3].failures.add(FaultKind.DROP_WRITES)
        fs.write_file("/dropped.txt", b"ack'd but not stored by one provider")
        deployment.drain(2.0)
        fs.agent.memory_cache.clear()
        fs.agent.disk_cache.clear()
        assert fs.read_file("/dropped.txt") == b"ack'd but not stored by one provider"

    def test_two_unavailable_clouds_exceed_the_fault_threshold(self, coc):
        deployment, fs = coc
        deployment.clouds[0].failures.add(FaultKind.UNAVAILABLE)
        deployment.clouds[1].failures.add(FaultKind.UNAVAILABLE)
        with pytest.raises(QuorumNotReachedError):
            fs.write_file("/too-many-faults.txt", b"x")

    def test_single_cloud_backend_does_not_survive_its_provider(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=32)
        fs = deployment.create_agent("alice")
        fs.write_file("/only-copy.txt", b"x" * 100)
        deployment.drain(2.0)
        deployment.clouds[0].failures.add(FaultKind.UNAVAILABLE)
        fs.agent.memory_cache.clear()
        fs.agent.disk_cache.clear()
        with pytest.raises(Exception):
            fs.read_file("/only-copy.txt")


class TestCoordinationFaults:
    def test_coordination_survives_one_replica_crash(self, coc):
        deployment, fs = coc
        deployment.coordination.rsm.crash_replica(0)
        fs.write_file("/still-works.txt", b"metadata service is replicated", shared=True)
        deployment.drain(2.0)
        assert fs.read_file("/still-works.txt") == b"metadata service is replicated"

    def test_coordination_survives_one_byzantine_replica(self, coc):
        deployment, fs = coc
        deployment.coordination.rsm.make_byzantine(1)
        fs.write_file("/bft.txt", b"byzantine fault tolerant", shared=True)
        deployment.drain(2.0)
        assert fs.read_file("/bft.txt") == b"byzantine fault tolerant"

    def test_too_many_replica_crashes_block_metadata_operations(self, coc):
        deployment, fs = coc
        rsm = deployment.coordination.rsm
        rsm.crash_replica(0)
        rsm.crash_replica(1)
        with pytest.raises(QuorumNotReachedError):
            fs.write_file("/blocked.txt", b"x", shared=True)

    def test_replica_recovery_restores_service(self, coc):
        deployment, fs = coc
        rsm = deployment.coordination.rsm
        rsm.crash_replica(0)
        rsm.crash_replica(1)
        rsm.recover_replica(0)
        fs.write_file("/recovered.txt", b"back in business", shared=True)
        deployment.drain(2.0)
        assert fs.read_file("/recovered.txt") == b"back in business"


class TestDisasterRecovery:
    def test_full_dataset_recoverable_on_a_new_machine(self):
        """The automatic-disaster-recovery use case of §1: everything written
        through SCFS survives the complete loss of the client machine."""
        deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=33)
        original = deployment.create_agent("alice")
        files = {f"/projects/report-{i}.txt": f"report {i}".encode() * 50 for i in range(5)}
        original.mkdir("/projects", shared=True)
        for path, data in files.items():
            original.write_file(path, data, shared=True)
        deployment.drain(2.0)

        # The laptop dies.  A new machine mounts the same account: all state is
        # rebuilt from the coordination service and the clouds.
        replacement = deployment.create_agent("alice")
        deployment.sim.advance(1.0)
        assert sorted(replacement.readdir("/projects")) == sorted(
            path.rsplit("/", 1)[1] for path in files
        )
        for path, data in files.items():
            assert replacement.read_file(path) == data

    def test_recovery_with_one_provider_lost_forever(self):
        deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=34)
        original = deployment.create_agent("alice")
        original.write_file("/survivor.txt", b"outlives a whole provider", shared=True)
        deployment.drain(2.0)
        deployment.clouds[0].failures.add(FaultKind.UNAVAILABLE)

        replacement = deployment.create_agent("alice")
        deployment.sim.advance(1.0)
        assert replacement.read_file("/survivor.txt") == b"outlives a whole provider"
