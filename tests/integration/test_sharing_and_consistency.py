"""Integration tests: controlled sharing, consistency-on-close and ACL enforcement.

These tests exercise several agents against the same deployment (clouds +
coordination service), i.e. the whole stack from the POSIX-like façade down to
the simulated providers.
"""

import pytest

from repro.common.errors import LockHeldError, PermissionDeniedError
from repro.common.types import Permission
from repro.core.deployment import SCFSDeployment


@pytest.fixture(params=["SCFS-AWS-B", "SCFS-CoC-B"])
def blocking_deployment(request):
    return SCFSDeployment.for_variant(request.param, seed=21)


@pytest.fixture(params=["SCFS-AWS-NB", "SCFS-CoC-NB"])
def nonblocking_deployment(request):
    return SCFSDeployment.for_variant(request.param, seed=22)


class TestControlledSharing:
    def test_grantee_can_read_after_setfacl(self, blocking_deployment):
        deployment = blocking_deployment
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        alice.mkdir("/project", shared=True)
        alice.write_file("/project/plan.txt", b"the plan", shared=True)
        alice.setfacl("/project/plan.txt", "bob", Permission.READ)
        deployment.drain(2.0)
        assert bob.read_file("/project/plan.txt") == b"the plan"

    def test_non_grantee_cannot_read(self, blocking_deployment):
        deployment = blocking_deployment
        alice = deployment.create_agent("alice")
        eve = deployment.create_agent("eve")
        alice.write_file("/secret.txt", b"classified", shared=True)
        deployment.drain(2.0)
        with pytest.raises(PermissionDeniedError):
            eve.read_file("/secret.txt")

    def test_read_grant_does_not_allow_writes(self, blocking_deployment):
        deployment = blocking_deployment
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        alice.write_file("/doc.txt", b"v1", shared=True)
        alice.setfacl("/doc.txt", "bob", Permission.READ)
        deployment.drain(2.0)
        with pytest.raises(PermissionDeniedError):
            bob.open("/doc.txt", "r+")

    def test_write_grant_allows_updates_visible_to_owner(self, blocking_deployment):
        deployment = blocking_deployment
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        alice.write_file("/doc.txt", b"from alice", shared=True)
        alice.setfacl("/doc.txt", "bob", Permission.READ_WRITE)
        deployment.drain(2.0)
        bob.write_file("/doc.txt", b"from bob")
        deployment.drain(2.0)
        deployment.sim.advance(1.0)  # let the reader's metadata cache expire
        assert alice.read_file("/doc.txt") == b"from bob"

    def test_revoking_access(self, blocking_deployment):
        deployment = blocking_deployment
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        alice.write_file("/doc.txt", b"v1", shared=True)
        alice.setfacl("/doc.txt", "bob", Permission.READ)
        deployment.drain(2.0)
        assert bob.read_file("/doc.txt") == b"v1"
        alice.setfacl("/doc.txt", "bob", Permission.NONE)
        deployment.sim.advance(1.0)
        with pytest.raises(PermissionDeniedError):
            bob.read_file("/doc.txt")

    def test_cloud_side_acls_enforced_not_just_metadata(self, blocking_deployment):
        """Even if a malicious agent skipped the metadata check, the clouds refuse."""
        deployment = blocking_deployment
        alice = deployment.create_agent("alice")
        eve = deployment.create_agent("eve")
        alice.write_file("/secret.txt", b"classified", shared=True)
        deployment.drain(2.0)
        meta = alice.stat("/secret.txt")
        # Eve bypasses her metadata service and talks to the backend directly.
        with pytest.raises(Exception):
            eve.agent.backend.read_version(meta.file_id, meta.digest)


class TestConsistencyOnClose:
    def test_blocking_close_makes_update_immediately_visible(self, blocking_deployment):
        deployment = blocking_deployment
        writer = deployment.create_agent("writer")
        reader = deployment.create_agent("reader")
        writer.write_file("/shared.bin", b"old", shared=True)
        writer.setfacl("/shared.bin", "reader", Permission.READ)
        deployment.drain(2.0)
        assert reader.read_file("/shared.bin") == b"old"

        writer.write_file("/shared.bin", b"new contents")
        # Close returned, so by consistency-on-close every other client must
        # now observe the new version (after its short metadata cache expires).
        deployment.sim.advance(1.0)
        assert reader.read_file("/shared.bin") == b"new contents"

    def test_non_blocking_update_visible_only_after_background_commit(self, nonblocking_deployment):
        deployment = nonblocking_deployment
        writer = deployment.create_agent("writer")
        reader = deployment.create_agent("reader")
        old_payload = b"o" * (1 << 20)
        new_payload = b"n" * (4 << 20)
        writer.write_file("/shared.bin", old_payload, shared=True)
        writer.setfacl("/shared.bin", "reader", Permission.READ)
        deployment.drain(2.0)
        deployment.sim.advance(1.0)
        assert reader.read_file("/shared.bin") == old_payload
        old_digest = reader.stat("/shared.bin").digest

        writer.write_file("/shared.bin", new_payload)
        deployment.sim.advance(0.7)  # past the metadata cache, before the upload completes
        # The upload of the 4 MB version is still in flight: the reader (whose
        # metadata cache has expired) still observes the previous version...
        assert reader.stat("/shared.bin").digest == old_digest
        # ...until the background commit completes.
        deployment.drain(2.0)
        deployment.sim.advance(1.0)
        assert reader.read_file("/shared.bin") == new_payload

    def test_writer_always_reads_its_own_writes(self, nonblocking_deployment):
        deployment = nonblocking_deployment
        writer = deployment.create_agent("writer")
        writer.write_file("/own.bin", b"version 1")
        assert writer.read_file("/own.bin") == b"version 1"
        writer.write_file("/own.bin", b"version 2")
        assert writer.read_file("/own.bin") == b"version 2"

    def test_mutual_exclusion_preserved_while_upload_pending(self, nonblocking_deployment):
        deployment = nonblocking_deployment
        writer = deployment.create_agent("writer")
        other = deployment.create_agent("other")
        writer.write_file("/shared.bin", b"v0", shared=True)
        deployment.drain(2.0)
        writer.setfacl("/shared.bin", "other", Permission.READ_WRITE)
        deployment.sim.advance(1.0)

        handle = writer.open("/shared.bin", "r+")
        writer.write(handle, b"v1")
        writer.close(handle)
        # The lock is only released after the background upload finishes, so a
        # concurrent open-for-write by another client must still fail.
        with pytest.raises(LockHeldError):
            other.open("/shared.bin", "r+")
        deployment.drain(2.0)
        handle2 = other.open("/shared.bin", "r+")
        other.close(handle2)

    def test_old_version_remains_readable_by_digest_after_update(self, blocking_deployment):
        deployment = blocking_deployment
        writer = deployment.create_agent("writer")
        writer.write_file("/doc.txt", b"first version")
        first = writer.stat("/doc.txt")
        writer.write_file("/doc.txt", b"second version")
        deployment.drain(2.0)
        # Multi-versioning: the previous version still exists in the cloud(s)
        # until the garbage collector reclaims it.
        data = writer.agent.storage.read_version(first.file_id, first.digest)
        assert data.data == b"first version"


class TestCrashRecovery:
    def test_crashed_writer_lock_expires_and_other_client_can_write(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=5)
        config = deployment.config
        writer = deployment.create_agent("writer")
        other = deployment.create_agent("other")
        writer.write_file("/doc.txt", b"v1", shared=True)
        writer.setfacl("/doc.txt", "other", Permission.READ_WRITE)
        deployment.drain(2.0)

        handle = writer.open("/doc.txt", "r+")
        writer.write(handle, b"half-finished update")
        # The writer crashes without closing: its ephemeral lock must expire
        # after the lease so that other clients are not blocked forever.
        with pytest.raises(LockHeldError):
            other.open("/doc.txt", "r+")
        deployment.sim.advance(config.lock_lease + 1.0)
        handle2 = other.open("/doc.txt", "r+")
        other.truncate(handle2, 0)
        other.write(handle2, b"recovered")
        other.close(handle2)
        deployment.sim.advance(1.0)
        assert other.read_file("/doc.txt") == b"recovered"

    def test_completed_updates_survive_local_cache_loss(self):
        deployment = SCFSDeployment.for_variant("SCFS-CoC-B", seed=6)
        fs = deployment.create_agent("alice")
        fs.write_file("/important.txt", b"do not lose me")
        deployment.drain(2.0)
        # Simulate losing the local machine: wipe both local caches.
        fs.agent.memory_cache.clear()
        fs.agent.disk_cache.clear()
        assert fs.read_file("/important.txt") == b"do not lose me"
