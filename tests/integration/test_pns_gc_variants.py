"""Integration tests: private name spaces, garbage collection, all Table 2
variants end-to-end, and the ZooKeeper-backed configuration."""

import pytest

from repro.common.types import Permission
from repro.common.units import KB
from repro.core.config import GarbageCollectionPolicy, SCFSConfig
from repro.core.deployment import SCFSDeployment
from repro.core.modes import VARIANTS


class TestPrivateNameSpacesIntegration:
    def _deployment(self):
        return SCFSDeployment.for_variant("SCFS-CoC-NB", seed=41, private_name_spaces=True)

    def test_private_files_do_not_touch_the_coordination_service(self):
        deployment = self._deployment()
        fs = deployment.create_agent("alice")
        fs.mkdir("/home")
        entries_before = deployment.coordination_entries()
        reads_before = fs.agent.metadata.coordination_reads
        for i in range(10):
            fs.write_file(f"/home/note-{i}.txt", b"private note")
        assert deployment.coordination_entries() == entries_before
        assert fs.agent.metadata.coordination_reads == reads_before

    def test_shared_files_still_get_coordination_entries(self):
        deployment = self._deployment()
        fs = deployment.create_agent("alice")
        fs.mkdir("/shared", shared=True)
        before = deployment.coordination_entries()
        fs.write_file("/shared/doc.txt", b"shared", shared=True)
        assert deployment.coordination_entries() == before + 1

    def test_setfacl_promotes_private_file_to_shared(self):
        deployment = self._deployment()
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        alice.write_file("/report.txt", b"was private")
        assert alice.agent.pns.contains("/report.txt")
        before = deployment.coordination_entries()
        alice.setfacl("/report.txt", "bob", Permission.READ)
        assert not alice.agent.pns.contains("/report.txt")
        assert deployment.coordination_entries() == before + 1
        deployment.drain(2.0)
        assert bob.read_file("/report.txt") == b"was private"

    def test_pns_survives_unmount_and_remount(self):
        deployment = self._deployment()
        fs = deployment.create_agent("alice")
        fs.mkdir("/home")
        fs.write_file("/home/persistent.txt", b"still here")
        fs.unmount()
        deployment.drain(2.0)

        again = deployment.create_agent("alice")
        deployment.sim.advance(1.0)
        assert again.read_file("/home/persistent.txt") == b"still here"

    def test_non_sharing_mode_keeps_all_metadata_in_pns(self):
        deployment = SCFSDeployment.for_variant("SCFS-CoC-NS", seed=42)
        fs = deployment.create_agent("alice")
        for i in range(5):
            fs.write_file(f"/file-{i}.txt", b"x")
        assert len(fs.agent.pns) == 5
        assert deployment.coordination is None

    def test_coordination_footprint_shrinks_with_pns(self):
        """The §2.7 argument: with PNSs the coordination service only stores
        entries for the *shared* files (plus one PNS tuple per user)."""
        without_pns = SCFSDeployment.for_variant("SCFS-CoC-NB", seed=43)
        fs_plain = without_pns.create_agent("alice")
        fs_plain.mkdir("/d", shared=True)
        for i in range(20):
            fs_plain.write_file(f"/d/f-{i}.txt", b"x", shared=True)
        without_pns.drain()

        with_pns = SCFSDeployment.for_variant("SCFS-CoC-NB", seed=43, private_name_spaces=True)
        fs_pns = with_pns.create_agent("alice")
        fs_pns.mkdir("/d")
        for i in range(20):
            shared = i < 2  # 10 % shared, like the traces cited in the paper
            fs_pns.write_file(f"/d/f-{i}.txt", b"x", shared=shared)
        with_pns.drain()

        assert with_pns.coordination_entries() < without_pns.coordination_entries() / 3


class TestGarbageCollectionIntegration:
    def _deployment(self, threshold=64 * KB, versions=2):
        config = SCFSConfig.for_variant(
            "SCFS-AWS-B",
            gc=GarbageCollectionPolicy(written_bytes_threshold=threshold,
                                       versions_to_keep=versions),
        )
        return SCFSDeployment(config, seed=44)

    def test_gc_triggers_automatically_after_w_bytes(self):
        deployment = self._deployment(threshold=32 * KB)
        fs = deployment.create_agent("alice")
        for round_number in range(6):
            fs.write_file("/big.bin", bytes([round_number]) * (16 * KB))
        deployment.drain(2.0)
        assert fs.agent.gc.runs >= 1

    def test_gc_keeps_only_v_versions(self):
        deployment = self._deployment(threshold=1 << 30, versions=2)
        fs = deployment.create_agent("alice")
        for i in range(5):
            fs.write_file("/doc.txt", f"version {i}".encode())
        deployment.sim.advance(2.0)
        report = fs.collect_garbage()
        assert report.versions_deleted == 3
        meta = fs.stat("/doc.txt")
        remaining = fs.agent.backend.list_versions(meta.file_id)
        assert len(remaining) == 2
        assert meta.digest in {r.digest for r in remaining}

    def test_gc_reclaims_deleted_files_storage_and_metadata(self):
        deployment = self._deployment(threshold=1 << 30)
        fs = deployment.create_agent("alice")
        fs.write_file("/temp.bin", b"z" * (8 * KB), shared=True)
        meta = fs.stat("/temp.bin")
        fs.unlink("/temp.bin")
        deployment.sim.advance(2.0)
        stored_before = deployment.stored_bytes()
        report = fs.collect_garbage()
        assert report.deleted_files_purged == 1
        assert deployment.stored_bytes() < stored_before
        assert not fs.exists("/temp.bin")
        assert fs.agent.backend.list_versions(meta.file_id) == []

    def test_gc_never_touches_other_users_files(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=45)
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        alice.write_file("/mine.txt", b"alice v1", shared=True)
        alice.write_file("/mine.txt", b"alice v2")
        bob.write_file("/bobs.txt", b"bob v1", shared=True)
        deployment.sim.advance(2.0)
        report = bob.collect_garbage()
        assert report.files_examined == 1  # only bob's file


class TestAllVariantsEndToEnd:
    @pytest.mark.parametrize("variant_name", sorted(VARIANTS))
    def test_basic_workflow_on_every_variant(self, variant_name):
        deployment = SCFSDeployment.for_variant(variant_name, seed=46)
        fs = deployment.create_agent("user")
        fs.mkdir("/work")
        fs.write_file("/work/a.txt", b"alpha")
        fs.write_file("/work/b.txt", b"beta")
        fs.copy("/work/a.txt", "/work/c.txt")
        fs.rename("/work/b.txt", "/work/renamed.txt")
        fs.unlink("/work/a.txt")
        deployment.drain(2.0)
        assert sorted(fs.readdir("/work")) == ["c.txt", "renamed.txt"]
        assert fs.read_file("/work/c.txt") == b"alpha"
        assert fs.read_file("/work/renamed.txt") == b"beta"

    @pytest.mark.parametrize("variant_name", ["SCFS-AWS-B", "SCFS-CoC-NB"])
    def test_larger_files_round_trip(self, variant_name):
        deployment = SCFSDeployment.for_variant(variant_name, seed=47)
        fs = deployment.create_agent("user")
        payload = bytes(i % 251 for i in range(512 * 1024))
        fs.write_file("/large.bin", payload)
        deployment.drain(3.0)
        fs.agent.memory_cache.clear()
        fs.agent.disk_cache.clear()
        assert fs.read_file("/large.bin") == payload


class TestZooKeeperBackedDeployment:
    def test_sharing_works_with_zookeeper_coordination(self):
        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=48,
                                                coordination_kind="zookeeper")
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        alice.write_file("/shared.txt", b"via zookeeper", shared=True)
        alice.setfacl("/shared.txt", "bob", Permission.READ)
        deployment.drain(2.0)
        assert bob.read_file("/shared.txt") == b"via zookeeper"

    def test_zookeeper_locks_prevent_write_write_conflicts(self):
        from repro.common.errors import LockHeldError

        deployment = SCFSDeployment.for_variant("SCFS-AWS-B", seed=49,
                                                coordination_kind="zookeeper")
        alice = deployment.create_agent("alice")
        bob = deployment.create_agent("bob")
        alice.write_file("/f.txt", b"v", shared=True)
        alice.setfacl("/f.txt", "bob", Permission.READ_WRITE)
        deployment.drain(2.0)
        handle = alice.open("/f.txt", "r+")
        with pytest.raises(LockHeldError):
            bob.open("/f.txt", "r+")
        alice.close(handle)
