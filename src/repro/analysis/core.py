"""The analysis driver: file walking, module context, pragma filtering."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.analysis.findings import Finding
from repro.analysis.pragmas import PragmaTable
from repro.analysis.registry import SIM_VISIBLE_ONLY, rule_runners

#: ``repro`` sub-packages whose code executes inside a simulation (and whose
#: behaviour therefore lands in replay fingerprints).  Determinism rules and
#: the swallow rule apply here; pure tooling (bench, cli, analysis, common)
#: is exempt.  A file directive (``# repro: sim-visible``) overrides this.
SIM_VISIBLE_SUBPACKAGES: frozenset[str] = frozenset({
    "baselines", "clouds", "coordination", "core", "crypto", "depsky",
    "scenarios", "simenv", "transactions",
})


def _is_sim_visible(path: Path) -> bool:
    """Path-based classification: is this module simulation-visible?"""
    parts = path.parts
    for index, part in enumerate(parts):
        if part == "repro" and index + 1 < len(parts):
            return parts[index + 1].removesuffix(".py") in SIM_VISIBLE_SUBPACKAGES
    return False


@dataclass
class ModuleContext:
    """Everything a rule runner needs about one parsed module."""

    path: str
    source: str
    tree: ast.Module
    sim_visible: bool
    pragmas: PragmaTable
    #: ``local name -> module path`` from ``import x[.y] [as z]``.
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: ``local name -> (module, attr)`` from ``from m import attr [as z]``.
    from_imports: dict[str, tuple[str, str]] = field(default_factory=dict)

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        """Every function/method in the module, outermost first."""
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        """Build a finding anchored to ``node``."""
        return Finding(path=self.path, line=getattr(node, "lineno", 0),
                       col=getattr(node, "col_offset", 0), rule=rule,
                       message=message)


def _build_context(path: Path, source: str) -> ModuleContext:
    tree = ast.parse(source, filename=str(path))
    pragmas = PragmaTable(source, str(path))
    sim_visible = pragmas.sim_visible_override \
        if pragmas.sim_visible_override is not None else _is_sim_visible(path)
    ctx = ModuleContext(path=str(path), source=source, tree=tree,
                        sim_visible=sim_visible, pragmas=pragmas)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                ctx.module_aliases[alias.asname or alias.name.split(".")[0]] = \
                    alias.name if alias.asname else alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                ctx.from_imports[alias.asname or alias.name] = (node.module, alias.name)
    return ctx


def analyze_source(source: str, path: str = "<memory>") -> list[Finding]:
    """Analyze one module given as a string (the fixture-test entry point)."""
    try:
        ctx = _build_context(Path(path), source)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 0, col=exc.offset or 0,
                        rule="PARSE", message=f"syntax error: {exc.msg}")]
    return _run_rules(ctx)


def _run_rules(ctx: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for runner in rule_runners():
        for finding in runner(ctx):
            if finding.rule in SIM_VISIBLE_ONLY and not ctx.sim_visible:
                continue
            if ctx.pragmas.suppresses(finding.rule, finding.line):
                continue
            findings.append(finding)
    findings.extend(ctx.pragmas.unjustified())
    return sorted(findings)


def _python_files(paths: list[str]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"not a Python file or directory: {raw}")
    return files


@dataclass
class AnalysisReport:
    """The result of analyzing a set of paths."""

    findings: list[Finding]
    files_analyzed: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def summary(self) -> dict[str, int]:
        """``rule -> count`` over all findings (sorted by rule id)."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, Any]:
        """The ``--format=json`` document shape (stable, versioned)."""
        return {
            "version": 1,
            "files_analyzed": self.files_analyzed,
            "findings": [finding.to_dict() for finding in self.findings],
            "summary": self.summary(),
            "ok": self.ok,
        }

    def render_text(self) -> str:
        """Human-readable report (one finding per line + a tally)."""
        lines = [str(finding) for finding in self.findings]
        tally = ", ".join(f"{rule}={count}" for rule, count in self.summary().items())
        lines.append(f"{self.files_analyzed} file(s) analyzed, "
                     f"{len(self.findings)} finding(s)"
                     + (f" [{tally}]" if tally else ""))
        return "\n".join(lines)


def analyze_paths(paths: list[str]) -> AnalysisReport:
    """Analyze every ``.py`` file under ``paths`` (files or directories)."""
    files = _python_files(paths)
    findings: list[Finding] = []
    for file_path in files:
        findings.extend(analyze_source(file_path.read_text(encoding="utf-8"),
                                       path=str(file_path)))
    return AnalysisReport(findings=sorted(findings), files_analyzed=len(files))
