"""The :class:`Finding` record every rule produces."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, order=True)
class Finding:
    """One static-analysis finding, anchored to a source location.

    Ordered by ``(path, line, col, rule)`` so reports are stable regardless
    of rule execution order — the analyzer's own output must be as
    deterministic as the code it polices.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-stable representation (the ``--format=json`` item shape)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
