"""A try/finally-aware structured control-flow walk for lock tracking.

Python function bodies are *structured*: every control-flow graph a function
can have is expressible as nested ``if``/loops/``try`` blocks, so a recursive
walk over the statement tree that threads abstract states through each
construct **is** a CFG traversal — with the enormous practical advantage that
``try``/``finally`` edges (the part ad-hoc linters get wrong) fall out of the
recursion for free.

:class:`LockFlow` runs a may-analysis over *held lock keys* (the textual
receiver of ``<recv>.acquire(...)``):

* a statement's calls are scanned in evaluation order; ``acquire`` adds the
  key, ``release`` removes it, ``release_all`` clears everything;
* ``if``/``match`` branches fork the state and the exits union;
* loops use an asymmetric approximation: keys *acquired* in the body may be
  held afterwards (the zero-iteration path unions in), while keys *released*
  in the body are removed from every outgoing state.  The release side is
  deliberately "must": the discipline this repo enforces releases exactly the
  acquired set by iterating it (``for m in reversed(locked): release(m)``),
  and a path-insensitive walk cannot correlate the two loops' trip counts —
  treating loop releases as unconditional keeps the canonical pattern clean
  while still flagging an acquire loop with no release anywhere on the path;
* ``try`` routes the body's exception exits through the handlers (a handler
  naming ``Exception``/``BaseException`` — or a bare one — absorbs the
  body's raise paths) and *every* outgoing state through ``finally``;
* ``return``/``raise``/``break``/``continue`` produce abrupt states; loops
  absorb their own breaks/continues, the function exit collects the rest.

The result is the set of :class:`PathState` values describing every way
control can leave the body, each with the locks still held at that point.
Nested function/class definitions are opaque (they do not execute inline).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterable

#: Exit kinds of a :class:`PathState`.
FALL, RETURN, RAISE, BREAK, CONTINUE = "fall", "return", "raise", "break", "continue"

#: Handler type names that absorb every exception raised in a ``try`` body.
_CATCH_ALL = {"Exception", "BaseException"}


@dataclass(frozen=True)
class PathState:
    """One way control leaves a block: the exit kind plus the held-lock set."""

    kind: str
    held: frozenset[str]


#: ``classify(call) -> ("acquire" | "release" | "release_all", key) | None``
CallClassifier = Callable[[ast.Call], "tuple[str, str] | None"]


class LockFlow:
    """Thread held-lock states through one function body."""

    def __init__(self, classify: CallClassifier) -> None:
        self._classify = classify
        #: Keys released anywhere during the most recent :meth:`walk_body`
        #: call *at the current recursion level* (loop approximation input).
        self.released_keys: set[str] = set()

    # ------------------------------------------------------------------ entry

    def function_exits(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> set[PathState]:
        """Every exit state of ``node``'s body, starting with nothing held."""
        states, _released = self._walk_body(node.body, frozenset())
        # A fall-off-the-end is an implicit ``return``.
        return {PathState(RETURN, s.held) if s.kind == FALL else s for s in states}

    # ------------------------------------------------------------- statements

    def _walk_body(self, body: Iterable[ast.stmt],
                   held: frozenset[str]) -> tuple[set[PathState], set[str]]:
        """Walk a statement sequence; returns (exit states, keys released)."""
        released: set[str] = set()
        live: set[frozenset[str]] = {held}
        abrupt: set[PathState] = set()
        for stmt in body:
            if not live:
                break  # every path already left the block
            next_live: set[frozenset[str]] = set()
            for state in live:
                states, stmt_released = self._walk_stmt(stmt, state)
                released |= stmt_released
                for exit_state in states:
                    if exit_state.kind == FALL:
                        next_live.add(exit_state.held)
                    else:
                        abrupt.add(exit_state)
            live = next_live
        return {PathState(FALL, h) for h in live} | abrupt, released

    def _walk_stmt(self, stmt: ast.stmt,
                   held: frozenset[str]) -> tuple[set[PathState], set[str]]:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return {PathState(FALL, held)}, set()
        if isinstance(stmt, ast.Return):
            held, released = self._apply_calls(stmt, held)
            return {PathState(RETURN, held)}, released
        if isinstance(stmt, ast.Raise):
            held, released = self._apply_calls(stmt, held)
            return {PathState(RAISE, held)}, released
        if isinstance(stmt, ast.Break):
            return {PathState(BREAK, held)}, set()
        if isinstance(stmt, ast.Continue):
            return {PathState(CONTINUE, held)}, set()
        if isinstance(stmt, ast.If):
            return self._walk_branches(stmt.test, [stmt.body, stmt.orelse], held)
        if isinstance(stmt, ast.Match):
            branches = [case.body for case in stmt.cases]
            branches.append([])  # no case may match
            return self._walk_branches(stmt.subject, branches, held)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._walk_loop(stmt.iter, stmt.body, stmt.orelse, held)
        if isinstance(stmt, ast.While):
            return self._walk_loop(stmt.test, stmt.body, stmt.orelse, held)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            item_released: set[str] = set()
            for item in stmt.items:
                held, one_released = self._apply_calls(item.context_expr, held)
                item_released |= one_released
            states, released = self._walk_body(stmt.body, held)
            return states, released | item_released
        if isinstance(stmt, ast.Try):
            return self._walk_try(stmt, held)
        # Plain statement: apply its calls in evaluation order.
        held, released = self._apply_calls(stmt, held)
        return {PathState(FALL, held)}, released

    # ------------------------------------------------------------- constructs

    def _walk_branches(self, guard: ast.expr | None, branches: list[list[ast.stmt]],
                       held: frozenset[str]) -> tuple[set[PathState], set[str]]:
        released: set[str] = set()
        if guard is not None:
            held, released = self._apply_calls(guard, held)
        states: set[PathState] = set()
        for branch in branches:
            branch_states, branch_released = self._walk_body(branch, held)
            states |= branch_states
            released |= branch_released
        return states, released

    def _walk_loop(self, head: ast.expr, body: list[ast.stmt],
                   orelse: list[ast.stmt],
                   held: frozenset[str]) -> tuple[set[PathState], set[str]]:
        held, released = self._apply_calls(head, held)
        body_states, body_released = self._walk_body(body, held)
        released |= body_released
        # One unrolling pass: a second iteration starts from any fall/continue
        # exit of the first, so a break/raise there sees locks acquired one
        # pass earlier.
        second_entries = {s.held for s in body_states
                          if s.kind in (FALL, CONTINUE)} - {held}
        for entry in second_entries:
            more_states, more_released = self._walk_body(body, entry)
            body_states |= more_states
            body_released |= more_released
            released |= more_released
        # May-acquire / must-release approximation (see module docstring):
        after: set[frozenset[str]] = {held - body_released}
        exits: set[PathState] = set()
        for state in body_states:
            if state.kind in (FALL, CONTINUE):
                after.add(state.held - body_released)
            elif state.kind == BREAK:
                # A break keeps its exact per-path held set (a release later
                # in the body was *not* executed) and skips the else clause.
                exits.add(PathState(FALL, state.held))
            else:
                exits.add(state)
        for after_held in after:
            else_states, else_released = self._walk_body(orelse, after_held)
            released |= else_released
            exits |= else_states
        return exits, released

    def _walk_try(self, stmt: ast.Try,
                  held: frozenset[str]) -> tuple[set[PathState], set[str]]:
        body_states, released = self._walk_body(stmt.body, held)
        catch_all = any(self._is_catch_all(handler) for handler in stmt.handlers)

        before_finally: set[PathState] = set()
        for state in body_states:
            if state.kind == RAISE and catch_all:
                continue  # rerouted through a handler below
            if state.kind == FALL:
                else_states, else_released = self._walk_body(stmt.orelse, state.held)
                released |= else_released
                before_finally |= else_states
            else:
                before_finally.add(state)

        # A handler can be entered from *any* point of the body: approximate
        # its entry states by the try-entry state plus every body exit state.
        handler_entries = {held} | {s.held for s in body_states}
        for handler in stmt.handlers:
            for entry in handler_entries:
                handler_states, handler_released = self._walk_body(handler.body, entry)
                released |= handler_released
                before_finally |= handler_states

        if not stmt.finalbody:
            return before_finally, released

        exits: set[PathState] = set()
        for state in before_finally:
            final_states, final_released = self._walk_body(stmt.finalbody, state.held)
            released |= final_released
            for final_state in final_states:
                if final_state.kind == FALL:
                    # The finally block fell through: the original exit
                    # resumes, with the finally's lock effects applied.
                    exits.add(PathState(state.kind, final_state.held))
                else:
                    exits.add(final_state)  # finally replaced the exit
        return exits, released

    @staticmethod
    def _is_catch_all(handler: ast.ExceptHandler) -> bool:
        if handler.type is None:
            return True
        names = handler.type.elts if isinstance(handler.type, ast.Tuple) \
            else [handler.type]
        return any(isinstance(n, ast.Name) and n.id in _CATCH_ALL for n in names)

    # ------------------------------------------------------------------ calls

    def _apply_calls(self, node: ast.stmt | ast.expr,
                     held: frozenset[str]) -> tuple[frozenset[str], set[str]]:
        """Apply every acquire/release call inside ``node``, in AST order."""
        released: set[str] = set()
        mutable = set(held)
        for call in self._calls_in(node):
            effect = self._classify(call)
            if effect is None:
                continue
            action, key = effect
            if action == "acquire":
                mutable.add(key)
            elif action == "release":
                mutable.discard(key)
                released.add(key)
            elif action == "release_all":
                released |= mutable
                mutable.clear()
        self.released_keys |= released
        return frozenset(mutable), released

    @staticmethod
    def _calls_in(node: ast.stmt | ast.expr) -> list[ast.Call]:
        """Every call in ``node``, skipping nested function/class bodies."""
        calls: list[ast.Call] = []
        stack: list[ast.AST] = [node]
        while stack:
            current = stack.pop()
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef,
                                    ast.ClassDef, ast.Lambda)) and current is not node:
                continue
            if isinstance(current, ast.Call):
                calls.append(current)
            stack.extend(ast.iter_child_nodes(current))
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        return calls
