"""The four rule families of the repro static analyzer."""
