"""LCK rules: lock acquire/release pairing and sorted multi-lock acquisition.

``LCK001`` runs the try/finally-aware structured-CFG walk of
:mod:`repro.analysis.cfg` over every function that both acquires *and*
releases on some receiver (``self.locks``, ``agent.locks``, ...): if any exit
path — fall-through, ``return`` or an uncaught ``raise`` — leaves a lock
held, the acquire is flagged.  Functions that only acquire (ownership
hand-off: ``mount()`` acquires, ``unmount()`` releases) are deliberately out
of scope; a function that releases *sometimes* but not on every path is
exactly the leak this rule exists for.

``LCK002`` enforces the global acquisition order that makes the sorted-order
strict-2PL commit deadlock-free: any loop whose body acquires locks must
iterate a ``sorted(...)`` expression (or a name assigned from one).
"""

from __future__ import annotations

import ast

from repro.analysis.cfg import LockFlow
from repro.analysis.core import ModuleContext
from repro.analysis.findings import Finding

#: Method names treated as lock operations (on any receiver).
_ACQUIRE, _RELEASE, _RELEASE_ALL = "acquire", "release", "release_all"


def _receiver_key(func: ast.Attribute) -> str:
    """Stable textual key of a call's receiver (``self.locks`` etc.)."""
    return ast.dump(func.value)


def _classify(call: ast.Call) -> tuple[str, str] | None:
    if not isinstance(call.func, ast.Attribute):
        return None
    attr = call.func.attr
    if attr == _ACQUIRE:
        return "acquire", _receiver_key(call.func)
    if attr == _RELEASE:
        return "release", _receiver_key(call.func)
    if attr == _RELEASE_ALL:
        return "release_all", _receiver_key(call.func)
    return None


def check(ctx: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for function in ctx.functions():
        findings.extend(_check_pairing(ctx, function))
        findings.extend(_check_sorted_loops(ctx, function))
    return findings


# -------------------------------------------------------------------- LCK001


def _lock_calls(function: ast.FunctionDef | ast.AsyncFunctionDef,
                kind: str) -> dict[str, ast.Call]:
    """First ``kind`` call per receiver key in ``function`` (nested defs skipped)."""
    first: dict[str, ast.Call] = {}
    stack: list[ast.AST] = list(function.body)
    while stack:
        node = stack.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        if isinstance(node, ast.Call):
            effect = _classify(node)
            if effect is not None and effect[0] == kind:
                first.setdefault(effect[1], node)
        stack.extend(ast.iter_child_nodes(node))
    return first


def _check_pairing(ctx: ModuleContext,
                   function: ast.FunctionDef | ast.AsyncFunctionDef) -> list[Finding]:
    acquires = _lock_calls(function, "acquire")
    if not acquires:
        return []
    releases = _lock_calls(function, "release")
    release_alls = _lock_calls(function, "release_all")
    # Intra-function rule: only receivers the function also releases.
    tracked = {key for key in acquires if key in releases or key in release_alls}
    if not tracked:
        return []

    exits = LockFlow(_classify).function_exits(function)
    leaked: dict[str, str] = {}
    for state in exits:
        for key in state.held:
            if key in tracked:
                leaked.setdefault(key, state.kind)

    findings: list[Finding] = []
    for key, exit_kind in sorted(leaked.items()):
        call = acquires[key]
        via = "an exception path" if exit_kind == "raise" else "a return path"
        findings.append(ctx.finding(
            "LCK001", call,
            f"lock acquired here can leave `{function.name}` still held via "
            f"{via}; release on every path (canonically: try/finally)"))
    return findings


# -------------------------------------------------------------------- LCK002


def _sorted_names(function: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Local names assigned (only) from ``sorted(...)`` calls."""
    from_sorted: set[str] = set()
    otherwise: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            name = node.targets[0].id
            if _is_sorted_call(node.value):
                from_sorted.add(name)
            else:
                otherwise.add(name)
    return from_sorted - otherwise


def _is_sorted_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "sorted")


def _check_sorted_loops(ctx: ModuleContext,
                        function: ast.FunctionDef | ast.AsyncFunctionDef) -> list[Finding]:
    findings: list[Finding] = []
    sorted_locals = _sorted_names(function)
    for node in ast.walk(function):
        if not isinstance(node, (ast.For, ast.AsyncFor)):
            continue
        body_acquires = any(
            isinstance(sub, ast.Call) and _classify(sub) is not None
            and _classify(sub)[0] == "acquire"  # type: ignore[index]
            for stmt in node.body for sub in ast.walk(stmt)
        )
        if not body_acquires:
            continue
        iterable = node.iter
        if _is_sorted_call(iterable):
            continue
        if isinstance(iterable, ast.Name) and iterable.id in sorted_locals:
            continue
        findings.append(ctx.finding(
            "LCK002", node,
            "loop acquires locks but does not iterate a sorted(...) sequence; "
            "a global acquisition order is required to stay deadlock-free"))
    return findings
