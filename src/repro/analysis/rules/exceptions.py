"""EXC rules: exception hygiene on dispatch/commit paths.

``EXC001`` — a bare ``except:`` catches ``SystemExit``/``KeyboardInterrupt``
too and hides what it meant to catch; name the exceptions (``BaseException``
at broadest) everywhere.

``EXC002`` — in sim-visible code, a broad ``except Exception`` /
``except BaseException`` whose handler never re-raises swallows every
:class:`~repro.common.errors.ReproError` subclass with it.  Those carry
protocol outcomes (lock conflicts, quorum failures, transaction conflicts)
that dispatch and commit paths must surface — a silent ``pass`` here turns a
Byzantine fault into a fake success.  Broad handlers that re-raise (cleanup
paths) are fine.
"""

from __future__ import annotations

import ast

from repro.analysis.core import ModuleContext
from repro.analysis.findings import Finding

_BROAD = frozenset({"Exception", "BaseException"})


def _names(handler_type: ast.expr) -> list[str]:
    nodes = handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    out = []
    for node in nodes:
        if isinstance(node, ast.Name):
            out.append(node.id)
        elif isinstance(node, ast.Attribute):
            out.append(node.attr)
    return out


def _reraises(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
    return False


def check(ctx: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            findings.append(ctx.finding(
                "EXC001", node,
                "bare `except:` (catches SystemExit/KeyboardInterrupt too); "
                "name the exceptions, `except BaseException:` at broadest"))
            continue
        if any(name in _BROAD for name in _names(node.type)) and not _reraises(node):
            findings.append(ctx.finding(
                "EXC002", node,
                "broad handler swallows ReproError subclasses (protocol "
                "outcomes) without re-raising; catch the specific errors or "
                "re-raise after cleanup"))
    return findings
