"""DET rules: sources of run-to-run nondeterminism in sim-visible code.

Everything a simulated component observes must derive from the scenario seed:
wall-clock reads (``DET001``), ambient process-global randomness (``DET002``),
iteration order of unordered sets (``DET003``) and object-address ordering
(``DET004``) all vary between processes, so any of them feeding an event
schedule, a trace event or a stored byte silently breaks the pinned replay
fingerprints.  Simulated time comes from ``Simulation.now()``; randomness
from ``Simulation.fork_rng`` / ``derive_rng`` streams.
"""

from __future__ import annotations

import ast

from repro.analysis.core import ModuleContext
from repro.analysis.findings import Finding

#: ``time.<fn>`` calls that read the host clock.
_WALLCLOCK_TIME = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "localtime", "gmtime", "ctime",
})
#: ``datetime.<fn>`` / ``date.<fn>`` classmethods that read the host clock.
_WALLCLOCK_DATETIME = frozenset({"now", "utcnow", "today"})

#: ``random.<fn>`` module-level draws on the shared global generator, plus the
#: entropy-backed generator class.  ``random.Random(seed)`` stays legal.
_AMBIENT_RANDOM = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle", "sample",
    "uniform", "triangular", "betavariate", "expovariate", "gammavariate",
    "gauss", "lognormvariate", "normalvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "getrandbits", "randbytes", "seed",
    "SystemRandom",
})
#: ``uuid.<fn>`` constructors seeded from the host (uuid3/uuid5 are hashes).
_AMBIENT_UUID = frozenset({"uuid1", "uuid4"})

#: Reductions whose result does not depend on iteration order, so a
#: generator expression over a set directly inside them is legal.  ``sum``
#: is deliberately absent: float addition is order-sensitive.
_ORDER_INSENSITIVE = frozenset({"any", "all", "len", "min", "max", "set", "frozenset"})

#: Set methods returning another set (propagate set-valuedness).
_SET_PRODUCING_METHODS = frozenset({
    "union", "intersection", "difference", "symmetric_difference", "copy",
})


def check(ctx: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    findings.extend(_check_ambient_calls(ctx))
    findings.extend(_check_set_iteration(ctx))
    findings.extend(_check_id_ordering(ctx))
    return findings


# ---------------------------------------------------------------- DET001/002


def _check_ambient_calls(ctx: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        verdict = _classify_call(ctx, node.func)
        if verdict is not None:
            rule, message = verdict
            findings.append(ctx.finding(rule, node, message))
    return findings


def _resolve_attribute(ctx: ModuleContext,
                       func: ast.expr) -> tuple[str, str] | None:
    """``(module, attr)`` for ``mod.attr`` / ``pkg.mod.attr`` call targets."""
    if not isinstance(func, ast.Attribute):
        return None
    value = func.value
    if isinstance(value, ast.Name):
        module = ctx.module_aliases.get(value.id)
        if module is not None:
            return module, func.attr
        origin = ctx.from_imports.get(value.id)
        if origin is not None:  # e.g. ``from datetime import datetime``
            return f"{origin[0]}.{origin[1]}", func.attr
    elif isinstance(value, ast.Attribute) and isinstance(value.value, ast.Name):
        module = ctx.module_aliases.get(value.value.id)
        if module is not None:  # e.g. ``datetime.datetime.now``
            return f"{module}.{value.attr}", func.attr
    return None


def _classify_call(ctx: ModuleContext, func: ast.expr) -> tuple[str, str] | None:
    resolved = _resolve_attribute(ctx, func)
    if resolved is not None:
        module, attr = resolved
        if module == "time" and attr in _WALLCLOCK_TIME:
            return "DET001", (f"wall-clock read time.{attr}() in sim-visible code; "
                              "use Simulation.now()")
        if module in ("datetime.datetime", "datetime.date") \
                and attr in _WALLCLOCK_DATETIME:
            return "DET001", (f"wall-clock read {module}.{attr}() in sim-visible "
                              "code; use Simulation.now()")
        if module == "random" and attr in _AMBIENT_RANDOM:
            return "DET002", (f"ambient RNG random.{attr} in sim-visible code; "
                              "draw from a Simulation.fork_rng stream")
        if module == "os" and attr == "urandom":
            return "DET002", ("ambient entropy os.urandom in sim-visible code; "
                              "draw from a Simulation.fork_rng stream")
        if module == "uuid" and attr in _AMBIENT_UUID:
            return "DET002", (f"ambient id source uuid.{attr}() in sim-visible "
                              "code; use Simulation.fresh_id()")
        if module == "secrets":
            return "DET002", ("secrets module in sim-visible code; entropy-backed "
                              "draws are unreplayable")
    if isinstance(func, ast.Name):
        origin = ctx.from_imports.get(func.id)
        if origin is not None:
            module, attr = origin
            if module == "time" and attr in _WALLCLOCK_TIME:
                return "DET001", (f"wall-clock read {func.id}() (from time import "
                                  f"{attr}) in sim-visible code; use Simulation.now()")
            if module == "random" and attr in _AMBIENT_RANDOM:
                return "DET002", (f"ambient RNG {func.id}() (from random import "
                                  f"{attr}) in sim-visible code")
            if module == "os" and attr == "urandom":
                return "DET002", "ambient entropy urandom() in sim-visible code"
            if module == "uuid" and attr in _AMBIENT_UUID:
                return "DET002", f"ambient id source {attr}() in sim-visible code"
            if module == "secrets":
                return "DET002", "secrets draw in sim-visible code"
    return None


# -------------------------------------------------------------------- DET003


class _SetEnv:
    """Syntactic set-valuedness of local names, per function (or module) scope."""

    def __init__(self, scope: ast.AST) -> None:
        self._set_named: set[str] = set()
        self._other_named: set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.Lambda)) and node is not scope:
                continue
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    if self._is_set_expr(value):
                        self._set_named.add(target.id)
                    else:
                        self._other_named.add(target.id)

    def is_set_valued(self, node: ast.expr) -> bool:
        return self._is_set_expr(node)

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
                return True
            if isinstance(node.func, ast.Attribute) \
                    and node.func.attr in _SET_PRODUCING_METHODS \
                    and self._is_set_expr(node.func.value):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            # A name is set-valued only if every assignment to it is.
            return node.id in self._set_named and node.id not in self._other_named
        return False


def _check_set_iteration(ctx: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    _mark_reductions(ctx.tree)
    scopes: list[ast.AST] = [ctx.tree, *ctx.functions()]
    seen: set[tuple[int, int]] = set()

    for scope in scopes:
        env = _SetEnv(scope)
        for node in ast.walk(scope):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                    and node is not scope:
                continue  # handled as its own scope
            for iterable in _iteration_sites(node):
                anchor = (iterable.lineno, iterable.col_offset)
                if anchor in seen or not env.is_set_valued(iterable):
                    continue
                seen.add(anchor)
                findings.append(ctx.finding(
                    "DET003", iterable,
                    "iteration over an unordered set in sim-visible code; "
                    "wrap the iterable in sorted(...)"))
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "pop" and not node.args \
                    and env.is_set_valued(node.func.value):
                anchor = (node.lineno, node.col_offset)
                if anchor not in seen:
                    seen.add(anchor)
                    findings.append(ctx.finding(
                        "DET003",
                        node, "set.pop() removes an arbitrary element; "
                        "pop from a sorted order instead"))
    return findings


def _iteration_sites(node: ast.AST) -> list[ast.expr]:
    """Iterable expressions whose order the program observes at ``node``."""
    sites: list[ast.expr] = []
    if isinstance(node, (ast.For, ast.AsyncFor)):
        sites.append(node.iter)
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        if isinstance(node, (ast.SetComp, ast.GeneratorExp)) \
                and _only_feeds_order_insensitive(node):
            return []
        sites.extend(gen.iter for gen in node.generators)
    elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("list", "tuple", "sum"):
            sites.extend(node.args[:1])
    elif isinstance(node, ast.Starred):
        sites.append(node.value)
    return sites


def _only_feeds_order_insensitive(node: ast.expr) -> bool:
    """Heuristic: genexp used as ``any(... for x in s)`` etc. is order-free.

    Without parent pointers we can't see the consumer, so this is recognized
    at the consumer instead: ``_iteration_sites`` never returns the iterables
    of a generator expression that appears as the sole argument of an
    order-insensitive reduction.  The marker below is attached by
    ``_mark_reduction_args`` before the walk.
    """
    return getattr(node, "_repro_order_free", False)


def _mark_reductions(tree: ast.AST) -> None:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id in _ORDER_INSENSITIVE and len(node.args) == 1 \
                and isinstance(node.args[0], (ast.GeneratorExp, ast.SetComp)):
            node.args[0]._repro_order_free = True  # type: ignore[attr-defined]
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
                and node.func.id == "sorted" and node.args \
                and isinstance(node.args[0], (ast.GeneratorExp, ast.SetComp)):
            # ``sorted(x for x in s)`` re-orders anyway.
            node.args[0]._repro_order_free = True  # type: ignore[attr-defined]


# -------------------------------------------------------------------- DET004


_SORTERS = frozenset({"sorted", "min", "max", "sort"})


def _contains_id_call(node: ast.expr) -> bool:
    if isinstance(node, ast.Name) and node.id == "id":
        return True  # ``key=id``
    return any(
        isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name)
        and sub.func.id == "id"
        for sub in ast.walk(node)
    )


def _check_id_ordering(ctx: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            name = node.func.id if isinstance(node.func, ast.Name) else (
                node.func.attr if isinstance(node.func, ast.Attribute) else None)
            if name in _SORTERS:
                for keyword in node.keywords:
                    if keyword.arg == "key" and _contains_id_call(keyword.value):
                        findings.append(ctx.finding(
                            "DET004", node,
                            f"{name}() keyed on id(): object addresses vary "
                            "between runs; key on a stable attribute"))
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
            if any(isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                   for op in node.ops) \
                    and any(_contains_id_call(operand) for operand in operands):
                findings.append(ctx.finding(
                    "DET004", node,
                    "ordering comparison on id(): object addresses vary "
                    "between runs"))
    return findings
