"""TRC rules: emitted trace events and checker reads match the declared schema.

The invariant checkers consume the trace *stringly*: a typo'd field name in an
emission (or a checker reading a field nobody emits) silently turns a checker
into a no-op — the PR 4/9 false-negative class.  The contract is the declared
registry :data:`repro.scenarios.trace.TRACE_SCHEMA`; this module diffs both
sides of the string interface against it:

* **emissions** — calls to ``<agent>._emit("kind", field=...)`` and
  ``recorder.record("kind", field=...)``: the kind must be a declared string
  literal (``TRC001``) and every explicit keyword field must be declared for
  that kind (``TRC002``).  ``**expansion`` keywords are dynamic and skipped
  (the reader side still pins them to declared fields).
* **checker reads** — inside any function that selects kinds (via
  ``by_kind(...)``, ``count(...)`` or ``event.kind == ...`` comparisons),
  every literal ``.get("field")`` must name a field declared for at least one
  selected kind, and every selected kind must itself be declared (``TRC003``).
"""

from __future__ import annotations

import ast

from repro.analysis.core import ModuleContext
from repro.analysis.findings import Finding

#: Recorder parameters that are not event fields.
_RECORDER_PARAMS = frozenset({"agent", "time"})
#: Attributes of :class:`TraceEvent` itself, always readable.
_EVENT_ATTRS = frozenset({"seq", "time", "kind", "agent"})
#: ``.record`` receivers treated as trace recorders.
_RECORDER_NAMES = frozenset({"recorder", "rec", "trace"})
#: ``.kind`` receivers treated as trace events (``FaultSpec.kind`` etc. are
#: unrelated string fields and must not pull a function into TRC003 scope).
_EVENT_NAMES = frozenset({"event", "e", "ev", "evt"})


def _schema() -> dict[str, frozenset[str]]:
    from repro.scenarios.trace import TRACE_SCHEMA

    return TRACE_SCHEMA


def check(ctx: ModuleContext) -> list[Finding]:
    schema = _schema()
    findings: list[Finding] = []
    findings.extend(_check_emissions(ctx, schema))
    findings.extend(_check_reads(ctx, schema))
    return findings


# ---------------------------------------------------------------- TRC001/002


def _emission_calls(ctx: ModuleContext) -> list[ast.Call]:
    calls = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        attr = node.func.attr
        if attr == "_emit":
            calls.append(node)
        elif attr == "record":
            receiver = node.func.value
            if isinstance(receiver, ast.Name) and receiver.id in _RECORDER_NAMES:
                calls.append(node)
            elif node.args and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                calls.append(node)
    return calls


def _check_emissions(ctx: ModuleContext,
                     schema: dict[str, frozenset[str]]) -> list[Finding]:
    findings: list[Finding] = []
    for call in _emission_calls(ctx):
        if not call.args:
            continue
        kind_arg = call.args[0]
        if not (isinstance(kind_arg, ast.Constant) and isinstance(kind_arg.value, str)):
            findings.append(ctx.finding(
                "TRC001", call,
                "trace event kind is not a string literal; the schema registry "
                "can only police statically declared kinds"))
            continue
        kind = kind_arg.value
        declared = schema.get(kind)
        if declared is None:
            findings.append(ctx.finding(
                "TRC001", call,
                f"trace event kind {kind!r} is not declared in "
                "repro.scenarios.trace.TRACE_SCHEMA"))
            continue
        is_record = isinstance(call.func, ast.Attribute) and call.func.attr == "record"
        for keyword in call.keywords:
            if keyword.arg is None:
                continue  # **expansion — dynamic, reader side still checked
            if is_record and keyword.arg in _RECORDER_PARAMS:
                continue
            if keyword.arg not in declared:
                findings.append(ctx.finding(
                    "TRC002", keyword.value,
                    f"event {kind!r} emitted with undeclared field "
                    f"{keyword.arg!r} (declare it in TRACE_SCHEMA or drop it)"))
    return findings


# -------------------------------------------------------------------- TRC003


def _literal_strings(nodes: list[ast.expr]) -> list[tuple[str, ast.expr]]:
    out = []
    for node in nodes:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.append((node.value, node))
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out.extend(_literal_strings(list(node.elts)))
    return out


def _selected_kinds(function: ast.AST) -> list[tuple[str, ast.expr]]:
    """Literal kinds a checker function selects (by_kind/count/.kind ==)."""
    kinds: list[tuple[str, ast.expr]] = []
    for node in ast.walk(function):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("by_kind", "count"):
            kinds.extend(_literal_strings(list(node.args)))
        elif isinstance(node, ast.Compare):
            sides = [node.left, *node.comparators]
            if any(isinstance(side, ast.Attribute) and side.attr == "kind"
                   and isinstance(side.value, ast.Name)
                   and side.value.id in _EVENT_NAMES
                   for side in sides):
                kinds.extend(_literal_strings(
                    [s for s in sides if not isinstance(s, ast.Attribute)]))
    return kinds


def _check_reads(ctx: ModuleContext,
                 schema: dict[str, frozenset[str]]) -> list[Finding]:
    findings: list[Finding] = []
    for function in ctx.functions():
        kinds = _selected_kinds(function)
        if not kinds:
            continue
        allowed: set[str] = set(_EVENT_ATTRS)
        for kind, node in kinds:
            declared = schema.get(kind)
            if declared is None:
                findings.append(ctx.finding(
                    "TRC003", node,
                    f"checker selects kind {kind!r}, which no declared schema "
                    "entry (TRACE_SCHEMA) defines"))
            else:
                allowed |= declared
        for node in ast.walk(function):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute) \
                    and node.func.attr == "get" and node.args \
                    and isinstance(node.args[0], ast.Constant) \
                    and isinstance(node.args[0].value, str):
                field = node.args[0].value
                if field not in allowed:
                    findings.append(ctx.finding(
                        "TRC003", node,
                        f"checker reads field {field!r}, which none of the "
                        f"selected kinds ({', '.join(sorted({k for k, _ in kinds}))}) "
                        "declares in TRACE_SCHEMA"))
    return findings
