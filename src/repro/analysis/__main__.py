"""CLI for the repro static analyzer.

Usage::

    python -m repro.analysis src/repro [tests/...] [--format=text|json]
                                       [--out FILE] [--list-rules]

Exit status: ``0`` — analyzed clean; ``1`` — findings (or unparsable files);
``2`` — usage error (no such path, nothing to analyze).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import analyze_paths
from repro.analysis.registry import RULE_DOCS


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Determinism & protocol-discipline linter for the repro codebase.",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to analyze")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default: text)")
    parser.add_argument("--out", type=Path, default=None, metavar="FILE",
                        help="also write the report to FILE")
    parser.add_argument("--list-rules", action="store_true",
                        help="list rule IDs with their contracts and exit")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULE_DOCS):
            print(f"{rule}  {RULE_DOCS[rule]}")
        return 0

    if not args.paths:
        print("error: no paths given (try: python -m repro.analysis src/repro)",
              file=sys.stderr)
        return 2
    missing = [path for path in args.paths if not path.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2

    report = analyze_paths(args.paths)
    if report.files_analyzed == 0:
        print("error: no Python files found under the given paths", file=sys.stderr)
        return 2

    if args.format == "json":
        rendered = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        rendered = report.render_text()
    print(rendered)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(rendered + "\n", encoding="utf-8")
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
