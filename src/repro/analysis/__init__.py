"""Static determinism & protocol-discipline analysis for the repro codebase.

Every correctness claim in this repository rests on byte-identical replay
(the pinned SHA-256 scenario fingerprints) and on hand-enforced protocol
disciplines: sorted-order lock acquisition, RNG derivation only through
``Simulation.fork_rng`` / ``derive_rng``, trace events whose field names the
invariant checkers consume stringly.  This package catches the whole class of
"invariant broken at runtime" bugs *before* a seed sweep ever runs, with four
AST/CFG rule families:

* **determinism** (``DET``) — wall-clock reads, ambient (module-level) RNG,
  iteration over unordered sets, ``id()``-based ordering — in sim-visible
  modules;
* **lock discipline** (``LCK``) — every intra-function ``acquire`` paired
  with a ``release`` on all paths (try/finally-aware structured-CFG walk),
  multi-lock acquisition loops iterating a ``sorted(...)`` sequence;
* **trace schema** (``TRC``) — every emitted event kind and field set checked
  against the declared registry in :mod:`repro.scenarios.trace`, and checker
  reads of undeclared kinds/fields flagged;
* **exception hygiene** (``EXC``) — bare ``except`` and broad handlers that
  swallow :class:`~repro.common.errors.ReproError` subclasses on
  dispatch/commit paths.

Run it with ``python -m repro.analysis <paths> [--format=json]``.  A finding
is silenced only by an inline pragma carrying a justification::

    value = time.time()  # repro: allow[DET001] -- host profiling, not sim time

A pragma without a justification is itself an error (``PRG001``).
"""

from __future__ import annotations

from repro.analysis.core import AnalysisReport, analyze_paths, analyze_source
from repro.analysis.findings import Finding
from repro.analysis.registry import ALL_RULES, RULE_DOCS

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Finding",
    "RULE_DOCS",
    "analyze_paths",
    "analyze_source",
]
