"""Rule registry: every rule id, its one-line contract, and the rule runners."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:
    from repro.analysis.core import ModuleContext
    from repro.analysis.findings import Finding

#: One-line contract per rule id (the ``--list-rules`` output and the docs
#: source of truth).  Sim-visible-only rules are marked in the text.
RULE_DOCS: dict[str, str] = {
    "DET001": "no wall-clock reads (time.time, datetime.now, ...) in sim-visible code; "
              "simulated time comes from Simulation.now()",
    "DET002": "no ambient randomness (module-level random.*, os.urandom, uuid.uuid4, "
              "secrets, random.SystemRandom) in sim-visible code; draw from a forked "
              "Simulation RNG stream",
    "DET003": "no iteration over unordered set/frozenset values in sim-visible code "
              "(wrap in sorted(...) or use an order-insensitive reduction)",
    "DET004": "no id()-based ordering (sort keys or comparisons on id(...)) in "
              "sim-visible code; object addresses vary between runs",
    "LCK001": "every lock acquire in a function that also releases must reach a "
              "release on all exit paths (try/finally-aware CFG walk)",
    "LCK002": "a loop that acquires locks must iterate a sorted(...) sequence "
              "(global acquisition order prevents deadlock)",
    "TRC001": "every emitted trace event uses a literal kind declared in "
              "repro.scenarios.trace.TRACE_SCHEMA",
    "TRC002": "every emitted trace event's fields are declared for its kind in "
              "TRACE_SCHEMA",
    "TRC003": "checker reads (by_kind/count/.kind/.get) reference only declared "
              "kinds and fields",
    "EXC001": "no bare `except:` — name the exceptions (BaseException at broadest)",
    "EXC002": "no broad `except Exception/BaseException` that swallows (never "
              "re-raises) in sim-visible code; ReproError subclasses carry protocol "
              "outcomes that dispatch/commit paths must not eat",
    "PRG001": "every `# repro: allow[...]` pragma carries a `-- justification`",
}

#: Rule ids that only apply to sim-visible modules.
SIM_VISIBLE_ONLY: frozenset[str] = frozenset(
    {"DET001", "DET002", "DET003", "DET004", "EXC002"}
)

#: All enforceable rule ids (PRG001 is emitted by the driver, not a family).
ALL_RULES: tuple[str, ...] = tuple(sorted(RULE_DOCS))

RuleRunner = Callable[["ModuleContext"], "list[Finding]"]


def rule_runners() -> "list[RuleRunner]":
    """The per-family entry points (imported lazily to avoid cycles)."""
    from repro.analysis.rules import determinism, exceptions, locks, traceschema

    return [determinism.check, locks.check, traceschema.check, exceptions.check]
