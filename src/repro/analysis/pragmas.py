"""Inline pragmas: ``# repro: allow[RULE] -- justification`` and file directives.

A finding on line *L* is suppressed by an ``allow`` pragma on *L* itself (a
trailing comment) or on *L - 1* (a comment line directly above a statement).
The justification after ``--`` is mandatory: silencing a determinism or
protocol rule is a reviewed decision, and the reason must survive in the
source next to it.  A pragma without one is reported as ``PRG001`` — which
cannot itself be pragma'd away.

File directives override the path-based sim-visibility classification (used
by the determinism rules and by the fixture corpus)::

    # repro: sim-visible
    # repro: not-sim-visible
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.analysis.findings import Finding

#: ``# repro: allow[DET001] -- why`` (the justification group may be absent).
_ALLOW_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>[A-Z]{3}\d{3})\]\s*(?:--\s*(?P<why>\S.*?))?\s*$"
)
_DIRECTIVE_RE = re.compile(r"#\s*repro:\s*(?P<flag>(?:not-)?sim-visible)\s*$")

#: File directives are only honoured near the top of the file.
_DIRECTIVE_WINDOW = 25


@dataclass(frozen=True)
class Pragma:
    """One parsed ``allow`` pragma."""

    line: int
    rule: str
    justification: str


class PragmaTable:
    """All pragmas and directives of one source file."""

    def __init__(self, source: str, path: str) -> None:
        self.path = path
        self._by_line: dict[int, list[Pragma]] = {}
        self.sim_visible_override: bool | None = None
        for lineno, text in enumerate(source.splitlines(), start=1):
            allow = _ALLOW_RE.search(text)
            if allow is not None:
                pragma = Pragma(line=lineno, rule=allow.group("rule"),
                                justification=(allow.group("why") or "").strip())
                self._by_line.setdefault(lineno, []).append(pragma)
                continue
            if lineno <= _DIRECTIVE_WINDOW:
                directive = _DIRECTIVE_RE.search(text)
                if directive is not None:
                    self.sim_visible_override = directive.group("flag") == "sim-visible"

    def suppresses(self, rule: str, line: int) -> bool:
        """True when an ``allow[rule]`` pragma covers ``line`` (same or above).

        Only *justified* pragmas suppress: an empty justification leaves the
        original finding standing (plus the ``PRG001``), so a half-written
        pragma never silently waives a rule.
        """
        for pragma_line in (line, line - 1):
            for pragma in self._by_line.get(pragma_line, ()):
                if pragma.rule == rule and pragma.justification:
                    return True
        return False

    def unjustified(self) -> list[Finding]:
        """``PRG001`` findings for every pragma lacking a justification."""
        return [
            Finding(path=self.path, line=pragma.line, col=0, rule="PRG001",
                    message=(f"pragma allow[{pragma.rule}] has no justification "
                             "(write `# repro: allow[RULE] -- reason`)"))
            for pragmas in self._by_line.values()
            for pragma in pragmas
            if not pragma.justification
        ]
