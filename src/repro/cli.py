"""Command-line interface to the SCFS reproduction.

The CLI gives quick access to the main artefacts without writing any code::

    python -m repro.cli demo                      # the quickstart walkthrough
    python -m repro.cli table3 --quick            # regenerate Table 3
    python -m repro.cli fig8                      # file-synchronisation benchmark
    python -m repro.cli fig9 --sizes 256K 4M      # sharing latency
    python -m repro.cli fig10                     # metadata cache / PNS sweeps
    python -m repro.cli fig11                     # cost analysis
    python -m repro.cli variants                  # list the Table 2 variants

Every command prints the same plain-text tables the ``benchmarks/`` files
produce; ``--quick`` shrinks the workloads for a fast sanity run.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.costs import (
    cached_read_cost,
    cost_per_file_day,
    cost_per_operation,
    operation_costs_per_day,
)
from repro.bench.filebench import MICRO_BENCHMARKS, MicroBenchmarkParams, run_microbenchmark_table
from repro.bench.report import human_size, render_table
from repro.bench.sharing import run_dropbox_sharing, run_sharing_benchmark
from repro.bench.sweeps import run_metadata_cache_sweep, run_pns_sweep
from repro.bench.syncservice import run_sync_benchmark
from repro.bench.targets import ALL_TARGET_NAMES
from repro.common.units import KB, MB
from repro.core.modes import VARIANTS


def _parse_size(text: str) -> int:
    text = text.strip().upper()
    if text.endswith("K"):
        return int(float(text[:-1]) * KB)
    if text.endswith("M"):
        return int(float(text[:-1]) * MB)
    return int(text)


def cmd_variants(_args) -> int:
    rows = [[spec.name, spec.mode.value, spec.backend.value, spec.label]
            for spec in VARIANTS.values()]
    print(render_table("Table 2 - SCFS variants", ["name", "mode", "backend", "label"], rows))
    return 0


def cmd_demo(args) -> int:
    from repro import Permission, SCFSDeployment
    from repro.simenv.failures import FaultKind

    deployment = SCFSDeployment.for_variant("SCFS-CoC-NB", seed=args.seed)
    alice = deployment.create_agent("alice")
    bob = deployment.create_agent("bob")
    alice.mkdir("/projects", shared=True)
    alice.write_file("/projects/design.md", b"# SCFS reproduction\n", shared=True)
    alice.setfacl("/projects/design.md", "bob", Permission.READ)
    deployment.drain(2.0)
    print("bob reads the shared file:", bob.read_file("/projects/design.md").decode().strip())
    deployment.clouds[0].failures.add(FaultKind.UNAVAILABLE)
    alice.agent.memory_cache.clear()
    alice.agent.disk_cache.clear()
    print(f"{deployment.clouds[0].name} is down; alice still reads:",
          alice.read_file("/projects/design.md").decode().strip())
    costs = deployment.costs()
    print(f"bill so far: {costs.total * 1e6:.1f} micro-dollars, "
          f"simulated time {deployment.sim.now():.2f}s")
    return 0


def cmd_table3(args) -> int:
    params = MicroBenchmarkParams(sample_ops=256, create_count=40, copy_count=20) if args.quick \
        else MicroBenchmarkParams(sample_ops=1024)
    table = run_microbenchmark_table(ALL_TARGET_NAMES, tuple(MICRO_BENCHMARKS), args.seed, params)
    headers = ["micro-benchmark", *ALL_TARGET_NAMES]
    rows = [[name, *(table[name][t] for t in ALL_TARGET_NAMES)] for name in MICRO_BENCHMARKS]
    print(render_table("Table 3 - Filebench micro-benchmarks (simulated seconds)", headers, rows))
    return 0


def cmd_fig8(args) -> int:
    systems = ("SCFS-AWS-NB", "SCFS-CoC-NB", "SCFS-CoC-NS", "S3QL",
               "SCFS-AWS-B", "SCFS-CoC-B", "S3FS")
    rows = []
    for system in systems:
        for local_locks in (False, True):
            result = run_sync_benchmark(system, local_locks=local_locks,
                                        runs=args.runs, seed=args.seed)
            label = f"{system}(L)" if local_locks else system
            rows.append([label, result.open_latency, result.save_latency, result.close_latency])
    print(render_table("Figure 8 - file synchronisation benchmark (simulated seconds)",
                       ["system", "open", "save", "close"], rows))
    return 0


def cmd_fig9(args) -> int:
    sizes = tuple(_parse_size(s) for s in args.sizes)
    rows = []
    for system in ("SCFS-CoC-B", "SCFS-CoC-NB", "SCFS-AWS-B", "SCFS-AWS-NB", "Dropbox"):
        for size in sizes:
            if system == "Dropbox":
                result = run_dropbox_sharing(size, trials=args.trials, seed=args.seed)
            else:
                result = run_sharing_benchmark(system, size, trials=args.trials, seed=args.seed)
            rows.append([system, human_size(size), result.p50, result.p90])
    print(render_table("Figure 9 - sharing latency (simulated seconds)",
                       ["system", "size", "p50", "p90"], rows))
    return 0


def cmd_fig10(args) -> int:
    params = MicroBenchmarkParams(create_count=40, copy_count=20) if args.quick \
        else MicroBenchmarkParams(create_count=100, copy_count=50)
    cache_sweep = run_metadata_cache_sweep(params=params, seed=args.seed)
    print(render_table("Figure 10(a) - metadata cache expiration (simulated seconds)",
                       ["expiration (s)", "create", "copy"],
                       [[p.setting, p.create_seconds, p.copy_seconds] for p in cache_sweep.points]))
    print()
    pns_sweep = run_pns_sweep(params=params, seed=args.seed)
    print(render_table("Figure 10(b) - % of shared files with PNS (simulated seconds)",
                       ["% shared", "create", "copy"],
                       [[p.setting, p.create_seconds, p.copy_seconds] for p in pns_sweep.points]))
    return 0


def cmd_fig11(args) -> int:
    rows = [[r.instance, r.ec2_per_day, r.ec2_times_four_per_day, r.coc_per_day,
             f"{r.capacity_files / 1e6:.0f}M"] for r in operation_costs_per_day()]
    print(render_table("Figure 11(a) - coordination cost per day ($)",
                       ["instance", "EC2", "EC2 x4", "CoC", "capacity"], rows))
    print()
    sizes = tuple(_parse_size(s) for s in args.sizes)
    operations = cost_per_operation(sizes=sizes, seed=args.seed)
    rows = [[series, human_size(size), cost.total]
            for series, per_size in operations.items() for size, cost in per_size.items()]
    print(render_table("Figure 11(b) - cost per operation (micro-dollars)",
                       ["series", "size", "cost/op"], rows))
    print(f"\ncached read: {cached_read_cost():.2f} micro-dollars")
    print()
    storage = cost_per_file_day(sizes=sizes, seed=args.seed)
    rows = [[system, human_size(size), entry.micro_dollars_per_day]
            for system, per_size in storage.items() for size, entry in per_size.items()]
    print(render_table("Figure 11(c) - storage cost per version per day (micro-dollars)",
                       ["backend", "size", "cost/day"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("variants", help="list the Table 2 variants").set_defaults(func=cmd_variants)
    sub.add_parser("demo", help="run the quickstart example").set_defaults(func=cmd_demo)

    table3 = sub.add_parser("table3", help="regenerate Table 3")
    table3.add_argument("--quick", action="store_true", help="smaller workloads")
    table3.set_defaults(func=cmd_table3)

    fig8 = sub.add_parser("fig8", help="file-synchronisation benchmark (Figure 8)")
    fig8.add_argument("--runs", type=int, default=3)
    fig8.set_defaults(func=cmd_fig8)

    fig9 = sub.add_parser("fig9", help="sharing-latency benchmark (Figure 9)")
    fig9.add_argument("--sizes", nargs="+", default=["256K", "1M", "4M"])
    fig9.add_argument("--trials", type=int, default=5)
    fig9.set_defaults(func=cmd_fig9)

    fig10 = sub.add_parser("fig10", help="parameter sweeps (Figure 10)")
    fig10.add_argument("--quick", action="store_true")
    fig10.set_defaults(func=cmd_fig10)

    fig11 = sub.add_parser("fig11", help="cost analysis (Figure 11)")
    fig11.add_argument("--sizes", nargs="+", default=["1M", "10M", "30M"])
    fig11.set_defaults(func=cmd_fig11)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
