"""Shared utilities used across the SCFS reproduction.

This package deliberately contains only small, dependency-free helpers:
exception hierarchy, identifier helpers, byte-size constants and a couple of
value objects that several subsystems exchange (e.g. :class:`~repro.common.types.ObjectRef`).
"""

from repro.common.errors import (
    ReproError,
    CloudError,
    CloudUnavailableError,
    ObjectNotFoundError,
    AccessDeniedError,
    IntegrityError,
    CoordinationError,
    LockHeldError,
    NotLockOwnerError,
    TupleNotFoundError,
    ConflictError,
    FileSystemError,
    FileNotFoundErrorFS,
    FileExistsErrorFS,
    NotADirectoryErrorFS,
    IsADirectoryErrorFS,
    DirectoryNotEmptyError,
    PermissionDeniedError,
    InvalidHandleError,
    QuorumNotReachedError,
    ConfigurationError,
    SingularMatrixError,
)
from repro.common.types import ObjectRef, Permission, Principal
from repro.common.units import KB, MB, GB, MONTH_SECONDS, human_bytes

__all__ = [
    "ReproError",
    "CloudError",
    "CloudUnavailableError",
    "ObjectNotFoundError",
    "AccessDeniedError",
    "IntegrityError",
    "CoordinationError",
    "LockHeldError",
    "NotLockOwnerError",
    "TupleNotFoundError",
    "ConflictError",
    "FileSystemError",
    "FileNotFoundErrorFS",
    "FileExistsErrorFS",
    "NotADirectoryErrorFS",
    "IsADirectoryErrorFS",
    "DirectoryNotEmptyError",
    "PermissionDeniedError",
    "InvalidHandleError",
    "QuorumNotReachedError",
    "ConfigurationError",
    "SingularMatrixError",
    "ObjectRef",
    "Permission",
    "Principal",
    "KB",
    "MB",
    "GB",
    "MONTH_SECONDS",
    "human_bytes",
]
