"""Byte-size and time constants plus small formatting helpers."""

from __future__ import annotations

KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: Seconds in a (30-day) billing month, used by the cost model.
MONTH_SECONDS = 30 * 24 * 3600
DAY_SECONDS = 24 * 3600
HOUR_SECONDS = 3600


def human_bytes(size: int) -> str:
    """Render a byte count as a short human-readable string.

    >>> human_bytes(512)
    '512B'
    >>> human_bytes(4 * 1024 * 1024)
    '4.0MB'
    """
    if size < KB:
        return f"{size}B"
    if size < MB:
        return f"{size / KB:.1f}KB"
    if size < GB:
        return f"{size / MB:.1f}MB"
    return f"{size / GB:.2f}GB"


def micro_dollars(dollars: float) -> float:
    """Convert dollars to micro-dollars (the unit used in Figure 11b/c)."""
    return dollars * 1e6
