"""Small value objects shared between subsystems."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field


class Permission(enum.Flag):
    """Access permissions used by SCFS ACLs and by the simulated clouds.

    SCFS (§2.6) replaces classic Unix modes by ACLs; the only rights that
    matter for a cloud-backed file system are read and write.
    """

    NONE = 0
    READ = enum.auto()
    WRITE = enum.auto()
    READ_WRITE = READ | WRITE


@dataclass(frozen=True)
class Principal:
    """A user of the system.

    Each SCFS user owns separate accounts in each cloud provider; the mapping
    from the SCFS user name to per-provider *canonical identifiers* is kept in
    the coordination service (§2.6).  ``canonical_ids`` maps provider name to
    the identifier the provider knows the user by.
    """

    name: str
    canonical_ids: tuple[tuple[str, str], ...] = field(default_factory=tuple)

    def canonical_id(self, provider: str) -> str:
        """Return the canonical id of this user at ``provider``.

        Falls back to ``name`` when no explicit mapping was registered, which
        keeps single-cloud test setups terse.
        """
        for prov, ident in self.canonical_ids:
            if prov == provider:
                return ident
        return self.name

    def with_canonical_id(self, provider: str, ident: str) -> "Principal":
        """Return a copy of this principal with one extra provider mapping."""
        mapping = tuple(p for p in self.canonical_ids if p[0] != provider)
        return Principal(self.name, (*mapping, (provider, ident)))


@dataclass(frozen=True)
class ObjectRef:
    """Reference to an immutable object version stored in a cloud backend.

    ``key`` is the opaque identifier referencing the file in the storage
    service and ``digest`` the collision-resistant hash of its contents —
    together they are exactly the ``(id, hash)`` pair the consistency-anchor
    algorithm of Figure 3 stores in the coordination service.  ``created_at``
    (simulated seconds) supports the age-based garbage-collection policies.
    """

    key: str
    digest: str
    size: int = 0
    created_at: float = 0.0

    @property
    def versioned_key(self) -> str:
        """The per-version cloud key (``id | hash`` in the paper's notation)."""
        return f"{self.key}#{self.digest}"


_counter = itertools.count()


def fresh_id(prefix: str = "obj") -> str:
    """Return a process-unique identifier with the given prefix.

    Used for file object ids, lock session ids and benchmark file names.  The
    counter is process-global which keeps ids unique across simulations in a
    single test run.
    """
    return f"{prefix}-{next(_counter):08d}"
