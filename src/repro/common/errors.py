"""Exception hierarchy for the SCFS reproduction.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish *expected* distributed-systems failures (a cloud being
unavailable, a lock being held, a quorum not being reached) from programming
errors, which surface as plain Python exceptions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the reproduction library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid parameters."""


# ---------------------------------------------------------------------------
# Cloud storage errors
# ---------------------------------------------------------------------------


class CloudError(ReproError):
    """Base class for errors raised by (simulated) cloud storage services."""


class CloudUnavailableError(CloudError):
    """The cloud provider is currently unreachable (outage / fault injection)."""


class ObjectNotFoundError(CloudError):
    """The requested object key does not exist (or is not yet visible)."""


class AccessDeniedError(CloudError):
    """The principal performing the request lacks the required permission."""


class IntegrityError(CloudError):
    """Data read back from a cloud does not match its expected digest."""


# ---------------------------------------------------------------------------
# Coding / cryptography errors
# ---------------------------------------------------------------------------


class SingularMatrixError(ReproError, ValueError):
    """A GF(256) matrix has no inverse (linearly dependent rows).

    Raised by ``repro.crypto.gf256.invert_matrix`` and translated by the
    erasure coder into an "insufficient independent blocks" decode failure.
    Subclasses ``ValueError`` so callers that treat decoding problems
    generically keep working.
    """


# ---------------------------------------------------------------------------
# Coordination service errors
# ---------------------------------------------------------------------------


class CoordinationError(ReproError):
    """Base class for errors raised by the coordination service."""


class TupleNotFoundError(CoordinationError):
    """No tuple matched the given template."""


class ConflictError(CoordinationError):
    """A conditional (compare-and-swap style) update failed."""


class LockHeldError(CoordinationError):
    """The lock is already held by another session."""


class NotLockOwnerError(CoordinationError):
    """An unlock was attempted by a session that does not own the lock."""


class TransactionError(CoordinationError):
    """Base class for errors raised by the transactional commit layer."""


class TransactionConflictError(TransactionError):
    """One commit attempt failed (lock contention or validation/CAS mismatch).

    Retryable: :meth:`~repro.transactions.TransactionManager.run` catches it
    and re-executes the transaction body after a bounded backoff.
    """


class TransactionAbortedError(TransactionError):
    """The transaction gave up (retry budget exhausted or explicit abort)."""


class QuorumNotReachedError(ReproError):
    """Fewer than the required number of replicas/clouds answered."""

    def __init__(self, message: str, responses: int = 0, required: int = 0):
        super().__init__(message)
        self.responses = responses
        self.required = required


# ---------------------------------------------------------------------------
# File system errors (POSIX-flavoured)
# ---------------------------------------------------------------------------


class FileSystemError(ReproError):
    """Base class for errors raised by the file-system layer."""

    errno_name = "EIO"


class FileNotFoundErrorFS(FileSystemError):
    """Path does not exist (ENOENT)."""

    errno_name = "ENOENT"


class FileExistsErrorFS(FileSystemError):
    """Path already exists (EEXIST)."""

    errno_name = "EEXIST"


class NotADirectoryErrorFS(FileSystemError):
    """A path component used as a directory is not one (ENOTDIR)."""

    errno_name = "ENOTDIR"


class IsADirectoryErrorFS(FileSystemError):
    """File operation attempted on a directory (EISDIR)."""

    errno_name = "EISDIR"


class DirectoryNotEmptyError(FileSystemError):
    """rmdir on a non-empty directory (ENOTEMPTY)."""

    errno_name = "ENOTEMPTY"


class PermissionDeniedError(FileSystemError):
    """The caller lacks permission for the operation (EACCES)."""

    errno_name = "EACCES"


class InvalidHandleError(FileSystemError):
    """Operation on a closed or unknown file handle (EBADF)."""

    errno_name = "EBADF"
