"""Common plumbing of the baseline file systems.

Each baseline implements the handle-based calls (open/read/write/fsync/close)
and inherits the whole-file helpers, so that the benchmark workloads can drive
SCFS and the baselines through exactly the same code path.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass, field

from repro.common.errors import (
    FileNotFoundErrorFS,
    InvalidHandleError,
    PermissionDeniedError,
)
from repro.simenv.environment import Simulation
from repro.simenv.latency import FUSE_OVERHEAD


@dataclass
class BaselineOpenFile:
    """Open-file state shared by the baseline implementations."""

    handle: int
    path: str
    buffer: bytearray
    writable: bool
    dirty: bool = False
    extra: dict = field(default_factory=dict)


class BaselineFileSystem(abc.ABC):
    """Skeleton of a FUSE-based file system used as a comparison point."""

    name = "baseline"

    def __init__(self, sim: Simulation):
        self.sim = sim
        self._handles: dict[int, BaselineOpenFile] = {}
        self._next_handle = itertools.count(3)
        self.syscalls = 0

    # ------------------------------------------------------------------ utils

    def _syscall(self) -> None:
        self.syscalls += 1
        self.sim.advance(FUSE_OVERHEAD.sample(0, self.sim.rng))

    def _handle(self, handle: int) -> BaselineOpenFile:
        try:
            return self._handles[handle]
        except KeyError:
            raise InvalidHandleError(f"unknown or closed file handle {handle}") from None

    def _register(self, path: str, buffer: bytearray, writable: bool) -> int:
        handle = next(self._next_handle)
        self._handles[handle] = BaselineOpenFile(
            handle=handle, path=path, buffer=buffer, writable=writable
        )
        return handle

    # ----------------------------------------------------------- abstract hooks

    @abc.abstractmethod
    def _load(self, path: str, create: bool, truncate: bool) -> bytearray:
        """Fetch the current contents of ``path`` for an open call."""

    @abc.abstractmethod
    def _persist(self, of: BaselineOpenFile) -> None:
        """Persist a dirty open file on close (semantics differ per baseline)."""

    @abc.abstractmethod
    def _sync_local(self, of: BaselineOpenFile) -> None:
        """fsync: make the open file durable against a crash."""

    # --------------------------------------------------------------- handle API

    def open(self, path: str, mode: str = "r", shared: bool = False) -> int:
        """Open ``path`` with a stdio-style mode string ('r', 'r+', 'w', 'a')."""
        self._syscall()
        create = mode in ("w", "a")
        truncate = mode == "w"
        writable = mode != "r"
        buffer = self._load(path, create=create, truncate=truncate)
        return self._register(path, buffer, writable)

    def read(self, handle: int, size: int = -1, offset: int = 0) -> bytes:
        """Read from the open file."""
        self._syscall()
        of = self._handle(handle)
        self._charge_read(of, size if size >= 0 else len(of.buffer))
        end = len(of.buffer) if size < 0 else min(len(of.buffer), offset + size)
        return bytes(of.buffer[offset:end])

    def write(self, handle: int, data: bytes, offset: int | None = None) -> int:
        """Write into the open file."""
        self._syscall()
        of = self._handle(handle)
        if not of.writable:
            raise PermissionDeniedError("file not opened for writing")
        if offset is None:
            offset = len(of.buffer)
        if offset > len(of.buffer):
            of.buffer.extend(b"\x00" * (offset - len(of.buffer)))
        of.buffer[offset:offset + len(data)] = data
        of.dirty = True
        self._charge_write(of, len(data))
        return len(data)

    def fsync(self, handle: int) -> None:
        """Flush the open file to stable local storage."""
        self._syscall()
        of = self._handle(handle)
        if of.dirty:
            self._sync_local(of)

    def truncate(self, handle: int, length: int = 0) -> None:
        """Truncate the open file."""
        self._syscall()
        of = self._handle(handle)
        if length <= len(of.buffer):
            del of.buffer[length:]
        else:
            of.buffer.extend(b"\x00" * (length - len(of.buffer)))
        of.dirty = True

    def close(self, handle: int) -> None:
        """Close the open file, persisting it per the baseline's semantics."""
        self._syscall()
        of = self._handles.pop(handle, None)
        if of is None:
            raise InvalidHandleError(f"unknown or closed file handle {handle}")
        if of.dirty and of.writable:
            self._persist(of)

    # ------------------------------------------------------- latency knobs

    def _charge_read(self, of: BaselineOpenFile, size: int) -> None:
        """Extra per-read latency (overridden by baselines without memory caches)."""

    def _charge_write(self, of: BaselineOpenFile, size: int) -> None:
        """Extra per-write latency (overridden to model known slow paths)."""

    # --------------------------------------------------------------- whole-file

    def write_file(self, path: str, data: bytes, shared: bool = False) -> None:
        """Create/replace ``path`` with ``data``."""
        handle = self.open(path, "w", shared=shared)
        try:
            if data:
                self.write(handle, data)
        finally:
            self.close(handle)

    def read_file(self, path: str) -> bytes:
        """Return the whole contents of ``path``."""
        handle = self.open(path, "r")
        try:
            return self.read(handle)
        finally:
            self.close(handle)

    def copy(self, source: str, destination: str) -> None:
        """Copy a file inside the file system."""
        self.write_file(destination, self.read_file(source))

    # ------------------------------------------------------------------- paths

    def mkdir(self, path: str, shared: bool = False) -> None:
        """Directories need no special handling in the baselines (flat namespaces)."""
        self._syscall()

    def exists(self, path: str) -> bool:
        """True when ``path`` exists."""
        self._syscall()
        return self._exists(path)

    @abc.abstractmethod
    def _exists(self, path: str) -> bool:
        """Existence check of the concrete baseline."""

    @abc.abstractmethod
    def unlink(self, path: str) -> None:
        """Remove a file."""

    def unmount(self) -> None:
        """Close any files left open."""
        for handle in list(self._handles):
            self.close(handle)

    def _missing(self, path: str) -> FileNotFoundErrorFS:
        return FileNotFoundErrorFS(f"{self.name}: no such file: {path}")
