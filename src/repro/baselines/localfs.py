"""LocalFS — a FUSE-J local file system used as the evaluation baseline.

The paper compares SCFS against "a FUSE-J-based local file system (LocalFS)
implemented in Java as a baseline to ensure a fair comparison, since a native
file system presents much better performance than a FUSE-J file system"
(§4.1).  LocalFS therefore pays the user-space crossing overhead on every call
and ordinary local-disk latencies when files are persisted, but never touches
any cloud.
"""

from __future__ import annotations

from repro.baselines.base import BaselineFileSystem, BaselineOpenFile
from repro.simenv.environment import Simulation
from repro.simenv.latency import DISK_LATENCY, MEMORY_LATENCY


class LocalFS(BaselineFileSystem):
    """A purely local user-space file system (durability level 1 at best)."""

    name = "LocalFS"

    def __init__(self, sim: Simulation):
        super().__init__(sim)
        self._files: dict[str, bytes] = {}

    # -- hooks -----------------------------------------------------------------

    def _load(self, path: str, create: bool, truncate: bool) -> bytearray:
        if path not in self._files:
            if not create:
                raise self._missing(path)
            self._files[path] = b""
        if truncate:
            self._files[path] = b""
        data = b"" if truncate else self._files[path]
        # Opening reads the file from the page cache / disk.
        self.sim.advance(MEMORY_LATENCY.sample(len(data), self.sim.rng))
        return bytearray(data)

    def _persist(self, of: BaselineOpenFile) -> None:
        # Closing a dirty file writes it back to the local disk.
        self.sim.advance(DISK_LATENCY.sample(len(of.buffer), self.sim.rng))
        self._files[of.path] = bytes(of.buffer)

    def _sync_local(self, of: BaselineOpenFile) -> None:
        self.sim.advance(DISK_LATENCY.sample(len(of.buffer), self.sim.rng))
        self._files[of.path] = bytes(of.buffer)
        of.dirty = True  # keep the dirty bit: close still rewrites the final state

    def _charge_read(self, of: BaselineOpenFile, size: int) -> None:
        self.sim.advance(MEMORY_LATENCY.sample(size, self.sim.rng))

    def _charge_write(self, of: BaselineOpenFile, size: int) -> None:
        self.sim.advance(MEMORY_LATENCY.sample(size, self.sim.rng))

    # -- paths ------------------------------------------------------------------

    def _exists(self, path: str) -> bool:
        return path in self._files

    def unlink(self, path: str) -> None:
        self._syscall()
        if path not in self._files:
            raise self._missing(path)
        del self._files[path]
        self.sim.advance(DISK_LATENCY.sample(0, self.sim.rng))

    def stored_files(self) -> int:
        """Number of files currently stored (test helper)."""
        return len(self._files)
