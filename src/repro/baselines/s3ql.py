"""S3QL-like baseline: a single-user, write-back cloud-backed file system.

S3QL "writes the data locally and later pushes it to the cloud" (§5).  It has
no sharing support and keeps all metadata locally, so metadata-intensive
workloads run at local speed (Table 3).  Two behaviours from the paper are
modelled explicitly:

* background upload: ``close`` returns after the local write; the object is
  pushed to the cloud by a deferred task;
* the documented FUSE small-chunk-write issue (§4.2 cites S3QL's known-issues
  page): writes much smaller than the recommended 128 KB chunk size pay a
  fixed per-call penalty, which is why its random 4 KB-write benchmark is by
  far the slowest of Table 3.
"""

from __future__ import annotations

from repro.common.errors import ObjectNotFoundError
from repro.common.types import Principal
from repro.baselines.base import BaselineFileSystem, BaselineOpenFile
from repro.clouds.eventual import EventuallyConsistentStore
from repro.simenv.environment import Simulation
from repro.simenv.latency import DISK_LATENCY, MEMORY_LATENCY, LatencyModel
from repro.common.units import KB

#: Chunk size below which writes hit the slow FUSE path (S3QL recommends 128 KB).
RECOMMENDED_CHUNK = 128 * KB

#: Fixed penalty of one small-chunk write (calibrated so that 256k random 4 KB
#: writes take a few minutes, as in Table 3).
SMALL_WRITE_PENALTY = LatencyModel(base=4.5e-4)


class S3QLLike(BaselineFileSystem):
    """Single-user write-back cloud file system with local metadata."""

    name = "S3QL"

    def __init__(self, sim: Simulation, store: EventuallyConsistentStore,
                 principal: Principal | None = None):
        super().__init__(sim)
        self.store = store
        self.principal = principal or Principal("s3ql-user")
        self._local: dict[str, bytes] = {}
        self.pending_uploads = 0
        self.background_uploads = 0

    def _key(self, path: str) -> str:
        return f"s3ql{path}"

    # -- hooks ---------------------------------------------------------------------

    def _load(self, path: str, create: bool, truncate: bool) -> bytearray:
        if path in self._local:
            data = b"" if truncate else self._local[path]
            self.sim.advance(MEMORY_LATENCY.sample(len(data), self.sim.rng))
            return bytearray(data)
        # Not cached locally: fall back to the cloud copy (rare for a single user).
        try:
            data = self.store.get(self._key(path), self.principal)
        except ObjectNotFoundError as exc:
            if not create:
                raise self._missing(path) from exc
            data = b""
        if truncate:
            data = b""
        self._local[path] = data
        self.sim.advance(DISK_LATENCY.sample(len(data), self.sim.rng))
        return bytearray(data)

    def _persist(self, of: BaselineOpenFile) -> None:
        data = bytes(of.buffer)
        # Local write-back: the close is as fast as the local disk...
        self.sim.advance(DISK_LATENCY.sample(len(data), self.sim.rng))
        self._local[of.path] = data
        # ...and the upload happens later, in the background.
        delay = self.store.profile.object_put.sample(len(data), self.sim.rng)
        self.pending_uploads += 1

        def upload() -> None:
            self.pending_uploads -= 1
            self.background_uploads += 1
            previous = self.store.charge_latency
            self.store.charge_latency = False
            try:
                self.store.put(self._key(of.path), data, self.principal)
            finally:
                self.store.charge_latency = previous

        self.sim.schedule(delay, upload, name=f"s3ql-upload:{of.path}")

    def _sync_local(self, of: BaselineOpenFile) -> None:
        self.sim.advance(DISK_LATENCY.sample(len(of.buffer), self.sim.rng))
        self._local[of.path] = bytes(of.buffer)

    def _charge_read(self, of: BaselineOpenFile, size: int) -> None:
        self.sim.advance(MEMORY_LATENCY.sample(size, self.sim.rng))

    def _charge_write(self, of: BaselineOpenFile, size: int) -> None:
        if 0 < size < RECOMMENDED_CHUNK:
            self.sim.advance(SMALL_WRITE_PENALTY.sample(0, self.sim.rng))
        else:
            self.sim.advance(MEMORY_LATENCY.sample(size, self.sim.rng))

    # -- paths -------------------------------------------------------------------------

    def _exists(self, path: str) -> bool:
        return path in self._local or self.store.exists(self._key(path), self.principal)

    def unlink(self, path: str) -> None:
        self._syscall()
        self._local.pop(path, None)
        self.store.delete(self._key(path), self.principal)
