"""S3FS-like baseline: a blocking cloud-backed file system without memory caches.

S3FS "employs a blocking strategy in which every update on a file only returns
when the file is written to the cloud" (§5) and its low micro-benchmark
performance "comes from its lack of main memory cache for opened files" (§4.2).
Concretely, in this reproduction:

* ``open`` downloads the whole object from the storage cloud (if it exists)
  into a local temporary file — there is no long-term validated cache;
* ``read``/``write`` operate on that temporary file at local-disk latency
  (no memory cache);
* ``close`` of a modified file uploads the whole object synchronously;
* creating a file immediately creates the (empty) object in the cloud, which is
  why the create/copy micro-benchmarks are three to four orders of magnitude
  slower than local file systems (Table 3).
"""

from __future__ import annotations

from repro.common.errors import ObjectNotFoundError
from repro.common.types import Principal
from repro.baselines.base import BaselineFileSystem, BaselineOpenFile
from repro.clouds.eventual import EventuallyConsistentStore
from repro.simenv.environment import Simulation
from repro.simenv.latency import DISK_LATENCY, LatencyModel
from repro.common.units import MB

#: Per-call penalty of serving reads/writes from the local temporary file
#: instead of a main-memory cache (S3FS's documented weakness, §4.2).  The
#: base term models the extra user-space copy, the bandwidth term the page
#: cache / local file traffic.
TMPFILE_ACCESS = LatencyModel(base=1.8e-5, bandwidth=100 * MB)


class S3FSLike(BaselineFileSystem):
    """Blocking, cache-less cloud-backed file system over a single store."""

    name = "S3FS"

    def __init__(self, sim: Simulation, store: EventuallyConsistentStore,
                 principal: Principal | None = None):
        super().__init__(sim)
        self.store = store
        self.principal = principal or Principal("s3fs-user")
        # Local temporary copies of the files this mount itself wrote.  They
        # absorb S3's read-after-write anomaly for freshly created objects
        # (the real s3fs keeps the uploaded temp file around too).
        self._local: dict[str, bytes] = {}

    def _key(self, path: str) -> str:
        return f"s3fs{path}"

    # -- hooks --------------------------------------------------------------------

    def _load(self, path: str, create: bool, truncate: bool) -> bytearray:
        key = self._key(path)
        try:
            data = b"" if truncate else self.store.get(key, self.principal)
        except ObjectNotFoundError as exc:
            if path in self._local and not truncate:
                data = self._local[path]
            elif not create:
                raise self._missing(path) from exc
            else:
                data = b""
        if create:
            # Creating/truncating immediately materialises the object in the
            # cloud (each create/open/close hits S3, §4.2).
            self.store.put(key, data, self.principal)
            self._local[path] = data
        # The downloaded copy lands in a local temporary file.
        self.sim.advance(DISK_LATENCY.sample(len(data), self.sim.rng))
        return bytearray(data)

    def _persist(self, of: BaselineOpenFile) -> None:
        # Blocking upload of the whole file.
        self.store.put(self._key(of.path), bytes(of.buffer), self.principal)
        self._local[of.path] = bytes(of.buffer)

    def _sync_local(self, of: BaselineOpenFile) -> None:
        # fsync pushes to the cloud as well (there is no lower durability tier).
        self.store.put(self._key(of.path), bytes(of.buffer), self.principal)
        self._local[of.path] = bytes(of.buffer)

    def _charge_read(self, of: BaselineOpenFile, size: int) -> None:
        # No main-memory cache: reads are served from the local temporary file.
        self.sim.advance(TMPFILE_ACCESS.sample(size, self.sim.rng))

    def _charge_write(self, of: BaselineOpenFile, size: int) -> None:
        self.sim.advance(TMPFILE_ACCESS.sample(size, self.sim.rng))

    # -- paths -----------------------------------------------------------------------

    def _exists(self, path: str) -> bool:
        return path in self._local or self.store.exists(self._key(path), self.principal)

    def unlink(self, path: str) -> None:
        self._syscall()
        self._local.pop(path, None)
        self.store.delete(self._key(path), self.principal)
