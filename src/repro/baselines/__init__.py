"""Baseline systems SCFS is compared against in the paper's evaluation.

* :class:`~repro.baselines.localfs.LocalFS` — a FUSE-J local file system, the
  baseline that factors out the user-space file-system overhead (§4.1);
* :class:`~repro.baselines.s3fs.S3FSLike` — an S3FS-style blocking
  cloud-backed file system: no main-memory cache for open files and every
  create/open/close touches the storage cloud synchronously;
* :class:`~repro.baselines.s3ql.S3QLLike` — an S3QL-style single-user
  cloud-backed file system: data is written locally and pushed to the cloud in
  the background, with the documented slow-small-chunk-write behaviour;
* :class:`~repro.baselines.dropbox.DropboxLikeService` — a personal
  file-synchronisation service in the style of Dropbox (monitor + polling +
  central server), used as the comparator of the sharing experiment (Fig. 9).

All baselines expose the same calling surface as
:class:`~repro.core.filesystem.SCFSFileSystem`, so the benchmark workloads can
drive any of them interchangeably.
"""

from repro.baselines.base import BaselineFileSystem
from repro.baselines.localfs import LocalFS
from repro.baselines.s3fs import S3FSLike
from repro.baselines.s3ql import S3QLLike
from repro.baselines.dropbox import DropboxLikeService, DropboxClient

__all__ = [
    "BaselineFileSystem",
    "LocalFS",
    "S3FSLike",
    "S3QLLike",
    "DropboxLikeService",
    "DropboxClient",
]
