"""A Dropbox-like personal file-synchronisation service (sharing comparator).

Figure 9 of the paper compares the time for a file written by client A to
become readable at client B when shared through SCFS versus through a Dropbox
shared folder.  Dropbox's design [Drago et al., IMC'12] is monitor-based: a
client application watches the local folder (inotify), batches and uploads
changed files to the provider, the provider then notifies the other clients,
which download the new content.  Every stage adds latency, which is why the
measured sharing delay is tens of seconds even for small files.

The model here reproduces those stages with configurable delays:

``detection``  the monitor notices the closed file (polling/batching delay)
``upload``     whole-file upload at the client's uplink rate (plus a fixed RTT)
``processing`` server-side processing/indexing delay
``notify``     delay until the receiving client learns about the new version
``download``   whole-file download at the receiver's downlink rate

All delays use the shared seeded RNG, so the 50th/90th percentiles of Figure 9
are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import FileNotFoundErrorFS
from repro.common.units import MB
from repro.simenv.environment import Simulation
from repro.simenv.latency import LatencyModel


@dataclass(frozen=True)
class DropboxProfile:
    """Latency profile of the synchronisation pipeline."""

    detection: LatencyModel = LatencyModel(base=1.5, jitter=0.4)
    upload: LatencyModel = LatencyModel(base=2.0, bandwidth=0.6 * MB, jitter=0.3)
    processing: LatencyModel = LatencyModel(base=4.0, jitter=0.5)
    notify: LatencyModel = LatencyModel(base=2.5, jitter=0.5)
    download: LatencyModel = LatencyModel(base=1.0, bandwidth=1.5 * MB, jitter=0.3)


@dataclass
class _SharedFile:
    data: bytes
    written_at: float
    available_at: dict[str, float] = field(default_factory=dict)


class DropboxLikeService:
    """The shared-folder service connecting a set of :class:`DropboxClient`."""

    def __init__(self, sim: Simulation, profile: DropboxProfile | None = None):
        self.sim = sim
        self.profile = profile or DropboxProfile()
        self.clients: dict[str, "DropboxClient"] = {}
        self.files: dict[str, _SharedFile] = {}

    def register(self, name: str) -> "DropboxClient":
        """Create a client attached to the shared folder."""
        client = DropboxClient(name, self)
        self.clients[name] = client
        return client

    # -- synchronisation pipeline ------------------------------------------------

    def _propagate(self, path: str, writer: str) -> None:
        rng = self.sim.rng
        record = self.files[path]
        detection = self.profile.detection.sample(0, rng)
        upload = self.profile.upload.sample(len(record.data), rng)
        processing = self.profile.processing.sample(0, rng)
        server_time = detection + upload + processing
        for name, client in self.clients.items():
            if name == writer:
                record.available_at[name] = record.written_at
                continue
            notify = self.profile.notify.sample(0, rng)
            download = self.profile.download.sample(len(record.data), rng)
            arrival = record.written_at + server_time + notify + download

            def deliver(client=client, path=path, data=record.data, arrival=arrival):
                client.local_files[path] = data
                self.files[path].available_at[client.name] = arrival

            self.sim.schedule(max(0.0, arrival - self.sim.now()), deliver,
                              name=f"dropbox-sync:{path}->{name}")

    def publish(self, path: str, data: bytes, writer: str) -> None:
        """Called by a client that saved ``path`` in its shared folder."""
        self.files[path] = _SharedFile(data=data, written_at=self.sim.now())
        self._propagate(path, writer)

    def availability_time(self, path: str, client: str) -> float | None:
        """Simulated instant at which ``client`` had ``path`` locally (None if not yet)."""
        record = self.files.get(path)
        if record is None:
            return None
        return record.available_at.get(client)


class DropboxClient:
    """One machine participating in the shared folder."""

    def __init__(self, name: str, service: DropboxLikeService):
        self.name = name
        self.service = service
        self.local_files: dict[str, bytes] = {}

    # -- writer side ------------------------------------------------------------

    def write_file(self, path: str, data: bytes) -> None:
        """Save a file in the shared folder (returns immediately, like a local save)."""
        self.local_files[path] = data
        self.service.publish(path, data, writer=self.name)

    # -- reader side ---------------------------------------------------------------

    def has_file(self, path: str) -> bool:
        """True once the synchronisation pipeline delivered ``path`` to this client."""
        return path in self.local_files

    def read_file(self, path: str) -> bytes:
        """Read a synchronised file (raises when it has not arrived yet)."""
        if path not in self.local_files:
            raise FileNotFoundErrorFS(f"{path} has not been synchronised to {self.name} yet")
        return self.local_files[path]

    def wait_for(self, path: str, poll_interval: float = 0.2, timeout: float = 600.0) -> float:
        """Poll until ``path`` arrives; returns the elapsed simulated waiting time."""
        start = self.service.sim.now()
        while not self.has_file(path):
            if self.service.sim.now() - start > timeout:
                raise FileNotFoundErrorFS(f"{path} did not arrive within {timeout}s")
            self.service.sim.advance(poll_interval)
        return self.service.sim.now() - start
