"""Byzantine dissemination quorum systems beyond uniform thresholds.

DepSky hard-codes *uniform threshold* quorums: ``n = 3f + 1`` clouds, any
``n - f`` acknowledgements commit a write, any ``f + 1`` matching digests
certify a version.  That integer-count assumption is what every layer of this
repo used to pass around as ``required: int``.  This module makes the quorum
structure first-class, following the generalized Byzantine quorum systems of
Malkhi & Reiter and their weighted/asymmetric descendants: a
:class:`QuorumSystem` names its *universe* of providers and exposes two
predicates over responder sets —

* the **quorum** predicate: the sets whose acknowledgement commits an
  operation.  Consistency requires any two quorums to intersect in at least
  one *correct* provider (so a reader always meets a cloud that saw the
  latest committed write);
* the **certificate** predicate: the sets that cannot consist entirely of
  faulty providers.  A (version, digest) pair confirmed by a certificate is
  guaranteed authentic — this generalizes DepSky's ``f + 1`` matching-digest
  check.

Three structures are provided:

* :class:`ThresholdQuorumSystem` — the classic uniform system (quorum =
  ``n - f`` responses, certificate = ``f + 1``);
* :class:`WeightedQuorumSystem` — per-provider trust weights and a *fault
  budget* ``B`` (any provider set of total weight ≤ ``B`` may misbehave):
  quorums are the sets of weight strictly above ``(W + B) / 2``, certificates
  the sets of weight strictly above ``B``;
* :class:`ExplicitQuorumSystem` — an explicit quorum list plus a fail-prone
  system (asymmetric quorum slices), checked directly against the
  Malkhi–Reiter D-consistency and availability conditions.

Each system's :meth:`~QuorumSystem.validate` checks both properties —
**consistency** (quorum intersections survive every tolerated fault set) and
**availability** (after any tolerated fault set fails, some quorum remains
responsive) — so an unsatisfiable configuration is rejected loudly at config
time instead of wedging every quorum call at runtime.

The dispatch engine itself consumes the weaker :class:`QuorumPredicate`
protocol (``satisfied_by`` over responder names plus a ``min_size``), of
which :class:`CountQuorum` is the bare-``int`` adapter: counting *responses*
exactly like the legacy m-th-success engine, so threshold mode stays
byte-identical.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Iterator, Protocol, Sequence


class QuorumPredicate(Protocol):
    """What the dispatch engine needs from a quorum: a floor and a test."""

    @property
    def min_size(self) -> int:
        """No responder set smaller than this can satisfy the predicate."""
        ...

    def satisfied_by(self, responders: Sequence[str]) -> bool:
        """True when ``responders`` satisfy the predicate."""
        ...


@dataclass(frozen=True)
class CountQuorum:
    """The legacy predicate: any ``required`` successful responses satisfy it.

    Counts *responses*, not distinct clouds — exactly the m-th-success
    semantics the dispatch engine has always had, so wrapping a bare ``int``
    in a :class:`CountQuorum` changes no behaviour and no wire bytes.
    """

    required: int

    @property
    def min_size(self) -> int:
        """Smallest number of responses that can satisfy the predicate."""
        return self.required

    def satisfied_by(self, responders: Sequence[str]) -> bool:
        """True when enough responses arrived (monotone in ``responders``)."""
        return len(responders) >= self.required


@dataclass(frozen=True)
class WeightedCountQuorum:
    """Weighted predicate: distinct responders of total weight above a bar.

    All weight arithmetic is *exact* (:class:`~fractions.Fraction`; converting
    a float is lossless).  Float summation is order-dependent: a responder set
    whose true weight lands exactly on the bar can drift to either side of the
    strict comparison, and accepting such a set breaks quorum intersection —
    two "quorums" of weight exactly ``(W + B) / 2`` may overlap entirely
    inside a tolerated fault set.
    """

    #: ``(cloud, weight)`` pairs of the universe.
    weights: tuple[tuple[str, float], ...]
    #: The predicate holds when the responder weight strictly exceeds this.
    threshold_weight: float | Fraction

    def _weight(self, responders: Sequence[str]) -> Fraction:
        table = {name: Fraction(weight) for name, weight in self.weights}
        distinct = dict.fromkeys(responders)  # dedup, first-seen order
        return sum((table[cloud] for cloud in distinct if cloud in table),
                   start=Fraction(0))

    @property
    def min_size(self) -> int:
        """Fewest distinct clouds that can clear the bar (heaviest first)."""
        total = Fraction(0)
        bar = Fraction(self.threshold_weight)
        for count, (_, weight) in enumerate(
                sorted(self.weights, key=lambda item: (-item[1], item[0])), start=1):
            total += Fraction(weight)
            if total > bar:
                return count
        return len(self.weights) + 1  # unsatisfiable even by the full universe

    def satisfied_by(self, responders: Sequence[str]) -> bool:
        return self._weight(responders) > Fraction(self.threshold_weight)


@dataclass(frozen=True)
class SubsetQuorum:
    """Explicit predicate: satisfied when the responders cover some quorum."""

    quorums: tuple[frozenset[str], ...]

    @property
    def min_size(self) -> int:
        return min((len(q) for q in self.quorums), default=1)

    def satisfied_by(self, responders: Sequence[str]) -> bool:
        present = set(responders)
        return any(quorum <= present for quorum in self.quorums)


@dataclass(frozen=True)
class SurvivorQuorum:
    """Certificate predicate of an explicit system: not contained in any
    fail-prone set (hence at least one responder is guaranteed correct)."""

    fault_sets: tuple[frozenset[str], ...]

    @property
    def min_size(self) -> int:
        # A single responder outside every fault set already certifies, so the
        # honest lower bound on a satisfying set is one responder.
        return 1

    def satisfied_by(self, responders: Sequence[str]) -> bool:
        present = set(responders)
        if not present:
            return False
        return all(not present <= fault_set for fault_set in self.fault_sets)


def as_quorum(required: int | QuorumPredicate) -> QuorumPredicate:
    """Normalize a bare ``required: int`` to a quorum predicate."""
    if isinstance(required, int):
        return CountQuorum(required)
    return required


def min_size(required: int | QuorumPredicate) -> int:
    """The ``min_size`` of a predicate, or a bare ``int`` itself."""
    return required if isinstance(required, int) else required.min_size


def minimal_quorums(pool: Sequence[str],
                    predicate: int | QuorumPredicate) -> Iterator[tuple[str, ...]]:
    """Yield every *minimal* satisfying subset of ``pool``.

    A subset is minimal when removing any one member breaks the predicate.
    Enumeration order is deterministic (by size, then by ``pool`` order).
    Intended for planner-sized pools (a handful of providers); callers with
    large pools should fall back to a greedy construction instead.
    """
    predicate = as_quorum(predicate)
    names = list(pool)
    for size in range(max(1, predicate.min_size), len(names) + 1):
        for combo in itertools.combinations(names, size):
            if not predicate.satisfied_by(combo):
                continue
            if any(predicate.satisfied_by(combo[:i] + combo[i + 1:])
                   for i in range(len(combo))):
                continue  # a proper subset already satisfies: not minimal
            yield combo


class QuorumSystem:
    """Base class of a Byzantine dissemination quorum system.

    Subclasses define :meth:`quorum` (the commit predicate), :meth:`certificate`
    (the authenticity predicate) and :meth:`validate`; the convenience wrappers
    below are shared.
    """

    # Annotation-only on purpose: assigning class-level defaults here would
    # leak into the dataclass subclasses as field defaults and break their
    # required-field ordering.
    mode: str
    universe: tuple[str, ...]

    def quorum(self) -> QuorumPredicate:
        """Predicate over responder sets whose acknowledgement commits."""
        raise NotImplementedError

    def certificate(self) -> QuorumPredicate:
        """Predicate over responder sets that cannot be entirely faulty."""
        raise NotImplementedError

    def validate(self) -> None:
        """Raise :class:`ValueError` unless consistency and availability hold."""
        raise NotImplementedError

    def satisfied_by(self, responders: Iterable[str]) -> bool:
        """True when ``responders`` form a quorum."""
        return self.quorum().satisfied_by(tuple(responders))

    def certifies(self, responders: Iterable[str]) -> bool:
        """True when ``responders`` certify a value (≥ 1 correct member)."""
        return self.certificate().satisfied_by(tuple(responders))

    def feasible(self, available: Iterable[str]) -> bool:
        """True when the available providers still contain a quorum."""
        return self.satisfied_by(available)

    def describe(self) -> str:
        """One-line human description (reports and error messages)."""
        return f"{self.mode} quorum system over {len(self.universe)} providers"


@dataclass(frozen=True)
class ThresholdQuorumSystem(QuorumSystem):
    """The classic DepSky system: ``n = |universe|`` clouds tolerating ``f``.

    Quorums are any ``n - f`` responses, certificates any ``f + 1``; validity
    is the familiar ``n >= 3f + 1`` (two write quorums then intersect in at
    least ``f + 1`` clouds, one of which must be correct).
    """

    universe: tuple[str, ...]
    f: int
    mode: str = "threshold"

    def quorum(self) -> CountQuorum:
        return CountQuorum(len(self.universe) - self.f)

    def certificate(self) -> CountQuorum:
        return CountQuorum(self.f + 1)

    def validate(self) -> None:
        if self.f < 0:
            raise ValueError("the fault threshold f must be non-negative")
        if len(self.universe) != len(set(self.universe)):
            raise ValueError("the quorum universe lists a provider twice")
        if len(self.universe) < 3 * self.f + 1:
            raise ValueError(
                f"a threshold quorum system with f={self.f} needs at least "
                f"{3 * self.f + 1} providers, got {len(self.universe)}")


@dataclass(frozen=True)
class WeightedQuorumSystem(QuorumSystem):
    """Weighted-majority quorums with a fault *budget* instead of a count.

    Every provider carries a trust weight; any provider set of total weight at
    most ``fault_budget`` may fail or misbehave simultaneously.  With total
    weight ``W`` and budget ``B``:

    * **quorums** are the sets of weight strictly above ``(W + B) / 2`` — any
      two such sets intersect in weight strictly above ``B``, so their
      intersection cannot lie inside a tolerated fault set (it contains a
      correct provider: the dissemination-quorum consistency condition);
    * **certificates** are the sets of weight strictly above ``B`` — they
      cannot consist entirely of faulty providers;
    * **availability** demands that the correct providers left by the heaviest
      tolerated fault set still form a quorum, which (with an exactly
      achievable budget) reduces to the familiar ``B < W / 3``.
    """

    universe: tuple[str, ...]
    #: ``(provider, weight)`` pairs covering the universe exactly.
    weights: tuple[tuple[str, float], ...]
    fault_budget: float
    mode: str = "weighted"

    @property
    def total_weight(self) -> float:
        return float(self._exact_total())

    def _exact_total(self) -> Fraction:
        # Exact arithmetic throughout (see WeightedCountQuorum): the quorum
        # bar and the subset-sum below compare against strict inequalities,
        # where float rounding flips borderline-exact configurations.
        return sum((Fraction(weight) for _, weight in self.weights),
                   start=Fraction(0))

    def _max_tolerated_weight(self) -> Fraction:
        """Heaviest achievable fault set: max subset weight within the budget."""
        budget = Fraction(self.fault_budget)
        achievable = [Fraction(0)]
        for _, weight in self.weights:
            achievable += [total + Fraction(weight) for total in achievable
                           if total + Fraction(weight) <= budget]
        return max(achievable)

    def quorum(self) -> WeightedCountQuorum:
        return WeightedCountQuorum(
            weights=self.weights,
            threshold_weight=(self._exact_total() + Fraction(self.fault_budget)) / 2)

    def certificate(self) -> WeightedCountQuorum:
        return WeightedCountQuorum(weights=self.weights,
                                   threshold_weight=Fraction(self.fault_budget))

    def validate(self) -> None:
        names = [name for name, _ in self.weights]
        if len(names) != len(set(names)):
            raise ValueError("a provider carries two weights")
        if set(names) != set(self.universe) or len(self.universe) != len(set(self.universe)):
            raise ValueError("the weight table must cover the universe exactly")
        if any(weight <= 0 for _, weight in self.weights):
            raise ValueError("provider weights must be positive")
        if self.fault_budget < 0:
            raise ValueError("the fault budget must be non-negative")
        total = self._exact_total()
        budget = Fraction(self.fault_budget)
        if budget >= total:
            raise ValueError("the fault budget must be below the total weight")
        # Availability: the providers surviving the heaviest tolerated fault
        # set must still clear the quorum bar.  With budget B achievable
        # exactly this is B < W/3; an unachievable budget may be laxer.
        surviving = total - self._max_tolerated_weight()
        if surviving <= (total + budget) / 2:
            raise ValueError(
                f"weighted quorum system is unavailable: after a worst-case "
                f"fault set only weight {float(surviving):g} of "
                f"{float(total):g} survives, below the quorum bar "
                f"{float((total + budget) / 2):g} "
                f"(the fault budget {self.fault_budget:g} must stay below a "
                f"third of the total weight)")


@dataclass(frozen=True)
class ExplicitQuorumSystem(QuorumSystem):
    """Asymmetric quorum slices: an explicit quorum list plus a fail-prone system.

    ``quorums`` lists the commit sets; ``fault_sets`` lists the provider sets
    that may jointly misbehave (the fail-prone system ``B`` of Malkhi-Reiter).
    Validity is checked directly against the masking/dissemination conditions:

    * **consistency** — for all quorums ``Q1, Q2`` and every fault set ``F``,
      ``(Q1 ∩ Q2) − F ≠ ∅`` (some correct provider witnesses both);
    * **availability** — for every fault set ``F`` some quorum avoids ``F``
      entirely.
    """

    universe: tuple[str, ...]
    quorums: tuple[tuple[str, ...], ...]
    fault_sets: tuple[tuple[str, ...], ...] = ()
    mode: str = "explicit"

    def _quorum_sets(self) -> tuple[frozenset[str], ...]:
        return tuple(frozenset(q) for q in self.quorums)

    def _fault_set_sets(self) -> tuple[frozenset[str], ...]:
        return tuple(frozenset(f) for f in self.fault_sets)

    def quorum(self) -> SubsetQuorum:
        return SubsetQuorum(self._quorum_sets())

    def certificate(self) -> SurvivorQuorum:
        return SurvivorQuorum(self._fault_set_sets())

    def validate(self) -> None:
        if len(self.universe) != len(set(self.universe)):
            raise ValueError("the quorum universe lists a provider twice")
        members = set(self.universe)
        quorums = self._quorum_sets()
        faults = self._fault_set_sets() or (frozenset(),)
        if not quorums:
            raise ValueError("an explicit quorum system needs at least one quorum")
        for quorum in quorums:
            if not quorum:
                raise ValueError("an explicit quorum may not be empty")
            if not quorum <= members:
                raise ValueError(
                    f"quorum {sorted(quorum)} names providers outside the universe")
        for fault_set in faults:
            if not fault_set <= members:
                raise ValueError(
                    f"fault set {sorted(fault_set)} names providers outside the universe")
        for first, second in itertools.combinations_with_replacement(quorums, 2):
            for fault_set in faults:
                if not (first & second) - fault_set:
                    raise ValueError(
                        f"quorums {sorted(first)} and {sorted(second)} may "
                        f"intersect entirely inside fault set "
                        f"{sorted(fault_set)}: a faulty provider could serve "
                        f"two readers different histories")
        for fault_set in faults:
            if not any(not (quorum & fault_set) for quorum in quorums):
                raise ValueError(
                    f"no quorum survives fault set {sorted(fault_set)}: the "
                    f"system is unavailable under a tolerated failure")
