"""Quorum dispatch engine: parallel cloud requests on the simulated timeline.

Every multi-cloud operation of the DepSky protocols — metadata reads, block
puts with preferred-quorum spill-over, two-phase block fetches, deletes, ACL
updates — is a *quorum call*: dispatch one request per cloud in parallel and
return when the *m*-th **successful** response lands.  This module models that
call shape once, instead of each call site hand-rolling a latency list:

* each request's latency is sampled at dispatch (the moment its stage starts
  on the virtual timeline), so a stage dispatched later starts later;
* failures consume time but never occupy quorum slots: the call completes at
  the *m*-th success, not the *m*-th response;
* requests honour a per-request ``timeout`` and a bounded number of
  ``retries`` (each retry re-invokes the request at the time the previous
  attempt resolved);
* *staged fallback*: a call may declare fallback stages (e.g. the parity
  clouds of a preferred-quorum read).  A stage is dispatched only when the
  rounds before it cannot satisfy the quorum, at the time the triggering
  round *ended* (its last request resolved) — fallback work is never free;
* *hedging*: with ``hedge_delay`` set, the next stage is dispatched early —
  ``hedge_delay`` after the current stage started — whenever the quorum has
  not been reached by then, which lets backup requests beat a degraded
  straggler without waiting for it to fail or time out;
* *health-aware planning*: with a :class:`~repro.clouds.health.CloudHealthTracker`
  attached, suspected clouds are demoted out of their stage (fallback requests
  are promoted in their place) and come back only as *background probes* that
  never gate the call, DEGRADED stragglers trigger proactive hedging even
  without an explicit ``hedge_delay``, and every resolved request is fed back
  into the tracker.

The engine runs entirely on the virtual timeline: request side effects
(``send``) execute immediately against the simulated stores, while the
*charged* time is derived from the sampled latencies.  Callers advance the
simulated clock by :attr:`QuorumCallStats.charged` once the call resolves.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.common.errors import AccessDeniedError, CloudError, ObjectNotFoundError
from repro.clouds.quorums import as_quorum

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.clouds.health import CloudHealthTracker

#: CloudError subclasses that are *authoritative answers*, not provider faults:
#: the provider was reachable and responded (the key does not exist, the caller
#: lacks permission).  They fail the quorum slot but prove liveness, so health
#: tracking must not count them towards suspicion.
BENIGN_ERRORS = (ObjectNotFoundError, AccessDeniedError)


class RequestStatus(enum.Enum):
    """Final state of one dispatched request."""

    #: Successful response, part of the winning quorum.
    OK = "ok"
    #: Successful response that landed after the quorum was already complete.
    LATE = "late"
    #: Every attempt raised a :class:`~repro.common.errors.CloudError`.
    FAILED = "failed"
    #: Every attempt exceeded the per-request timeout and was abandoned.
    TIMED_OUT = "timed-out"


@dataclass(frozen=True)
class QuorumRequest:
    """One per-cloud request of a quorum call.

    ``send`` performs the request against the simulated store and returns its
    value, raising :class:`~repro.common.errors.CloudError` (or a subclass,
    e.g. an integrity failure) when the response must not count towards the
    quorum.  ``latency`` samples the wall time of one attempt given the value
    ``send`` returned (``None`` for a failed attempt, whose latency typically
    has no payload term).

    ``prepare``, when set, is invoked exactly once per request, at the moment
    the engine dispatches it — before the first ``send`` attempt.  It lets a
    caller defer expensive payload materialisation (e.g. assembling a block
    blob from the streaming encoder's buffers) to dispatch time: requests of
    a fallback stage that is never dispatched never pay the cost, and unlike
    work hidden inside ``send`` it is not repeated on retries.
    """

    cloud: str
    send: Callable[[], Any]
    latency: Callable[[Any | None], float]
    prepare: Callable[[], None] | None = None
    #: True for requests with server-side effects (PUT/DELETE/ACL).  Health
    #: planning never *skips* a mutating request of a suspected cloud — it is
    #: dispatched in the background instead, so a version written during a
    #: suspicion still reaches the provider whenever the provider permits
    #: (replication must not silently shrink on the say-so of a suspicion).
    mutating: bool = False


@dataclass(frozen=True)
class DispatchPolicy:
    """Per-call knobs of the dispatch engine.

    Attributes
    ----------
    timeout:
        Abandon any single attempt whose sampled latency exceeds this many
        seconds (the attempt resolves as a timeout exactly ``timeout`` seconds
        after dispatch).  ``None`` waits indefinitely.
    retries:
        Extra attempts after a failed or timed-out one; each retry re-invokes
        ``send`` and re-samples the latency at the previous attempt's
        resolution time.
    hedge_delay:
        Dispatch the next fallback stage this many seconds after the current
        stage started whenever the quorum has not been reached by then
        (straggler mitigation).  ``None`` disables hedging: fallback stages
        are dispatched only when the preceding rounds cannot reach quorum.
    """

    timeout: float | None = None
    retries: int = 0
    hedge_delay: float | None = None


#: The default policy: no timeouts, no retries, no hedging.
DEFAULT_POLICY = DispatchPolicy()


@dataclass
class RequestTrace:
    """Outcome of one request: when it was dispatched, when and how it resolved."""

    cloud: str
    stage: int
    dispatched_at: float
    resolved_at: float
    status: RequestStatus
    attempts: int = 1
    hedged: bool = False
    #: Dispatched as a background probe of a suspected cloud: runs concurrently
    #: with stage 0 but never gates the call's charged latency.
    probe: bool = False
    #: FAILED with an authoritative answer (not-found / access-denied): the
    #: provider is alive, so health tracking treats this as a contact success.
    benign: bool = False
    value: Any = field(default=None, repr=False)

    @property
    def succeeded(self) -> bool:
        """True for any successful response, winning or late."""
        return self.status in (RequestStatus.OK, RequestStatus.LATE)


@dataclass
class QuorumCallStats:
    """Everything a caller (or a benchmark report) wants to know about one call."""

    required: int
    #: Time from call start to the ``required``-th success; ``None`` when the
    #: quorum was never reached.
    elapsed: float | None
    #: Time at which the call gave up: every dispatched request resolved.
    gave_up_at: float
    traces: list[RequestTrace]
    #: Dispatch time of each stage that actually ran (stage 0 is always 0.0).
    stage_started_at: tuple[float, ...]
    #: Per dispatched stage: seconds from its dispatch to its last resolution.
    stage_waits: tuple[float, ...]
    #: The winning quorum, in completion order.
    winners: tuple[RequestTrace, ...]
    #: Number of requests dispatched as hedges (early fallback stages).
    hedged: int = 0
    #: Number of background probes dispatched at suspected clouds.
    probes: int = 0
    #: Clouds demoted out of their planned stage by the health tracker.
    demoted: tuple[str, ...] = ()

    @property
    def charged(self) -> float:
        """Simulated seconds the caller should charge for this call."""
        return self.elapsed if self.elapsed is not None else self.gave_up_at

    @property
    def reached(self) -> bool:
        """True when the quorum was satisfied."""
        return self.elapsed is not None

    @property
    def successes(self) -> list[RequestTrace]:
        """Every successful response (winners and late arrivals)."""
        return [t for t in self.traces if t.succeeded]

    @property
    def winner_clouds(self) -> tuple[str, ...]:
        """Names of the clouds forming the winning quorum, completion order."""
        return tuple(t.cloud for t in self.winners)

    @property
    def preferred_hit(self) -> bool:
        """True when the whole winning quorum came from stage 0."""
        return self.reached and all(t.stage == 0 for t in self.winners)

    @property
    def fallback_dispatched(self) -> bool:
        """True when any stage beyond the first was dispatched."""
        return len(self.stage_started_at) > 1


class QuorumCall:
    """Builder/executor for one staged parallel quorum call.

    ``health`` attaches a :class:`~repro.clouds.health.CloudHealthTracker`:
    the call is re-planned around its suspect list before dispatch and every
    resolved request is fed back into it.  ``now`` is the absolute simulated
    time at which the call starts (the engine's internal timeline is
    call-relative) — it anchors probe windows and trace ingestion.
    """

    def __init__(self, policy: DispatchPolicy | None = None,
                 health: "CloudHealthTracker | None" = None, now: float = 0.0):
        self.policy = policy or DEFAULT_POLICY
        self.health = health
        self.now = now
        self._stages: list[list[QuorumRequest]] = []

    def stage(self, requests: Sequence[QuorumRequest]) -> "QuorumCall":
        """Append one dispatch round (stage 0 is primary, later ones fallback)."""
        self._stages.append(list(requests))
        return self

    # ------------------------------------------------------------------ core

    def _resolve(self, request: QuorumRequest, stage: int, start: float,
                 hedged: bool, probe: bool = False) -> RequestTrace:
        """Run one request (with retries) and place its resolution on the timeline."""
        policy = self.policy
        now = start
        attempts = 0
        status = RequestStatus.FAILED
        value: Any = None
        benign = False
        if request.prepare is not None:
            request.prepare()
        while attempts <= policy.retries:
            attempts += 1
            try:
                result = request.send()
                ok = True
                benign = False
            except CloudError as exc:
                result = None
                ok = False
                benign = isinstance(exc, BENIGN_ERRORS)
            latency = max(0.0, request.latency(result))
            if policy.timeout is not None and latency > policy.timeout:
                # The response would arrive, but the client abandons the
                # attempt at the deadline (the side effect may still have
                # happened server-side, as with a real slow PUT).
                now += policy.timeout
                status = RequestStatus.TIMED_OUT
                ok = False
                benign = False
            else:
                now += latency
                status = RequestStatus.OK if ok else RequestStatus.FAILED
            if ok:
                value = result
                break
        return RequestTrace(cloud=request.cloud, stage=stage, dispatched_at=start,
                            resolved_at=now, status=status, attempts=attempts,
                            hedged=hedged, probe=probe, benign=benign, value=value)

    @staticmethod
    def _ordered_successes(traces: list[RequestTrace]) -> list[RequestTrace]:
        return sorted((t for t in traces if t.status is RequestStatus.OK),
                      key=lambda t: (t.resolved_at, t.dispatched_at))

    @classmethod
    def _satisfying_prefix(cls, traces: list[RequestTrace],
                           quorum) -> list[RequestTrace] | None:
        """Shortest success prefix (in resolution order) satisfying ``quorum``.

        The predicate is monotone, so the first prefix that satisfies it marks
        the instant the call completes.  For a :class:`~repro.clouds.quorums.
        CountQuorum` this is exactly the legacy m-th-success semantics.
        """
        ordered = cls._ordered_successes(traces)
        responders: list[str] = []
        for count, trace in enumerate(ordered, start=1):
            responders.append(trace.cloud)
            if quorum.satisfied_by(responders):
                return ordered[:count]
        return None

    @classmethod
    def _quorum_time(cls, traces: list[RequestTrace], quorum) -> float | None:
        prefix = cls._satisfying_prefix(traces, quorum)
        return prefix[-1].resolved_at if prefix is not None else None

    def execute(self, required) -> QuorumCallStats:
        """Dispatch the stages and return the call's statistics.

        ``required`` is either the classic response count (a bare ``int``) or
        any quorum predicate from :mod:`repro.clouds.quorums` — the call then
        completes when the set of successful responders *satisfies* the
        predicate, not at a fixed m-th success.

        Never raises on quorum failure — callers inspect
        :attr:`QuorumCallStats.reached` and raise their protocol-level error
        (typically :class:`~repro.common.errors.QuorumNotReachedError`).
        """
        quorum = as_quorum(required)
        if quorum.min_size <= 0:
            raise ValueError("a quorum call needs required >= 1")
        if not self._stages or not self._stages[0]:
            raise ValueError("a quorum call needs at least one non-empty stage")
        policy = self.policy
        stages: list[list[QuorumRequest]] = self._stages
        probe_requests: list[QuorumRequest] = []
        demoted: tuple[str, ...] = ()
        if self.health is not None:
            planned = self.health.plan(stages, quorum, self.now)
            stages, probe_requests, demoted = planned.stages, planned.probes, planned.demoted

        traces: list[RequestTrace] = []
        stage_starts: list[float] = []
        hedged_count = 0
        # Background probes of suspected clouds: dispatched at the call's start,
        # concurrently with stage 0.  Their successes may still win quorum
        # slots (the cloud recovered), but they never gate the charged wait.
        for request in probe_requests:
            traces.append(self._resolve(request, len(stages), 0.0, False, probe=True))

        for index, requests in enumerate(stages):
            if index == 0:
                start, hedged = 0.0, False
            else:
                quorum_at = self._quorum_time(traces, quorum)
                round_end = max(t.resolved_at for t in traces if not t.probe)
                start, hedged = None, False
                if quorum_at is None:
                    # The previous rounds cannot satisfy the quorum: dispatch
                    # the fallback at the end of the round that triggered it.
                    start = round_end
                hedge_delay = policy.hedge_delay
                if hedge_delay is None and self.health is not None:
                    # Proactive hedging: a DEGRADED straggler in the previous
                    # stage supplies an automatic hedge delay.
                    hedge_delay = self.health.auto_hedge_delay(
                        [r.cloud for r in stages[index - 1]]
                    )
                if hedge_delay is not None:
                    hedge_at = stage_starts[-1] + hedge_delay
                    if (quorum_at is None or quorum_at > hedge_at) and (
                            start is None or hedge_at < start):
                        start, hedged = hedge_at, True
                if start is None:
                    break  # quorum reached fast enough: stage never dispatched
            stage_starts.append(start)
            for request in requests:
                traces.append(self._resolve(request, index, start, hedged))
            if hedged:
                hedged_count += len(requests)

        prefix = self._satisfying_prefix(traces, quorum)
        elapsed: float | None = None
        winners: tuple[RequestTrace, ...] = ()
        if prefix is not None:
            elapsed = prefix[-1].resolved_at
            winners = tuple(prefix)
            for trace in self._ordered_successes(traces)[len(prefix):]:
                trace.status = RequestStatus.LATE
        # A dead cloud's probe must not inflate the time a failed call charges.
        gave_up_at = max((t.resolved_at for t in traces if not t.probe),
                         default=max(t.resolved_at for t in traces))
        stage_waits = tuple(
            max((t.resolved_at for t in traces if t.stage == s and not t.probe),
                default=start) - start
            for s, start in enumerate(stage_starts)
        )
        if self.health is not None:
            for trace in traces:
                self.health.record_trace(trace, self.now)
        return QuorumCallStats(
            required=quorum.min_size, elapsed=elapsed, gave_up_at=gave_up_at,
            traces=traces, stage_started_at=tuple(stage_starts),
            stage_waits=stage_waits, winners=winners, hedged=hedged_count,
            probes=len(probe_requests), demoted=demoted,
        )


def dispatch_quorum(stages: Sequence[Sequence[QuorumRequest]], required,
                    policy: DispatchPolicy | None = None,
                    health: "CloudHealthTracker | None" = None,
                    now: float = 0.0) -> QuorumCallStats:
    """Convenience wrapper: build a :class:`QuorumCall` from ``stages`` and run it.

    ``required`` is a response count or any :mod:`repro.clouds.quorums`
    predicate (see :meth:`QuorumCall.execute`).
    """
    call = QuorumCall(policy, health=health, now=now)
    for requests in stages:
        call.stage(requests)
    return call.execute(required)


class InstantCoalescer:
    """Coalesce identical read quorum calls issued in the same virtual instant.

    At scale, many logical operations resolve at the *same* point of the
    virtual timeline (uncharged background work, several agents woken by
    equal-timestamp events, the read-modify-write sequence inside one op).
    Re-dispatching an identical read quorum — same key, same principal, no
    intervening mutation — within one instant models nothing: the simulated
    stores cannot have changed, so the second call would return byte-identical
    responses and charge a wait the first call already paid.  The coalescer
    absorbs such repeats into the first call's in-flight result.

    The cache is valid for exactly one ``(virtual instant, mutation
    generation)`` window: it is cleared whenever the simulated clock moves
    *and* whenever :meth:`invalidate` reports a mutation (any mutating quorum
    call, or a fault-injection step that changes what the clouds serve).
    Entries are keyed by the caller (so a cached agreement never crosses an
    access-control boundary) plus the cloud key.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        #: Monotonic mutation counter; bumped by :meth:`invalidate`.
        self.generation = 0
        #: Coalesced (absorbed) lookups / lookups that dispatched a real call.
        self.hits = 0
        self.misses = 0
        self._stamp: float | None = None
        self._cache: dict[Any, Any] = {}

    def _window(self) -> None:
        """Drop every entry from a previous instant (the clock moved)."""
        now = self.sim.now()
        if now != self._stamp:
            self._stamp = now
            if self._cache:
                self._cache.clear()

    def invalidate(self) -> None:
        """The simulated world changed: nothing cached may be served again."""
        self.generation += 1
        self._cache.clear()

    def lookup(self, key: Any) -> Any | None:
        """The value stored for ``key`` this instant, or ``None`` on a miss."""
        self._window()
        value = self._cache.get(key)
        if value is None:
            self.misses += 1
            return None
        self.hits += 1
        return value

    def store(self, key: Any, value: Any) -> None:
        """Publish one resolved call's result for the rest of this instant."""
        self._window()
        self._cache[key] = value

    @staticmethod
    def absorbed(required: int) -> QuorumCallStats:
        """Zero-cost statistics of a coalesced call.

        The absorbed call rode on a quorum that already resolved at this
        instant, so it reaches its quorum immediately (``elapsed = 0``) and
        dispatches no requests of its own.
        """
        return QuorumCallStats(
            required=required, elapsed=0.0, gave_up_at=0.0, traces=[],
            stage_started_at=(0.0,), stage_waits=(0.0,), winners=(),
        )
