"""Simulated cloud object-storage providers.

SCFS only assumes that a storage cloud offers on-demand object storage with
basic access-control lists and (at least) eventual consistency (§2.1,
*service-agnosticism*).  This package provides exactly that abstraction:

* :class:`~repro.clouds.object_store.ObjectStore` — the provider-agnostic
  interface (put/get/delete/list + per-object ACLs);
* :class:`~repro.clouds.eventual.EventuallyConsistentStore` — an in-memory
  implementation with a configurable visibility (propagation) delay, latency
  charging against the simulated clock, fault injection and cost accounting;
* :mod:`~repro.clouds.providers` — named profiles (Amazon S3, Google Cloud
  Storage, Windows Azure, Rackspace) with the latency and pricing figures
  used in the paper's evaluation, plus the VM rental prices needed to
  reproduce Figure 11(a);
* :class:`~repro.clouds.accounting.CostTracker` — accumulates request,
  traffic and storage charges so the benchmarks can regenerate Figure 11;
* :mod:`~repro.clouds.dispatch` — the quorum dispatch engine modelling truly
  parallel per-cloud requests (staged fallback, timeouts, retries, hedging)
  on the simulated timeline, used by the DepSky client for every
  multi-cloud operation;
* :mod:`~repro.clouds.health` — per-cloud health tracking (suspect lists with
  exponential-backoff probe windows, straggler detection) feeding the
  dispatch engine's request planning.
"""

from repro.clouds.object_store import ObjectStore, ObjectVersion, ObjectListing
from repro.clouds.dispatch import (
    DispatchPolicy,
    QuorumCall,
    QuorumCallStats,
    QuorumRequest,
    RequestStatus,
)
from repro.clouds.health import (
    CloudHealth,
    CloudHealthTracker,
    CloudStatus,
    HealthStats,
    SuspicionPolicy,
)
from repro.clouds.eventual import EventuallyConsistentStore
from repro.clouds.access_control import ObjectACL
from repro.clouds.pricing import StoragePricing, ComputePricing
from repro.clouds.accounting import CostTracker, UsageBreakdown
from repro.clouds.providers import (
    PROVIDER_PROFILES,
    COMPUTE_PRICING,
    ProviderProfile,
    make_provider,
    make_cloud_of_clouds,
)

__all__ = [
    "ObjectStore",
    "ObjectVersion",
    "ObjectListing",
    "DispatchPolicy",
    "QuorumCall",
    "QuorumCallStats",
    "QuorumRequest",
    "RequestStatus",
    "CloudHealth",
    "CloudHealthTracker",
    "CloudStatus",
    "HealthStats",
    "SuspicionPolicy",
    "EventuallyConsistentStore",
    "ObjectACL",
    "StoragePricing",
    "ComputePricing",
    "CostTracker",
    "UsageBreakdown",
    "PROVIDER_PROFILES",
    "COMPUTE_PRICING",
    "ProviderProfile",
    "make_provider",
    "make_cloud_of_clouds",
]
