"""Usage and cost accounting for simulated cloud providers.

Each simulated provider owns a :class:`CostTracker`; every request records its
kind and payload so that the Figure 11 benchmarks can report per-operation and
per-file-per-day costs without re-deriving them from provider internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clouds.pricing import StoragePricing


@dataclass
class UsageBreakdown:
    """Raw usage counters accumulated by a :class:`CostTracker`."""

    put_requests: int = 0
    get_requests: int = 0
    delete_requests: int = 0
    list_requests: int = 0
    bytes_in: int = 0
    bytes_out: int = 0
    byte_seconds_stored: float = 0.0

    def merge(self, other: "UsageBreakdown") -> "UsageBreakdown":
        """Return the element-wise sum of two breakdowns."""
        return UsageBreakdown(
            put_requests=self.put_requests + other.put_requests,
            get_requests=self.get_requests + other.get_requests,
            delete_requests=self.delete_requests + other.delete_requests,
            list_requests=self.list_requests + other.list_requests,
            bytes_in=self.bytes_in + other.bytes_in,
            bytes_out=self.bytes_out + other.bytes_out,
            byte_seconds_stored=self.byte_seconds_stored + other.byte_seconds_stored,
        )


@dataclass
class CostTracker:
    """Accumulates usage of one provider and prices it with its pricing table."""

    pricing: StoragePricing = field(default_factory=StoragePricing)
    usage: UsageBreakdown = field(default_factory=UsageBreakdown)

    # -- recording ----------------------------------------------------------

    def record_put(self, payload_bytes: int) -> None:
        """Record one PUT request uploading ``payload_bytes``."""
        self.usage.put_requests += 1
        self.usage.bytes_in += payload_bytes

    def record_get(self, payload_bytes: int) -> None:
        """Record one GET request downloading ``payload_bytes``."""
        self.usage.get_requests += 1
        self.usage.bytes_out += payload_bytes

    def record_delete(self) -> None:
        """Record one DELETE request."""
        self.usage.delete_requests += 1

    def record_list(self) -> None:
        """Record one LIST request."""
        self.usage.list_requests += 1

    def record_storage(self, payload_bytes: int, seconds: float) -> None:
        """Record ``payload_bytes`` being stored for ``seconds`` of simulated time."""
        self.usage.byte_seconds_stored += payload_bytes * seconds

    # -- pricing ------------------------------------------------------------

    def request_cost(self) -> float:
        """Dollar cost of all recorded requests (excluding traffic and storage)."""
        u, p = self.usage, self.pricing
        return (
            u.put_requests * p.put_request
            + u.get_requests * p.get_request
            + u.delete_requests * p.delete_request
            + u.list_requests * p.list_request
        )

    def traffic_cost(self) -> float:
        """Dollar cost of all recorded inbound and outbound traffic."""
        return self.pricing.outbound_cost(self.usage.bytes_out) + self.pricing.inbound_cost(
            self.usage.bytes_in
        )

    def storage_cost(self) -> float:
        """Dollar cost of all recorded storage (byte-seconds)."""
        return self.pricing.storage_cost(1, self.usage.byte_seconds_stored)

    def total_cost(self) -> float:
        """Total dollar cost recorded so far."""
        return self.request_cost() + self.traffic_cost() + self.storage_cost()

    def snapshot(self) -> UsageBreakdown:
        """Return a copy of the current usage counters."""
        return UsageBreakdown(**vars(self.usage))

    def reset(self) -> None:
        """Zero all usage counters (pricing is preserved)."""
        self.usage = UsageBreakdown()
