"""Per-cloud health tracking: suspect lists, probe windows and straggler flags.

SCFS assumes that individual clouds crash, gray-fail and lag.  Without client
state about *which* provider is misbehaving, every quorum call re-probes every
cloud: a downed provider costs a failed round trip — or, worse, a full
per-request timeout — on every single operation, forever.  This module makes
provider health first-class client state, in the spirit of accrual failure
detectors and the suspect lists of generalized Byzantine quorum systems.

Suspicion model
---------------
A :class:`CloudHealthTracker` ingests the
:class:`~repro.clouds.dispatch.RequestTrace` of every request the dispatch
engine resolves (DepSky feeds it all of its quorum calls) and keeps one
:class:`CloudHealth` record per provider:

* **suspect** — ``threshold`` *consecutive* failures or timeouts move a cloud
  to :attr:`CloudStatus.SUSPECTED`.  Only *provider faults* count:
  authoritative answers (not-found, access-denied — ``trace.benign``) prove
  liveness and clear the failure streak, so reading absent keys or polling a
  not-yet-visible version never suspects a healthy provider.  Suspected
  clouds are *demoted* out of the primary dispatch stage by
  :meth:`CloudHealthTracker.plan`: the engine promotes fallback clouds in
  their place, so quorum calls stop paying the dead provider's timeout tax.
  Demotion is conservative — when too few unsuspected clouds remain to
  satisfy the quorum, the plan reverts to the original stages rather than
  fail the call outright, and *mutating* requests (PUT/DELETE/ACL) are never
  skipped: they are dispatched in the background instead, so replication
  never silently shrinks on the say-so of a suspicion.
* **probe** — a suspected cloud is not retried on the hot path.  Instead,
  once its *probe window* elapses, its request is dispatched as a background
  probe: it runs concurrently with stage 0 but never gates the call's charged
  latency.  Each failed probe widens the window exponentially
  (``probe_backoff * probe_backoff_factor^i``, capped at
  ``probe_backoff_max``), so a long outage converges to a trickle of probes.
* **recover** — any successful response (probe or regular request) clears the
  suspicion immediately: the cloud rejoins the primary stage on the next call.
* **degraded** — an exponentially weighted moving average of per-request
  latency is kept per cloud.  A cloud whose EWMA exceeds
  ``degraded_factor`` times the median of its peers is flagged
  :attr:`CloudStatus.DEGRADED` (a gray failure: it answers, slowly).  When a
  degraded cloud sits in a dispatched stage and the policy sets no explicit
  ``hedge_delay``, the tracker supplies an automatic one
  (``hedge_multiple`` times the healthy median EWMA) so backup requests are
  hedged proactively instead of waiting out the straggler.

Knobs
-----
All knobs live in :class:`SuspicionPolicy`; the config layer
(:class:`repro.core.config.DispatchPolicyConfig`) exposes them per agent so
benchmarks and Table 2 variants enable health tracking from configuration
alone.  ``threshold`` trades detection speed against false suspicion under
jitter; ``probe_backoff``/``probe_backoff_factor``/``probe_backoff_max``
bound how stale a suspicion can get (and therefore the worst-case recovery
lag after an outage ends); ``degraded_factor`` and ``hedge_multiple`` govern
the straggler path.
"""

from __future__ import annotations

import enum
import logging
import statistics
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.clouds.quorums import as_quorum, minimal_quorums

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.clouds.dispatch import QuorumRequest, RequestTrace

logger = logging.getLogger(__name__)


class CloudStatus(enum.Enum):
    """Externally visible health classification of one provider."""

    #: No evidence of misbehaviour.
    HEALTHY = "healthy"
    #: Answering, but much slower than its peers (gray failure / straggler).
    DEGRADED = "degraded"
    #: Consecutive failures/timeouts crossed the threshold; demoted from the
    #: primary stage until a background probe succeeds.
    SUSPECTED = "suspected"


@dataclass(frozen=True)
class SuspicionPolicy:
    """Knobs of the suspicion model (see the module docstring)."""

    #: Consecutive failures or timeouts that turn a cloud SUSPECTED.
    threshold: int = 3
    #: First probe window in simulated seconds after a suspicion.
    probe_backoff: float = 10.0
    #: Multiplier applied to the probe window after each failed probe.
    probe_backoff_factor: float = 2.0
    #: Upper bound of the probe window (keeps recovery lag bounded).
    probe_backoff_max: float = 300.0
    #: A cloud whose latency EWMA exceeds this multiple of the peer median is
    #: flagged DEGRADED.
    degraded_factor: float = 3.0
    #: Weight of the newest sample in the latency EWMA.
    ewma_alpha: float = 0.3
    #: Samples required before the EWMA participates in degradation checks.
    min_samples: int = 4
    #: Automatic hedge delay for stages containing a DEGRADED cloud, as a
    #: multiple of the healthy peers' median EWMA (used only when the dispatch
    #: policy sets no explicit ``hedge_delay``).
    hedge_multiple: float = 2.0

    def validate(self) -> None:
        """Raise :class:`ValueError` on nonsensical knob combinations."""
        if self.threshold < 1:
            raise ValueError("the suspicion threshold must be at least 1")
        if self.probe_backoff <= 0:
            raise ValueError("the probe backoff must be positive")
        if self.probe_backoff_factor < 1.0:
            raise ValueError("the probe backoff factor must be >= 1")
        if self.probe_backoff_max < self.probe_backoff:
            raise ValueError("the probe backoff cap must be >= the initial backoff")
        if self.degraded_factor <= 1.0:
            raise ValueError("the degradation factor must exceed 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("the EWMA weight must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if self.hedge_multiple <= 0:
            raise ValueError("the hedge multiple must be positive")


@dataclass
class CloudHealth:
    """Mutable health record of one provider."""

    cloud: str
    status: CloudStatus = CloudStatus.HEALTHY
    consecutive_failures: int = 0
    #: Simulated time the current suspicion started (None when not suspected).
    suspected_at: float | None = None
    #: Next simulated time a background probe may be dispatched.
    probe_at: float | None = None
    #: Current probe window width (grows exponentially while probes fail).
    probe_interval: float = 0.0
    #: Latency EWMA over successful responses (None before the first sample).
    ewma_latency: float | None = None
    samples: int = 0
    #: Lifetime counters of this cloud (suspicions entered / recoveries).
    suspicions: int = 0
    recoveries: int = 0


@dataclass
class HealthStats:
    """Aggregate counters of one tracker, for reports and benchmarks."""

    suspicions: int = 0
    recoveries: int = 0
    probes: int = 0
    #: Requests demoted out of their planned stage because of a suspicion.
    demoted_requests: int = 0
    #: Demoted requests that were skipped entirely (probe window not yet due).
    skipped_requests: int = 0
    #: Plans reverted to their original stages because demoting the suspects
    #: would have left the quorum unsatisfiable (the conservative path).
    conservative_reverts: int = 0
    suspected_now: tuple[str, ...] = ()
    degraded_now: tuple[str, ...] = ()

    def merge(self, other: "HealthStats") -> "HealthStats":
        """Element-wise sum of two snapshots (aggregation across agents)."""
        return HealthStats(
            suspicions=self.suspicions + other.suspicions,
            recoveries=self.recoveries + other.recoveries,
            probes=self.probes + other.probes,
            demoted_requests=self.demoted_requests + other.demoted_requests,
            skipped_requests=self.skipped_requests + other.skipped_requests,
            conservative_reverts=self.conservative_reverts + other.conservative_reverts,
            suspected_now=tuple(dict.fromkeys(self.suspected_now + other.suspected_now)),
            degraded_now=tuple(dict.fromkeys(self.degraded_now + other.degraded_now)),
        )


@dataclass
class PlannedStages:
    """Result of health-aware request planning for one quorum call."""

    stages: list[list["QuorumRequest"]]
    #: Requests of suspected clouds whose probe window is due: dispatched as
    #: background probes (concurrent with stage 0, never gating the call).
    probes: list["QuorumRequest"] = field(default_factory=list)
    #: Clouds demoted out of their planned stage this call.
    demoted: tuple[str, ...] = ()
    #: True when the plan fell back to the original stages because demotion
    #: would have made the quorum unsatisfiable (conservative revert).
    reverted: bool = False


class CloudHealthTracker:
    """Per-client tracker turning request traces into dispatch planning."""

    def __init__(self, policy: SuspicionPolicy | None = None):
        self.policy = policy or SuspicionPolicy()
        self.policy.validate()
        self._clouds: dict[str, CloudHealth] = {}
        self.suspicions = 0
        self.recoveries = 0
        self.probes = 0
        self.demoted_requests = 0
        self.skipped_requests = 0
        self.conservative_reverts = 0
        #: Optional observer of suspect-list transitions, invoked as
        #: ``on_transition(cloud, state, now)`` with state ``"suspected"`` or
        #: ``"recovered"`` (the scenario engine records these in its trace).
        self.on_transition = None

    # ------------------------------------------------------------- inspection

    def health(self, cloud: str) -> CloudHealth:
        """The (lazily created) health record of ``cloud``."""
        record = self._clouds.get(cloud)
        if record is None:
            record = self._clouds[cloud] = CloudHealth(cloud=cloud)
        return record

    def is_suspected(self, cloud: str) -> bool:
        """True while ``cloud`` sits on the suspect list."""
        record = self._clouds.get(cloud)
        return record is not None and record.status is CloudStatus.SUSPECTED

    def probe_due(self, cloud: str, now: float) -> bool:
        """True when a suspected cloud's probe window has elapsed."""
        record = self._clouds.get(cloud)
        return (
            record is not None
            and record.status is CloudStatus.SUSPECTED
            and record.probe_at is not None
            and now >= record.probe_at
        )

    def _peer_median(self, cloud: str) -> float | None:
        peers = [
            r.ewma_latency for r in self._clouds.values()
            if r.cloud != cloud
            and r.status is not CloudStatus.SUSPECTED
            and r.ewma_latency is not None
            and r.samples >= self.policy.min_samples
        ]
        return statistics.median(peers) if peers else None

    def is_degraded(self, cloud: str) -> bool:
        """True when ``cloud`` answers but lags far behind its peers."""
        record = self._clouds.get(cloud)
        if (
            record is None
            or record.status is CloudStatus.SUSPECTED
            or record.ewma_latency is None
            or record.samples < self.policy.min_samples
        ):
            return False
        median = self._peer_median(cloud)
        return median is not None and record.ewma_latency > self.policy.degraded_factor * median

    def status(self, cloud: str) -> CloudStatus:
        """Current classification of ``cloud`` (degradation checked lazily)."""
        record = self._clouds.get(cloud)
        if record is None:
            return CloudStatus.HEALTHY
        if record.status is CloudStatus.SUSPECTED:
            return CloudStatus.SUSPECTED
        return CloudStatus.DEGRADED if self.is_degraded(cloud) else CloudStatus.HEALTHY

    def auto_hedge_delay(self, clouds: Sequence[str]) -> float | None:
        """Hedge delay for a stage containing a DEGRADED cloud, else ``None``.

        Derived from the healthy peers' median EWMA so the hedge fires shortly
        after a healthy response *should* have arrived.
        """
        degraded = [c for c in clouds if self.is_degraded(c)]
        if not degraded:
            return None
        median = self._peer_median(degraded[0])
        if median is None or median <= 0:
            return None
        return self.policy.hedge_multiple * median

    # --------------------------------------------------------------- planning

    def plan(self, stages: Sequence[Sequence["QuorumRequest"]], required,
             now: float) -> PlannedStages:
        """Re-plan a call's stages around the current suspect list.

        ``required`` is a response count or any quorum predicate from
        :mod:`repro.clouds.quorums`.  Suspected clouds are removed from every
        stage; fallback requests are promoted forward to refill earlier stages
        (preserving the original stage sizes), so the primary round keeps
        enough healthy clouds to satisfy the quorum without waiting for a
        fallback dispatch.  Suspected clouds whose probe window is due come
        back as background probes.  When the unsuspected requests cannot
        satisfy the quorum predicate, the plan *loudly* reverts to the
        original stages (suspicion must never make a call unsatisfiable that
        would otherwise be tried): the revert is logged, counted in
        :attr:`HealthStats.conservative_reverts` and flagged on the returned
        :class:`PlannedStages`.
        """
        quorum = as_quorum(required)
        suspected = [
            request
            for stage in stages
            for request in stage
            if self.is_suspected(request.cloud)
        ]
        if not suspected:
            return PlannedStages(stages=[list(stage) for stage in stages])
        remaining = [
            request
            for stage in stages
            for request in stage
            if not self.is_suspected(request.cloud)
        ]
        if not quorum.satisfied_by([request.cloud for request in remaining]):
            # Too many suspects: demotion would make the quorum unreachable.
            self.conservative_reverts += 1
            logger.warning(
                "health plan reverted: demoting suspected clouds %s would "
                "leave the quorum unsatisfiable (%d unsuspected requests "
                "remain); dispatching the original stages instead",
                sorted({request.cloud for request in suspected}), len(remaining))
            return PlannedStages(stages=[list(stage) for stage in stages],
                                 reverted=True)

        probes: list[QuorumRequest] = []
        demoted: list[str] = []
        for request in suspected:
            demoted.append(request.cloud)
            if request.mutating or self.probe_due(request.cloud, now):
                # Mutating requests (PUT/DELETE/ACL) are never skipped:
                # replication must not silently shrink just because a provider
                # is suspected — the attempt runs in the background, storing
                # the copy whenever the provider actually permits, while the
                # call's charged latency stays free of the suspect.  Read
                # requests come back only when the probe window is due.
                probes.append(request)
                self.probes += 1
            else:
                self.skipped_requests += 1
        self.demoted_requests += len(demoted)

        planned: list[list[QuorumRequest]] = []
        queue = list(remaining)
        for stage in stages:
            if not queue:
                break
            take, queue = queue[:len(stage)], queue[len(stage):]
            planned.append(take)
        if queue:  # pragma: no cover - sizes always cover the queue
            planned.append(queue)
        return PlannedStages(stages=planned, probes=probes, demoted=tuple(demoted))

    # -------------------------------------------------------------- ingestion

    def record_trace(self, trace: "RequestTrace", base_time: float) -> None:
        """Ingest one resolved request of a quorum call.

        ``base_time`` is the absolute simulated time at which the call started
        (trace timestamps are call-relative).  A *benign* failure (not-found,
        access-denied) is an authoritative answer: it proves the provider is
        alive, so it counts as a contact success for health purposes even
        though it occupied no quorum slot — otherwise reading absent keys (or
        polling a not-yet-visible version under eventual consistency) would
        put perfectly healthy clouds on the suspect list.
        """
        latency = max(0.0, trace.resolved_at - trace.dispatched_at)
        self.observe(trace.cloud, succeeded=trace.succeeded or trace.benign,
                     latency=latency, now=base_time + trace.resolved_at)

    def observe(self, cloud: str, succeeded: bool, latency: float, now: float) -> None:
        """Ingest one request outcome (used directly by single-cloud backends)."""
        record = self.health(cloud)
        if succeeded:
            record.samples += 1
            if record.ewma_latency is None:
                record.ewma_latency = latency
            else:
                alpha = self.policy.ewma_alpha
                record.ewma_latency = alpha * latency + (1.0 - alpha) * record.ewma_latency
            record.consecutive_failures = 0
            if record.status is CloudStatus.SUSPECTED:
                record.status = CloudStatus.HEALTHY
                record.suspected_at = None
                record.probe_at = None
                record.probe_interval = 0.0
                record.recoveries += 1
                self.recoveries += 1
                if self.on_transition is not None:
                    self.on_transition(cloud, "recovered", now)
            return
        record.consecutive_failures += 1
        if record.status is CloudStatus.SUSPECTED:
            # A probe (or a reverted-plan request) failed: widen the window.
            record.probe_interval = min(
                record.probe_interval * self.policy.probe_backoff_factor,
                self.policy.probe_backoff_max,
            )
            record.probe_at = now + record.probe_interval
        elif record.consecutive_failures >= self.policy.threshold:
            record.status = CloudStatus.SUSPECTED
            record.suspected_at = now
            record.probe_interval = self.policy.probe_backoff
            record.probe_at = now + record.probe_interval
            record.suspicions += 1
            self.suspicions += 1
            if self.on_transition is not None:
                self.on_transition(cloud, "suspected", now)

    # ---------------------------------------------------------------- reports

    def suspected_clouds(self) -> tuple[str, ...]:
        """Names of the clouds currently on the suspect list."""
        return tuple(
            r.cloud for r in self._clouds.values() if r.status is CloudStatus.SUSPECTED
        )

    def degraded_clouds(self) -> tuple[str, ...]:
        """Names of the clouds currently flagged as stragglers."""
        return tuple(r.cloud for r in self._clouds.values() if self.is_degraded(r.cloud))

    def snapshot(self) -> HealthStats:
        """Aggregate counters plus the current suspect/straggler lists."""
        return HealthStats(
            suspicions=self.suspicions,
            recoveries=self.recoveries,
            probes=self.probes,
            demoted_requests=self.demoted_requests,
            skipped_requests=self.skipped_requests,
            conservative_reverts=self.conservative_reverts,
            suspected_now=self.suspected_clouds(),
            degraded_now=self.degraded_clouds(),
        )

    # ------------------------------------------------------------- persistence

    def export_state(self) -> tuple[tuple, ...]:
        """Serializable per-cloud snapshot for warm restarts.

        Captures everything :meth:`plan` and the latency estimators consult —
        status, failure streak, probe window, latency EWMA — as plain nested
        tuples, so the snapshot can ride inside a frozen
        :class:`~repro.core.config.SCFSConfig` (see
        ``DispatchPolicyConfig.health_snapshot``) and an agent restarted after
        a crash resumes with a *warm* suspect list instead of re-paying the
        detection latency of every known-bad provider.  Lifetime counters
        (suspicions/recoveries) are intentionally excluded: they belong to the
        previous incarnation's report, not to the new tracker's.
        """
        return tuple(
            (record.cloud, record.status.value, record.consecutive_failures,
             record.suspected_at, record.probe_at, record.probe_interval,
             record.ewma_latency, record.samples)
            for record in sorted(self._clouds.values(), key=lambda r: r.cloud)
        )

    def restore_state(self, state: Sequence[Sequence]) -> None:
        """Load a snapshot produced by :meth:`export_state`."""
        for entry in state:
            (cloud, status, failures, suspected_at,
             probe_at, probe_interval, ewma, samples) = entry
            record = self.health(cloud)
            record.status = CloudStatus(status)
            record.consecutive_failures = int(failures)
            record.suspected_at = suspected_at
            record.probe_at = probe_at
            record.probe_interval = float(probe_interval)
            record.ewma_latency = ewma
            record.samples = int(samples)


@dataclass(frozen=True)
class QuorumPlan:
    """One planned quorum: the chosen primary stage and its expected economics."""

    #: Clouds of the cheapest feasible quorum, in candidate order (stage 0).
    primary: tuple[str, ...]
    #: Remaining candidates, dispatched only as a fallback stage.
    fallback: tuple[str, ...]
    #: Expected completion latency of the primary stage (max member estimate).
    expected_latency: float
    #: Expected request cost of dispatching the primary stage.
    expected_cost: float
    #: True when suspicion demotion would have made the quorum unsatisfiable
    #: and the planner fell back to the full candidate pool.
    reverted: bool = False


class QuorumPlanner:
    """Ranks candidate quorums by expected cost × latency.

    The planner turns quorum *selection* into an optimization problem: given
    per-cloud estimators for expected request latency (typically the health
    tracker's EWMA blended with the provider profile) and request cost
    (derived from :class:`~repro.clouds.pricing.StoragePricing` via each
    provider's :class:`~repro.clouds.accounting.CostTracker`), it enumerates
    the *minimal* satisfying quorums of the candidate pool and picks the one
    minimizing ``cost × latency`` — dispatching a minimal quorum as stage 0
    and everything else as fallback.  Suspected clouds are demoted out of the
    pool first; when that leaves the predicate unsatisfiable the planner
    reverts loudly to the full pool (never trading liveness for economy).
    """

    #: Above this pool size exact enumeration gives way to a greedy build.
    max_enumeration: int = 12

    def __init__(self, latency_of: Callable[[str, str, int], float],
                 cost_of: Callable[[str, str, int], float],
                 tracker: "CloudHealthTracker | None" = None):
        self.latency_of = latency_of
        self.cost_of = cost_of
        self.tracker = tracker
        self.plans = 0
        self.reverts = 0

    def plan(self, candidates: Sequence[str], required, kind: str,
             payload: int) -> QuorumPlan:
        """Pick the cheapest feasible quorum among ``candidates``.

        ``required`` is a response count or quorum predicate; ``kind`` and
        ``payload`` parameterize the per-cloud latency/cost estimators
        (``"object_get"`` with the expected transfer size, etc.).
        """
        quorum = as_quorum(required)
        names = list(candidates)
        pool = [cloud for cloud in names
                if self.tracker is None or not self.tracker.is_suspected(cloud)]
        reverted = False
        if not quorum.satisfied_by(pool):
            self.reverts += 1
            reverted = True
            demoted = sorted(set(names) - set(pool))
            if demoted:
                logger.warning(
                    "quorum planner reverted: demoting suspected clouds %s "
                    "leaves no feasible quorum; planning over the full pool",
                    demoted)
            pool = names
        self.plans += 1
        latency = {cloud: self.latency_of(cloud, kind, payload) for cloud in pool}
        cost = {cloud: self.cost_of(cloud, kind, payload) for cloud in pool}

        best: tuple | None = None
        if len(pool) <= self.max_enumeration:
            for members in minimal_quorums(pool, quorum):
                stage_latency = max(latency[cloud] for cloud in members)
                stage_cost = sum(cost[cloud] for cloud in members)
                score = (stage_cost * stage_latency, stage_latency, members)
                if best is None or score < best[0]:
                    best = (score, members, stage_latency, stage_cost)
        else:
            # Greedy fallback for large pools: add clouds cheapest-first until
            # the predicate holds (deterministic, near-optimal for counts).
            ranked = sorted(pool, key=lambda c: (cost[c] * latency[c], c))
            members_list: list[str] = []
            for cloud in ranked:
                members_list.append(cloud)
                if quorum.satisfied_by(members_list):
                    break
            if quorum.satisfied_by(members_list):
                members = tuple(members_list)
                stage_latency = max(latency[c] for c in members)
                stage_cost = sum(cost[c] for c in members)
                best = (None, members, stage_latency, stage_cost)

        if best is None:
            # Even the full pool cannot satisfy the predicate (the config
            # validator should have rejected this); dispatch everything so
            # the engine reports the failure with complete evidence.
            chosen = tuple(names)
            stage_latency = max((self.latency_of(c, kind, payload) for c in chosen),
                                default=0.0)
            stage_cost = sum(self.cost_of(c, kind, payload) for c in chosen)
            return QuorumPlan(primary=chosen, fallback=(), reverted=True,
                              expected_latency=stage_latency, expected_cost=stage_cost)
        _, members, stage_latency, stage_cost = best
        chosen = set(members)
        primary = tuple(cloud for cloud in names if cloud in chosen)
        fallback = tuple(cloud for cloud in names if cloud not in chosen)
        return QuorumPlan(primary=primary, fallback=fallback, reverted=reverted,
                          expected_latency=stage_latency, expected_cost=stage_cost)
