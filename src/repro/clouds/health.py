"""Per-cloud health tracking: suspect lists, probe windows and straggler flags.

SCFS assumes that individual clouds crash, gray-fail and lag.  Without client
state about *which* provider is misbehaving, every quorum call re-probes every
cloud: a downed provider costs a failed round trip — or, worse, a full
per-request timeout — on every single operation, forever.  This module makes
provider health first-class client state, in the spirit of accrual failure
detectors and the suspect lists of generalized Byzantine quorum systems.

Suspicion model
---------------
A :class:`CloudHealthTracker` ingests the
:class:`~repro.clouds.dispatch.RequestTrace` of every request the dispatch
engine resolves (DepSky feeds it all of its quorum calls) and keeps one
:class:`CloudHealth` record per provider:

* **suspect** — ``threshold`` *consecutive* failures or timeouts move a cloud
  to :attr:`CloudStatus.SUSPECTED`.  Only *provider faults* count:
  authoritative answers (not-found, access-denied — ``trace.benign``) prove
  liveness and clear the failure streak, so reading absent keys or polling a
  not-yet-visible version never suspects a healthy provider.  Suspected
  clouds are *demoted* out of the primary dispatch stage by
  :meth:`CloudHealthTracker.plan`: the engine promotes fallback clouds in
  their place, so quorum calls stop paying the dead provider's timeout tax.
  Demotion is conservative — when too few unsuspected clouds remain to
  satisfy the quorum, the plan reverts to the original stages rather than
  fail the call outright, and *mutating* requests (PUT/DELETE/ACL) are never
  skipped: they are dispatched in the background instead, so replication
  never silently shrinks on the say-so of a suspicion.
* **probe** — a suspected cloud is not retried on the hot path.  Instead,
  once its *probe window* elapses, its request is dispatched as a background
  probe: it runs concurrently with stage 0 but never gates the call's charged
  latency.  Each failed probe widens the window exponentially
  (``probe_backoff * probe_backoff_factor^i``, capped at
  ``probe_backoff_max``), so a long outage converges to a trickle of probes.
* **recover** — any successful response (probe or regular request) clears the
  suspicion immediately: the cloud rejoins the primary stage on the next call.
* **degraded** — an exponentially weighted moving average of per-request
  latency is kept per cloud.  A cloud whose EWMA exceeds
  ``degraded_factor`` times the median of its peers is flagged
  :attr:`CloudStatus.DEGRADED` (a gray failure: it answers, slowly).  When a
  degraded cloud sits in a dispatched stage and the policy sets no explicit
  ``hedge_delay``, the tracker supplies an automatic one
  (``hedge_multiple`` times the healthy median EWMA) so backup requests are
  hedged proactively instead of waiting out the straggler.

Knobs
-----
All knobs live in :class:`SuspicionPolicy`; the config layer
(:class:`repro.core.config.DispatchPolicyConfig`) exposes them per agent so
benchmarks and Table 2 variants enable health tracking from configuration
alone.  ``threshold`` trades detection speed against false suspicion under
jitter; ``probe_backoff``/``probe_backoff_factor``/``probe_backoff_max``
bound how stale a suspicion can get (and therefore the worst-case recovery
lag after an outage ends); ``degraded_factor`` and ``hedge_multiple`` govern
the straggler path.
"""

from __future__ import annotations

import enum
import statistics
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from repro.clouds.dispatch import QuorumRequest, RequestTrace


class CloudStatus(enum.Enum):
    """Externally visible health classification of one provider."""

    #: No evidence of misbehaviour.
    HEALTHY = "healthy"
    #: Answering, but much slower than its peers (gray failure / straggler).
    DEGRADED = "degraded"
    #: Consecutive failures/timeouts crossed the threshold; demoted from the
    #: primary stage until a background probe succeeds.
    SUSPECTED = "suspected"


@dataclass(frozen=True)
class SuspicionPolicy:
    """Knobs of the suspicion model (see the module docstring)."""

    #: Consecutive failures or timeouts that turn a cloud SUSPECTED.
    threshold: int = 3
    #: First probe window in simulated seconds after a suspicion.
    probe_backoff: float = 10.0
    #: Multiplier applied to the probe window after each failed probe.
    probe_backoff_factor: float = 2.0
    #: Upper bound of the probe window (keeps recovery lag bounded).
    probe_backoff_max: float = 300.0
    #: A cloud whose latency EWMA exceeds this multiple of the peer median is
    #: flagged DEGRADED.
    degraded_factor: float = 3.0
    #: Weight of the newest sample in the latency EWMA.
    ewma_alpha: float = 0.3
    #: Samples required before the EWMA participates in degradation checks.
    min_samples: int = 4
    #: Automatic hedge delay for stages containing a DEGRADED cloud, as a
    #: multiple of the healthy peers' median EWMA (used only when the dispatch
    #: policy sets no explicit ``hedge_delay``).
    hedge_multiple: float = 2.0

    def validate(self) -> None:
        """Raise :class:`ValueError` on nonsensical knob combinations."""
        if self.threshold < 1:
            raise ValueError("the suspicion threshold must be at least 1")
        if self.probe_backoff <= 0:
            raise ValueError("the probe backoff must be positive")
        if self.probe_backoff_factor < 1.0:
            raise ValueError("the probe backoff factor must be >= 1")
        if self.probe_backoff_max < self.probe_backoff:
            raise ValueError("the probe backoff cap must be >= the initial backoff")
        if self.degraded_factor <= 1.0:
            raise ValueError("the degradation factor must exceed 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("the EWMA weight must be in (0, 1]")
        if self.min_samples < 1:
            raise ValueError("min_samples must be at least 1")
        if self.hedge_multiple <= 0:
            raise ValueError("the hedge multiple must be positive")


@dataclass
class CloudHealth:
    """Mutable health record of one provider."""

    cloud: str
    status: CloudStatus = CloudStatus.HEALTHY
    consecutive_failures: int = 0
    #: Simulated time the current suspicion started (None when not suspected).
    suspected_at: float | None = None
    #: Next simulated time a background probe may be dispatched.
    probe_at: float | None = None
    #: Current probe window width (grows exponentially while probes fail).
    probe_interval: float = 0.0
    #: Latency EWMA over successful responses (None before the first sample).
    ewma_latency: float | None = None
    samples: int = 0
    #: Lifetime counters of this cloud (suspicions entered / recoveries).
    suspicions: int = 0
    recoveries: int = 0


@dataclass
class HealthStats:
    """Aggregate counters of one tracker, for reports and benchmarks."""

    suspicions: int = 0
    recoveries: int = 0
    probes: int = 0
    #: Requests demoted out of their planned stage because of a suspicion.
    demoted_requests: int = 0
    #: Demoted requests that were skipped entirely (probe window not yet due).
    skipped_requests: int = 0
    suspected_now: tuple[str, ...] = ()
    degraded_now: tuple[str, ...] = ()

    def merge(self, other: "HealthStats") -> "HealthStats":
        """Element-wise sum of two snapshots (aggregation across agents)."""
        return HealthStats(
            suspicions=self.suspicions + other.suspicions,
            recoveries=self.recoveries + other.recoveries,
            probes=self.probes + other.probes,
            demoted_requests=self.demoted_requests + other.demoted_requests,
            skipped_requests=self.skipped_requests + other.skipped_requests,
            suspected_now=tuple(dict.fromkeys(self.suspected_now + other.suspected_now)),
            degraded_now=tuple(dict.fromkeys(self.degraded_now + other.degraded_now)),
        )


@dataclass
class PlannedStages:
    """Result of health-aware request planning for one quorum call."""

    stages: list[list["QuorumRequest"]]
    #: Requests of suspected clouds whose probe window is due: dispatched as
    #: background probes (concurrent with stage 0, never gating the call).
    probes: list["QuorumRequest"] = field(default_factory=list)
    #: Clouds demoted out of their planned stage this call.
    demoted: tuple[str, ...] = ()


class CloudHealthTracker:
    """Per-client tracker turning request traces into dispatch planning."""

    def __init__(self, policy: SuspicionPolicy | None = None):
        self.policy = policy or SuspicionPolicy()
        self.policy.validate()
        self._clouds: dict[str, CloudHealth] = {}
        self.suspicions = 0
        self.recoveries = 0
        self.probes = 0
        self.demoted_requests = 0
        self.skipped_requests = 0
        #: Optional observer of suspect-list transitions, invoked as
        #: ``on_transition(cloud, state, now)`` with state ``"suspected"`` or
        #: ``"recovered"`` (the scenario engine records these in its trace).
        self.on_transition = None

    # ------------------------------------------------------------- inspection

    def health(self, cloud: str) -> CloudHealth:
        """The (lazily created) health record of ``cloud``."""
        record = self._clouds.get(cloud)
        if record is None:
            record = self._clouds[cloud] = CloudHealth(cloud=cloud)
        return record

    def is_suspected(self, cloud: str) -> bool:
        """True while ``cloud`` sits on the suspect list."""
        record = self._clouds.get(cloud)
        return record is not None and record.status is CloudStatus.SUSPECTED

    def probe_due(self, cloud: str, now: float) -> bool:
        """True when a suspected cloud's probe window has elapsed."""
        record = self._clouds.get(cloud)
        return (
            record is not None
            and record.status is CloudStatus.SUSPECTED
            and record.probe_at is not None
            and now >= record.probe_at
        )

    def _peer_median(self, cloud: str) -> float | None:
        peers = [
            r.ewma_latency for r in self._clouds.values()
            if r.cloud != cloud
            and r.status is not CloudStatus.SUSPECTED
            and r.ewma_latency is not None
            and r.samples >= self.policy.min_samples
        ]
        return statistics.median(peers) if peers else None

    def is_degraded(self, cloud: str) -> bool:
        """True when ``cloud`` answers but lags far behind its peers."""
        record = self._clouds.get(cloud)
        if (
            record is None
            or record.status is CloudStatus.SUSPECTED
            or record.ewma_latency is None
            or record.samples < self.policy.min_samples
        ):
            return False
        median = self._peer_median(cloud)
        return median is not None and record.ewma_latency > self.policy.degraded_factor * median

    def status(self, cloud: str) -> CloudStatus:
        """Current classification of ``cloud`` (degradation checked lazily)."""
        record = self._clouds.get(cloud)
        if record is None:
            return CloudStatus.HEALTHY
        if record.status is CloudStatus.SUSPECTED:
            return CloudStatus.SUSPECTED
        return CloudStatus.DEGRADED if self.is_degraded(cloud) else CloudStatus.HEALTHY

    def auto_hedge_delay(self, clouds: Sequence[str]) -> float | None:
        """Hedge delay for a stage containing a DEGRADED cloud, else ``None``.

        Derived from the healthy peers' median EWMA so the hedge fires shortly
        after a healthy response *should* have arrived.
        """
        degraded = [c for c in clouds if self.is_degraded(c)]
        if not degraded:
            return None
        median = self._peer_median(degraded[0])
        if median is None or median <= 0:
            return None
        return self.policy.hedge_multiple * median

    # --------------------------------------------------------------- planning

    def plan(self, stages: Sequence[Sequence["QuorumRequest"]], required: int,
             now: float) -> PlannedStages:
        """Re-plan a call's stages around the current suspect list.

        Suspected clouds are removed from every stage; fallback requests are
        promoted forward to refill earlier stages (preserving the original
        stage sizes), so the primary round keeps enough healthy clouds to
        satisfy the quorum without waiting for a fallback dispatch.  Suspected
        clouds whose probe window is due come back as background probes.  When
        fewer unsuspected requests remain than ``required``, the plan reverts
        to the original stages (suspicion must never make a call unsatisfiable
        that would otherwise be tried).
        """
        suspected = [
            request
            for stage in stages
            for request in stage
            if self.is_suspected(request.cloud)
        ]
        if not suspected:
            return PlannedStages(stages=[list(stage) for stage in stages])
        remaining = [
            request
            for stage in stages
            for request in stage
            if not self.is_suspected(request.cloud)
        ]
        if len(remaining) < required:
            # Too many suspects: demotion would make the quorum unreachable.
            return PlannedStages(stages=[list(stage) for stage in stages])

        probes: list[QuorumRequest] = []
        demoted: list[str] = []
        for request in suspected:
            demoted.append(request.cloud)
            if request.mutating or self.probe_due(request.cloud, now):
                # Mutating requests (PUT/DELETE/ACL) are never skipped:
                # replication must not silently shrink just because a provider
                # is suspected — the attempt runs in the background, storing
                # the copy whenever the provider actually permits, while the
                # call's charged latency stays free of the suspect.  Read
                # requests come back only when the probe window is due.
                probes.append(request)
                self.probes += 1
            else:
                self.skipped_requests += 1
        self.demoted_requests += len(demoted)

        planned: list[list[QuorumRequest]] = []
        queue = list(remaining)
        for stage in stages:
            if not queue:
                break
            take, queue = queue[:len(stage)], queue[len(stage):]
            planned.append(take)
        if queue:  # pragma: no cover - sizes always cover the queue
            planned.append(queue)
        return PlannedStages(stages=planned, probes=probes, demoted=tuple(demoted))

    # -------------------------------------------------------------- ingestion

    def record_trace(self, trace: "RequestTrace", base_time: float) -> None:
        """Ingest one resolved request of a quorum call.

        ``base_time`` is the absolute simulated time at which the call started
        (trace timestamps are call-relative).  A *benign* failure (not-found,
        access-denied) is an authoritative answer: it proves the provider is
        alive, so it counts as a contact success for health purposes even
        though it occupied no quorum slot — otherwise reading absent keys (or
        polling a not-yet-visible version under eventual consistency) would
        put perfectly healthy clouds on the suspect list.
        """
        latency = max(0.0, trace.resolved_at - trace.dispatched_at)
        self.observe(trace.cloud, succeeded=trace.succeeded or trace.benign,
                     latency=latency, now=base_time + trace.resolved_at)

    def observe(self, cloud: str, succeeded: bool, latency: float, now: float) -> None:
        """Ingest one request outcome (used directly by single-cloud backends)."""
        record = self.health(cloud)
        if succeeded:
            record.samples += 1
            if record.ewma_latency is None:
                record.ewma_latency = latency
            else:
                alpha = self.policy.ewma_alpha
                record.ewma_latency = alpha * latency + (1.0 - alpha) * record.ewma_latency
            record.consecutive_failures = 0
            if record.status is CloudStatus.SUSPECTED:
                record.status = CloudStatus.HEALTHY
                record.suspected_at = None
                record.probe_at = None
                record.probe_interval = 0.0
                record.recoveries += 1
                self.recoveries += 1
                if self.on_transition is not None:
                    self.on_transition(cloud, "recovered", now)
            return
        record.consecutive_failures += 1
        if record.status is CloudStatus.SUSPECTED:
            # A probe (or a reverted-plan request) failed: widen the window.
            record.probe_interval = min(
                record.probe_interval * self.policy.probe_backoff_factor,
                self.policy.probe_backoff_max,
            )
            record.probe_at = now + record.probe_interval
        elif record.consecutive_failures >= self.policy.threshold:
            record.status = CloudStatus.SUSPECTED
            record.suspected_at = now
            record.probe_interval = self.policy.probe_backoff
            record.probe_at = now + record.probe_interval
            record.suspicions += 1
            self.suspicions += 1
            if self.on_transition is not None:
                self.on_transition(cloud, "suspected", now)

    # ---------------------------------------------------------------- reports

    def suspected_clouds(self) -> tuple[str, ...]:
        """Names of the clouds currently on the suspect list."""
        return tuple(
            r.cloud for r in self._clouds.values() if r.status is CloudStatus.SUSPECTED
        )

    def degraded_clouds(self) -> tuple[str, ...]:
        """Names of the clouds currently flagged as stragglers."""
        return tuple(r.cloud for r in self._clouds.values() if self.is_degraded(r.cloud))

    def snapshot(self) -> HealthStats:
        """Aggregate counters plus the current suspect/straggler lists."""
        return HealthStats(
            suspicions=self.suspicions,
            recoveries=self.recoveries,
            probes=self.probes,
            demoted_requests=self.demoted_requests,
            skipped_requests=self.skipped_requests,
            suspected_now=self.suspected_clouds(),
            degraded_now=self.degraded_clouds(),
        )
