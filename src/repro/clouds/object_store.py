"""Provider-agnostic object-store interface.

This is the only contract SCFS needs from a storage cloud (§2.1,
service-agnosticism): on-demand object put/get/delete/list plus basic ACLs.
Consistency of the store may be as weak as *eventual* — SCFS strengthens it
with the consistency-anchor algorithm (§2.4).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.common.types import Permission, Principal


@dataclass(frozen=True)
class ObjectVersion:
    """Metadata of one stored object version as returned by :meth:`ObjectStore.head`."""

    key: str
    size: int
    created_at: float
    digest: str


@dataclass
class ObjectListing:
    """Result of a LIST request."""

    keys: list[str] = field(default_factory=list)
    total_bytes: int = 0


class ObjectStore(abc.ABC):
    """Abstract object store offering put/get/delete/list and per-object ACLs.

    All operations take the acting :class:`Principal`; implementations enforce
    the per-object ACL using that principal's canonical identifier at this
    provider, mirroring how SCFS relies on the clouds' own access control
    rather than on the agent (§2.6).
    """

    #: Provider name, e.g. ``"amazon-s3"``; used for canonical-id lookup,
    #: pricing attribution and reporting.
    name: str = "abstract"

    @abc.abstractmethod
    def put(self, key: str, data: bytes, principal: Principal) -> ObjectVersion:
        """Store ``data`` under ``key`` and return the resulting version metadata."""

    @abc.abstractmethod
    def get(self, key: str, principal: Principal) -> bytes:
        """Return the payload stored under ``key``.

        Raises :class:`~repro.common.errors.ObjectNotFoundError` if the key
        does not exist *or is not yet visible* to readers (eventual
        consistency).
        """

    @abc.abstractmethod
    def head(self, key: str, principal: Principal) -> ObjectVersion:
        """Return the metadata of the object stored under ``key`` without its payload."""

    @abc.abstractmethod
    def delete(self, key: str, principal: Principal) -> None:
        """Delete the object stored under ``key`` (idempotent)."""

    @abc.abstractmethod
    def list_keys(self, prefix: str, principal: Principal) -> ObjectListing:
        """List visible keys starting with ``prefix`` that ``principal`` may read."""

    @abc.abstractmethod
    def exists(self, key: str, principal: Principal) -> bool:
        """True if ``key`` is currently visible to ``principal``."""

    @abc.abstractmethod
    def set_acl(self, key: str, grantee_canonical_id: str, permission: Permission,
                principal: Principal) -> None:
        """Grant ``permission`` on ``key`` to ``grantee_canonical_id`` (owner only)."""

    @abc.abstractmethod
    def get_acl(self, key: str, principal: Principal) -> dict[str, Permission]:
        """Return the grants of ``key`` (owner excluded)."""
