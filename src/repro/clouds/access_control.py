"""Per-object access-control lists enforced by the simulated clouds.

SCFS relies on the *clouds'* access-control enforcement rather than on the
(untrusted) SCFS Agent (§2.6).  The simulated object stores therefore check
every request against the object's ACL, identified by the principal's
*canonical identifier* at that provider.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import AccessDeniedError
from repro.common.types import Permission, Principal


@dataclass
class ObjectACL:
    """Access-control list of a single stored object (or bucket).

    ``owner`` always has full access.  ``grants`` maps canonical identifiers to
    the permission granted to that identity.
    """

    owner: str
    grants: dict[str, Permission] = field(default_factory=dict)

    def grant(self, canonical_id: str, permission: Permission) -> None:
        """Grant ``permission`` to ``canonical_id`` (replacing any previous grant)."""
        if permission is Permission.NONE:
            self.grants.pop(canonical_id, None)
        else:
            self.grants[canonical_id] = permission

    def revoke(self, canonical_id: str) -> None:
        """Remove any grant for ``canonical_id``."""
        self.grants.pop(canonical_id, None)

    def allows(self, canonical_id: str, permission: Permission) -> bool:
        """True if ``canonical_id`` holds ``permission`` on this object.

        The pseudo-identity ``"*"`` grants to any authenticated identity —
        used for world-shared object pools.
        """
        if canonical_id == self.owner:
            return True
        granted = self.grants.get(canonical_id, Permission.NONE) | self.grants.get("*", Permission.NONE)
        return (granted & permission) == permission

    def check(self, principal: Principal, provider: str, permission: Permission) -> None:
        """Raise :class:`AccessDeniedError` unless ``principal`` holds ``permission``."""
        cid = principal.canonical_id(provider)
        if not self.allows(cid, permission):
            raise AccessDeniedError(
                f"{principal.name} ({cid}) lacks {permission} on object owned by {self.owner}"
            )

    def copy(self) -> "ObjectACL":
        """Return an independent copy of this ACL."""
        return ObjectACL(self.owner, dict(self.grants))
