"""In-memory, eventually-consistent object store with latency and cost models.

The store mimics the externally observable behaviour of commercial object
stores circa the paper's evaluation:

* **Eventual consistency** — a PUT is acknowledged immediately but the new
  object only becomes *visible to readers* after a configurable propagation
  delay.  Reads issued before that raise
  :class:`~repro.common.errors.ObjectNotFoundError` (read-after-write of a
  *new key* may miss) or return the previous version (overwrite of an existing
  key), exactly the anomaly the consistency-anchor read loop of Figure 3
  tolerates.
* **Latency charging** — every request advances the shared simulated clock by
  the provider's latency model (base + payload/bandwidth).
* **ACL enforcement** — per-object grants keyed by canonical identifiers.
* **Fault injection** — unavailability, corruption, Byzantine responses,
  dropped writes and latency degradation (a DEGRADED window multiplies every
  request's latency, modelling a gray-failing straggler), driven by a
  :class:`~repro.simenv.failures.FailureSchedule`.
* **Cost accounting** — all requests, traffic and storage are recorded in a
  :class:`~repro.clouds.accounting.CostTracker`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import (
    AccessDeniedError,
    CloudUnavailableError,
    ObjectNotFoundError,
)
from repro.common.types import Permission, Principal
from repro.clouds.access_control import ObjectACL
from repro.clouds.accounting import CostTracker
from repro.clouds.object_store import ObjectListing, ObjectStore, ObjectVersion
from repro.clouds.pricing import StoragePricing
from repro.crypto.hashing import content_digest
from repro.simenv.environment import Simulation
from repro.simenv.failures import FailureSchedule, FaultKind
from repro.simenv.latency import NetworkProfile


@dataclass(slots=True)
class _StoredObject:
    """Internal record of one object key in the store.

    ``slots=True`` matters at scale: a primed 10^5-file pool holds ~10^6 of
    these records, and per-instance ``__dict__``s would double their footprint.
    """

    key: str
    data: bytes
    acl: ObjectACL
    created_at: float
    visible_at: float
    #: Hex digest of the payload as *sent* by the writer.  ``None`` defers the
    #: sha256 until :meth:`digest_value` is first asked for it (``put`` on the
    #: fault-free path stores the bytes unmodified, so hashing them up front
    #: would charge every block put a full-payload pass for a value that only
    #: ``head`` ever reports).
    digest: str | None
    previous: "_StoredObject | None" = None
    #: Start of the not-yet-settled storage-accounting span.  Defaults to the
    #: creation clock — a ``0.0`` default would let byte-seconds accounting
    #: charge an object from simulation start instead of from its creation.
    stored_since: float | None = field(default=None)

    def __post_init__(self) -> None:
        if self.stored_since is None:
            self.stored_since = self.created_at

    def digest_value(self) -> str:
        """The as-put digest, computed on first use (valid only because the
        fault-free ``put`` stores the sent bytes unmodified; fault paths that
        substitute the stored bytes compute the digest eagerly)."""
        if self.digest is None:
            self.digest = content_digest(self.data)
        return self.digest

    def visible_version(self, now: float) -> "_StoredObject | None":
        """Return the newest version of this key already visible at ``now``."""
        version: _StoredObject | None = self
        while version is not None and version.visible_at > now:
            version = version.previous
        return version


class EventuallyConsistentStore(ObjectStore):
    """Simulated eventually-consistent cloud object store.

    Parameters
    ----------
    sim:
        Shared simulation environment (clock, RNG).
    name:
        Provider name (used for canonical ids and reporting).
    profile:
        Latency/propagation profile of this provider as seen from the client.
    pricing:
        Pricing table used by the embedded cost tracker.
    failures:
        Optional failure schedule; when omitted the provider never misbehaves.
    charge_latency:
        When ``False`` the store does not advance the simulated clock; used by
        components that account for latency at a higher level (e.g. DepSky's
        parallel quorum accesses).
    """

    def __init__(
        self,
        sim: Simulation,
        name: str = "cloud",
        profile: NetworkProfile | None = None,
        pricing: StoragePricing | None = None,
        failures: FailureSchedule | None = None,
        charge_latency: bool = True,
    ):
        self.sim = sim
        self.name = name
        self.profile = profile or NetworkProfile(name=name)
        self.costs = CostTracker(pricing or StoragePricing())
        self.failures = failures or FailureSchedule()
        self.charge_latency = charge_latency
        self._objects: dict[str, _StoredObject] = {}
        # Bucket policies: prefix -> {canonical_id: Permission}.  They model the
        # prefix-level grants commercial clouds offer; SCFS's setfacl uses them
        # so that *future* versions of a shared file inherit the grant.
        self._bucket_policies: dict[str, dict[str, Permission]] = {}
        self.request_log: list[tuple[str, str, int]] = []

    # ------------------------------------------------------------------ util

    def _charge(self, model, payload: int = 0) -> float:
        latency = model.sample(payload, self.sim.rng)
        latency *= self.failures.degradation(self.sim.now())
        if self.charge_latency:
            self.sim.advance(latency)
        return latency

    def request_latency(self, kind: str, payload: int = 0) -> float:
        """Sample the latency of one ``kind`` request moving ``payload`` bytes.

        Used by the quorum dispatch engine, which models the parallel requests
        of a cloud-of-clouds client itself (the stores are then created with
        ``charge_latency=False``).  Applies any active DEGRADED fault window.
        """
        model = getattr(self.profile, kind)
        return model.sample(payload, self.sim.rng) * self.failures.degradation(self.sim.now())

    def expected_request_latency(self, kind: str, payload: int = 0) -> float:
        """Deterministic expected latency of one ``kind`` request (no RNG draw)."""
        model = getattr(self.profile, kind)
        return model.expected(payload) * self.failures.degradation(self.sim.now())

    def _fail_if_unavailable(self) -> None:
        if self.failures.is_active(FaultKind.UNAVAILABLE, self.sim.now()):
            raise CloudUnavailableError(f"provider {self.name} is unavailable")

    def _maybe_corrupt(self, data: bytes) -> bytes:
        now = self.sim.now()
        if self.failures.is_active(FaultKind.BYZANTINE, now):
            # A Byzantine provider may return arbitrary data; we return a
            # deterministic wrong payload so tests are reproducible.
            return b"byzantine:" + data[::-1]
        if self.failures.is_active(FaultKind.CORRUPTION, now) and data:
            corrupted = bytearray(data)
            corrupted[0] ^= 0xFF
            return bytes(corrupted)
        return data

    def _policy_allows(self, key: str, canonical_id: str, permission: Permission) -> bool:
        for prefix, grants in self._bucket_policies.items():
            if key.startswith(prefix):
                granted = grants.get(canonical_id, Permission.NONE) | grants.get("*", Permission.NONE)
                if (granted & permission) == permission:
                    return True
        return False

    def _check_access(self, obj: _StoredObject, key: str, principal: Principal,
                      permission: Permission) -> None:
        cid = principal.canonical_id(self.name)
        if obj.acl.allows(cid, permission) or self._policy_allows(key, cid, permission):
            return
        raise AccessDeniedError(
            f"{principal.name} ({cid}) lacks {permission} on {key!r} at {self.name}"
        )

    def _settle_storage(self, obj: _StoredObject) -> None:
        """Charge storage cost for the time elapsed since the last settlement."""
        now = self.sim.now()
        elapsed = now - obj.stored_since
        if elapsed > 0:
            self.costs.record_storage(len(obj.data), elapsed)
            obj.stored_since = now

    # ------------------------------------------------------------------ API

    def put(self, key: str, data: bytes, principal: Principal) -> ObjectVersion:
        self._fail_if_unavailable()
        self._charge(self.profile.object_put, len(data))
        self.request_log.append(("put", key, len(data)))
        self.costs.record_put(len(data))
        now = self.sim.now()
        current = self._objects.get(key)
        if current is not None:
            self._check_access(current, key, principal, Permission.WRITE)
            self._settle_storage(current)
            acl = current.acl
        else:
            acl = ObjectACL(owner=principal.canonical_id(self.name))
        stored_data = data
        if self.failures.is_active(FaultKind.DROP_WRITES, now):
            # The provider acknowledges but silently loses the payload: keep
            # the previous version (if any) as the "stored" one.
            stored_data = current.data if current is not None else b""
        if self.failures.is_active(FaultKind.CORRUPTION, now):
            stored_data = self._maybe_corrupt(stored_data)
        # Fault-free puts store the sent bytes unmodified, so the as-put
        # digest can be derived lazily from them (see ``_StoredObject``);
        # fault paths that substitute the stored bytes must hash eagerly.
        digest = None if stored_data is data else content_digest(data)
        obj = _StoredObject(
            key=key,
            data=stored_data,
            acl=acl,
            created_at=now,
            visible_at=now + self.profile.propagation_delay,
            digest=digest,
            previous=current,
            stored_since=now,
        )
        self._objects[key] = obj
        # The returned version reports the digest only when it is already
        # known; ``head`` is the API that guarantees one (no current caller
        # consumes put's return value, and hashing every put eagerly would
        # serialise a full-payload sha256 into the write hot path).
        return ObjectVersion(key=key, size=len(data), created_at=now,
                             digest=digest or "")

    def get(self, key: str, principal: Principal) -> bytes:
        self._fail_if_unavailable()
        obj = self._objects.get(key)
        visible = obj.visible_version(self.sim.now()) if obj is not None else None
        payload = visible.data if visible is not None else b""
        self._charge(self.profile.object_get, len(payload))
        self.request_log.append(("get", key, len(payload)))
        self.costs.record_get(len(payload))
        if visible is None:
            raise ObjectNotFoundError(f"{self.name}: no visible object under key {key!r}")
        self._check_access(visible, key, principal, Permission.READ)
        return self._maybe_corrupt(visible.data)

    def head(self, key: str, principal: Principal) -> ObjectVersion:
        self._fail_if_unavailable()
        self._charge(self.profile.metadata_op)
        self.request_log.append(("head", key, 0))
        self.costs.record_get(0)
        obj = self._objects.get(key)
        visible = obj.visible_version(self.sim.now()) if obj is not None else None
        if visible is None:
            raise ObjectNotFoundError(f"{self.name}: no visible object under key {key!r}")
        self._check_access(visible, key, principal, Permission.READ)
        return ObjectVersion(
            key=key, size=len(visible.data), created_at=visible.created_at,
            digest=visible.digest_value(),
        )

    def delete(self, key: str, principal: Principal) -> None:
        self._fail_if_unavailable()
        self._charge(self.profile.object_delete)
        self.request_log.append(("delete", key, 0))
        self.costs.record_delete()
        obj = self._objects.get(key)
        if obj is None:
            return
        self._check_access(obj, key, principal, Permission.WRITE)
        self._settle_storage(obj)
        del self._objects[key]

    def list_keys(self, prefix: str, principal: Principal) -> ObjectListing:
        self._fail_if_unavailable()
        self._charge(self.profile.object_list)
        self.request_log.append(("list", prefix, 0))
        self.costs.record_list()
        now = self.sim.now()
        listing = ObjectListing()
        for key, obj in sorted(self._objects.items()):
            if not key.startswith(prefix):
                continue
            visible = obj.visible_version(now)
            if visible is None:
                continue
            cid = principal.canonical_id(self.name)
            if not (visible.acl.allows(cid, Permission.READ)
                    or self._policy_allows(key, cid, Permission.READ)):
                continue
            listing.keys.append(key)
            listing.total_bytes += len(visible.data)
        return listing

    def exists(self, key: str, principal: Principal) -> bool:
        self._fail_if_unavailable()
        self._charge(self.profile.metadata_op)
        self.request_log.append(("exists", key, 0))
        obj = self._objects.get(key)
        visible = obj.visible_version(self.sim.now()) if obj is not None else None
        if visible is None:
            return False
        cid = principal.canonical_id(self.name)
        return visible.acl.allows(cid, Permission.READ) or self._policy_allows(
            key, cid, Permission.READ
        )

    def set_acl(self, key: str, grantee_canonical_id: str, permission: Permission,
                principal: Principal) -> None:
        self._fail_if_unavailable()
        self._charge(self.profile.metadata_op)
        self.request_log.append(("set_acl", key, 0))
        obj = self._objects.get(key)
        if obj is None:
            raise ObjectNotFoundError(f"{self.name}: cannot set ACL on missing key {key!r}")
        if obj.acl.owner != principal.canonical_id(self.name):
            raise AccessDeniedError(f"only the owner may change the ACL of {key!r}")
        # ACL changes apply to every version of the key (they share the object).
        obj.acl.grant(grantee_canonical_id, permission)

    def get_acl(self, key: str, principal: Principal) -> dict[str, Permission]:
        self._fail_if_unavailable()
        self._charge(self.profile.metadata_op)
        obj = self._objects.get(key)
        if obj is None:
            raise ObjectNotFoundError(f"{self.name}: cannot read ACL of missing key {key!r}")
        self._check_access(obj, key, principal, Permission.READ)
        return dict(obj.acl.grants)

    def set_bucket_policy(self, prefix: str, grantee_canonical_id: str,
                          permission: Permission, principal: Principal) -> None:
        """Grant ``permission`` on every current and future key under ``prefix``.

        Models the prefix-level (bucket-policy) grants offered by commercial
        clouds.  SCFS's ``setfacl`` uses one policy update per cloud so that
        new versions of a shared file are readable by the grantee without
        touching each stored object (§2.6).
        """
        self._fail_if_unavailable()
        self._charge(self.profile.metadata_op)
        self.request_log.append(("set_policy", prefix, 0))
        grants = self._bucket_policies.setdefault(prefix, {})
        if permission is Permission.NONE:
            grants.pop(grantee_canonical_id, None)
        else:
            grants[grantee_canonical_id] = permission

    def get_bucket_policy(self, prefix: str) -> dict[str, Permission]:
        """Return the grants configured for ``prefix`` (test helper)."""
        return dict(self._bucket_policies.get(prefix, {}))

    # --------------------------------------------------------------- helpers

    def raw_object(self, key: str) -> bytes | None:
        """Bytes stored under ``key`` exactly as the provider holds them.

        Bypasses visibility delays, ACLs, fault injection and latency charging
        — the ground-truth view the scenario engine's durability checker uses
        to count how many providers really hold a verifiable block.
        """
        obj = self._objects.get(key)
        return obj.data if obj is not None else None

    def stored_bytes(self) -> int:
        """Total bytes currently stored (all visible and in-flight versions)."""
        return sum(len(o.data) for o in self._objects.values())

    def object_count(self) -> int:
        """Number of keys currently present (visible or not)."""
        return len(self._objects)

    def force_visibility(self) -> None:
        """Make every stored version immediately visible (test helper)."""
        now = self.sim.now()
        for obj in self._objects.values():
            version: _StoredObject | None = obj
            while version is not None:
                version.visible_at = min(version.visible_at, now)
                version = version.previous
