"""Named provider profiles and factory helpers.

The profiles bundle the latency and pricing characteristics of the four
storage clouds used in the paper's evaluation (§4.1): Amazon S3 (US), Google
Cloud Storage (US), Rackspace Cloud Files (UK) and Windows Azure Blob (UK), as
seen from a client in Portugal.  The US providers get a higher base latency
than the European ones; all numbers are calibrated so that uploading/reading a
small-to-medium file takes on the order of seconds, matching §4.2.

:data:`COMPUTE_PRICING` holds the VM rental prices behind Figure 11(a): an EC2
``Large`` costs $6.24/day, and a cloud-of-clouds set of four similar VMs costs
$39.60/day mainly because Rackspace and Elastichosts charge almost twice as
much as EC2 and Azure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.units import MB
from repro.clouds.eventual import EventuallyConsistentStore
from repro.clouds.pricing import ComputePricing, StoragePricing
from repro.simenv.environment import Simulation
from repro.simenv.failures import FailureSchedule
from repro.simenv.latency import LatencyModel, NetworkProfile


@dataclass(frozen=True)
class ProviderProfile:
    """Static description of one storage provider (latency + pricing)."""

    name: str
    network: NetworkProfile
    pricing: StoragePricing = field(default_factory=StoragePricing)


def _network(name: str, base_rtt: float, down_mbps: float, up_mbps: float,
             propagation: float) -> NetworkProfile:
    return NetworkProfile(
        name=name,
        object_get=LatencyModel(base=base_rtt, bandwidth=down_mbps * MB),
        object_put=LatencyModel(base=base_rtt * 1.2, bandwidth=up_mbps * MB),
        object_delete=LatencyModel(base=base_rtt * 0.7),
        object_list=LatencyModel(base=base_rtt * 1.6),
        metadata_op=LatencyModel(base=base_rtt * 0.8),
        propagation_delay=propagation,
    )


#: The four storage clouds used by the SCFS-CoC backend (§4.1).
PROVIDER_PROFILES: dict[str, ProviderProfile] = {
    "amazon-s3": ProviderProfile(
        name="amazon-s3",
        network=_network("amazon-s3", base_rtt=0.180, down_mbps=4.0, up_mbps=2.5, propagation=1.0),
        pricing=StoragePricing(outbound_gb=0.12, storage_gb_month=0.09),
    ),
    "google-storage": ProviderProfile(
        name="google-storage",
        network=_network("google-storage", base_rtt=0.170, down_mbps=4.5, up_mbps=2.8, propagation=1.2),
        pricing=StoragePricing(outbound_gb=0.12, storage_gb_month=0.085),
    ),
    "rackspace-files": ProviderProfile(
        name="rackspace-files",
        network=_network("rackspace-files", base_rtt=0.090, down_mbps=5.0, up_mbps=3.0, propagation=1.5),
        pricing=StoragePricing(outbound_gb=0.12, storage_gb_month=0.10),
    ),
    "windows-azure": ProviderProfile(
        name="windows-azure",
        network=_network("windows-azure", base_rtt=0.095, down_mbps=5.0, up_mbps=3.2, propagation=0.8),
        pricing=StoragePricing(outbound_gb=0.12, storage_gb_month=0.095),
    ),
}


#: VM rental prices (dollars/day) for the coordination-service hosts, Figure 11(a).
COMPUTE_PRICING: dict[str, ComputePricing] = {
    "amazon-ec2": ComputePricing("amazon-ec2", (("large", 6.24), ("extra_large", 12.96))),
    "windows-azure": ComputePricing("windows-azure", (("large", 6.24), ("extra_large", 12.96))),
    "rackspace": ComputePricing("rackspace", (("large", 13.56), ("extra_large", 25.56))),
    "elastichosts": ComputePricing("elastichosts", (("large", 13.56), ("extra_large", 25.56))),
}

#: Provider order used by the CoC backend (must be stable across runs).
COC_STORAGE_PROVIDERS = ("amazon-s3", "google-storage", "rackspace-files", "windows-azure")
COC_COMPUTE_PROVIDERS = ("amazon-ec2", "windows-azure", "rackspace", "elastichosts")


def make_provider(
    sim: Simulation,
    name: str = "amazon-s3",
    failures: FailureSchedule | None = None,
    charge_latency: bool = True,
    jitter: float = 0.0,
) -> EventuallyConsistentStore:
    """Instantiate one simulated storage provider by profile name."""
    try:
        profile = PROVIDER_PROFILES[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown provider {name!r}; known providers: {sorted(PROVIDER_PROFILES)}"
        ) from exc
    network = profile.network.with_jitter(jitter) if jitter else profile.network
    return EventuallyConsistentStore(
        sim,
        name=profile.name,
        profile=network,
        pricing=profile.pricing,
        failures=failures,
        charge_latency=charge_latency,
    )


def make_cloud_of_clouds(
    sim: Simulation,
    names: tuple[str, ...] = COC_STORAGE_PROVIDERS,
    charge_latency: bool = False,
    jitter: float = 0.0,
) -> list[EventuallyConsistentStore]:
    """Instantiate the set of providers forming a cloud-of-clouds backend.

    ``charge_latency`` defaults to ``False`` because the DepSky protocols
    access the clouds *in parallel* and charge the quorum latency themselves
    (the slowest response among the fastest quorum).
    """
    return [make_provider(sim, n, charge_latency=charge_latency, jitter=jitter) for n in names]
