"""Pricing models for storage and compute cloud services.

The figures are those quoted in the paper (2013/2014 prices):

* outbound traffic costs about $0.12/GB while inbound traffic is free
  (§1, footnote 2 and §4.5) — the root of the *always write / avoid reading*
  design principle;
* storing one GB for a month costs about $0.09;
* PUT/GET/LIST requests cost micro-dollars each;
* an EC2 ``Large`` VM costs $6.24/day and an ``Extra Large`` $12.96/day, while
  the four-provider cloud-of-clouds equivalents cost $39.60 and $77.04/day
  because Rackspace and Elastichosts charge almost twice as much as EC2 and
  Azure for similar instances (Figure 11(a)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.units import GB, MONTH_SECONDS


@dataclass(frozen=True)
class StoragePricing:
    """Prices charged by one storage provider.

    All prices are in dollars.  ``storage_gb_month`` is converted to
    byte-seconds internally by the cost tracker.
    """

    outbound_gb: float = 0.12
    inbound_gb: float = 0.0
    storage_gb_month: float = 0.09
    put_request: float = 0.00001          # $10 per million PUT requests
    get_request: float = 0.000004         # $4 per million GET requests
    delete_request: float = 0.0           # deletes are free on all used clouds (§4.5)
    list_request: float = 0.000005

    def outbound_cost(self, payload_bytes: int) -> float:
        """Cost of sending ``payload_bytes`` from the cloud to the client."""
        return self.outbound_gb * payload_bytes / GB

    def inbound_cost(self, payload_bytes: int) -> float:
        """Cost of sending ``payload_bytes`` from the client to the cloud."""
        return self.inbound_gb * payload_bytes / GB

    def storage_cost(self, payload_bytes: int, seconds: float) -> float:
        """Cost of keeping ``payload_bytes`` stored for ``seconds`` of simulated time."""
        return self.storage_gb_month * (payload_bytes / GB) * (seconds / MONTH_SECONDS)

    def request_cost(self, kind: str, payload_bytes: int = 0) -> float:
        """Expected dollars of one request of ``kind`` moving ``payload_bytes``.

        ``kind`` uses the request vocabulary of the latency profiles
        (``object_get``/``object_put``/``object_delete``/``object_list``/
        ``metadata_op``); the quorum planner uses this to price candidate
        quorums before dispatching them.
        """
        if kind == "object_get":
            return self.get_request + self.outbound_cost(payload_bytes)
        if kind == "object_put":
            return self.put_request + self.inbound_cost(payload_bytes)
        if kind == "object_delete":
            return self.delete_request
        if kind in ("object_list", "metadata_op"):
            return self.list_request
        raise ValueError(f"unknown request kind {kind!r}")


@dataclass(frozen=True)
class ComputePricing:
    """Price of renting VM instances from one compute provider.

    ``instance_day`` maps an instance-size name (``"large"``,
    ``"extra_large"``) to its rental price in dollars per day.
    """

    provider: str
    instance_day: tuple[tuple[str, float], ...]

    def price_per_day(self, instance: str) -> float:
        """Dollar cost of renting one ``instance`` for a day."""
        for name, price in self.instance_day:
            if name == instance:
                return price
        raise KeyError(f"unknown instance size {instance!r} for provider {self.provider}")


#: Approximate number of 1 KB metadata tuples a DepSpace deployment can hold in
#: memory per instance size (Figure 11(a): 7M files for Large, 15M for Extra Large).
COORDINATION_CAPACITY_TUPLES = {
    "large": 7_000_000,
    "extra_large": 15_000_000,
}
