"""The scenario runner: drive N agents through one seed-derived scenario.

A :class:`ScenarioRunner` deploys the spec's Table 2 variant on a fresh
:class:`~repro.simenv.environment.Simulation`, mounts one agent per
:class:`~repro.scenarios.spec.AgentSpec` with the trace recorder attached to
every hook (agent events, lock transitions, DepSky quorum calls, health
transitions), then executes the interleaved workload while switching fault
phases on and off at their op-index anchors.  Afterwards it drains all
background work, unmounts, fingerprints the trace and runs the invariant
checkers.

Determinism contract: everything the runner does is derived from the spec's
seed through :func:`~repro.simenv.environment.derive_rng` forks — per-agent
workload streams, the interleaving stream and the think-time stream are all
independent, so a same-seed rerun reproduces the trace byte for byte
(:meth:`ScenarioResult.fingerprint`).

Two scheduling modes exist (``spec.scheduling``):

* ``"lockstep"`` — the classic global round robin: one shared RNG picks which
  agent issues the next operation, operations never overlap in virtual time.
* ``"event-driven"`` — every agent is a task on the simulation's event heap;
  an agent finishes one operation, sleeps a per-agent think time and wakes up
  again, so agents genuinely interleave with each other *and* with background
  work (uploads, probes) on the virtual timeline.  This is the mode that
  scales to 1000+ concurrent agents.

Pooled scenarios (``spec.pooled``) skip the per-file setup traffic entirely:
:func:`~repro.scenarios.pool.prime_pool` installs the shared files directly
into the clouds and the coordination replicas with world grants, so a run can
start against a 10^5-file namespace in seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.common.errors import (
    FileExistsErrorFS,
    FileNotFoundErrorFS,
    IsADirectoryErrorFS,
    LockHeldError,
    PermissionDeniedError,
    ReproError,
    TransactionAbortedError,
    TransactionConflictError,
)
from repro.common.types import Permission
from repro.core.backend import CloudOfCloudsBackend
from repro.core.deployment import SCFSDeployment
from repro.scenarios.invariants import Violation, check_all
from repro.scenarios.pool import prime_pool
from repro.scenarios.spec import FaultPhase, ScenarioSpec, agent_name
from repro.scenarios.trace import TraceRecorder
from repro.simenv.environment import Simulation, derive_rng
from repro.simenv.failures import FaultKind, FaultWindow

#: Errors that are legitimate outcomes of a racing workload (lock conflicts,
#: reads of not-yet/no-longer existing files, transactions that lost their
#: race and gave up); anything else is surfaced by the ``unexpected-error``
#: pseudo-invariant.
BENIGN_ERRORS = (
    LockHeldError,
    FileNotFoundErrorFS,
    FileExistsErrorFS,
    PermissionDeniedError,
    IsADirectoryErrorFS,
    TransactionAbortedError,
    TransactionConflictError,
)


def _payload(size: int, tag: int) -> bytes:
    """Deterministic, cheap, content-distinct payload of ``size`` bytes."""
    pattern = bytes((i * 131 + tag * 17 + 7) % 256 for i in range(min(size, 512)))
    repeats = size // len(pattern) + 1
    return (pattern * repeats)[:size]


@dataclass
class ScenarioResult:
    """Everything one scenario run produced."""

    spec: ScenarioSpec
    trace: TraceRecorder
    fingerprint: str
    violations: list[Violation] = field(default_factory=list)
    stats: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return not self.violations

    def report(self) -> str:
        """Human-readable outcome, including the repro command on failure."""
        lines = [
            f"scenario seed={self.spec.seed} mix={self.spec.mix} "
            f"variant={self.spec.variant}: "
            f"{len(self.trace)} events, fingerprint {self.fingerprint[:16]}…",
            "stats: " + ", ".join(f"{k}={v}" for k, v in sorted(self.stats.items())),
        ]
        if self.violations:
            lines.append(f"{len(self.violations)} invariant violation(s):")
            lines += [f"  {v}" for v in self.violations]
            lines.append(f"rerun this exact trace with: {self.spec.repro_command()}")
        else:
            lines.append("all invariants held")
        return "\n".join(lines)


class ScenarioRunner:
    """Execute one :class:`ScenarioSpec` and check its history."""

    def __init__(self, spec: ScenarioSpec):
        spec.validate()
        self.spec = spec
        #: Agents currently crashed (name -> crash time); their ops are
        #: skipped until the fault phase ends and the agent remounts.
        self._crashed: dict[str, float] = {}

    # ------------------------------------------------------------------ setup

    def _wire_agent(self, deployment: SCFSDeployment, name: str,
                    recorder: TraceRecorder) -> None:
        filesystem = deployment.create_agent(name, events=recorder.record)
        backend = filesystem.agent.backend
        if isinstance(backend, CloudOfCloudsBackend):
            backend.client.on_quorum = recorder.quorum_sink(name, deployment.sim)
        if backend.health is not None:
            backend.health.on_transition = recorder.health_sink(name)

    def _setup_files(self, deployment: SCFSDeployment,
                     recorder: TraceRecorder) -> None:
        """First agent creates the shared pool and grants everyone access."""
        spec = self.spec
        owner = deployment.agent_for(spec.agents[0].name)
        owner.mkdir("/shared", shared=True)
        for index, path in enumerate(spec.shared_files):
            owner.write_file(path, _payload(256, tag=index), shared=True)
            for other in spec.agents[1:]:
                owner.setfacl(path, other.name, Permission.READ_WRITE)
        recorder.record("setup_done", time=deployment.sim.now(),
                        files=list(spec.shared_files))
        deployment.drain(2.0)

    # ------------------------------------------------------------------ faults

    def _fault_actions(self) -> dict[int, list[tuple[str, FaultPhase]]]:
        """Map op index -> fault (start|end) actions due before that op."""
        total = max(1, self.spec.total_ops)
        actions: dict[int, list[tuple[str, FaultPhase]]] = {}
        for phase in self.spec.faults:
            start = min(total - 1, int(phase.start_frac * total))
            end = int(phase.end_frac * total)
            actions.setdefault(start, []).append(("start", phase))
            if end < total:
                actions.setdefault(end, []).append(("end", phase))
        return actions

    def _apply_fault(self, deployment: SCFSDeployment, recorder: TraceRecorder,
                     action: str, phase: FaultPhase,
                     live: dict[FaultPhase, FaultWindow]) -> None:
        now = deployment.sim.now()
        target_kind, _, index_text = phase.target.partition(":")
        index = int(index_text)
        if target_kind == "cloud":
            schedule = deployment.clouds[index].failures
            if action == "start":
                window = FaultWindow(FaultKind(phase.kind), start=now,
                                     end=float("inf"), factor=phase.factor)
                schedule.windows.append(window)
                live[phase] = window
            else:
                window = live.pop(phase, None)
                if window is not None:
                    schedule.windows.remove(window)
                    # Keep the bounded window on record: the durability checker
                    # consults `is_active` at each version's commit time.  Tasks
                    # that ran while the clock advanced *to* `now` (background
                    # uploads, probes) still saw the fault, so the recorded end
                    # sits just past `now` (windows are end-exclusive).
                    schedule.add(window.kind, start=window.start,
                                 end=math.nextafter(now, math.inf),
                                 factor=window.factor)
        elif target_kind == "agent":
            name = agent_name(index)
            if action == "start":
                deployment.agent_for(name).agent.crash()
                self._crashed[name] = now
                recorder.record("agent_crash", agent=name, time=now,
                                lease=self.spec.lock_lease)
            else:
                # Restart = a fresh mount.  The remount happens only after the
                # crashed session's lock leases ran out (a human restarting a
                # machine takes longer than a lease), which is the takeover
                # window the lease-aware mutual-exclusion checker models.
                crashed_at = self._crashed.pop(name, now)
                expiry = crashed_at + self.spec.lock_lease + 1.0
                if deployment.sim.now() < expiry:
                    deployment.sim.advance(expiry - deployment.sim.now())
                self._wire_agent(deployment, name, recorder)
                recorder.record("agent_restart", agent=name,
                                time=deployment.sim.now(), crashed_at=crashed_at)
        else:
            rsm = deployment.coordination.rsm
            if action == "start":
                if phase.kind == "crash":
                    rsm.crash_replica(index)
                elif phase.kind == "partition":
                    rsm.partition_replica(index)
                else:
                    rsm.make_byzantine(index)
            else:
                rsm.recover_replica(index)
        if deployment.coalescer is not None:
            # A fault transition changes what the clouds serve without going
            # through a mutating quorum call, so expire the coalescing window.
            deployment.coalescer.invalidate()
        if action == "start":
            recorder.record("fault_start", time=now, target=phase.target,
                            fault=phase.kind, factor=phase.factor)
        else:
            recorder.record("fault_end", time=now, target=phase.target,
                            fault=phase.kind, factor=phase.factor)

    # ------------------------------------------------------------------ workload

    def _agent_ops(self, agent_name: str, count: int, mix) -> list[tuple[str, str, int]]:
        """The agent's op list: (kind, path, size), from its forked stream."""
        rng = derive_rng(self.spec.seed, f"agent:{agent_name}")
        total_weight = sum(weight for _op, weight in mix.weights)
        ops = []
        for _ in range(count):
            draw = rng.random() * total_weight
            kind = mix.weights[-1][0]
            for op, weight in mix.weights:
                if draw < weight:
                    kind = op
                    break
                draw -= weight
            path = self.spec.shared_files[rng.randrange(len(self.spec.shared_files))]
            size = rng.randrange(mix.min_size, mix.max_size + 1)
            ops.append((kind, path, size))
        return ops

    def _txn_files(self, path: str, size: int) -> list[str]:
        """The 2-3 consecutive shared files a txn op touches (wrap-around)."""
        shared = self.spec.shared_files
        start = shared.index(path)
        width = min(2 + (size % 2), len(shared))
        return [shared[(start + i) % len(shared)] for i in range(width)]

    def _run_op(self, deployment: SCFSDeployment, recorder: TraceRecorder,
                agent_name: str, op: tuple[str, str, int], tag: int,
                stats: dict[str, int]) -> None:
        kind, path, size = op
        if agent_name in self._crashed:
            # A crashed agent issues nothing until its restart; the op index
            # still advances so fault anchors stay comparable across mixes.
            stats["ops_skipped_crashed"] = stats.get("ops_skipped_crashed", 0) + 1
            return
        fs = deployment.agent_for(agent_name)
        stats[f"op:{kind}"] = stats.get(f"op:{kind}", 0) + 1
        try:
            if kind == "write":
                existed = fs.exists(path)
                handle = fs.open(path, "w", shared=True)
                fs.write(handle, _payload(size, tag))
                fs.close(handle)
                if not existed and not self.spec.pooled:
                    # The (re)creator owns the file: re-grant the other agents.
                    # Pooled files carry a world grant and are never unlinked,
                    # so the per-agent re-grant loop (quadratic in the agent
                    # count) never applies to them.
                    for other in self.spec.agents:
                        if other.name != agent_name:
                            fs.setfacl(path, other.name, Permission.READ_WRITE)
            elif kind == "read":
                fs.read_file(path)
            elif kind == "append":
                fs.append_file(path, _payload(min(size, 256), tag))
            elif kind == "fsync":
                handle = fs.open(path, "r+")
                fs.write(handle, _payload(min(size, 256), tag), 0)
                fs.fsync(handle)
                fs.close(handle)
            elif kind == "stat":
                fs.stat(path)
            elif kind == "unlink":
                meta = fs.stat(path)
                if meta.owner == agent_name:
                    fs.unlink(path)
            elif kind == "gc":
                fs.collect_garbage()
            elif kind in ("txn", "txn_read"):
                # The file set is a deterministic function of (path, size):
                # 2-3 consecutive shared files starting at `path`, wrapping
                # around — overlapping sets are what makes transactions
                # actually conflict.  No extra RNG draws, so the op streams
                # of the existing mixes are untouched.
                files = self._txn_files(path, size)
                read_only = kind == "txn_read"

                def body(txn) -> None:
                    for file_path in files:
                        txn.read(file_path)
                    if not read_only:
                        for offset, file_path in enumerate(files):
                            txn.write(file_path,
                                      _payload(size, tag * 7 + offset))

                fs.run_transaction(body)
            else:  # pragma: no cover - spec.validate rejects unknown kinds
                raise ValueError(f"unknown op kind {kind!r}")
        except BENIGN_ERRORS as exc:
            stats["benign_errors"] = stats.get("benign_errors", 0) + 1
            recorder.record("op_error", agent=agent_name, time=deployment.sim.now(),
                            op=kind, path=path, benign=True,
                            error=f"{type(exc).__name__}: {exc}")
        except (ReproError, ValueError) as exc:
            stats["unexpected_errors"] = stats.get("unexpected_errors", 0) + 1
            recorder.record("op_error", agent=agent_name, time=deployment.sim.now(),
                            op=kind, path=path, benign=False,
                            error=f"{type(exc).__name__}: {exc}")

    # -------------------------------------------------------------- scheduling

    def _run_lockstep(self, deployment: SCFSDeployment, recorder: TraceRecorder,
                      queues: dict[str, list], actions, live_windows, stats) -> None:
        """The classic global round robin: one op at a time, shared RNG picks."""
        sim = deployment.sim
        order = derive_rng(self.spec.seed, "interleave")
        index = 0
        remaining = [a.name for a in self.spec.agents for _ in range(a.ops)]
        while remaining:
            for action, phase in actions.pop(index, ()):
                self._apply_fault(deployment, recorder, action, phase, live_windows)
            pick = order.randrange(len(remaining))
            agent_name = remaining.pop(pick)
            op = queues[agent_name].pop(0)
            self._run_op(deployment, recorder, agent_name, op, tag=index, stats=stats)
            # Think time: often none (back-to-back contention), sometimes long
            # enough for background uploads and probes to land mid-workload.
            if order.random() < 0.5:
                sim.advance(order.uniform(0.1, 2.0))
            index += 1

    def _run_event_driven(self, deployment: SCFSDeployment, recorder: TraceRecorder,
                          queues: dict[str, list], actions, live_windows, stats) -> None:
        """Drive every agent as a recurring task on the simulation's event heap.

        Each agent runs one operation, sleeps a think time drawn from its own
        forked stream and re-schedules itself; :meth:`Simulation.run_all`
        steps through the merged event sequence in deterministic ``(time,
        seq)`` order.  Operations advance the virtual clock while they run, so
        other agents' due steps (and background uploads) execute as soon as
        the running operation returns — true asynchronous interleaving without
        a global round-robin pick.  Fault phases stay anchored to the *global*
        op index (the order ops actually start), exactly as in lockstep mode.
        """
        sim = deployment.sim
        progress = {"index": 0}

        def make_step(agent_name: str, think) -> callable:
            def step() -> None:
                queue = queues[agent_name]
                if not queue:
                    return
                index = progress["index"]
                progress["index"] += 1
                for action, phase in actions.pop(index, ()):
                    self._apply_fault(deployment, recorder, action, phase, live_windows)
                op = queue.pop(0)
                self._run_op(deployment, recorder, agent_name, op, tag=index, stats=stats)
                if queue:
                    delay = think.uniform(0.1, 2.0) if think.random() < 0.5 else 0.001
                    sim.schedule(delay, step, name=f"agent-step:{agent_name}")
            return step

        for agent_spec in self.spec.agents:
            think = derive_rng(self.spec.seed, f"think:{agent_spec.name}")
            sim.schedule(think.uniform(0.0, 0.5), make_step(agent_spec.name, think),
                         name=f"agent-step:{agent_spec.name}")
        # Generous runaway guard: every op re-schedules at most one step, and
        # background work (uploads, probes, GC) stays proportional to the ops.
        sim.run_all(max_events=200 * max(1, self.spec.total_ops) + 10_000)

    # -------------------------------------------------------------------- run

    def run(self) -> ScenarioResult:
        """Execute the scenario; returns the checked :class:`ScenarioResult`."""
        spec = self.spec
        self._crashed = {}
        sim = Simulation(seed=spec.seed)
        deployment = SCFSDeployment(spec.config(), sim=sim)
        recorder = TraceRecorder()
        stats: dict[str, int] = {}

        if spec.pooled:
            prime_pool(deployment, spec, recorder)
        for agent_spec in spec.agents:
            self._wire_agent(deployment, agent_spec.name, recorder)
        if not spec.pooled:
            self._setup_files(deployment, recorder)

        queues = {
            a.name: self._agent_ops(a.name, a.ops, a.mix) for a in spec.agents
        }
        actions = self._fault_actions()
        live_windows: dict[FaultPhase, FaultWindow] = {}

        if spec.scheduling == "event-driven":
            self._run_event_driven(deployment, recorder, queues, actions,
                                   live_windows, stats)
        else:
            self._run_lockstep(deployment, recorder, queues, actions,
                               live_windows, stats)
        # Close any fault window that is still open past the last op.
        for pending in sorted(actions):
            for action, phase in actions[pending]:
                if action == "end":
                    self._apply_fault(deployment, recorder, action, phase, live_windows)

        deployment.drain(5.0)
        deployment.unmount_all()
        deployment.drain(1.0)
        recorder.record("scenario_done", time=sim.now(), ops=spec.total_ops)

        stats["events"] = len(recorder)
        stats["quorum_calls"] = recorder.count("quorum")
        stats["commits"] = recorder.count("commit")
        stats["lock_acquisitions"] = recorder.count("lock")
        if recorder.count("txn_begin"):
            stats["txn_commits"] = recorder.count("txn_commit")
            stats["txn_aborts"] = recorder.count("txn_abort")
        if deployment.coalescer is not None:
            stats["coalesced_reads"] = deployment.coalescer.hits
            stats["coalescer_misses"] = deployment.coalescer.misses
        fingerprint = recorder.fingerprint()
        violations = check_all(recorder, deployment,
                               staleness=spec.metadata_expiration,
                               lock_lease=spec.lock_lease)
        return ScenarioResult(spec=spec, trace=recorder, fingerprint=fingerprint,
                              violations=violations, stats=stats)


def run_scenario(seed: int, mix: str = "fault-free", agents: int = 3,
                 ops_per_agent: int = 10, variant: str | None = None) -> ScenarioResult:
    """Generate the spec for ``(seed, mix)`` and run it (the test entry point)."""
    spec = ScenarioSpec.generate(seed, mix=mix, agents=agents,
                                 ops_per_agent=ops_per_agent, variant=variant)
    return ScenarioRunner(spec).run()
