"""The scenario engine's trace recorder.

A scenario run produces one totally ordered *history*: every file-system
operation (open/read/write/fsync/close), every lock transition, every DepSky
quorum call, every fault injection and every health transition, stamped with
the simulated time at which it happened and a global sequence number.  The
invariant checkers of :mod:`repro.scenarios.invariants` consume this history
the way a Jepsen checker consumes an operation log.

The recorder doubles as the replay oracle: :meth:`TraceRecorder.fingerprint`
hashes the canonical JSON serialisation of the whole history, so two runs of
the same :class:`~repro.scenarios.spec.ScenarioSpec` can be compared for
*byte-identical* equality — the property that makes "rerun the failing seed"
a faithful reproduction rather than a different interleaving.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.clouds.dispatch import QuorumCallStats


def _scalar(value: Any) -> Any:
    """Coerce one event field into a JSON-stable scalar (or list of scalars)."""
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (tuple, list)):
        return [_scalar(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _scalar(v) for k, v in value.items()}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


@dataclass(frozen=True)
class TraceEvent:
    """One entry of a scenario history."""

    seq: int
    time: float
    kind: str
    agent: str | None
    fields: dict[str, Any] = field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        """Convenience accessor for one event field."""
        return self.fields.get(key, default)

    def to_json(self) -> str:
        """Canonical JSON serialisation (stable key order, exact floats)."""
        payload = {"seq": self.seq, "time": self.time, "kind": self.kind,
                   "agent": self.agent}
        payload.update(sorted(self.fields.items()))
        return json.dumps(payload, sort_keys=False, separators=(",", ":"))


#: Declared event schema: every trace kind the codebase may emit, mapped to
#: the exact set of fields it carries.  This registry is the contract between
#: the emitters (``SCFSAgent._emit``, ``recorder.record``) and the stringly
#: typed consumers in :mod:`repro.scenarios.invariants`: the static analyzer
#: (``python -m repro.analysis``) flags any emission with an undeclared kind
#: or field (TRC001/TRC002) and any checker read of a field that no selected
#: kind declares (TRC003).  Adding an event means adding it here first.
TRACE_SCHEMA: dict[str, frozenset[str]] = {
    # ---- file-system operations (SCFSAgent) ----
    "open": frozenset({"path", "file_id", "digest", "version", "served",
                       "write", "created", "locked", "handle", "began"}),
    "read": frozenset({"path", "handle", "offset", "size"}),
    "write": frozenset({"path", "handle", "offset", "size"}),
    "fsync": frozenset({"path", "handle", "digest", "size"}),
    "close": frozenset({"path", "file_id", "handle", "dirty", "digest",
                        "version", "size", "blocking"}),
    "upload": frozenset({"path", "file_id", "digest", "version", "background",
                         "txn"}),
    "commit": frozenset({"path", "file_id", "digest", "version", "background",
                         "txn"}),
    "unlink": frozenset({"path", "file_id"}),
    # ---- coordination ----
    "lock": frozenset({"lock"}),
    "unlock": frozenset({"lock"}),
    # ---- transactions ----
    "txn_begin": frozenset({"txn"}),
    "txn_commit": frozenset({"txn", "began", "attempts", "reads", "writes",
                             "renamed_from", "renamed_to", "files"}),
    "txn_abort": frozenset({"txn", "reason", "reads", "writes"}),
    # ---- cloud backend ----
    "quorum": frozenset({"op", "unit", "required", "charged", "reached",
                         "winners", "outcomes", "hedged", "probes", "demoted"}),
    "health": frozenset({"cloud", "state"}),
    # ---- scenario engine ----
    "setup_done": frozenset({"files", "pooled"}),
    "agent_crash": frozenset({"lease"}),
    "agent_restart": frozenset({"crashed_at"}),
    "fault_start": frozenset({"target", "fault", "factor"}),
    "fault_end": frozenset({"target", "fault", "factor"}),
    "op_error": frozenset({"op", "path", "benign", "error"}),
    "scenario_done": frozenset({"ops"}),
}


def summarize_quorum(stats: QuorumCallStats) -> dict[str, Any]:
    """Flatten one quorum call's statistics into JSON-stable trace fields."""
    return {
        "required": stats.required,
        "charged": stats.charged,
        "reached": stats.reached,
        "winners": list(stats.winner_clouds),
        "outcomes": [[t.cloud, t.status.value, t.stage, t.resolved_at]
                     for t in stats.traces],
        "hedged": stats.hedged,
        "probes": stats.probes,
        "demoted": list(stats.demoted),
    }


class TraceRecorder:
    """Append-only, totally ordered event log of one scenario run.

    The :meth:`record` method matches the :data:`~repro.core.agent.EventSink`
    signature, so a recorder can be handed directly to
    :meth:`~repro.core.deployment.SCFSDeployment.create_agent`.
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._seq = itertools.count()

    # ------------------------------------------------------------- recording

    def record(self, kind: str, agent: str | None = None, time: float = 0.0,
               **fields: Any) -> TraceEvent:
        """Append one event; returns it (mostly for tests)."""
        event = TraceEvent(
            seq=next(self._seq), time=float(time), kind=kind, agent=agent,
            fields={key: _scalar(value) for key, value in fields.items()},
        )
        self.events.append(event)
        return event

    def quorum_sink(self, agent: str, sim) -> Any:
        """Build a :attr:`DepSkyClient.on_quorum` observer bound to ``agent``."""

        def on_quorum(op: str, unit_id: str, stats: QuorumCallStats) -> None:
            self.record("quorum", agent=agent, time=sim.now(), op=op,
                        unit=unit_id, **summarize_quorum(stats))

        return on_quorum

    def health_sink(self, agent: str) -> Any:
        """Build a :attr:`CloudHealthTracker.on_transition` observer."""

        def on_transition(cloud: str, state: str, now: float) -> None:
            self.record("health", agent=agent, time=now, cloud=cloud, state=state)

        return on_transition

    # --------------------------------------------------------------- queries

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, *kinds: str) -> Iterator[TraceEvent]:
        """Iterate the events of the given kinds, in sequence order."""
        wanted = set(kinds)
        return (e for e in self.events if e.kind in wanted)

    def count(self, kind: str) -> int:
        """Number of events of one kind."""
        return sum(1 for e in self.events if e.kind == kind)

    # ---------------------------------------------------------------- replay

    def to_jsonl(self) -> str:
        """The whole history as canonical JSON lines."""
        return "\n".join(event.to_json() for event in self.events)

    def fingerprint(self) -> str:
        """SHA-256 over the canonical serialisation: the replay identity.

        Two scenario runs are *byte-identical* iff their fingerprints match —
        every operation, timestamp, digest, quorum outcome and fault window
        participates in the hash.
        """
        return hashlib.sha256(self.to_jsonl().encode()).hexdigest()
