"""Replay one scenario from the command line.

The sweep in ``tests/scenarios/test_random_scenarios.py`` prints this exact
invocation when a seed fails; running it reproduces the identical trace::

    PYTHONPATH=src python -m repro.scenarios --seed 17 --mix crash-hang

``--dump-trace`` prints the full JSONL history (diffable between runs).
"""

from __future__ import annotations

import argparse
import sys

from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import FAULT_MIXES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.scenarios",
                                     description=__doc__.split("\n\n")[0])
    parser.add_argument("--seed", type=int, required=True,
                        help="scenario seed (the whole run derives from it)")
    parser.add_argument("--mix", choices=FAULT_MIXES, default="fault-free",
                        help="fault mix (default: fault-free)")
    parser.add_argument("--agents", type=int, default=3,
                        help="number of concurrent agents (default: 3)")
    parser.add_argument("--ops", type=int, default=10,
                        help="workload operations per agent (default: 10)")
    parser.add_argument("--variant", default=None,
                        help="force a Table 2 variant (default: seed-derived)")
    parser.add_argument("--dump-trace", action="store_true",
                        help="print the full JSONL trace after the report")
    args = parser.parse_args(argv)

    result = run_scenario(args.seed, mix=args.mix, agents=args.agents,
                          ops_per_agent=args.ops, variant=args.variant)
    print(result.report())
    if args.dump_trace:
        print(result.trace.to_jsonl())
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
