"""Jepsen-style invariant checkers over a scenario history.

Each checker consumes the totally ordered trace of one scenario run (see
:mod:`repro.scenarios.trace`) — plus, for durability, the deployment's
cloud-side ground truth — and returns the violations it found.  The four
checkers correspond to the paper's headline guarantees:

1. **Consistency-on-close** (§2.3) — an anchored read never serves a version
   older than the last close whose commit *completed* before the read's
   metadata could have been cached (the metadata cache bounds staleness to
   its expiration; with expiration 0 the check is strict).
2. **Mutual exclusion** (§2.5.1) — at most one agent holds the write lock of
   a file at any instant of the history.
3. **Durability / replication** (§2.5, Table 1) — every committed version
   still anchored at the end of the run is reconstructible from the blocks
   the providers *actually* hold: at least ``f + 1`` digest-verified blocks
   exist, replication never silently shrank below ``n - f`` minus the clouds
   that were write-faulty when the version was pushed, and a fresh DepSky
   client can re-assemble the exact payload.
4. **Commit ordering** (§3.1) — the non-blocking (and blocking) close pushes
   the data to the cloud(s) *before* the metadata update, and releases the
   write lock only *after* the metadata update, for every version.

Checkers never mutate the deployment; the durability checker's end-to-end
read runs through an uncharged DepSky client, so it neither advances the
simulated clock nor appends to the trace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.core.backend import SingleCloudBackend
from repro.core.modes import BackendKind
from repro.crypto.hashing import content_digest
from repro.depsky.dataunit import DataUnitMetadata, VersionRecord
from repro.depsky.protocol import _BLOCK_HEADER, DepSkyClient
from repro.scenarios.trace import TraceRecorder
from repro.simenv.failures import FaultKind

#: Cloud fault kinds that can reduce the number of *stored, verifiable* copies
#: of a version written while they are active (an UNAVAILABLE cloud triggers
#: preferred-quorum spill-over instead, so it does not shrink replication).
_WRITE_FAULTS = (FaultKind.CORRUPTION, FaultKind.DROP_WRITES, FaultKind.BYZANTINE)


@dataclass(frozen=True)
class Violation:
    """One invariant violation, anchored to the event that exposed it."""

    invariant: str
    message: str
    seq: int | None = None

    def __str__(self) -> str:
        anchor = f" @seq={self.seq}" if self.seq is not None else ""
        return f"[{self.invariant}]{anchor} {self.message}"


# ---------------------------------------------------------------------------
# 1. consistency-on-close
# ---------------------------------------------------------------------------


def check_consistency_on_close(trace: TraceRecorder,
                               staleness: float = 0.0) -> list[Violation]:
    """Anchored reads never serve a version older than the last completed close.

    ``staleness`` is the agents' metadata-cache expiration: a commit only
    becomes *required* reading once it completed strictly more than
    ``staleness`` simulated seconds before the open (a fresh cache entry may
    legitimately hide anything younger).
    """
    violations: list[Violation] = []
    # (file_id) -> list of committed (time, version); (file_id, version) -> digest.
    commits: dict[str, list[tuple[float, int]]] = {}
    digest_of: dict[tuple[str, int], str] = {}
    for event in trace.by_kind("close", "commit"):
        fid = event.get("file_id")
        version = event.get("version")
        digest = event.get("digest")
        if not fid or not digest:
            continue
        known = digest_of.setdefault((fid, version), digest)
        if known != digest:
            violations.append(Violation(
                "consistency-on-close",
                f"file {fid} version {version} recorded two digests "
                f"({known[:12]}… vs {digest[:12]}…)",
                seq=event.seq,
            ))
        if event.kind == "commit":
            commits.setdefault(fid, []).append((event.time, version))

    for event in trace.by_kind("open"):
        if not event.get("served"):
            continue
        fid = event.get("file_id")
        served_version = event.get("version")
        served_digest = event.get("digest")
        # Freshness is judged at the instant the open took its metadata
        # snapshot (`began`), not at event emission: the data fetch between
        # the two can take seconds under a degraded cloud.
        reference = event.get("began", event.time)
        required = 0
        for time, version in commits.get(fid, ()):
            # Strict inequality: a commit landing at exactly the staleness
            # boundary may still be hidden by a just-fresh cache entry.
            if time < reference - staleness and version > required:
                required = version
        if served_version < required:
            violations.append(Violation(
                "consistency-on-close",
                f"{event.agent} opened {event.get('path')} and was served "
                f"version {served_version}, but version {required} had "
                f"completed its close more than {staleness}s earlier",
                seq=event.seq,
            ))
        if served_digest and digest_of.get((fid, served_version),
                                           served_digest) != served_digest:
            violations.append(Violation(
                "consistency-on-close",
                f"{event.agent} was served digest {served_digest[:12]}… for "
                f"{event.get('path')} v{served_version}, which no close of "
                "that version produced",
                seq=event.seq,
            ))
    return violations


# ---------------------------------------------------------------------------
# 2. mutual exclusion
# ---------------------------------------------------------------------------


def check_mutual_exclusion(trace: TraceRecorder) -> list[Violation]:
    """At most one agent holds the write lock of a file at any instant."""
    violations: list[Violation] = []
    holder: dict[str, str] = {}
    for event in trace.by_kind("lock", "unlock"):
        name = event.get("lock")
        if event.kind == "lock":
            current = holder.get(name)
            if current is not None and current != event.agent:
                violations.append(Violation(
                    "mutual-exclusion",
                    f"{event.agent} acquired {name} while {current} still held it",
                    seq=event.seq,
                ))
            holder[name] = event.agent
        else:
            if holder.get(name) == event.agent:
                del holder[name]
    return violations


# ---------------------------------------------------------------------------
# 3. durability / replication
# ---------------------------------------------------------------------------


def _latest_commits(trace: TraceRecorder) -> dict[str, object]:
    """Last commit event per file id, excluding files that were ever unlinked.

    An unlinked file may be purged by the garbage collector (including a
    version committed by a background upload that completed *after* the
    unlink, which merges the deleted flag), so durability is only demanded of
    file ids that were never deleted.  Recreating a path mints a new file id,
    so the exclusion costs no coverage.
    """
    commits: dict[str, object] = {}
    for event in trace.by_kind("commit"):
        fid = event.get("file_id")
        if fid:
            commits[fid] = event
    for event in trace.by_kind("unlink"):
        commits.pop(event.get("file_id"), None)
    return commits


def _find_record(clouds, unit_id: str, digest: str) -> VersionRecord | None:
    """The version record for ``digest`` from any cloud's raw metadata copy."""
    best: VersionRecord | None = None
    for cloud in clouds:
        blob = cloud.raw_object(DepSkyClient._meta_key(unit_id))
        if blob is None:
            continue
        try:
            copy = DataUnitMetadata.from_bytes(blob)
        except ValueError:
            continue  # this provider's copy is corrupted — that's what f is for
        record = copy.find_by_digest(digest)
        if record is not None and (best is None or record.version > best.version):
            best = record
    return best


def _verified_blocks(clouds, unit_id: str, record: VersionRecord) -> int:
    """How many providers hold a digest-verified block of one version.

    The digest covers the whole stored blob — header, key share and coded
    payload — matching the read path's verification rule.
    """
    verified = 0
    for index, cloud in enumerate(clouds):
        blob = cloud.raw_object(DepSkyClient._block_key(unit_id, record.version, index))
        if blob is None or len(blob) < _BLOCK_HEADER.size:
            continue
        if index < len(record.block_digests) \
                and content_digest(blob) == record.block_digests[index]:
            verified += 1
    return verified


def _write_faulty_clouds(clouds, when: float) -> int:
    """Clouds whose active faults could corrupt/drop a write at ``when``."""
    return sum(
        1 for cloud in clouds
        if any(cloud.failures.is_active(kind, when) for kind in _WRITE_FAULTS)
    )


def check_durability(trace: TraceRecorder, deployment) -> list[Violation]:
    """Every version still anchored at the end of the run is reconstructible."""
    violations: list[Violation] = []
    clouds = deployment.clouds
    config = deployment.config
    commits = _latest_commits(trace)

    if config.backend is not BackendKind.COC:
        for fid, event in commits.items():
            digest = event.get("digest")
            blob = clouds[0].raw_object(SingleCloudBackend._key(fid, digest))
            if blob is None or content_digest(blob) != digest:
                violations.append(Violation(
                    "durability",
                    f"single-cloud version {digest[:12]}… of {fid} is missing "
                    "or corrupted on the provider",
                    seq=event.seq,
                ))
        return violations

    f = config.fault_tolerance
    n = len(clouds)
    k = f + 1
    for fid, event in commits.items():
        digest = event.get("digest")
        record = _find_record(clouds, fid, digest)
        if record is None:
            violations.append(Violation(
                "durability",
                f"no provider's metadata copy lists the committed version "
                f"{digest[:12]}… of {fid}",
                seq=event.seq,
            ))
            continue
        verified = _verified_blocks(clouds, fid, record)
        # An UNAVAILABLE preferred cloud spills the block over to a fallback
        # cloud, so only write-corrupting faults may shrink the stored count.
        floor = max(k, (n - f) - _write_faulty_clouds(clouds, event.time))
        if verified < floor:
            violations.append(Violation(
                "durability",
                f"version {digest[:12]}… of {fid} has only {verified} "
                f"verified blocks (needs ≥ {floor}; n={n}, f={f})",
                seq=event.seq,
            ))
            continue
        writer = event.agent
        filesystem = deployment.filesystems.get(writer)
        if filesystem is None:
            continue
        reader = DepSkyClient(
            deployment.sim, clouds, filesystem.agent.principal, f=f,
            encrypt=config.encrypt_data, charge_latency=False,
        )
        try:
            result = reader.read_matching(fid, digest)
        except (ReproError, ValueError) as exc:
            violations.append(Violation(
                "durability",
                f"version {digest[:12]}… of {fid} could not be re-assembled "
                f"from the live clouds: {exc}",
                seq=event.seq,
            ))
            continue
        if content_digest(result.data) != digest:
            violations.append(Violation(
                "durability",
                f"re-assembled payload of {fid} does not match its anchored "
                f"digest {digest[:12]}…",
                seq=event.seq,
            ))
    return violations


# ---------------------------------------------------------------------------
# 4. commit ordering (upload → metadata update → unlock)
# ---------------------------------------------------------------------------


def check_commit_ordering(trace: TraceRecorder) -> list[Violation]:
    """Close commits push data before metadata, and unlock only after both."""
    violations: list[Violation] = []
    uploads: dict[tuple[str, str, int], int] = {}
    commit_seqs: dict[tuple[str, str, int], int] = {}
    closes: dict[tuple[str, str], list] = {}
    unlocks: dict[tuple[str, str], list[int]] = {}
    for event in trace.events:
        if event.kind == "upload":
            uploads[(event.agent, event.get("file_id"), event.get("version"))] = event.seq
        elif event.kind == "commit":
            commit_seqs[(event.agent, event.get("file_id"), event.get("version"))] = event.seq
        elif event.kind == "close" and event.get("dirty"):
            closes.setdefault((event.agent, event.get("file_id")), []).append(event)
        elif event.kind == "unlock":
            name = event.get("lock", "")
            if name.startswith("filelock:"):
                fid = name[len("filelock:"):]
                unlocks.setdefault((event.agent, fid), []).append(event.seq)

    for key, commit_seq in commit_seqs.items():
        upload_seq = uploads.get(key)
        agent, fid, version = key
        if upload_seq is None:
            violations.append(Violation(
                "commit-ordering",
                f"{agent} committed {fid} v{version} without a recorded upload",
                seq=commit_seq,
            ))
        elif upload_seq >= commit_seq:
            violations.append(Violation(
                "commit-ordering",
                f"{agent} updated the metadata of {fid} v{version} before the "
                "upload finished",
                seq=commit_seq,
            ))

    for (agent, fid), seqs in unlocks.items():
        for unlock_seq in seqs:
            for close in closes.get((agent, fid), ()):
                if close.seq > unlock_seq:
                    continue
                commit_seq = commit_seqs.get((agent, fid, close.get("version")))
                if commit_seq is None or commit_seq > unlock_seq:
                    violations.append(Violation(
                        "commit-ordering",
                        f"{agent} released the write lock of {fid} before the "
                        f"commit of version {close.get('version')} completed",
                        seq=unlock_seq,
                    ))
    return violations


# ---------------------------------------------------------------------------
# unexpected errors + entry point
# ---------------------------------------------------------------------------


def check_unexpected_errors(trace: TraceRecorder) -> list[Violation]:
    """Surface non-benign operation errors the runner recorded."""
    return [
        Violation("unexpected-error",
                  f"{event.agent} {event.get('op')} on {event.get('path')}: "
                  f"{event.get('error')}",
                  seq=event.seq)
        for event in trace.by_kind("op_error")
        if not event.get("benign")
    ]


def check_all(trace: TraceRecorder, deployment=None,
              staleness: float = 0.0) -> list[Violation]:
    """Run every checker; ``deployment`` enables the durability ground check."""
    violations = []
    violations += check_consistency_on_close(trace, staleness=staleness)
    violations += check_mutual_exclusion(trace)
    violations += check_commit_ordering(trace)
    violations += check_unexpected_errors(trace)
    if deployment is not None:
        violations += check_durability(trace, deployment)
    return violations
