"""Jepsen-style invariant checkers over a scenario history.

Each checker consumes the totally ordered trace of one scenario run (see
:mod:`repro.scenarios.trace`) — plus, for durability, the deployment's
cloud-side ground truth — and returns the violations it found.  The four
checkers correspond to the paper's headline guarantees:

1. **Consistency-on-close** (§2.3) — an anchored read never serves a version
   older than the last close whose commit *completed* before the read's
   metadata could have been cached (the metadata cache bounds staleness to
   its expiration; with expiration 0 the check is strict).
2. **Mutual exclusion** (§2.5.1) — at most one agent holds the write lock of
   a file at any instant of the history.
3. **Durability / replication** (§2.5, Table 1) — every committed version
   still anchored at the end of the run is reconstructible from the blocks
   the providers *actually* hold: at least ``f + 1`` digest-verified blocks
   exist, replication never silently shrank below ``n - f`` minus the clouds
   that were write-faulty when the version was pushed, and a fresh DepSky
   client can re-assemble the exact payload.
4. **Commit ordering** (§3.1) — the non-blocking (and blocking) close pushes
   the data to the cloud(s) *before* the metadata update, and releases the
   write lock only *after* the metadata update, for every version.
5. **Serializability** (the transactional layer) — the committed history,
   reconstructed from the ``txn_commit`` events plus every plain ``commit``
   (a write-only singleton transaction), has an acyclic read-from /
   write-order / anti-dependency graph; no version has two writers and no
   committed transaction is torn.
6. **Version linearizability** (the coordination anchor) — per file, the
   anchored version sequence is strictly increasing and gapless in history
   order: the metadata entry behaves as a linearizable CAS register.

Crash semantics: an ``agent_crash`` event marks everything the agent closed
but had not committed as legitimately lost (the documented non-blocking data
loss window), and lock takeovers after the crashed holder's lease expired are
legal (``lock_lease`` below).

Checkers never mutate the deployment; the durability checker's end-to-end
read runs through an uncharged DepSky client, so it neither advances the
simulated clock nor appends to the trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.core.backend import SingleCloudBackend
from repro.core.modes import BackendKind
from repro.crypto.hashing import content_digest
from repro.depsky.dataunit import DataUnitMetadata, VersionRecord
from repro.depsky.protocol import _BLOCK_HEADER, DepSkyClient
from repro.scenarios.trace import TraceRecorder
from repro.simenv.failures import FaultKind

#: Cloud fault kinds that can reduce the number of *stored, verifiable* copies
#: of a version written while they are active (an UNAVAILABLE cloud triggers
#: preferred-quorum spill-over instead, so it does not shrink replication).
_WRITE_FAULTS = (FaultKind.CORRUPTION, FaultKind.DROP_WRITES, FaultKind.BYZANTINE)


@dataclass(frozen=True)
class Violation:
    """One invariant violation, anchored to the event that exposed it."""

    invariant: str
    message: str
    seq: int | None = None

    def __str__(self) -> str:
        anchor = f" @seq={self.seq}" if self.seq is not None else ""
        return f"[{self.invariant}]{anchor} {self.message}"


# ---------------------------------------------------------------------------
# crash bookkeeping shared by several checkers
# ---------------------------------------------------------------------------


def _crash_filter(trace: TraceRecorder):
    """``lost(event) -> bool`` for closes wiped out by an agent crash.

    A dirty close whose agent crashed before the matching commit landed is
    the documented non-blocking data-loss window, not a violation: its
    version was never anchored, so no guarantee attaches to it.
    """
    crash_times: dict[str, list[float]] = {}
    for event in trace.by_kind("agent_crash"):
        crash_times.setdefault(event.agent, []).append(event.time)
    if not crash_times:
        return lambda event: False
    commit_times: dict[tuple, list[float]] = {}
    for e in trace.by_kind("commit"):
        key = (e.agent, e.get("file_id"), e.get("version"))
        commit_times.setdefault(key, []).append(e.time)

    def lost(event) -> bool:
        crashes = [t for t in crash_times.get(event.agent, ())
                   if t >= event.time]
        if not crashes:
            return False
        # The close survives only if its commit landed before the crash that
        # follows it.  A commit of the same (agent, file, version) *after* a
        # restart is a different, re-issued write — it does not resurrect the
        # close that the crash wiped out.
        wiped_at = min(crashes)
        key = (event.agent, event.get("file_id"), event.get("version"))
        return not any(event.time <= t <= wiped_at
                       for t in commit_times.get(key, ()))

    return lost


# ---------------------------------------------------------------------------
# 1. consistency-on-close
# ---------------------------------------------------------------------------


def check_consistency_on_close(trace: TraceRecorder,
                               staleness: float = 0.0) -> list[Violation]:
    """Anchored reads never serve a version older than the last completed close.

    ``staleness`` is the agents' metadata-cache expiration: a commit only
    becomes *required* reading once it completed strictly more than
    ``staleness`` simulated seconds before the open (a fresh cache entry may
    legitimately hide anything younger).
    """
    violations: list[Violation] = []
    lost_in_crash = _crash_filter(trace)
    # (file_id) -> list of committed (time, version); (file_id, version) -> digest.
    commits: dict[str, list[tuple[float, int]]] = {}
    digest_of: dict[tuple[str, int], str] = {}
    for event in trace.by_kind("close", "commit"):
        fid = event.get("file_id")
        version = event.get("version")
        digest = event.get("digest")
        if not fid or not digest:
            continue
        if event.kind == "close" and lost_in_crash(event):
            continue
        known = digest_of.setdefault((fid, version), digest)
        if known != digest:
            violations.append(Violation(
                "consistency-on-close",
                f"file {fid} version {version} recorded two digests "
                f"({known[:12]}… vs {digest[:12]}…)",
                seq=event.seq,
            ))
        if event.kind == "commit":
            commits.setdefault(fid, []).append((event.time, version))

    for event in trace.by_kind("open"):
        if not event.get("served"):
            continue
        fid = event.get("file_id")
        served_version = event.get("version")
        served_digest = event.get("digest")
        # Freshness is judged at the instant the open took its metadata
        # snapshot (`began`), not at event emission: the data fetch between
        # the two can take seconds under a degraded cloud.
        reference = event.get("began", event.time)
        required = 0
        for time, version in commits.get(fid, ()):
            # Strict inequality: a commit landing at exactly the staleness
            # boundary may still be hidden by a just-fresh cache entry.
            if time < reference - staleness and version > required:
                required = version
        if served_version < required:
            violations.append(Violation(
                "consistency-on-close",
                f"{event.agent} opened {event.get('path')} and was served "
                f"version {served_version}, but version {required} had "
                f"completed its close more than {staleness}s earlier",
                seq=event.seq,
            ))
        if served_digest and digest_of.get((fid, served_version),
                                           served_digest) != served_digest:
            violations.append(Violation(
                "consistency-on-close",
                f"{event.agent} was served digest {served_digest[:12]}… for "
                f"{event.get('path')} v{served_version}, which no close of "
                "that version produced",
                seq=event.seq,
            ))
    return violations


# ---------------------------------------------------------------------------
# 2. mutual exclusion
# ---------------------------------------------------------------------------


def check_mutual_exclusion(trace: TraceRecorder,
                           lock_lease: float = math.inf) -> list[Violation]:
    """At most one agent holds the write lock of a file at any instant.

    ``lock_lease`` is the deployment's lease: both coordination services time
    lock leases from the acquisition, so a takeover at least ``lock_lease``
    seconds after the holder's acquisition is the lock service working as
    designed (the crashed-holder recovery path), not a violation.
    """
    violations: list[Violation] = []
    holder: dict[str, tuple[str, float]] = {}
    for event in trace.by_kind("lock", "unlock"):
        name = event.get("lock")
        if event.kind == "lock":
            current = holder.get(name)
            if (current is not None and current[0] != event.agent
                    and event.time < current[1] + lock_lease):
                violations.append(Violation(
                    "mutual-exclusion",
                    f"{event.agent} acquired {name} while {current[0]} still held it",
                    seq=event.seq,
                ))
            holder[name] = (event.agent, event.time)
        else:
            if name in holder and holder[name][0] == event.agent:
                del holder[name]
    return violations


# ---------------------------------------------------------------------------
# 3. durability / replication
# ---------------------------------------------------------------------------


def _latest_commits(trace: TraceRecorder) -> dict[str, object]:
    """Last commit event per file id, excluding files that were ever unlinked.

    An unlinked file may be purged by the garbage collector (including a
    version committed by a background upload that completed *after* the
    unlink, which merges the deleted flag), so durability is only demanded of
    file ids that were never deleted.  Recreating a path mints a new file id,
    so the exclusion costs no coverage.
    """
    commits: dict[str, object] = {}
    for event in trace.by_kind("commit"):
        fid = event.get("file_id")
        if fid:
            commits[fid] = event
    for event in trace.by_kind("unlink"):
        commits.pop(event.get("file_id"), None)
    return commits


def _find_record(clouds, unit_id: str, digest: str) -> VersionRecord | None:
    """The version record for ``digest`` from any cloud's raw metadata copy."""
    best: VersionRecord | None = None
    for cloud in clouds:
        blob = cloud.raw_object(DepSkyClient._meta_key(unit_id))
        if blob is None:
            continue
        try:
            copy = DataUnitMetadata.from_bytes(blob)
        except ValueError:
            continue  # this provider's copy is corrupted — that's what f is for
        record = copy.find_by_digest(digest)
        if record is not None and (best is None or record.version > best.version):
            best = record
    return best


def _verified_blocks(clouds, unit_id: str, record: VersionRecord) -> int:
    """How many providers hold a digest-verified block of one version.

    The digest covers the whole stored blob — header, key share and coded
    payload — matching the read path's verification rule.
    """
    verified = 0
    for index, cloud in enumerate(clouds):
        blob = cloud.raw_object(DepSkyClient._block_key(unit_id, record.version, index))
        if blob is None or len(blob) < _BLOCK_HEADER.size:
            continue
        if index < len(record.block_digests) \
                and content_digest(blob) == record.block_digests[index]:
            verified += 1
    return verified


def _write_faulty_clouds(clouds, when: float) -> int:
    """Clouds whose active faults could corrupt/drop a write at ``when``."""
    return sum(
        1 for cloud in clouds
        if any(cloud.failures.is_active(kind, when) for kind in _WRITE_FAULTS)
    )


def check_durability(trace: TraceRecorder, deployment) -> list[Violation]:
    """Every version still anchored at the end of the run is reconstructible."""
    violations: list[Violation] = []
    clouds = deployment.clouds
    config = deployment.config
    commits = _latest_commits(trace)

    if config.backend is not BackendKind.COC:
        for fid, event in commits.items():
            digest = event.get("digest")
            blob = clouds[0].raw_object(SingleCloudBackend._key(fid, digest))
            if blob is None or content_digest(blob) != digest:
                violations.append(Violation(
                    "durability",
                    f"single-cloud version {digest[:12]}… of {fid} is missing "
                    "or corrupted on the provider",
                    seq=event.seq,
                ))
        return violations

    f = config.fault_tolerance
    n = len(clouds)
    k = f + 1
    for fid, event in commits.items():
        digest = event.get("digest")
        record = _find_record(clouds, fid, digest)
        if record is None:
            violations.append(Violation(
                "durability",
                f"no provider's metadata copy lists the committed version "
                f"{digest[:12]}… of {fid}",
                seq=event.seq,
            ))
            continue
        verified = _verified_blocks(clouds, fid, record)
        # An UNAVAILABLE preferred cloud spills the block over to a fallback
        # cloud, so only write-corrupting faults may shrink the stored count.
        floor = max(k, (n - f) - _write_faulty_clouds(clouds, event.time))
        if verified < floor:
            violations.append(Violation(
                "durability",
                f"version {digest[:12]}… of {fid} has only {verified} "
                f"verified blocks (needs ≥ {floor}; n={n}, f={f})",
                seq=event.seq,
            ))
            continue
        writer = event.agent
        filesystem = deployment.filesystems.get(writer)
        if filesystem is None:
            continue
        reader = DepSkyClient(
            deployment.sim, clouds, filesystem.agent.principal, f=f,
            encrypt=config.encrypt_data, charge_latency=False,
        )
        try:
            result = reader.read_matching(fid, digest)
        except (ReproError, ValueError) as exc:
            violations.append(Violation(
                "durability",
                f"version {digest[:12]}… of {fid} could not be re-assembled "
                f"from the live clouds: {exc}",
                seq=event.seq,
            ))
            continue
        if content_digest(result.data) != digest:
            violations.append(Violation(
                "durability",
                f"re-assembled payload of {fid} does not match its anchored "
                f"digest {digest[:12]}…",
                seq=event.seq,
            ))
    return violations


# ---------------------------------------------------------------------------
# 4. commit ordering (upload → metadata update → unlock)
# ---------------------------------------------------------------------------


def check_commit_ordering(trace: TraceRecorder) -> list[Violation]:
    """Close commits push data before metadata, and unlock only after both."""
    violations: list[Violation] = []
    lost_in_crash = _crash_filter(trace)
    uploads: dict[tuple[str, str, int], int] = {}
    commit_seqs: dict[tuple[str, str, int], int] = {}
    closes: dict[tuple[str, str], list] = {}
    unlocks: dict[tuple[str, str], list[int]] = {}
    for event in trace.events:
        if event.kind == "upload":
            uploads[(event.agent, event.get("file_id"), event.get("version"))] = event.seq
        elif event.kind == "commit":
            commit_seqs[(event.agent, event.get("file_id"), event.get("version"))] = event.seq
        elif event.kind == "close" and event.get("dirty"):
            if lost_in_crash(event):
                continue
            closes.setdefault((event.agent, event.get("file_id")), []).append(event)
        elif event.kind == "unlock":
            name = event.get("lock", "")
            if name.startswith("filelock:"):
                fid = name[len("filelock:"):]
                unlocks.setdefault((event.agent, fid), []).append(event.seq)

    for key, commit_seq in commit_seqs.items():
        upload_seq = uploads.get(key)
        agent, fid, version = key
        if upload_seq is None:
            violations.append(Violation(
                "commit-ordering",
                f"{agent} committed {fid} v{version} without a recorded upload",
                seq=commit_seq,
            ))
        elif upload_seq >= commit_seq:
            violations.append(Violation(
                "commit-ordering",
                f"{agent} updated the metadata of {fid} v{version} before the "
                "upload finished",
                seq=commit_seq,
            ))

    for (agent, fid), seqs in unlocks.items():
        for unlock_seq in seqs:
            for close in closes.get((agent, fid), ()):
                if close.seq > unlock_seq:
                    continue
                commit_seq = commit_seqs.get((agent, fid, close.get("version")))
                if commit_seq is None or commit_seq > unlock_seq:
                    violations.append(Violation(
                        "commit-ordering",
                        f"{agent} released the write lock of {fid} before the "
                        f"commit of version {close.get('version')} completed",
                        seq=unlock_seq,
                    ))
    return violations


# ---------------------------------------------------------------------------
# 5. serializability of the committed history
# ---------------------------------------------------------------------------


def _find_cycle(adjacency: dict) -> list | None:
    """One cycle of the directed graph (as a node list), or None if acyclic."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = dict.fromkeys(adjacency, WHITE)
    for root in adjacency:
        if color[root] != WHITE:
            continue
        stack = [(root, iter(adjacency[root]))]
        path = [root]
        color[root] = GREY
        while stack:
            node, neighbours = stack[-1]
            advanced = False
            for nxt in neighbours:
                if color.get(nxt, BLACK) == GREY:
                    return [*path[path.index(nxt):], nxt]
                if color.get(nxt, BLACK) == WHITE:
                    color[nxt] = GREY
                    stack.append((nxt, iter(adjacency[nxt])))
                    path.append(nxt)
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                stack.pop()
                path.pop()
    return None


def check_serializability(trace: TraceRecorder) -> list[Violation]:
    """The committed history is conflict-serializable.

    Nodes are committed transactions (``txn_commit`` events, carrying their
    validated read sets and anchored write sets) plus every plain ``commit``
    event as a write-only singleton transaction.  Per file, the anchored
    version numbers give the total write order; the edges are the classical
    conflict dependencies:

    * **wr** — the writer of version ``v`` precedes every reader of ``v``;
    * **ww** — the writer of ``v`` precedes the writer of the next version;
    * **rw** — a reader of ``v`` precedes the writer of the next version
      (anti-dependency).

    A cycle means no serial order explains the history (lost update, write
    skew, torn multi-file read...).  Structural violations are reported too:
    two writers anchoring the same version (a fork), a committed read of a
    version nobody wrote, and per-file commits tagged with a transaction that
    never committed (a torn transactional commit).
    """
    violations: list[Violation] = []
    reads_of: dict[tuple, list[tuple[str, int]]] = {}
    writes_of: dict[tuple, list[tuple[str, int]]] = {}
    label: dict[tuple, str] = {}
    first_seq: dict[tuple, int] = {}

    committed_txns: set[str] = set()
    for event in trace.by_kind("txn_commit"):
        txn_id = event.get("txn")
        committed_txns.add(txn_id)
        node = ("txn", txn_id)
        label[node] = f"txn {txn_id} by {event.agent}"
        first_seq[node] = event.seq
        reads_of[node] = [(fid, version)
                          for _path, fid, version in event.get("reads", ())]
        writes_of[node] = [(fid, version)
                           for _path, fid, version, _digest in event.get("writes", ())]

    # Anchored writes: every commit event. Transactional ones fold into their
    # txn node; the rest become write-only singletons.
    writer_of: dict[tuple[str, int], tuple] = {}
    for event in trace.by_kind("commit"):
        fid, version = event.get("file_id"), event.get("version")
        if not fid:
            continue
        txn_id = event.get("txn")
        if txn_id is not None:
            node = ("txn", txn_id)
            if txn_id not in committed_txns:
                violations.append(Violation(
                    "serializability",
                    f"torn transactional commit: {event.agent} anchored {fid} "
                    f"v{version} for transaction {txn_id}, which never committed",
                    seq=event.seq,
                ))
                label.setdefault(node, f"torn txn {txn_id} by {event.agent}")
                first_seq.setdefault(node, event.seq)
                writes_of.setdefault(node, []).append((fid, version))
        else:
            node = ("commit", event.agent, fid, version)
            label[node] = f"commit of {fid} v{version} by {event.agent}"
            first_seq[node] = event.seq
            writes_of[node] = [(fid, version)]
        existing = writer_of.get((fid, version))
        if existing is not None and existing != node:
            violations.append(Violation(
                "serializability",
                f"version fork: {label[node]} and {label[existing]} both "
                f"anchored {fid} v{version}",
                seq=event.seq,
            ))
            continue
        writer_of[(fid, version)] = node

    # Per-file write order from the anchored version numbers.
    versions_of: dict[str, list[int]] = {}
    for fid, version in writer_of:
        versions_of.setdefault(fid, []).append(version)
    for chain in versions_of.values():
        chain.sort()

    nodes = sorted(set(reads_of) | set(writes_of))
    adjacency: dict[tuple, set] = {node: set() for node in nodes}

    def next_version(fid: str, version: int) -> int | None:
        chain = versions_of.get(fid, ())
        for candidate in chain:
            if candidate > version:
                return candidate
        return None

    for node, writes in writes_of.items():
        for fid, version in writes:
            if writer_of.get((fid, version)) != node:
                continue  # forked duplicate, already reported
            follower = next_version(fid, version)
            if follower is not None:
                successor = writer_of[(fid, follower)]
                if successor != node:
                    adjacency[node].add(successor)  # ww

    for node, reads in reads_of.items():
        for fid, version in reads:
            writer = writer_of.get((fid, version))
            if writer is None:
                if version > 0 and versions_of.get(fid):
                    violations.append(Violation(
                        "serializability",
                        f"{label[node]} read {fid} v{version}, a version no "
                        "recorded commit anchored",
                        seq=first_seq.get(node),
                    ))
                continue
            if writer != node:
                adjacency[writer].add(node)  # wr
            follower = next_version(fid, version)
            if follower is not None:
                successor = writer_of[(fid, follower)]
                if successor != node:
                    adjacency[node].add(successor)  # rw

    cycle = _find_cycle(adjacency)
    if cycle is not None:
        pretty = " -> ".join(label[node] for node in cycle)
        violations.append(Violation(
            "serializability",
            f"the committed history is not serializable; dependency cycle: {pretty}",
            seq=max(first_seq.get(node, 0) for node in cycle[:-1]),
        ))
    return violations


# ---------------------------------------------------------------------------
# 6. version linearizability of the coordination anchor
# ---------------------------------------------------------------------------


def check_version_linearizability(trace: TraceRecorder) -> list[Violation]:
    """Per file, the anchored version sequence is a linearizable counter.

    Every commit bumps the entry by exactly one on top of the version it
    observed under the write lock, so the history order of the ``commit``
    events must show each file's versions strictly increasing and gapless
    (from whatever version the file first anchored).  A duplicate or
    regression is a fork (two commits anchored over the same base); a gap
    means a commit was lost or reordered — either way the metadata entry
    stopped behaving as a linearizable CAS register.
    """
    violations: list[Violation] = []
    last: dict[str, int] = {}
    for event in trace.by_kind("commit"):
        fid, version = event.get("file_id"), event.get("version")
        if not fid:
            continue
        previous = last.get(fid)
        if previous is not None:
            if version <= previous:
                violations.append(Violation(
                    "linearizability",
                    f"{event.agent} anchored {fid} v{version} after v{previous} "
                    "was already anchored (duplicate/regression — a fork)",
                    seq=event.seq,
                ))
            elif version != previous + 1:
                violations.append(Violation(
                    "linearizability",
                    f"{event.agent} anchored {fid} v{version} directly after "
                    f"v{previous} (gap of {version - previous - 1})",
                    seq=event.seq,
                ))
        last[fid] = max(version, previous or 0)
    return violations


# ---------------------------------------------------------------------------
# unexpected errors + entry point
# ---------------------------------------------------------------------------


def check_unexpected_errors(trace: TraceRecorder) -> list[Violation]:
    """Surface non-benign operation errors the runner recorded."""
    return [
        Violation("unexpected-error",
                  f"{event.agent} {event.get('op')} on {event.get('path')}: "
                  f"{event.get('error')}",
                  seq=event.seq)
        for event in trace.by_kind("op_error")
        if not event.get("benign")
    ]


def check_all(trace: TraceRecorder, deployment=None,
              staleness: float = 0.0,
              lock_lease: float = math.inf) -> list[Violation]:
    """Run every checker; ``deployment`` enables the durability ground check.

    ``lock_lease`` is the deployment's lease duration; the mutual-exclusion
    checker allows lock takeovers once the previous holder's lease expired.
    """
    violations = []
    violations += check_consistency_on_close(trace, staleness=staleness)
    violations += check_mutual_exclusion(trace, lock_lease=lock_lease)
    violations += check_commit_ordering(trace)
    violations += check_serializability(trace)
    violations += check_version_linearizability(trace)
    violations += check_unexpected_errors(trace)
    if deployment is not None:
        violations += check_durability(trace, deployment)
    return violations
