"""Prime a large pool of shared files directly into a deployment's state.

A pooled scenario (``ScenarioSpec.pooled``) starts against a namespace of
10^5+ files.  Creating those files through the regular write path would cost
one full DepSky write plus one coordination round trip per file — minutes of
real time before the first measured operation.  This module installs the
files *as if* a pool owner had written them: the clouds receive the stored
objects a DepSky write would have produced, the coordination replicas receive
the metadata tuples the SCFS Agent would have anchored, and prefix grants to
the pseudo-user ``"*"`` make every file world-readable and world-writable.

Interning keeps the footprint flat: every pool file shares one plaintext
payload, so (with encryption disabled — ``ScenarioSpec.config`` forces
``encrypt_data=False`` for pooled specs) all files share the *same* coded
block blobs, digests and ACL objects; only the per-file keys and the two
serialized metadata blobs (which embed the file's path and unit id) are
per-file, and those are produced by substring substitution on two shared
templates instead of re-serializing ~10^5 JSON documents.

The primed state is byte-for-byte what the regular write path produces, so
reads, writes, appends and the invariant checkers treat pool files exactly
like organically created ones.
"""

from __future__ import annotations

from repro.common.types import Permission
from repro.clouds.access_control import ObjectACL
from repro.clouds.eventual import EventuallyConsistentStore, _StoredObject
from repro.coordination.adapters import _ENTRY, DepSpaceCoordination
from repro.coordination.base import CoordinationService, EntryACL
from repro.coordination.partitioned import PartitionedCoordination
from repro.core.metadata import FileMetadata, FileType
from repro.core.metadata_service import MetadataService
from repro.crypto.erasure import ErasureCoder
from repro.crypto.hashing import content_digest
from repro.crypto.secret_sharing import SecretShare
from repro.depsky.dataunit import DataUnitMetadata, VersionRecord
from repro.depsky.protocol import _BLOCK_HEADER, DepSkyClient, block_blob_digest

#: Pseudo-user owning every pool file.  It is never registered and never runs
#: an agent, so ``unlink`` (owner-only in the workload) skips pool files and
#: ``setfacl`` (owner-only in the coordination service) is never attempted.
POOL_OWNER = "pool"

#: Cloud-key prefix shared by every pool file's DepSky objects; one bucket
#: policy per cloud on this prefix replaces 10^5 per-object grants.
POOL_PREFIX = "depsky/pool-"

#: The shared plaintext every pool file initially contains.
POOL_PAYLOAD = bytes((i * 37 + 11) % 256 for i in range(64))


def pool_file_id(index: int) -> str:
    """Storage id of the ``index``-th pool file.

    The ``pool-`` prefix keeps the ids disjoint from
    :meth:`~repro.simenv.environment.Simulation.fresh_id`'s ``file-``-prefixed
    ids, so files created organically during a pooled run never collide.
    """
    return f"pool-{index:08d}"


def _depspace_replicas(coordination: CoordinationService, key: str) -> list:
    """The DepSpace replicas holding ``key`` (all replicas of its partition)."""
    service = coordination
    if isinstance(service, PartitionedCoordination):
        service = service._service_for(key)
    if not isinstance(service, DepSpaceCoordination):
        raise TypeError(
            "pooled scenarios require DepSpace coordination "
            f"(got {type(service).__name__})"
        )
    return service.rsm.replicas


def _prime_entry(coordination: CoordinationService, key: str, value: bytes,
                 acl_json: str, now: float) -> None:
    """Install one metadata tuple on every replica of the owning partition.

    All replicas receive the *same* fields tuple (tuples are immutable, so
    sharing is safe) — exactly the state a replicated ``cas`` would have
    produced, minus the latency charge.
    """
    fields = (_ENTRY, key, POOL_OWNER, 1, value, acl_json)
    for space in _depspace_replicas(coordination, key):
        space.out(fields, now)


def prime_pool(deployment, spec, recorder=None) -> dict[str, int]:
    """Install ``spec.shared_files`` as committed, world-shared pool files.

    Returns a small stats mapping (files, cloud objects, coordination
    entries) and records one ``setup_done`` trace event when ``recorder`` is
    given.  Requires a cloud-of-clouds deployment with DepSpace coordination
    and encryption disabled (pooled specs configure exactly that).
    """
    sim = deployment.sim
    now = sim.now()
    clouds: list[EventuallyConsistentStore] = deployment.clouds
    coordination = deployment.coordination
    if coordination is None:
        raise TypeError("pooled scenarios require a coordination service")
    if deployment.config.encrypt_data:
        raise ValueError("pooled priming requires encrypt_data=False "
                         "(pool files share one set of coded blocks)")
    n = len(clouds)
    f = deployment.config.fault_tolerance
    k = f + 1

    # ---- shared, interned artefacts (one set for every pool file) ----------
    data = POOL_PAYLOAD
    data_digest = content_digest(data)
    blocks = ErasureCoder(n=n, k=k).encode(data)
    shares = [SecretShare(x=i + 1, data=b"") for i in range(n)]
    blobs = [
        _BLOCK_HEADER.pack(shares[i].x, 0) + blocks[i].payload for i in range(n)
    ]
    block_digests = tuple(
        block_blob_digest(shares[i], blocks[i].payload) for i in range(n)
    )
    record = VersionRecord(
        version=1, data_digest=data_digest, size=len(data),
        block_digests=block_digests, created_at=now, writer=POOL_OWNER,
    )
    unit_template = DataUnitMetadata(unit_id="@@UID@@")
    unit_template.add(record)
    unit_blob_template = unit_template.to_bytes()

    proto = FileMetadata(
        path="/pool-template/file.dat", file_type=FileType.FILE,
        owner=POOL_OWNER, size=len(data), created_at=now, modified_at=now,
        file_id="@@UID@@", digest=data_digest, data_version=1,
        grants={"*": Permission.READ_WRITE},
    )
    file_meta_template = proto.to_bytes()
    acl_json = DepSpaceCoordination._acl_dump(
        EntryACL(owner=POOL_OWNER, grants={"*": Permission.READ_WRITE})
    )
    # One shared per-cloud object ACL: never mutated (``set_acl`` is
    # owner-only and the pool owner never acts), so sharing is safe.
    cloud_acls = [ObjectACL(owner=f"{POOL_OWNER}@{cloud.name}") for cloud in clouds]
    for cloud in clouds:
        # World grant on every current and future pool object — overwrites by
        # any agent (new versions, metadata updates) pass the access check via
        # the bucket policy, exactly as ``setfacl`` would have arranged.
        cloud._bucket_policies.setdefault(POOL_PREFIX, {})["*"] = Permission.READ_WRITE

    # ---- per-file state ----------------------------------------------------
    objects = 0
    entries = 0
    for index, path in enumerate(spec.shared_files):
        uid = pool_file_id(index)
        uid_bytes = uid.encode()
        unit_blob = unit_blob_template.replace(b"@@UID@@", uid_bytes)
        meta_key = DepSkyClient._meta_key(uid)
        unit_digest = content_digest(unit_blob)
        for cloud_index, cloud in enumerate(clouds):
            cloud._objects[meta_key] = _StoredObject(
                key=meta_key, data=unit_blob, acl=cloud_acls[cloud_index],
                created_at=now, visible_at=now, digest=unit_digest,
            )
        objects += n
        # Preferred-quorum write layout: cloud i stores block i, for the
        # first n - f clouds only (the spill-over clouds stay empty).
        for block_index in range(n - f):
            block_key = DepSkyClient._block_key(uid, 1, block_index)
            clouds[block_index]._objects[block_key] = _StoredObject(
                key=block_key, data=blobs[block_index],
                acl=cloud_acls[block_index], created_at=now, visible_at=now,
                digest=block_digests[block_index],
            )
        objects += n - f
        file_blob = file_meta_template.replace(
            b'"/pool-template/file.dat"', b'"' + path.encode() + b'"'
        ).replace(b'"@@UID@@"', b'"' + uid_bytes + b'"')
        _prime_entry(coordination, MetadataService.entry_key(path), file_blob,
                     acl_json, now)
        entries += 1

    # ---- pool directories --------------------------------------------------
    directories = sorted({path.rsplit("/", 1)[0] for path in spec.shared_files})
    for directory in directories:
        if not directory:
            continue
        dir_meta = FileMetadata(
            path=directory, file_type=FileType.DIRECTORY, owner=POOL_OWNER,
            created_at=now, modified_at=now,
            grants={"*": Permission.READ_WRITE},
        )
        _prime_entry(coordination, MetadataService.entry_key(directory),
                     dir_meta.to_bytes(), acl_json, now)
        entries += 1

    stats = {"files": len(spec.shared_files), "cloud_objects": objects,
             "coordination_entries": entries}
    if recorder is not None:
        recorder.record("setup_done", time=now, files=len(spec.shared_files),
                        pooled=True)
    return stats
