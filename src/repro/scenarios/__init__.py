"""Deterministic multi-agent scenario engine with Jepsen-style checking.

Public surface:

* :class:`~repro.scenarios.spec.ScenarioSpec` /
  :data:`~repro.scenarios.spec.FAULT_MIXES` — seed-derived scenario
  descriptions (agents, workload mixes, fault phases over clouds and
  coordination replicas);
* :class:`~repro.scenarios.trace.TraceRecorder` — the totally ordered
  operation history and its replay fingerprint;
* :mod:`~repro.scenarios.invariants` — checkers for consistency-on-close,
  write-lock mutual exclusion, durability/replication and commit ordering;
* :class:`~repro.scenarios.runner.ScenarioRunner` /
  :func:`~repro.scenarios.runner.run_scenario` — execution.

``python -m repro.scenarios --seed S --mix M`` replays one scenario and
prints its report; a failing seed reproduces the identical trace.
"""

from repro.scenarios.invariants import Violation, check_all
from repro.scenarios.runner import ScenarioResult, ScenarioRunner, run_scenario
from repro.scenarios.spec import (
    AGENT_NAMES,
    FAULT_MIXES,
    AgentSpec,
    FaultPhase,
    ScenarioSpec,
    WorkloadMix,
)
from repro.scenarios.trace import TraceEvent, TraceRecorder

__all__ = [
    "AGENT_NAMES",
    "AgentSpec",
    "FAULT_MIXES",
    "FaultPhase",
    "ScenarioResult",
    "ScenarioRunner",
    "ScenarioSpec",
    "TraceEvent",
    "TraceRecorder",
    "Violation",
    "WorkloadMix",
    "check_all",
    "run_scenario",
]
