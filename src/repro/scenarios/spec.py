"""Declarative scenario specifications, derived from a single seed.

A :class:`ScenarioSpec` describes one multi-agent experiment completely:
which Table 2 variant to deploy, how many agents run which workload mix, and
which fault phases hit which storage clouds and coordination replicas.  The
whole spec is a pure function of ``(seed, mix, sizing)`` — calling
:meth:`ScenarioSpec.generate` twice with the same arguments yields equal
specs, and running a spec twice yields byte-identical traces (see
:mod:`repro.scenarios.trace`).

Fault phases are anchored to *operation indices* (fractions of the global op
sequence), not to absolute simulated times: simulated time stretches wildly
under DEGRADED windows, so op-indexed anchoring is what guarantees that a
fault actually overlaps live traffic in every scenario.

Every mix keeps the system inside its fault budget — at most ``f`` storage
clouds with a non-gray fault at any instant, and at most ``f`` faulty
coordination replicas — so the paper's guarantees are *supposed* to hold and
any invariant violation is a bug, not an over-injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.config import (
    CacheConfig,
    DispatchPolicyConfig,
    GarbageCollectionPolicy,
    QuorumConfig,
    SCFSConfig,
)
from repro.simenv.environment import derive_rng
from repro.simenv.failures import FaultKind

#: The fault mixes swept by ``tests/scenarios/test_random_scenarios.py``.
#: New mixes are appended (each mix derives its own RNG stream, so appending
#: never shifts the faults — or the pinned replay fingerprints — of the rest).
FAULT_MIXES: tuple[str, ...] = (
    "fault-free",
    "crash-hang",
    "corrupt-byzantine",
    "degraded-outage",
    "weighted-byzantine",
    "txn",
    "txn-crash-restart",
    "txn-partition",
)

#: Agent names, in creation order (index into this for the i-th agent).
AGENT_NAMES: tuple[str, ...] = ("alice", "bob", "carol", "dave", "erin", "frank")

#: How the runner interleaves the agents' operations (see ScenarioRunner).
SCHEDULING_MODES: tuple[str, ...] = ("lockstep", "event-driven")


def agent_name(index: int) -> str:
    """Name of the ``index``-th agent: the classic six, then synthetic ones."""
    if index < len(AGENT_NAMES):
        return AGENT_NAMES[index]
    return f"agent-{index:04d}"

#: Workload operation kinds and their meaning (see ScenarioRunner._run_op).
OP_KINDS: tuple[str, ...] = ("write", "read", "append", "fsync", "stat", "unlink", "gc",
                             "txn", "txn_read")


@dataclass(frozen=True)
class WorkloadMix:
    """Per-agent workload: weighted operation kinds plus payload sizing."""

    name: str = "general"
    #: ``(op, weight)`` pairs; ops are drawn proportionally to the weights.
    weights: tuple[tuple[str, float], ...] = (
        ("write", 4.0), ("read", 5.0), ("append", 2.0), ("fsync", 1.0),
        ("stat", 1.0), ("unlink", 0.5), ("gc", 0.3),
    )
    min_size: int = 64
    max_size: int = 4096

    def validate(self) -> None:
        """Reject unknown op kinds and non-positive sizing."""
        for op, weight in self.weights:
            if op not in OP_KINDS:
                raise ValueError(f"unknown workload op {op!r}")
            if weight < 0:
                raise ValueError(f"negative weight for {op!r}")
        if not 0 < self.min_size <= self.max_size:
            raise ValueError("payload sizes must satisfy 0 < min <= max")


#: The workload of the transactional mixes: dominated by multi-file
#: transactions and transactional reads, with enough plain traffic mixed in to
#: interleave anchor updates from both commit paths.  No unlink/gc — churn is
#: what the regular mixes cover; the txn mixes are about the commit protocol.
TXN_MIX = WorkloadMix(
    name="txn",
    weights=(
        ("txn", 3.0), ("txn_read", 2.0), ("write", 1.5), ("read", 2.0),
        ("append", 1.0), ("fsync", 0.5), ("stat", 0.5),
    ),
)


@dataclass(frozen=True)
class AgentSpec:
    """One simulated user: a name and a sized workload."""

    name: str
    ops: int
    mix: WorkloadMix = field(default_factory=WorkloadMix)


@dataclass(frozen=True)
class FaultPhase:
    """One fault window, anchored to fractions of the global op sequence.

    ``target`` is ``"cloud:<index>"``, ``"replica:<index>"`` or
    ``"agent:<index>"``.  For clouds, ``kind`` is a
    :class:`~repro.simenv.failures.FaultKind` value; for replicas it is
    ``"crash"``, ``"byzantine"`` or ``"partition"``; for agents it is
    ``"crash"`` (the phase end is the restart — a fresh mount after the
    crashed agent's lock leases expired).  The phase starts before the op at
    ``start_frac * total_ops`` and ends before the op at
    ``end_frac * total_ops`` (``end_frac >= 1`` keeps it active to the end).
    """

    target: str
    kind: str
    start_frac: float
    end_frac: float
    factor: float = 1.0

    def validate(self) -> None:
        kind, _, index = self.target.partition(":")
        if kind not in ("cloud", "replica", "agent") or not index.isdigit():
            raise ValueError(f"malformed fault target {self.target!r}")
        if not 0.0 <= self.start_frac < self.end_frac:
            raise ValueError("a fault phase needs start_frac < end_frac")
        if self.target.startswith("replica") and self.kind not in (
                "crash", "byzantine", "partition"):
            raise ValueError(f"unknown replica fault {self.kind!r}")
        if self.target.startswith("agent") and self.kind != "crash":
            raise ValueError(f"unknown agent fault {self.kind!r}")
        if self.target.startswith("cloud"):
            FaultKind(self.kind)  # raises ValueError on unknown kinds


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, seed-derived description of one multi-agent scenario."""

    seed: int
    mix: str
    variant: str
    agents: tuple[AgentSpec, ...]
    faults: tuple[FaultPhase, ...] = ()
    shared_files: tuple[str, ...] = ()
    #: Metadata-cache expiration of every agent; the consistency-on-close
    #: checker allows exactly this much staleness (0.0 asserts the strict
    #: anchor guarantee).
    metadata_expiration: float = 0.5
    #: Dispatch/health knobs (None = plain staged dispatch, no suspicion).
    dispatch: DispatchPolicyConfig | None = None
    #: Quorum-system selection (None = the paper's threshold quorums).
    quorum: QuorumConfig | None = None
    #: How agents interleave: "lockstep" (the classic global-RNG round robin)
    #: or "event-driven" (each agent is a task on the simulation's event heap).
    scheduling: str = "lockstep"
    #: Pooled scenarios skip per-file setup traffic: the shared files are
    #: *primed* directly into the clouds and the coordination service (with
    #: world grants) before the workload starts — the only way a run can hold
    #: 10^5+ files without paying one full write per file up front.
    pooled: bool = False
    #: Number of coordination-service partitions (§5 scalability extension).
    partitions: int = 1
    #: Lock-lease duration every agent mounts with.  The default keeps lease
    #: expiry out of scope (see :meth:`config`); the crash-restart mix shrinks
    #: it so a crashed agent's locks actually expire mid-scenario.
    lock_lease: float = 3600.0

    @property
    def total_ops(self) -> int:
        """Number of workload operations across all agents."""
        return sum(agent.ops for agent in self.agents)

    def validate(self) -> None:
        """Check internal consistency (sizes, fault budget, known ops)."""
        if not self.agents:
            raise ValueError("a scenario needs at least one agent")
        if not self.shared_files:
            raise ValueError("a scenario needs at least one shared file")
        if self.mix not in FAULT_MIXES:
            raise ValueError(f"unknown fault mix {self.mix!r}")
        if self.scheduling not in SCHEDULING_MODES:
            raise ValueError(f"unknown scheduling mode {self.scheduling!r}; "
                             f"known modes: {SCHEDULING_MODES}")
        if self.partitions < 1:
            raise ValueError("a scenario needs at least one coordination partition")
        for agent in self.agents:
            agent.mix.validate()
        for phase in self.faults:
            phase.validate()

    def config(self) -> SCFSConfig:
        """The :class:`SCFSConfig` every agent of this scenario mounts with.

        A long lock lease (the spec default) keeps lease expiry out of scope
        (DEGRADED windows stretch simulated time far beyond the 30 s default,
        and lease-based lock stealing would make the mutual-exclusion
        invariant vacuous); an aggressive GC threshold makes the collector
        actually run mid-scenario.
        """
        overrides = {
            "lock_lease": self.lock_lease,
            "caches": CacheConfig(metadata_expiration=self.metadata_expiration),
            # Pooled scenarios disable automatic collection: the collector's
            # owned-paths scan is a full namespace listing, which would be the
            # single super-linear operation of a 10^5-file run.
            "gc": GarbageCollectionPolicy(enabled=False)
            if self.pooled
            else GarbageCollectionPolicy(written_bytes_threshold=256 * 1024,
                                         versions_to_keep=3),
            "coordination_partitions": self.partitions,
        }
        if self.dispatch is not None:
            overrides["dispatch"] = self.dispatch
        if self.quorum is not None:
            overrides["quorum"] = self.quorum
        config = SCFSConfig.for_variant(self.variant, **overrides)
        if self.pooled:
            # Primed files share one plaintext pool payload; disabling the
            # per-version random key keeps their coded blocks byte-identical,
            # so priming can store *one* shared blob per block index.
            config = replace(config, encrypt_data=False)
            config.validate()
        return config

    def repro_command(self) -> str:
        """Shell command that reruns exactly this scenario (same trace bytes)."""
        agents = len(self.agents)
        ops = self.agents[0].ops if self.agents else 0
        return (
            "PYTHONPATH=src python -m repro.scenarios "
            f"--seed {self.seed} --mix {self.mix} --agents {agents} --ops {ops} "
            f"--variant {self.variant}"
        )

    # ------------------------------------------------------------ generation

    @classmethod
    def generate(cls, seed: int, mix: str = "fault-free", agents: int = 3,
                 ops_per_agent: int = 10, variant: str | None = None,
                 shared_files: int = 4) -> "ScenarioSpec":
        """Derive a full scenario from one seed (pure: same inputs, same spec)."""
        if mix not in FAULT_MIXES:
            raise ValueError(f"unknown fault mix {mix!r}; known mixes: {FAULT_MIXES}")
        if agents < 1:
            raise ValueError("a scenario needs at least one agent")
        rng = derive_rng(seed, f"scenario:{mix}")
        # Always consume the variant draw, even when a variant is forced:
        # otherwise forcing one shifts the RNG stream and the fault phases of
        # a forced-variant rerun would differ from the run it reproduces.
        drawn = rng.choice(("SCFS-CoC-B", "SCFS-CoC-NB"))
        if variant is None:
            # Alternate the two sharing-capable CoC variants so the sweep
            # exercises both the blocking and the non-blocking close path.
            variant = drawn
        workload = TXN_MIX if mix.startswith("txn") else WorkloadMix()
        agent_specs = tuple(
            AgentSpec(name=agent_name(i), ops=ops_per_agent, mix=workload)
            for i in range(agents)
        )
        files = tuple(f"/shared/file-{i}.dat" for i in range(shared_files))
        faults, dispatch, quorum = _faults_for_mix(mix, rng, agents=agents)
        # The crash-restart mix needs the crashed agent's leases to expire
        # within the scenario: a restart remounts only after the lease runs
        # out, so a 1-hour lease would park the run for an hour of simulated
        # time (and make lease-expiry takeover unobservable).
        lease = 25.0 if mix == "txn-crash-restart" else 3600.0
        spec = cls(
            seed=seed, mix=mix, variant=variant, agents=agent_specs,
            faults=faults, shared_files=files, dispatch=dispatch, quorum=quorum,
            lock_lease=lease,
        )
        spec.validate()
        return spec

    @classmethod
    def generate_scale(cls, seed: int, agents: int = 1000, files: int = 100_000,
                       ops_per_agent: int = 20, directories: int = 32,
                       partitions: int = 4, mix: str = "fault-free") -> "ScenarioSpec":
        """A pooled, event-driven spec sized for the 1000+-agent scale sweep.

        The shared files live under ``directories`` top-level pool directories
        so that :func:`~repro.coordination.partitioned.partition_by_top_level_directory`
        spreads their metadata across the coordination partitions.  The
        workload touches existing files only (read/stat/write/append): file
        churn is what the regular mixes cover, scale is about many agents and
        a huge primed namespace.
        """
        if agents < 1 or files < 1 or directories < 1:
            raise ValueError("scale scenarios need at least one agent, file and directory")
        rng = derive_rng(seed, f"scenario:scale:{mix}")
        scale_mix = WorkloadMix(
            name="scale",
            weights=(("read", 5.0), ("stat", 2.0), ("write", 2.0), ("append", 1.0)),
            min_size=32, max_size=256,
        )
        agent_specs = tuple(
            AgentSpec(name=agent_name(i), ops=ops_per_agent, mix=scale_mix)
            for i in range(agents)
        )
        paths = tuple(
            f"/pool-{i % directories}/file-{i}.dat" for i in range(files)
        )
        faults, dispatch, quorum = _faults_for_mix(mix, rng)
        # Scale runs coalesce identical same-instant metadata read quorums —
        # the batching half of the scale-out work (regular mixes leave it off
        # to keep their replay fingerprints stable).
        dispatch = (replace(dispatch, coalesce_instant=True) if dispatch is not None
                    else DispatchPolicyConfig(coalesce_instant=True))
        spec = cls(
            seed=seed, mix=mix, variant="SCFS-CoC-NB", agents=agent_specs,
            faults=faults, shared_files=paths, dispatch=dispatch, quorum=quorum,
            scheduling="event-driven", pooled=True, partitions=partitions,
        )
        spec.validate()
        return spec

    def scaled(self, ops_per_agent: int) -> "ScenarioSpec":
        """Return a copy with every agent's op count replaced (CI fast mode)."""
        return replace(
            self, agents=tuple(replace(a, ops=ops_per_agent) for a in self.agents)
        )


def _two_clouds(rng, n: int = 4) -> tuple[int, int]:
    """Two distinct cloud indices."""
    first = rng.randrange(n)
    second = rng.randrange(n - 1)
    if second >= first:
        second += 1
    return first, second


def _faults_for_mix(mix: str, rng, agents: int = 3) -> tuple[tuple[FaultPhase, ...],
                                                             DispatchPolicyConfig | None,
                                                             QuorumConfig | None]:
    """Build the fault phases (and dispatch/quorum configs) of one named mix.

    Windows of *failing* kinds (unavailable, corruption, byzantine,
    drop-writes, and timed-out hangs) are kept disjoint in op-fraction space
    so at most one storage cloud is non-gray-faulty at a time (f = 1); gray
    DEGRADED windows may overlap anything.
    """
    if mix == "fault-free":
        return (), None, None

    if mix == "crash-hang":
        crashed, hung = _two_clouds(rng)
        replica = rng.randrange(4)
        start = rng.uniform(0.10, 0.20)
        return (
            FaultPhase(f"cloud:{crashed}", FaultKind.UNAVAILABLE.value,
                       start_frac=start, end_frac=start + rng.uniform(0.15, 0.30)),
            FaultPhase(f"cloud:{hung}", FaultKind.DEGRADED.value,
                       start_frac=rng.uniform(0.55, 0.65),
                       end_frac=rng.uniform(0.75, 0.90),
                       factor=rng.uniform(15.0, 40.0)),
            FaultPhase(f"replica:{replica}", "crash",
                       start_frac=rng.uniform(0.20, 0.40),
                       end_frac=rng.uniform(0.60, 0.80)),
        ), None, None

    if mix == "corrupt-byzantine":
        # One *persistently adversarial* cloud misbehaves in three different
        # ways over the run.  Corruption and dropped writes damage data *at
        # rest*, so spreading these kinds across clouds would leave more than
        # ``f`` clouds holding bad copies of some version — outside the fault
        # budget the protocols promise to tolerate.  One adversary keeps every
        # version's total damage within f = 1.
        adversary = rng.randrange(4)
        replica = rng.randrange(4)
        return (
            FaultPhase(f"cloud:{adversary}", FaultKind.CORRUPTION.value,
                       start_frac=rng.uniform(0.08, 0.15),
                       end_frac=rng.uniform(0.25, 0.35)),
            FaultPhase(f"cloud:{adversary}", FaultKind.BYZANTINE.value,
                       start_frac=rng.uniform(0.40, 0.50),
                       end_frac=rng.uniform(0.58, 0.68)),
            FaultPhase(f"cloud:{adversary}", FaultKind.DROP_WRITES.value,
                       start_frac=rng.uniform(0.72, 0.80),
                       end_frac=rng.uniform(0.85, 0.95)),
            FaultPhase(f"replica:{replica}", "byzantine",
                       start_frac=rng.uniform(0.25, 0.45),
                       end_frac=rng.uniform(0.55, 0.75)),
        ), None, None

    if mix == "degraded-outage":
        # Exercise the PR 2/3 dispatch + health stack: per-request timeouts,
        # a retry, and suspect-list tracking with quick probe recovery.  The
        # outage ends mid-scenario so probe-driven recovery is on the trace.
        downed, straggler = _two_clouds(rng)
        dispatch = DispatchPolicyConfig(
            timeout=8.0, retries=1,
            suspicion_threshold=2, probe_backoff=5.0, probe_backoff_factor=2.0,
            probe_backoff_max=60.0,
        )
        return (
            FaultPhase(f"cloud:{downed}", FaultKind.UNAVAILABLE.value,
                       start_frac=rng.uniform(0.12, 0.20),
                       end_frac=rng.uniform(0.38, 0.48)),
            FaultPhase(f"cloud:{straggler}", FaultKind.DEGRADED.value,
                       start_frac=rng.uniform(0.55, 0.65),
                       end_frac=rng.uniform(0.80, 0.92),
                       factor=rng.uniform(4.0, 8.0)),
        ), dispatch, None

    if mix == "weighted-byzantine":
        # The weighted-quorum mix: the *heaviest* provider turns adversarial.
        # Weights model unequal provider trust (amazon-s3 carries 1.2, the
        # rest 1.0) with a fault budget of 1.2 — the heavy provider alone may
        # misbehave, yet no single cloud, however heavy, can certify a version
        # by itself (the certificate bar sits exactly at the budget).  The
        # adversary corrupts data at rest early and turns fully Byzantine
        # later (disjoint windows, one adversarial cloud: f-budget intact);
        # a light provider gray-fails on top and a coordination replica turns
        # Byzantine, so the weighted certificates are exercised while both
        # suspicion tracking and EWMA-fed latency estimates are live.
        light = 1 + rng.randrange(3)
        replica = rng.randrange(4)
        quorum = QuorumConfig(
            mode="weighted",
            weights=(("amazon-s3", 1.2), ("google-storage", 1.0),
                     ("rackspace-files", 1.0), ("windows-azure", 1.0)),
            fault_budget=1.2,
        )
        dispatch = DispatchPolicyConfig(
            timeout=8.0, retries=1,
            suspicion_threshold=2, probe_backoff=5.0, probe_backoff_factor=2.0,
            probe_backoff_max=60.0, ewma_estimates=True,
        )
        return (
            FaultPhase("cloud:0", FaultKind.CORRUPTION.value,
                       start_frac=rng.uniform(0.10, 0.18),
                       end_frac=rng.uniform(0.28, 0.38)),
            FaultPhase("cloud:0", FaultKind.BYZANTINE.value,
                       start_frac=rng.uniform(0.46, 0.54),
                       end_frac=rng.uniform(0.64, 0.76)),
            FaultPhase(f"cloud:{light}", FaultKind.DEGRADED.value,
                       start_frac=rng.uniform(0.55, 0.65),
                       end_frac=rng.uniform(0.80, 0.92),
                       factor=rng.uniform(4.0, 8.0)),
            FaultPhase(f"replica:{replica}", "byzantine",
                       start_frac=rng.uniform(0.25, 0.45),
                       end_frac=rng.uniform(0.55, 0.75)),
        ), dispatch, quorum

    if mix == "txn":
        # The baseline transactional mix: concurrent multi-file transactions
        # racing plain writes, with the usual storage-side weather — a cloud
        # outage, a gray straggler, and a crashed coordination replica — so
        # commits retry and abort while the fault budget stays at f = 1.
        downed, straggler = _two_clouds(rng)
        replica = rng.randrange(4)
        return (
            FaultPhase(f"cloud:{downed}", FaultKind.UNAVAILABLE.value,
                       start_frac=rng.uniform(0.12, 0.20),
                       end_frac=rng.uniform(0.35, 0.45)),
            FaultPhase(f"cloud:{straggler}", FaultKind.DEGRADED.value,
                       start_frac=rng.uniform(0.55, 0.65),
                       end_frac=rng.uniform(0.78, 0.90),
                       factor=rng.uniform(4.0, 8.0)),
            FaultPhase(f"replica:{replica}", "crash",
                       start_frac=rng.uniform(0.25, 0.40),
                       end_frac=rng.uniform(0.60, 0.75)),
        ), None, None

    if mix == "txn-crash-restart":
        # One agent crashes mid-transaction holding write locks and remounts
        # after its leases expired; the survivors' commits must take over the
        # expired locks without ever forking a version.  No DEGRADED window:
        # its simulated-time stretch would dwarf the 25 s lease and make the
        # crash/lease timeline meaningless.
        victim = rng.randrange(agents)
        downed = rng.randrange(4)
        replica = rng.randrange(4)
        return (
            FaultPhase(f"agent:{victim}", "crash",
                       start_frac=rng.uniform(0.20, 0.30),
                       end_frac=rng.uniform(0.55, 0.70)),
            FaultPhase(f"cloud:{downed}", FaultKind.UNAVAILABLE.value,
                       start_frac=rng.uniform(0.45, 0.55),
                       end_frac=rng.uniform(0.70, 0.85)),
            FaultPhase(f"replica:{replica}", "crash",
                       start_frac=rng.uniform(0.10, 0.18),
                       end_frac=rng.uniform(0.35, 0.50)),
        ), None, None

    if mix == "txn-partition":
        # Nemesis-style coordination partitions: two sequential windows each
        # cut one (different) replica off from the clients — a minority
        # partition of the n = 4, f = 1 ensemble, so the 3-replica quorum
        # stays reachable and commits keep linearizing.  Healing is state
        # transfer from the quorum.  A cloud outage overlaps the second
        # window to stack storage-side and coordination-side degradation.
        first = rng.randrange(4)
        second = rng.randrange(3)
        if second >= first:
            second += 1
        downed = rng.randrange(4)
        return (
            FaultPhase(f"replica:{first}", "partition",
                       start_frac=rng.uniform(0.10, 0.18),
                       end_frac=rng.uniform(0.30, 0.42)),
            FaultPhase(f"replica:{second}", "partition",
                       start_frac=rng.uniform(0.50, 0.58),
                       end_frac=rng.uniform(0.72, 0.85)),
            FaultPhase(f"cloud:{downed}", FaultKind.UNAVAILABLE.value,
                       start_frac=rng.uniform(0.55, 0.62),
                       end_frac=rng.uniform(0.75, 0.88)),
        ), None, None

    raise ValueError(f"unknown fault mix {mix!r}")
