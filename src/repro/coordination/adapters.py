"""Adapters exposing concrete coordination services through the common interface.

The SCFS Agent integrates coordination services "with simple wrappers" (§3.2).
These adapters are those wrappers: they map the generic
:class:`~repro.coordination.base.CoordinationService` operations onto

* a replicated :class:`~repro.coordination.tuplespace.DepSpace` (Byzantine
  fault-tolerant, 3f+1 replicas), or
* a replicated :class:`~repro.coordination.zookeeper.ZooKeeperLike` tree
  (crash fault-tolerant, 2f+1 replicas).

Each adapter call translates to one (occasionally two) replicated commands,
each charging a coordination-service access latency of roughly 60–100 ms to
the simulated clock, the figure the paper measured (§4.2).
"""

from __future__ import annotations

import base64
import json
import itertools

from repro.common.errors import ConflictError, TupleNotFoundError
from repro.common.types import Permission, Principal
from repro.coordination.base import CoordinationService, Entry, EntryACL, Session
from repro.coordination.replication import FaultModel, ReplicatedStateMachine
from repro.coordination.tuplespace import ANY, make_depspace_with_triggers
from repro.coordination.zookeeper import ZooKeeperLike
from repro.simenv.environment import Simulation
from repro.simenv.latency import LatencyModel

_session_counter = itertools.count()

#: Default lease of ephemeral state (locks, sessions).  Long enough for any
#: single file-system operation, short enough that a crashed client releases
#: its locks quickly.
DEFAULT_LEASE = 30.0


def _new_session_id(principal: Principal) -> str:
    return f"session-{principal.name}-{next(_session_counter):06d}"


class _AdapterBase(CoordinationService):
    """Shared session bookkeeping for both adapters."""

    def __init__(self, sim: Simulation):
        self.sim = sim
        self._sessions: dict[str, Session] = {}

    # -- sessions -----------------------------------------------------------

    def open_session(self, principal: Principal, lease_seconds: float = DEFAULT_LEASE) -> Session:
        session = Session(
            session_id=_new_session_id(principal),
            principal=principal,
            lease_seconds=lease_seconds,
            last_renewal=self.sim.now(),
        )
        self._sessions[session.session_id] = session
        self._register_session(session)
        return session

    def renew_session(self, session: Session) -> None:
        session.last_renewal = self.sim.now()
        self._register_session(session)

    def close_session(self, session: Session) -> None:
        self._sessions.pop(session.session_id, None)
        self._drop_session(session)

    def _register_session(self, session: Session) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def _drop_session(self, session: Session) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


# ---------------------------------------------------------------------------
# DepSpace adapter
# ---------------------------------------------------------------------------

# Tuple layouts used in the space:
#   ("entry", key, owner, version, value_bytes, acl_json)
#   ("lock",  name, session_id)
_ENTRY = "entry"
_LOCK = "lock"


class DepSpaceCoordination(_AdapterBase):
    """Coordination service backed by a (replicated) DepSpace tuple space."""

    def __init__(
        self,
        sim: Simulation,
        fault_model: FaultModel = FaultModel.BYZANTINE,
        f: int = 1,
        latency: LatencyModel | None = None,
    ):
        super().__init__(sim)
        self.rsm = ReplicatedStateMachine(
            sim,
            factory=make_depspace_with_triggers,
            fault_model=fault_model,
            f=f,
            latency=latency,
        )

    # -- helpers --------------------------------------------------------------

    @staticmethod
    def _acl_dump(acl: EntryACL) -> str:
        return json.dumps(
            {"owner": acl.owner, "grants": {u: p.value for u, p in acl.grants.items()}},
            sort_keys=True,
        )

    @staticmethod
    def _acl_load(blob: str) -> EntryACL:
        raw = json.loads(blob)
        return EntryACL(
            owner=raw["owner"],
            grants={u: Permission(v) for u, v in raw.get("grants", {}).items()},
        )

    def _raw_get(self, key: str) -> tuple | None:
        return self.rsm.invoke("rdp", (_ENTRY, key, ANY, ANY, ANY, ANY), self.sim.now())

    def _register_session(self, session: Session) -> None:
        # DepSpace locks are timed tuples; there is no separate session object
        # to register, the lease lives on each lock tuple.
        return None

    def _drop_session(self, session: Session) -> None:
        # Remove every lock held by the session.
        while self.rsm.invoke("inp", (_LOCK, ANY, session.session_id), self.sim.now()) is not None:
            pass

    # -- entries --------------------------------------------------------------

    def put(self, key: str, value: bytes, session: Session,
            expected_version: int | None = None) -> Entry:
        # An unconditional put is a read-modify-write; if another writer (or a
        # background upload of this very client) slips in between, re-read and
        # retry.  Conditional puts surface the conflict to the caller instead.
        attempts = 5 if expected_version is None else 1
        last_error: ConflictError | None = None
        for _ in range(attempts):
            try:
                return self._put_once(key, value, session, expected_version)
            except ConflictError as exc:
                last_error = exc
                if expected_version is not None:
                    raise
        raise last_error  # pragma: no cover - requires pathological contention

    def _put_once(self, key: str, value: bytes, session: Session,
                  expected_version: int | None) -> Entry:
        now = self.sim.now()
        user = session.principal.name
        current = self._raw_get(key)
        if current is None:
            if expected_version is not None:
                raise ConflictError(f"entry {key!r} does not exist (expected version "
                                    f"{expected_version})")
            acl = EntryACL(owner=user)
            fields = (_ENTRY, key, user, 1, value, self._acl_dump(acl))
            inserted = self.rsm.invoke(
                "cas", (_ENTRY, key, ANY, ANY, ANY, ANY), fields, now, owner=user
            )
            if not inserted:
                raise ConflictError(f"concurrent creation of entry {key!r}")
            return Entry(key=key, value=value, version=1, owner=user)
        _, _, owner, version, _old_value, acl_blob = current
        acl = self._acl_load(acl_blob)
        if not acl.allows(user, Permission.WRITE):
            raise ConflictError(f"{user} may not update entry {key!r}")
        if expected_version is not None and version != expected_version:
            raise ConflictError(
                f"version mismatch on {key!r}: expected {expected_version}, found {version}"
            )
        new_fields = (_ENTRY, key, owner, version + 1, value, acl_blob)
        replaced = self.rsm.invoke(
            "replace", (_ENTRY, key, ANY, version, ANY, ANY), new_fields, self.sim.now(),
            owner=owner,
        )
        if not replaced:
            raise ConflictError(f"concurrent update of entry {key!r}")
        return Entry(key=key, value=value, version=version + 1, owner=owner)

    def get(self, key: str, session: Session) -> Entry:
        fields = self._raw_get(key)
        if fields is None:
            raise TupleNotFoundError(f"no entry under key {key!r}")
        _, _, owner, version, value, acl_blob = fields
        acl = self._acl_load(acl_blob)
        if not acl.allows(session.principal.name, Permission.READ):
            raise ConflictError(f"{session.principal.name} may not read entry {key!r}")
        return Entry(key=key, value=value, version=version, owner=owner)

    def delete(self, key: str, session: Session) -> None:
        fields = self._raw_get(key)
        if fields is None:
            return
        acl = self._acl_load(fields[5])
        if not acl.allows(session.principal.name, Permission.WRITE):
            raise ConflictError(f"{session.principal.name} may not delete entry {key!r}")
        self.rsm.invoke("inp", (_ENTRY, key, ANY, ANY, ANY, ANY), self.sim.now())

    def list_prefix(self, prefix: str, session: Session) -> list[str]:
        rows = self.rsm.invoke("rdp_all", (_ENTRY, ANY, ANY, ANY, ANY, ANY), self.sim.now())
        user = session.principal.name
        keys = []
        for fields in rows:
            if not fields[1].startswith(prefix):
                continue
            if self._acl_load(fields[5]).allows(user, Permission.READ):
                keys.append(fields[1])
        return sorted(keys)

    def set_entry_acl(self, key: str, user: str, permission: Permission,
                      session: Session) -> None:
        # Read-modify-write with retry: a concurrent (background) update of the
        # entry's value must not silently discard the ACL change.
        for _ in range(5):
            fields = self._raw_get(key)
            if fields is None:
                raise TupleNotFoundError(f"no entry under key {key!r}")
            _, _, owner, version, value, acl_blob = fields
            if owner != session.principal.name:
                raise ConflictError(f"only the owner may change the ACL of {key!r}")
            acl = self._acl_load(acl_blob)
            if permission is Permission.NONE:
                acl.grants.pop(user, None)
            else:
                acl.grants[user] = permission
            new_fields = (_ENTRY, key, owner, version + 1, value, self._acl_dump(acl))
            replaced = self.rsm.invoke(
                "replace", (_ENTRY, key, ANY, version, ANY, ANY), new_fields, self.sim.now(),
                owner=owner,
            )
            if replaced:
                return
        raise ConflictError(f"could not update the ACL of {key!r} (persistent contention)")

    # -- locks ----------------------------------------------------------------

    def try_lock(self, name: str, session: Session) -> bool:
        return self.rsm.invoke(
            "cas",
            (_LOCK, name, ANY),
            (_LOCK, name, session.session_id),
            self.sim.now(),
            lease=session.lease_seconds,
            owner=session.principal.name,
        )

    def unlock(self, name: str, session: Session) -> None:
        removed = self.rsm.invoke("inp", (_LOCK, name, session.session_id), self.sim.now())
        if removed is None:
            # Either the lock expired (client was considered crashed) or it is
            # held by someone else; both are benign for an unlock.
            return

    def lock_holder(self, name: str) -> str | None:
        space = self.rsm.reference_replica()
        fields = space.rdp((_LOCK, name, ANY), self.sim.now())
        return fields[2] if fields else None

    # -- triggers (DepSpace extension used for rename, §3.2) -------------------

    def rename_prefix(self, old_prefix: str, new_prefix: str, session: Session) -> int:
        """Rewrite the parent path of every entry under ``old_prefix`` (one round trip)."""
        return self.rsm.invoke(
            "fire_trigger", "rename_prefix", (_ENTRY, ANY, ANY, ANY, ANY, ANY),
            (old_prefix, new_prefix), self.sim.now(),
        )

    # -- introspection ---------------------------------------------------------

    def entry_count(self) -> int:
        space = self.rsm.reference_replica()
        return space.count((_ENTRY, ANY, ANY, ANY, ANY, ANY), self.sim.now())

    def stored_bytes(self) -> int:
        space = self.rsm.reference_replica()
        return space.stored_bytes(self.sim.now())


# ---------------------------------------------------------------------------
# ZooKeeper adapter
# ---------------------------------------------------------------------------

_ENTRY_ROOT = "/scfs/entries"
_LOCK_ROOT = "/scfs/locks"


def _escape(key: str) -> str:
    return key.replace("%", "%25").replace("/", "%2F")


def _unescape(component: str) -> str:
    return component.replace("%2F", "/").replace("%25", "%")


class ZooKeeperCoordination(_AdapterBase):
    """Coordination service backed by a (replicated) ZooKeeper-like znode tree."""

    def __init__(
        self,
        sim: Simulation,
        f: int = 1,
        latency: LatencyModel | None = None,
    ):
        super().__init__(sim)
        self.rsm = ReplicatedStateMachine(
            sim,
            factory=ZooKeeperLike,
            fault_model=FaultModel.CRASH,
            f=f,
            latency=latency,
        )
        # Bootstrap the fixed part of the tree without charging client latency.
        self.rsm.charge_latency = False
        self.rsm.invoke("create", "/scfs", b"", 0.0)
        self.rsm.invoke("create", _ENTRY_ROOT, b"", 0.0)
        self.rsm.invoke("create", _LOCK_ROOT, b"", 0.0)
        self.rsm.charge_latency = True

    # -- payload serialisation -------------------------------------------------

    @staticmethod
    def _dump(value: bytes, owner: str, grants: dict[str, Permission]) -> bytes:
        return json.dumps(
            {
                "owner": owner,
                "grants": {u: p.value for u, p in grants.items()},
                "value": base64.b64encode(value).decode("ascii"),
            },
            sort_keys=True,
        ).encode()

    @staticmethod
    def _load(blob: bytes) -> tuple[bytes, str, dict[str, Permission]]:
        raw = json.loads(blob.decode())
        return (
            base64.b64decode(raw["value"]),
            raw["owner"],
            {u: Permission(v) for u, v in raw.get("grants", {}).items()},
        )

    def _entry_path(self, key: str) -> str:
        return f"{_ENTRY_ROOT}/{_escape(key)}"

    def _lock_path(self, name: str) -> str:
        return f"{_LOCK_ROOT}/{_escape(name)}"

    def _register_session(self, session: Session) -> None:
        deadline = session.last_renewal + session.lease_seconds
        self.rsm.charge_latency = False
        try:
            self.rsm.invoke("register_session", session.session_id, deadline)
        finally:
            self.rsm.charge_latency = True

    def _drop_session(self, session: Session) -> None:
        self.rsm.invoke("close_session", session.session_id, self.sim.now())

    # -- entries ----------------------------------------------------------------

    def put(self, key: str, value: bytes, session: Session,
            expected_version: int | None = None) -> Entry:
        # See DepSpaceCoordination.put: unconditional puts retry on interleaved
        # version bumps, conditional puts surface the conflict.
        attempts = 5 if expected_version is None else 1
        last_error: ConflictError | None = None
        for _ in range(attempts):
            try:
                return self._put_once(key, value, session, expected_version)
            except ConflictError as exc:
                last_error = exc
                if expected_version is not None:
                    raise
        raise last_error  # pragma: no cover - requires pathological contention

    def _put_once(self, key: str, value: bytes, session: Session,
                  expected_version: int | None) -> Entry:
        path = self._entry_path(key)
        user = session.principal.name
        now = self.sim.now()
        try:
            blob, version = self.rsm.invoke("get", path, now)
        except TupleNotFoundError as exc:
            if expected_version is not None:
                raise ConflictError(
                    f"entry {key!r} does not exist (expected version {expected_version})"
                ) from exc
            payload = self._dump(value, user, {})
            self.rsm.invoke("create", path, payload, self.sim.now())
            return Entry(key=key, value=value, version=1, owner=user)
        old_value, owner, grants = self._load(blob)
        acl = EntryACL(owner=owner, grants=grants)
        if not acl.allows(user, Permission.WRITE):
            raise ConflictError(f"{user} may not update entry {key!r}")
        # Znode versions start at 0; the public Entry version starts at 1.
        if expected_version is not None and version + 1 != expected_version:
            raise ConflictError(
                f"version mismatch on {key!r}: expected {expected_version}, found {version + 1}"
            )
        payload = self._dump(value, owner, grants)
        new_version = self.rsm.invoke("set", path, payload, self.sim.now(), expected_version=version)
        return Entry(key=key, value=value, version=new_version + 1, owner=owner)

    def get(self, key: str, session: Session) -> Entry:
        path = self._entry_path(key)
        blob, version = self.rsm.invoke("get", path, self.sim.now())
        value, owner, grants = self._load(blob)
        acl = EntryACL(owner=owner, grants=grants)
        if not acl.allows(session.principal.name, Permission.READ):
            raise ConflictError(f"{session.principal.name} may not read entry {key!r}")
        return Entry(key=key, value=value, version=version + 1, owner=owner)

    def delete(self, key: str, session: Session) -> None:
        path = self._entry_path(key)
        try:
            blob, _version = self.rsm.invoke("get", path, self.sim.now())
        except TupleNotFoundError:
            return
        _value, owner, grants = self._load(blob)
        acl = EntryACL(owner=owner, grants=grants)
        if not acl.allows(session.principal.name, Permission.WRITE):
            raise ConflictError(f"{session.principal.name} may not delete entry {key!r}")
        self.rsm.invoke("delete", path, self.sim.now())

    def list_prefix(self, prefix: str, session: Session) -> list[str]:
        children = self.rsm.invoke("get_children", _ENTRY_ROOT, self.sim.now())
        keys = []
        for child in children:
            key = _unescape(child.rsplit("/", 1)[1])
            if key.startswith(prefix):
                keys.append(key)
        return sorted(keys)

    def set_entry_acl(self, key: str, user: str, permission: Permission,
                      session: Session) -> None:
        path = self._entry_path(key)
        # Read-modify-write with retry, as in the DepSpace adapter.
        last_error: ConflictError | None = None
        for _ in range(5):
            blob, version = self.rsm.invoke("get", path, self.sim.now())
            value, owner, grants = self._load(blob)
            if owner != session.principal.name:
                raise ConflictError(f"only the owner may change the ACL of {key!r}")
            if permission is Permission.NONE:
                grants.pop(user, None)
            else:
                grants[user] = permission
            payload = self._dump(value, owner, grants)
            try:
                self.rsm.invoke("set", path, payload, self.sim.now(), expected_version=version)
                return
            except ConflictError as exc:
                last_error = exc
        raise last_error  # pragma: no cover - requires pathological contention

    # -- locks --------------------------------------------------------------------

    def try_lock(self, name: str, session: Session) -> bool:
        self._register_session(session)
        try:
            self.rsm.invoke(
                "create", self._lock_path(name), session.session_id.encode(),
                self.sim.now(), ephemeral_owner=session.session_id,
            )
            return True
        except ConflictError:
            return False

    def unlock(self, name: str, session: Session) -> None:
        path = self._lock_path(name)
        try:
            blob, _ = self.rsm.invoke("get", path, self.sim.now())
        except TupleNotFoundError:
            return
        if blob.decode() != session.session_id:
            return
        self.rsm.invoke("delete", path, self.sim.now())

    def lock_holder(self, name: str) -> str | None:
        tree: ZooKeeperLike = self.rsm.reference_replica()
        try:
            blob, _ = tree.get(self._lock_path(name), self.sim.now())
        except TupleNotFoundError:
            return None
        return blob.decode()

    # -- introspection ---------------------------------------------------------

    def entry_count(self) -> int:
        tree: ZooKeeperLike = self.rsm.reference_replica()
        return len(tree.get_children(_ENTRY_ROOT, self.sim.now()))

    def stored_bytes(self) -> int:
        tree: ZooKeeperLike = self.rsm.reference_replica()
        return tree.stored_bytes(self.sim.now())


def make_coordination_service(
    sim: Simulation,
    kind: str = "depspace",
    fault_model: FaultModel = FaultModel.BYZANTINE,
    f: int = 1,
    latency: LatencyModel | None = None,
) -> CoordinationService:
    """Factory used by SCFS configurations.

    ``kind`` is ``"depspace"`` or ``"zookeeper"``.  The AWS backend of the
    paper runs a single DepSpace instance in one EC2 VM (f=0); the CoC backend
    runs DepSpace over BFT-SMaRt across four providers (f=1).
    """
    if kind == "depspace":
        return DepSpaceCoordination(sim, fault_model=fault_model, f=f, latency=latency)
    if kind == "zookeeper":
        return ZooKeeperCoordination(sim, f=f, latency=latency)
    raise ValueError(f"unknown coordination service kind {kind!r}")
