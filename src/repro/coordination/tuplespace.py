"""A DepSpace-like Byzantine fault-tolerant tuple space.

DepSpace [Bessani et al., EuroSys'08] stores *tuples* — ordered sequences of
typed fields — and offers Linda-style operations extended with the primitives
SCFS needs:

``out``      insert a tuple
``rdp``      read (non-destructively) a tuple matching a template
``inp``      read and remove a tuple matching a template
``cas``      conditional atomic: insert the tuple only if no tuple matches the template
``replace``  atomically remove the tuple matching a template and insert another

Two extensions from the SCFS paper are reproduced:

* **timed (ephemeral) tuples** — a tuple inserted with a lease disappears once
  the lease elapses unless renewed; SCFS represents locks this way so that a
  crashed client's locks are automatically released (§2.5.1);
* **triggers** — server-side rules that rewrite matching tuples when another
  tuple is updated; the paper added them to DepSpace to implement ``rename``
  efficiently (§3.2).  A trigger here is a pure function registered under a
  name and invoked through the ``fire_trigger`` command so that all replicas
  apply the same deterministic rewrite.

The class is a deterministic state machine: it can be used standalone or
replicated through :class:`~repro.coordination.replication.ReplicatedStateMachine`.

Storage is indexed so that the space scales to 10^5+ tuples: entries live in
insertion-ordered dicts keyed by their sequence number, with secondary indexes
on the first field and on the ``(first, second)`` field pair.  SCFS templates
almost always pin those positions (``("entry", key, ...)``, ``("lock", name,
...)``), so ``rdp``/``inp``/``cas``/``replace`` resolve in O(1) instead of
scanning every stored tuple, and expiry sweeps only visit lease-bearing
tuples.  Tuple fields must be hashable (they already had to support ``==`` for
template matching); matching semantics are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.common.errors import ConflictError, TupleNotFoundError


class _AnyField:
    """Wildcard template field (matches any value)."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return "ANY"


#: Wildcard used in templates.
ANY = _AnyField()

Tuple = tuple
Template = tuple


def matches(template: Template, fields: Tuple) -> bool:
    """True if ``fields`` matches ``template`` (same arity, wildcards allowed)."""
    if len(template) != len(fields):
        return False
    return all(t is ANY or t == f for t, f in zip(template, fields, strict=True))


@dataclass(slots=True)
class TupleEntry:
    """A stored tuple plus its housekeeping metadata."""

    fields: Tuple
    created_at: float
    expires_at: float | None = None
    owner: str | None = None
    sequence: int = 0

    def expired(self, now: float) -> bool:
        """True once the tuple's lease elapsed (never for persistent tuples)."""
        return self.expires_at is not None and now >= self.expires_at


class DepSpace:
    """Deterministic DepSpace state machine (single logical space).

    All mutating operations receive the current simulated time ``now`` so that
    replicated copies expire timed tuples identically.
    """

    def __init__(self) -> None:
        self.triggers: dict[str, Callable[[Tuple, Any], Tuple]] = {}
        self.operations_applied: int = 0
        self._sequence: int = 0
        # All live entries, keyed by sequence number.  Python dicts preserve
        # insertion order, so iterating values() reproduces the append-order
        # scan the pre-index implementation performed over a list.
        self._entries: dict[int, TupleEntry] = {}
        # Secondary indexes: first field, and (first, second) field pair.
        self._by_head: dict[Any, dict[int, TupleEntry]] = {}
        self._by_pair: dict[tuple, dict[int, TupleEntry]] = {}
        # Lease-bearing entries only — the sweep never touches persistent ones.
        self._timed: dict[int, TupleEntry] = {}

    @property
    def entries(self) -> list[TupleEntry]:
        """Live entries in insertion order (introspection/debugging view)."""
        return list(self._entries.values())

    # ------------------------------------------------------------------ admin

    def register_trigger(self, name: str, func: Callable[[Tuple, Any], Tuple]) -> None:
        """Register a deterministic rewrite function usable via ``fire_trigger``.

        Triggers must be registered identically on every replica *before* the
        space starts serving requests (they are part of the service's code, not
        of its replicated state).
        """
        self.triggers[name] = func

    # --------------------------------------------------------------- indexing

    def _bucket_add(self, entry: TupleEntry) -> None:
        fields = entry.fields
        if not fields:
            return
        self._by_head.setdefault(fields[0], {})[entry.sequence] = entry
        if len(fields) >= 2:
            self._by_pair.setdefault((fields[0], fields[1]), {})[entry.sequence] = entry

    def _bucket_discard(self, entry: TupleEntry, fields: Tuple) -> None:
        if not fields:
            return
        seq = entry.sequence
        bucket = self._by_head.get(fields[0])
        if bucket is not None:
            bucket.pop(seq, None)
            if not bucket:
                del self._by_head[fields[0]]
        if len(fields) >= 2:
            pair = (fields[0], fields[1])
            pair_bucket = self._by_pair.get(pair)
            if pair_bucket is not None:
                pair_bucket.pop(seq, None)
                if not pair_bucket:
                    del self._by_pair[pair]

    def _insert(self, entry: TupleEntry) -> None:
        self._entries[entry.sequence] = entry
        self._bucket_add(entry)
        if entry.expires_at is not None:
            self._timed[entry.sequence] = entry

    def _remove(self, entry: TupleEntry) -> None:
        del self._entries[entry.sequence]
        self._bucket_discard(entry, entry.fields)
        self._timed.pop(entry.sequence, None)

    def _candidates(self, template: Template) -> Iterable[TupleEntry]:
        """Entries that could match ``template``, narrowed via the indexes.

        A template only matches tuples of the same arity, so when its first
        (or first two) fields are concrete the corresponding index bucket is
        a complete candidate set.  Buckets are kept in sequence order, so the
        first match equals the one the old full scan would have returned.
        """
        if len(template) >= 2 and template[0] is not ANY and template[1] is not ANY:
            return self._by_pair.get((template[0], template[1]), {}).values()
        if template and template[0] is not ANY:
            return self._by_head.get(template[0], {}).values()
        return self._entries.values()

    # ------------------------------------------------------------- primitives

    def _sweep(self, now: float) -> None:
        expired = [e for e in self._timed.values() if e.expired(now)]
        for entry in expired:
            self._remove(entry)

    def _find(self, template: Template, now: float) -> TupleEntry | None:
        self._sweep(now)
        for entry in self._candidates(template):
            if matches(template, entry.fields):
                return entry
        return None

    def out(self, fields: Tuple, now: float, lease: float | None = None,
            owner: str | None = None) -> TupleEntry:
        """Insert a tuple; ``lease`` (seconds) makes it a timed/ephemeral tuple."""
        self._sweep(now)
        self._sequence += 1
        entry = TupleEntry(
            fields=tuple(fields),
            created_at=now,
            expires_at=None if lease is None else now + lease,
            owner=owner,
            sequence=self._sequence,
        )
        self._insert(entry)
        self.operations_applied += 1
        return entry

    def rdp(self, template: Template, now: float) -> Tuple | None:
        """Read (without removing) one tuple matching ``template``; None if absent."""
        self.operations_applied += 1
        entry = self._find(template, now)
        return entry.fields if entry else None

    def rdp_all(self, template: Template, now: float) -> list[Tuple]:
        """Read all tuples matching ``template``."""
        self._sweep(now)
        self.operations_applied += 1
        return [e.fields for e in self._candidates(template) if matches(template, e.fields)]

    def inp(self, template: Template, now: float) -> Tuple | None:
        """Read and remove one tuple matching ``template``; None if absent."""
        self.operations_applied += 1
        entry = self._find(template, now)
        if entry is None:
            return None
        self._remove(entry)
        return entry.fields

    def cas(self, template: Template, fields: Tuple, now: float,
            lease: float | None = None, owner: str | None = None) -> bool:
        """Insert ``fields`` only if no tuple matches ``template``.

        Returns True on success; False (without inserting) when a matching
        tuple already exists.  This is the synchronisation-powerful operation
        SCFS uses for locking and for create-if-absent metadata updates.
        """
        self.operations_applied += 1
        if self._find(template, now) is not None:
            return False
        self.out(fields, now, lease=lease, owner=owner)
        return True

    def replace(self, template: Template, fields: Tuple, now: float,
                lease: float | None = None, owner: str | None = None) -> bool:
        """Atomically remove the tuple matching ``template`` and insert ``fields``.

        Returns False (and inserts nothing) when no tuple matches the template,
        allowing the caller to detect lost updates.
        """
        self.operations_applied += 1
        entry = self._find(template, now)
        if entry is None:
            return False
        self._remove(entry)
        self.out(fields, now, lease=lease, owner=owner)
        return True

    def renew(self, template: Template, now: float, lease: float) -> bool:
        """Extend the lease of the timed tuple matching ``template``."""
        self.operations_applied += 1
        entry = self._find(template, now)
        if entry is None or entry.expires_at is None:
            return False
        entry.expires_at = now + lease
        return True

    def fire_trigger(self, name: str, template: Template, argument: Any, now: float) -> int:
        """Apply the registered trigger ``name`` to every tuple matching ``template``.

        Returns the number of rewritten tuples.  Used by SCFS to implement
        ``rename`` of a directory as one round trip instead of one ``replace``
        per descendant.
        """
        self.operations_applied += 1
        if name not in self.triggers:
            raise TupleNotFoundError(f"no trigger registered under {name!r}")
        rewrite = self.triggers[name]
        self._sweep(now)
        matched = [e for e in self._candidates(template) if matches(template, e.fields)]
        touched_heads: set[Any] = set()
        touched_pairs: set[tuple] = set()
        for entry in matched:
            old_fields = entry.fields
            new_fields = tuple(rewrite(old_fields, argument))
            if new_fields != old_fields:
                self._bucket_discard(entry, old_fields)
                entry.fields = new_fields
                self._bucket_add(entry)
                if new_fields:
                    touched_heads.add(new_fields[0])
                    if len(new_fields) >= 2:
                        touched_pairs.add((new_fields[0], new_fields[1]))
        # Moved entries land at the end of their new bucket; restore sequence
        # order so future scans keep returning the oldest match first.
        # repro: allow[DET003] -- order-insensitive: each pass rewrites an existing dict key in place
        for head in touched_heads:
            bucket = self._by_head.get(head)
            if bucket is not None and len(bucket) > 1:
                self._by_head[head] = dict(sorted(bucket.items()))
        # repro: allow[DET003] -- order-insensitive: each pass rewrites an existing dict key in place
        for pair in touched_pairs:
            pair_bucket = self._by_pair.get(pair)
            if pair_bucket is not None and len(pair_bucket) > 1:
                self._by_pair[pair] = dict(sorted(pair_bucket.items()))
        return len(matched)

    def count(self, template: Template, now: float) -> int:
        """Number of live tuples matching ``template``."""
        self._sweep(now)
        return sum(1 for e in self._candidates(template) if matches(template, e.fields))

    def total_tuples(self, now: float) -> int:
        """Number of live tuples in the space."""
        self._sweep(now)
        return len(self._entries)

    def stored_bytes(self, now: float) -> int:
        """Approximate memory footprint of the live tuples."""
        self._sweep(now)
        total = 0
        for entry in self._entries.values():
            for fld in entry.fields:
                if isinstance(fld, bytes):
                    total += len(fld)
                elif isinstance(fld, str):
                    total += len(fld.encode())
                else:
                    total += 8
        return total

    # ------------------------------------------------------------ replication

    def apply(self, command: tuple[str, tuple, dict]) -> Any:
        """Dispatch a replicated command (see :class:`ReplicatedStateMachine`)."""
        operation, args, kwargs = command
        handler = getattr(self, operation, None)
        if handler is None or not callable(handler) or operation.startswith("_"):
            raise ConflictError(f"unknown DepSpace operation {operation!r}")
        return handler(*args, **kwargs)


def make_depspace_with_triggers(extra: Iterable[tuple[str, Callable[[Tuple, Any], Tuple]]] = ()) -> DepSpace:
    """Build a DepSpace instance with SCFS's standard triggers registered.

    The standard ``rename_prefix`` trigger rewrites the *parent path* field
    (index 2) of metadata tuples whose parent lies under the old prefix.
    """
    space = DepSpace()

    def rename_prefix(fields: Tuple, argument: Any) -> Tuple:
        old_prefix, new_prefix = argument
        updated = list(fields)
        if isinstance(updated[2], str) and updated[2].startswith(old_prefix):
            updated[2] = new_prefix + updated[2][len(old_prefix):]
        return tuple(updated)

    space.register_trigger("rename_prefix", rename_prefix)
    for name, func in extra:
        space.register_trigger(name, func)
    return space
