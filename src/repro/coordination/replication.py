"""Simulated state-machine replication for the coordination service.

DepSpace runs on top of the BFT-SMaRt replication engine (3f+1 replicas to
tolerate f Byzantine faults, or 2f+1 for crashes), while ZooKeeper uses a
Paxos-like protocol with 2f+1 replicas (§3.2).  This module reproduces the
*externally observable* behaviour of such a replicated service:

* a deterministic state machine is instantiated once per replica;
* every command is applied to all *correct* replicas, keeping them in sync;
* a command only succeeds while a quorum of replicas is available, otherwise
  :class:`~repro.common.errors.QuorumNotReachedError` is raised;
* Byzantine replicas may return corrupted answers, which are voted out by the
  reply quorum (we verify that enough correct replicas agree);
* each invocation charges the client one coordination-access latency
  (60–100 ms in the paper, §4.2) to the simulated clock.

The goal is not to reproduce the internals of BFT-SMaRt/Zab, but to provide a
substrate with the same failure and latency envelope that SCFS assumes.
"""

from __future__ import annotations

import copy
import enum
from typing import Any, Callable, Protocol

from repro.common.errors import QuorumNotReachedError
from repro.simenv.environment import Simulation
from repro.simenv.latency import LatencyModel


class StateMachine(Protocol):
    """A deterministic state machine: same command sequence, same results."""

    def apply(self, command: tuple[str, tuple, dict]) -> Any:  # pragma: no cover - protocol
        """Execute one command and return its result."""


class FaultModel(enum.Enum):
    """Fault assumptions of the replication protocol."""

    #: Crash fault tolerance: n = 2f+1 replicas tolerate f crashes (ZooKeeper).
    CRASH = "crash"
    #: Byzantine fault tolerance: n = 3f+1 replicas tolerate f arbitrary faults
    #: (DepSpace over BFT-SMaRt).
    BYZANTINE = "byzantine"


def replicas_required(fault_model: FaultModel, f: int) -> int:
    """Number of replicas needed to tolerate ``f`` faults under ``fault_model``."""
    if f < 0:
        raise ValueError("f must be non-negative")
    return 2 * f + 1 if fault_model is FaultModel.CRASH else 3 * f + 1


class ReplicatedStateMachine:
    """Replicates a deterministic state machine across ``n`` simulated replicas.

    Parameters
    ----------
    sim:
        Simulation environment (clock and RNG).
    factory:
        Zero-argument callable building one replica's state machine.
    fault_model:
        :class:`FaultModel.CRASH` or :class:`FaultModel.BYZANTINE`.
    f:
        Number of tolerated faults; the replica count is derived from it.
    latency:
        Client-observed latency of one replicated operation (defaults to the
        80 ms the paper measured for coordination accesses).
    charge_latency:
        Set to ``False`` when a higher layer accounts for latency itself.
    """

    def __init__(
        self,
        sim: Simulation,
        factory: Callable[[], StateMachine],
        fault_model: FaultModel = FaultModel.BYZANTINE,
        f: int = 1,
        latency: LatencyModel | None = None,
        charge_latency: bool = True,
    ):
        self.sim = sim
        self.fault_model = fault_model
        self.f = f
        self.n = replicas_required(fault_model, f)
        self.replicas: list[StateMachine] = [factory() for _ in range(self.n)]
        self.latency = latency or LatencyModel(base=0.080, jitter=0.2)
        self.charge_latency = charge_latency
        self._crashed: set[int] = set()
        self._byzantine: set[int] = set()
        self._partitioned: set[int] = set()
        self.commands_executed = 0

    # -- fault injection ------------------------------------------------------

    def crash_replica(self, index: int) -> None:
        """Crash replica ``index`` (it stops answering)."""
        self._check_index(index)
        self._crashed.add(index)

    def recover_replica(self, index: int) -> None:
        """Recover a crashed or Byzantine replica via state transfer.

        A faulty replica missed every command applied while it was out (and a
        Byzantine one may hold arbitrary state), so simply re-marking it
        correct would re-admit a *diverged* state machine — and ``invoke``
        answers from the first correct replica, so a stale recovered replica
        could serve vanished locks and old metadata.  As in BFT-SMaRt, the
        recovering replica first installs a snapshot of a correct peer's
        state; only if no correct peer exists (beyond the fault budget) does
        it rejoin with the state it has.
        """
        if index in self.faulty_replicas:
            correct = self.correct_replicas
            if correct:
                self.replicas[index] = copy.deepcopy(self.replicas[correct[0]])
        self._crashed.discard(index)
        self._byzantine.discard(index)
        self._partitioned.discard(index)

    def make_byzantine(self, index: int) -> None:
        """Mark replica ``index`` as Byzantine (it may answer arbitrarily)."""
        self._check_index(index)
        self._byzantine.add(index)

    def partition_replica(self, index: int) -> None:
        """Cut replica ``index`` off from the clients (a minority partition).

        To the protocol a partitioned replica is indistinguishable from a
        crashed one — it receives no commands and contributes no replies —
        but its *state* is intact: it simply falls behind.  Healing goes
        through :meth:`recover_replica`, whose state transfer is exactly how
        a partitioned replica catches up with the commands it missed.
        """
        self._check_index(index)
        self._partitioned.add(index)

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.n:
            raise IndexError(f"replica index {index} out of range (n={self.n})")

    @property
    def faulty_replicas(self) -> set[int]:
        """Indices of replicas currently crashed, Byzantine or partitioned."""
        return self._crashed | self._byzantine | self._partitioned

    @property
    def correct_replicas(self) -> list[int]:
        """Indices of replicas behaving correctly."""
        return [i for i in range(self.n) if i not in self.faulty_replicas]

    def quorum_size(self) -> int:
        """Replies needed for a command to complete."""
        if self.fault_model is FaultModel.CRASH:
            return self.f + 1
        return 2 * self.f + 1

    # -- invocation ------------------------------------------------------------

    def invoke(self, operation: str, *args: Any, **kwargs: Any) -> Any:
        """Execute ``operation`` on the replicated state machine.

        Raises :class:`QuorumNotReachedError` when too many replicas are faulty
        for the protocol to make progress.
        """
        correct = self.correct_replicas
        if len(correct) < self.quorum_size():
            raise QuorumNotReachedError(
                f"only {len(correct)} correct replicas, quorum of {self.quorum_size()} required",
                responses=len(correct),
                required=self.quorum_size(),
            )
        if self.charge_latency:
            self.sim.advance(self.latency.sample(0, self.sim.rng))
        command = (operation, args, kwargs)
        results = [self.replicas[i].apply(command) for i in correct]
        self.commands_executed += 1
        # All correct replicas are deterministic, so their results agree; we
        # return the first one.  Byzantine replicas never receive the command
        # (their state is considered corrupted), matching the voting filter a
        # real BFT client library applies to replies.
        return results[0]

    def reference_replica(self) -> StateMachine:
        """Return one correct replica, for read-only introspection by tests."""
        correct = self.correct_replicas
        if not correct:
            raise QuorumNotReachedError("no correct replica available", 0, 1)
        return self.replicas[correct[0]]
