"""Namespace-partitioned coordination (the scalability extension of §5).

The paper notes that "simple extensions would allow SCFS to use multiple
coordination services, each one dealing with a subtree of the namespace
(improving its scalability)", the same approach Farsite takes.  This module
implements that extension: a :class:`PartitionedCoordination` exposes the
standard :class:`~repro.coordination.base.CoordinationService` interface while
routing every entry and lock to one of ``n`` underlying coordination services
chosen by a deterministic partitioning function over the key.

Because the SCFS Agent's metadata keys embed the file path, partitioning by
the top-level directory (the default) spreads different users' or projects'
subtrees across independent replicated services, multiplying the metadata
capacity and halving (or better) the load per service.  Operations that span
partitions (``list_prefix`` with a short prefix) simply fan out.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Sequence

from repro.common.types import Permission, Principal
from repro.coordination.base import CoordinationService, Entry, Session


def partition_by_top_level_directory(key: str, partitions: int) -> int:
    """Default partitioning function: hash the first path component of the key.

    Metadata keys look like ``meta:/a/b/c`` and lock names like
    ``filelock:file-000123``; taking the first component after the prefix keeps
    all entries of one top-level subtree in the same partition, so rename and
    readdir of a subtree stay single-partition.
    """
    payload = key.split(":", 1)[-1]
    top_level = payload.strip("/").split("/", 1)[0] if payload.strip("/") else ""
    digest = hashlib.sha256(top_level.encode()).digest()
    return digest[0] % partitions


class _ChargeProxy:
    """Expose a single ``charge_latency`` switch spanning every partition.

    The SCFS Agent suspends coordination latency charging around background
    work by toggling ``coordination.rsm.charge_latency``; this proxy forwards
    that toggle to the replicated state machine of every partition.
    """

    def __init__(self, services: Sequence[CoordinationService]):
        self._services = services

    @property
    def charge_latency(self) -> bool:
        rsms = [getattr(s, "rsm", None) for s in self._services]
        return all(r.charge_latency for r in rsms if r is not None)

    @charge_latency.setter
    def charge_latency(self, value: bool) -> None:
        for service in self._services:
            rsm = getattr(service, "rsm", None)
            if rsm is not None:
                rsm.charge_latency = value


class PartitionedCoordination(CoordinationService):
    """Route coordination operations across several underlying services."""

    def __init__(
        self,
        services: Sequence[CoordinationService],
        partition_function: Callable[[str, int], int] = partition_by_top_level_directory,
    ):
        if not services:
            raise ValueError("at least one underlying coordination service is required")
        self.services = list(services)
        self.partition_function = partition_function
        #: Latency-charging proxy spanning every partition (see _ChargeProxy).
        self.rsm = _ChargeProxy(self.services)

    # -- routing ----------------------------------------------------------------

    def _service_for(self, key: str) -> CoordinationService:
        index = self.partition_function(key, len(self.services))
        return self.services[index % len(self.services)]

    def partition_of(self, key: str) -> int:
        """Index of the partition responsible for ``key`` (observability/tests)."""
        return self.partition_function(key, len(self.services)) % len(self.services)

    # -- sessions ----------------------------------------------------------------
    #
    # A client session must exist on every partition, because a single file
    # system operation may touch entries routed to different services.

    def open_session(self, principal: Principal, lease_seconds: float = 30.0) -> Session:
        sub_sessions = [s.open_session(principal, lease_seconds) for s in self.services]
        session = Session(
            session_id=sub_sessions[0].session_id,
            principal=principal,
            lease_seconds=lease_seconds,
            last_renewal=sub_sessions[0].last_renewal,
        )
        # Stash the per-partition sessions on the façade session object.
        session.partitions = sub_sessions  # type: ignore[attr-defined]
        return session

    def _sub_session(self, session: Session, service: CoordinationService) -> Session:
        sub_sessions = getattr(session, "partitions", None)
        if not sub_sessions:
            return session
        return sub_sessions[self.services.index(service)]

    def renew_session(self, session: Session) -> None:
        for service, sub in zip(self.services, getattr(session, "partitions", []), strict=False):
            service.renew_session(sub)
        session.last_renewal = max((s.last_renewal for s in getattr(session, "partitions", [session])),
                                   default=session.last_renewal)

    def close_session(self, session: Session) -> None:
        for service, sub in zip(self.services, getattr(session, "partitions", []), strict=False):
            service.close_session(sub)

    # -- entries ------------------------------------------------------------------

    def put(self, key: str, value: bytes, session: Session,
            expected_version: int | None = None) -> Entry:
        service = self._service_for(key)
        return service.put(key, value, self._sub_session(session, service), expected_version)

    def get(self, key: str, session: Session) -> Entry:
        service = self._service_for(key)
        return service.get(key, self._sub_session(session, service))

    def delete(self, key: str, session: Session) -> None:
        service = self._service_for(key)
        service.delete(key, self._sub_session(session, service))

    def list_prefix(self, prefix: str, session: Session) -> list[str]:
        keys: set[str] = set()
        for service in self.services:
            keys.update(service.list_prefix(prefix, self._sub_session(session, service)))
        return sorted(keys)

    def set_entry_acl(self, key: str, user: str, permission: Permission,
                      session: Session) -> None:
        service = self._service_for(key)
        service.set_entry_acl(key, user, permission, self._sub_session(session, service))

    # -- locking --------------------------------------------------------------------

    def try_lock(self, name: str, session: Session) -> bool:
        service = self._service_for(name)
        return service.try_lock(name, self._sub_session(session, service))

    def unlock(self, name: str, session: Session) -> None:
        service = self._service_for(name)
        service.unlock(name, self._sub_session(session, service))

    def lock_holder(self, name: str) -> str | None:
        return self._service_for(name).lock_holder(name)

    # -- introspection ----------------------------------------------------------------

    def entry_count(self) -> int:
        return sum(service.entry_count() for service in self.services)

    def stored_bytes(self) -> int:
        return sum(service.stored_bytes() for service in self.services)

    def per_partition_entries(self) -> list[int]:
        """Entry count of each partition (used to observe load spreading)."""
        return [service.entry_count() for service in self.services]
