"""Coordination services (the SCFS *consistency anchor*).

SCFS stores file-system metadata in, and synchronises through, a fault-tolerant
coordination service rather than an embedded lock/metadata manager (§1,
*modular coordination*).  The paper's prototype supports two such services —
DepSpace (a Byzantine fault-tolerant tuple space) and Apache ZooKeeper (a
crash fault-tolerant znode tree) — and this package reproduces both:

* :mod:`~repro.coordination.tuplespace` — a DepSpace-like tuple space with
  ``out/rdp/inp/cas/replace`` operations, timed (ephemeral) tuples and the
  trigger extension the paper added for efficient ``rename``;
* :mod:`~repro.coordination.zookeeper` — a ZooKeeper-like hierarchical znode
  store with versioned writes, ephemeral and sequential nodes;
* :mod:`~repro.coordination.replication` — a simulated state-machine
  replication layer offering crash (2f+1) and Byzantine (3f+1) configurations
  with quorum availability checks;
* :mod:`~repro.coordination.locks` — the lock recipes (§2.5.1) built from
  ephemeral entries, guaranteeing automatic unlock when a client crashes;
* :mod:`~repro.coordination.base`/:mod:`~repro.coordination.adapters` — the
  thin ``CoordinationService`` wrapper interface the SCFS Agent programs
  against, with adapters for both concrete services.
"""

from repro.coordination.base import CoordinationService, Entry, Session
from repro.coordination.tuplespace import DepSpace, TupleEntry
from repro.coordination.zookeeper import ZooKeeperLike, ZNode
from repro.coordination.replication import ReplicatedStateMachine, FaultModel
from repro.coordination.locks import LockManager
from repro.coordination.adapters import (
    DepSpaceCoordination,
    ZooKeeperCoordination,
    make_coordination_service,
)
from repro.coordination.partitioned import PartitionedCoordination, partition_by_top_level_directory

__all__ = [
    "CoordinationService",
    "Entry",
    "Session",
    "DepSpace",
    "TupleEntry",
    "ZooKeeperLike",
    "ZNode",
    "ReplicatedStateMachine",
    "FaultModel",
    "LockManager",
    "DepSpaceCoordination",
    "ZooKeeperCoordination",
    "make_coordination_service",
    "PartitionedCoordination",
    "partition_by_top_level_directory",
]
