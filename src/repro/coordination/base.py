"""The coordination-service interface the SCFS Agent programs against.

The agent needs surprisingly little from the coordination service (§2.3):

* linearizable storage of *small* entries (metadata tuples of ~1 KB);
* versioned conditional updates (to detect concurrent metadata changes);
* ephemeral entries bound to a client session (for locks that disappear if
  the client crashes);
* per-entry access control (the agent is untrusted, §2.6).

Concrete services (the DepSpace-like tuple space and the ZooKeeper-like znode
tree) are adapted to this interface by :mod:`repro.coordination.adapters`;
SCFS code never depends on a specific service, which is exactly the paper's
*modular coordination* principle.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.common.types import Permission, Principal


@dataclass(frozen=True)
class Entry:
    """A small, versioned entry stored in the coordination service."""

    key: str
    value: bytes
    version: int
    owner: str
    ephemeral_session: str | None = None


@dataclass
class Session:
    """A client session; ephemeral entries vanish when the session expires."""

    session_id: str
    principal: Principal
    lease_seconds: float
    last_renewal: float

    def expired(self, now: float) -> bool:
        """True once the lease has elapsed without a renewal."""
        return now > self.last_renewal + self.lease_seconds


@dataclass
class EntryACL:
    """Access-control list of one coordination-service entry."""

    owner: str
    grants: dict[str, Permission] = field(default_factory=dict)

    def allows(self, user: str, permission: Permission) -> bool:
        """True if ``user`` may perform ``permission`` on the entry.

        The pseudo-user ``"*"`` stands for "any authenticated user"; it is used
        for entries that must be world-readable inside the file system, such as
        the per-user canonical-identifier tuples (§2.6).
        """
        if user == self.owner:
            return True
        granted = self.grants.get(user, Permission.NONE) | self.grants.get("*", Permission.NONE)
        return (granted & permission) == permission


class CoordinationService(abc.ABC):
    """Linearizable storage of small entries plus session-bound locks."""

    # -- sessions -----------------------------------------------------------

    @abc.abstractmethod
    def open_session(self, principal: Principal, lease_seconds: float = 30.0) -> Session:
        """Open a session for ``principal``; ephemeral state binds to it."""

    @abc.abstractmethod
    def renew_session(self, session: Session) -> None:
        """Extend the session lease (heartbeat)."""

    @abc.abstractmethod
    def close_session(self, session: Session) -> None:
        """Close the session, releasing its ephemeral entries and locks."""

    # -- entries ------------------------------------------------------------

    @abc.abstractmethod
    def put(self, key: str, value: bytes, session: Session,
            expected_version: int | None = None) -> Entry:
        """Create or update the entry under ``key``.

        When ``expected_version`` is given the update only succeeds if the
        current version matches (compare-and-swap);
        :class:`~repro.common.errors.ConflictError` is raised otherwise.
        """

    @abc.abstractmethod
    def get(self, key: str, session: Session) -> Entry:
        """Return the entry under ``key`` or raise ``TupleNotFoundError``."""

    @abc.abstractmethod
    def delete(self, key: str, session: Session) -> None:
        """Remove the entry under ``key`` (idempotent)."""

    @abc.abstractmethod
    def list_prefix(self, prefix: str, session: Session) -> list[str]:
        """List keys starting with ``prefix`` readable by the session principal."""

    @abc.abstractmethod
    def set_entry_acl(self, key: str, user: str, permission: Permission,
                      session: Session) -> None:
        """Grant ``permission`` on ``key`` to ``user`` (owner only)."""

    # -- locking ------------------------------------------------------------

    @abc.abstractmethod
    def try_lock(self, name: str, session: Session) -> bool:
        """Attempt to acquire the ephemeral lock ``name``; False if already held."""

    @abc.abstractmethod
    def unlock(self, name: str, session: Session) -> None:
        """Release the lock ``name`` held by this session."""

    @abc.abstractmethod
    def lock_holder(self, name: str) -> str | None:
        """Session id currently holding ``name`` (None when free); test helper."""

    # -- introspection -------------------------------------------------------

    @abc.abstractmethod
    def entry_count(self) -> int:
        """Number of entries currently stored (capacity planning, Figure 11a)."""

    @abc.abstractmethod
    def stored_bytes(self) -> int:
        """Approximate memory footprint of the stored entries in bytes."""
