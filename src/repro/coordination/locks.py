"""Lock recipes built on top of a coordination service.

SCFS's lock service "is basically a wrapper for implementing coordination
recipes for locking using the coordination service of choice" (§2.5.1).  The
only strict requirement is that lock entries are *ephemeral*: a crashed client
must not hold its locks forever.  Both concrete services satisfy this —
DepSpace through timed tuples, ZooKeeper through ephemeral znodes — so the
recipe here only adds retry/timeout policy and bookkeeping on top of
:meth:`~repro.coordination.base.CoordinationService.try_lock`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import LockHeldError, NotLockOwnerError
from repro.coordination.base import CoordinationService, Session
from repro.simenv.environment import Simulation


@dataclass
class LockManager:
    """Acquire/release named locks for one client session.

    Parameters
    ----------
    sim:
        Simulation environment (used to wait between retries).
    service:
        The coordination service holding the ephemeral lock entries.
    session:
        The client session on whose behalf locks are taken.
    retry_interval:
        Simulated seconds to wait between acquisition attempts.
    max_retries:
        Number of retries after the first failed attempt before giving up.
    """

    sim: Simulation
    service: CoordinationService
    session: Session
    retry_interval: float = 0.2
    max_retries: int = 0
    #: Lock name -> number of outstanding acquisitions by this session.  The
    #: count makes re-entrant acquisition symmetric with release: the lock is
    #: only returned to the coordination service when every acquisition has
    #: been released.  (A flat set would release on the *first* release, which
    #: let another client grab the lock while e.g. a second open of the same
    #: file — or a pending non-blocking commit — was still writing.)
    held: dict[str, int] = field(default_factory=dict)

    def try_acquire(self, name: str) -> bool:
        """Single non-blocking acquisition attempt (re-entrant for this session)."""
        if name in self.held:
            self.held[name] += 1
            return True
        acquired = self.service.try_lock(name, self.session)
        if acquired:
            self.held[name] = 1
        return acquired

    def acquire(self, name: str) -> None:
        """Acquire ``name``, retrying up to ``max_retries`` times.

        Raises :class:`LockHeldError` if the lock stays unavailable, which the
        file system surfaces as an open-for-writing error (§2.5.2).
        """
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            if self.try_acquire(name):
                return
            if attempt != attempts - 1:
                self.sim.advance(self.retry_interval)
        raise LockHeldError(f"lock {name!r} is held by another client")

    def release(self, name: str) -> bool:
        """Release one acquisition of ``name``.

        Returns True when this was the last outstanding acquisition (the lock
        was actually returned to the coordination service), False when the
        lock stays held by a remaining re-entrant acquisition.
        """
        if name not in self.held:
            raise NotLockOwnerError(f"this session does not hold lock {name!r}")
        self.held[name] -= 1
        if self.held[name] > 0:
            return False
        del self.held[name]
        self.service.unlock(name, self.session)
        return True

    def release_all(self) -> None:
        """Release every lock held by this manager (used on unmount/crash cleanup).

        Collapses any re-entrant counts: unmount means the client is done with
        all of its files, so each lock is returned in one step.
        """
        for name in list(self.held):
            self.held[name] = 1
            self.release(name)

    def holds(self, name: str) -> bool:
        """True if this manager currently believes it holds ``name``."""
        return name in self.held

    def still_held(self, name: str) -> bool:
        """True when the coordination service still shows this session as holder.

        Both concrete services time lock leases from the *acquisition*: a
        holder that stays busy past ``lease_seconds`` loses the lock silently
        while :meth:`holds` keeps returning True.  Commit paths re-check here
        before irreversible steps, turning a stolen lock into a clean abort
        instead of a version fork.
        """
        if name not in self.held:
            return False
        return self.service.lock_holder(name) == self.session.session_id

    def hold_count(self, name: str) -> int:
        """Number of outstanding acquisitions of ``name`` by this session."""
        return self.held.get(name, 0)
