"""A ZooKeeper-like hierarchical coordination store.

The SCFS prototype also supports Apache ZooKeeper as its coordination service
(§3.2).  This module reproduces the subset of the ZooKeeper data model that
SCFS relies on:

* a tree of *znodes* addressed by slash-separated paths;
* each znode stores a small byte payload and a monotonically increasing
  version number, checked by conditional ``set``/``delete``;
* **ephemeral** znodes owned by a session and removed when it expires — the
  building block of the lock recipe;
* **sequential** znodes whose names get a unique increasing suffix.

Like :class:`~repro.coordination.tuplespace.DepSpace`, the class is a
deterministic state machine suitable for replication via
:class:`~repro.coordination.replication.ReplicatedStateMachine` (ZooKeeper uses
a crash-fault-tolerant protocol, hence ``FaultModel.CRASH`` with 2f+1 replicas).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ConflictError, TupleNotFoundError


@dataclass
class ZNode:
    """One node in the znode tree."""

    path: str
    data: bytes = b""
    version: int = 0
    ephemeral_owner: str | None = None
    children: set[str] = field(default_factory=set)
    created_at: float = 0.0


class ZooKeeperLike:
    """Deterministic znode tree with ephemeral and sequential nodes."""

    def __init__(self):
        self._nodes: dict[str, ZNode] = {"/": ZNode(path="/")}
        self._sequence = 0
        self._session_expiry: dict[str, float] = {}
        self.operations_applied = 0

    # ------------------------------------------------------------------ utils

    @staticmethod
    def _parent(path: str) -> str:
        if path == "/":
            raise ConflictError("the root znode has no parent")
        parent = path.rsplit("/", 1)[0]
        return parent or "/"

    @staticmethod
    def _validate(path: str) -> None:
        if not path.startswith("/") or (path != "/" and path.endswith("/")):
            raise ConflictError(f"invalid znode path {path!r}")

    def _sweep_sessions(self, now: float) -> None:
        expired = {s for s, deadline in self._session_expiry.items() if now >= deadline}
        if not expired:
            return
        for path in [p for p, n in self._nodes.items() if n.ephemeral_owner in expired]:
            self._remove(path)
        for session in sorted(expired):
            del self._session_expiry[session]

    def _remove(self, path: str) -> None:
        node = self._nodes.pop(path, None)
        if node is None:
            return
        parent = self._nodes.get(self._parent(path))
        if parent is not None:
            parent.children.discard(path)

    # ------------------------------------------------------------------- API

    def register_session(self, session_id: str, deadline: float) -> None:
        """Register (or refresh) a session; its ephemeral nodes live until ``deadline``."""
        self.operations_applied += 1
        self._session_expiry[session_id] = deadline

    def close_session(self, session_id: str, now: float) -> None:
        """Explicitly close a session, removing its ephemeral nodes immediately."""
        self.operations_applied += 1
        self._session_expiry[session_id] = now
        self._sweep_sessions(now)

    def create(self, path: str, data: bytes, now: float, ephemeral_owner: str | None = None,
               sequential: bool = False) -> str:
        """Create a znode; returns its (possibly sequence-suffixed) path.

        Raises :class:`ConflictError` if the node exists or the parent is missing.
        """
        self.operations_applied += 1
        self._validate(path)
        self._sweep_sessions(now)
        if sequential:
            self._sequence += 1
            path = f"{path}{self._sequence:010d}"
        if path in self._nodes:
            raise ConflictError(f"znode {path!r} already exists")
        parent_path = self._parent(path)
        parent = self._nodes.get(parent_path)
        if parent is None:
            raise TupleNotFoundError(f"parent znode {parent_path!r} does not exist")
        if parent.ephemeral_owner is not None:
            raise ConflictError("ephemeral znodes cannot have children")
        node = ZNode(path=path, data=data, ephemeral_owner=ephemeral_owner, created_at=now)
        self._nodes[path] = node
        parent.children.add(path)
        return path

    def get(self, path: str, now: float) -> tuple[bytes, int]:
        """Return ``(data, version)`` of the znode at ``path``."""
        self.operations_applied += 1
        self._sweep_sessions(now)
        node = self._nodes.get(path)
        if node is None:
            raise TupleNotFoundError(f"znode {path!r} does not exist")
        return node.data, node.version

    def set(self, path: str, data: bytes, now: float, expected_version: int | None = None) -> int:
        """Update a znode's payload; returns the new version.

        ``expected_version`` enables compare-and-swap semantics.
        """
        self.operations_applied += 1
        self._sweep_sessions(now)
        node = self._nodes.get(path)
        if node is None:
            raise TupleNotFoundError(f"znode {path!r} does not exist")
        if expected_version is not None and node.version != expected_version:
            raise ConflictError(
                f"version mismatch on {path!r}: expected {expected_version}, found {node.version}"
            )
        node.data = data
        node.version += 1
        return node.version

    def delete(self, path: str, now: float, expected_version: int | None = None) -> None:
        """Delete a leaf znode (optionally only at the expected version)."""
        self.operations_applied += 1
        self._sweep_sessions(now)
        node = self._nodes.get(path)
        if node is None:
            return
        if expected_version is not None and node.version != expected_version:
            raise ConflictError(
                f"version mismatch on {path!r}: expected {expected_version}, found {node.version}"
            )
        if node.children:
            raise ConflictError(f"znode {path!r} has children and cannot be deleted")
        self._remove(path)

    def exists(self, path: str, now: float) -> bool:
        """True if a znode exists at ``path``."""
        self.operations_applied += 1
        self._sweep_sessions(now)
        return path in self._nodes

    def get_children(self, path: str, now: float) -> list[str]:
        """Sorted list of child paths of the znode at ``path``."""
        self.operations_applied += 1
        self._sweep_sessions(now)
        node = self._nodes.get(path)
        if node is None:
            raise TupleNotFoundError(f"znode {path!r} does not exist")
        return sorted(node.children)

    def node_count(self, now: float) -> int:
        """Number of live znodes (excluding the root)."""
        self._sweep_sessions(now)
        return len(self._nodes) - 1

    def stored_bytes(self, now: float) -> int:
        """Approximate memory footprint of all znode payloads."""
        self._sweep_sessions(now)
        return sum(len(n.data) + len(n.path) for n in self._nodes.values())

    # ------------------------------------------------------------ replication

    def apply(self, command: tuple[str, tuple, dict]) -> Any:
        """Dispatch a replicated command (see :class:`ReplicatedStateMachine`)."""
        operation, args, kwargs = command
        handler = getattr(self, operation, None)
        if handler is None or operation.startswith("_"):
            raise ConflictError(f"unknown ZooKeeper operation {operation!r}")
        return handler(*args, **kwargs)
