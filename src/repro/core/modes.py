"""SCFS modes of operation and the Table 2 variant catalogue.

§3.1 defines three modes of operation:

* **blocking** — ``close`` returns only after the file data reached the
  cloud(s) and the metadata was updated in the coordination service
  (consistency-on-close with maximum durability);
* **non-blocking** — ``close`` returns once the data is safely on the local
  disk and queued for upload; the metadata update and the lock release happen
  in the background *after* the upload completes, preserving mutual exclusion;
* **non-sharing** — no coordination service at all: every file lives in the
  user's Private Name Space, similar to S3QL but optionally on a
  cloud-of-clouds backend.

Crossing the three modes with the two backends of §3.2 (AWS: single cloud +
one DepSpace instance; CoC: DepSky over four clouds + replicated DepSpace)
yields the six variants evaluated in the paper (Table 2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OperationMode(enum.Enum):
    """The three SCFS modes of operation (§3.1)."""

    BLOCKING = "blocking"
    NON_BLOCKING = "non-blocking"
    NON_SHARING = "non-sharing"

    @property
    def uses_coordination(self) -> bool:
        """The non-sharing mode does not use the coordination service at all."""
        return self is not OperationMode.NON_SHARING

    @property
    def blocks_on_close(self) -> bool:
        """Only the blocking mode waits for the cloud upload inside ``close``."""
        return self is OperationMode.BLOCKING


class BackendKind(enum.Enum):
    """Storage/coordination backends evaluated in the paper (§3.2, Figure 5)."""

    #: Amazon Web Services: file data in S3, one DepSpace instance in EC2.
    AWS = "aws"
    #: Cloud-of-clouds: DepSky over four storage clouds, DepSpace replicated
    #: over four compute clouds (f = 1).
    COC = "coc"


@dataclass(frozen=True)
class VariantSpec:
    """One cell of Table 2: a named (mode, backend) combination."""

    name: str
    mode: OperationMode
    backend: BackendKind

    @property
    def label(self) -> str:
        """Short label used in benchmark tables (e.g. ``CoC-NB``)."""
        suffix = {"blocking": "B", "non-blocking": "NB", "non-sharing": "NS"}[self.mode.value]
        prefix = "AWS" if self.backend is BackendKind.AWS else "CoC"
        return f"{prefix}-{suffix}"


#: The six SCFS variants of Table 2, keyed by their paper names.
VARIANTS: dict[str, VariantSpec] = {
    "SCFS-AWS-B": VariantSpec("SCFS-AWS-B", OperationMode.BLOCKING, BackendKind.AWS),
    "SCFS-AWS-NB": VariantSpec("SCFS-AWS-NB", OperationMode.NON_BLOCKING, BackendKind.AWS),
    "SCFS-AWS-NS": VariantSpec("SCFS-AWS-NS", OperationMode.NON_SHARING, BackendKind.AWS),
    "SCFS-CoC-B": VariantSpec("SCFS-CoC-B", OperationMode.BLOCKING, BackendKind.COC),
    "SCFS-CoC-NB": VariantSpec("SCFS-CoC-NB", OperationMode.NON_BLOCKING, BackendKind.COC),
    "SCFS-CoC-NS": VariantSpec("SCFS-CoC-NS", OperationMode.NON_SHARING, BackendKind.COC),
}


def variant(name: str) -> VariantSpec:
    """Look up a Table 2 variant by name (case-insensitive, dashes required)."""
    for key, spec in VARIANTS.items():
        if key.lower() == name.lower():
            return spec
    raise KeyError(f"unknown SCFS variant {name!r}; known variants: {sorted(VARIANTS)}")
