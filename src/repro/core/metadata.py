"""File-system metadata tuples.

Each file system object is represented in the coordination service by a
metadata tuple containing: the object name, its type (file, directory or
link), its parent object, the object metadata (size, dates, owner, ACLs…), an
opaque identifier referencing the file in the storage service and the
collision-resistant hash of the current version of the file's contents
(§2.5.1).  The last two fields are exactly the ``(id, hash)`` pair the
consistency anchor stores (Figure 3).

Metadata is serialised to JSON; a populated tuple is on the order of 1 KB,
matching the capacity estimates of §2.7 and Figure 11(a).
"""

from __future__ import annotations

import enum
import json
import posixpath
from dataclasses import dataclass, field, replace

from repro.common.errors import FileSystemError
from repro.common.types import Permission


class FileType(enum.Enum):
    """Type of a file-system object."""

    FILE = "file"
    DIRECTORY = "directory"
    SYMLINK = "symlink"


def normalize_path(path: str) -> str:
    """Return the canonical absolute form of ``path`` (always starts with '/')."""
    if not path:
        raise FileSystemError("empty path")
    if not path.startswith("/"):
        path = "/" + path
    normalized = posixpath.normpath(path)
    return "/" if normalized in ("", "//", ".") else normalized


def parent_path(path: str) -> str:
    """Parent directory of ``path`` ('/' is its own parent)."""
    path = normalize_path(path)
    if path == "/":
        return "/"
    return posixpath.dirname(path) or "/"


def basename(path: str) -> str:
    """Final component of ``path`` (empty string for the root)."""
    return posixpath.basename(normalize_path(path))


@dataclass
class FileMetadata:
    """The metadata tuple of one file-system object."""

    path: str
    file_type: FileType
    owner: str
    size: int = 0
    created_at: float = 0.0
    modified_at: float = 0.0
    #: Opaque identifier of the object in the storage service (the ``id`` of Figure 3).
    file_id: str = ""
    #: Collision-resistant hash of the current version (the ``hash`` of Figure 3).
    digest: str = ""
    #: Data version counter (bumped on every completed close-with-modification).
    data_version: int = 0
    #: Access grants beyond the owner: user name -> permission.
    grants: dict[str, Permission] = field(default_factory=dict)
    #: Symlink target (only for FileType.SYMLINK).
    link_target: str = ""
    #: Files removed by the user are only marked deleted; the garbage collector
    #: erases them later (§2.5.3), which also enables undelete-style recovery.
    deleted: bool = False

    def __post_init__(self) -> None:
        self.path = normalize_path(self.path)

    # ------------------------------------------------------------------ sugar

    @property
    def name(self) -> str:
        """Object name (final path component)."""
        return basename(self.path)

    @property
    def parent(self) -> str:
        """Path of the parent directory."""
        return parent_path(self.path)

    @property
    def is_directory(self) -> bool:
        return self.file_type is FileType.DIRECTORY

    @property
    def is_file(self) -> bool:
        return self.file_type is FileType.FILE

    @property
    def is_shared(self) -> bool:
        """True when at least one other user has been granted access (§2.7)."""
        return bool(self.grants)

    def allows(self, user: str, permission: Permission) -> bool:
        """True if ``user`` may perform ``permission`` on this object.

        A grant to the pseudo-user ``"*"`` applies to any authenticated user
        (used for world-shared file pools, mirroring
        :meth:`repro.coordination.base.EntryACL.allows`).
        """
        if user == self.owner:
            return True
        granted = self.grants.get(user, Permission.NONE) | self.grants.get("*", Permission.NONE)
        return (granted & permission) == permission

    def grant(self, user: str, permission: Permission) -> None:
        """Grant (or revoke, with ``Permission.NONE``) access to ``user``."""
        if permission is Permission.NONE:
            self.grants.pop(user, None)
        else:
            self.grants[user] = permission

    def touch(self, now: float, size: int | None = None) -> None:
        """Update the modification time (and optionally the size)."""
        self.modified_at = now
        if size is not None:
            self.size = size

    def renamed(self, new_path: str) -> "FileMetadata":
        """Return a copy of this metadata under a new path."""
        clone = replace(self, path=normalize_path(new_path))
        clone.grants = dict(self.grants)
        return clone

    # -------------------------------------------------------------- serialise

    def to_bytes(self) -> bytes:
        """Serialise to the ~1 KB JSON blob stored in the coordination service."""
        return json.dumps(
            {
                "path": self.path,
                "type": self.file_type.value,
                "owner": self.owner,
                "size": self.size,
                "created_at": self.created_at,
                "modified_at": self.modified_at,
                "file_id": self.file_id,
                "digest": self.digest,
                "data_version": self.data_version,
                "grants": {u: p.value for u, p in self.grants.items()},
                "link_target": self.link_target,
                "deleted": self.deleted,
            },
            sort_keys=True,
        ).encode()

    @staticmethod
    def from_bytes(blob: bytes) -> "FileMetadata":
        """Parse a blob produced by :meth:`to_bytes`."""
        raw = json.loads(blob.decode())
        return FileMetadata(
            path=raw["path"],
            file_type=FileType(raw["type"]),
            owner=raw["owner"],
            size=int(raw["size"]),
            created_at=float(raw["created_at"]),
            modified_at=float(raw["modified_at"]),
            file_id=raw["file_id"],
            digest=raw["digest"],
            data_version=int(raw["data_version"]),
            grants={u: Permission(v) for u, v in raw.get("grants", {}).items()},
            link_target=raw.get("link_target", ""),
            deleted=bool(raw.get("deleted", False)),
        )

    def copy(self) -> "FileMetadata":
        """Deep-enough copy (grants dict is duplicated)."""
        clone = replace(self)
        clone.grants = dict(self.grants)
        return clone
