"""The SCFS garbage collector (§2.5.3).

During normal operation SCFS never deletes data: every ``close`` of a modified
file creates a *new* version and files removed by the user are merely marked
deleted in their metadata.  Old versions support recovery, but they cost
storage money, so each agent runs a garbage collector driven by two
user-chosen parameters set at mount time:

* ``W`` (``written_bytes_threshold``) — after the agent has written more than
  W bytes, a collection run is triggered (as a background task);
* ``V`` (``versions_to_keep``) — only the last V versions of each file are
  preserved; older versions, and all versions of user-deleted files, are
  removed from the cloud storage and their metadata entries erased.

Collection runs in isolation at each agent and only touches files *owned* by
its user — consistent with the pay-per-ownership principle, reclaiming space
only affects the owner's bill.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.common.errors import CloudError, ReproError
from repro.core.backend import StorageBackend
from repro.core.config import GarbageCollectionPolicy
from repro.core.metadata_service import MetadataService
from repro.core.storage_service import StorageService
from repro.simenv.environment import Simulation


@dataclass
class GCReport:
    """Summary of one garbage-collection run."""

    files_examined: int = 0
    versions_deleted: int = 0
    bytes_reclaimed: int = 0
    deleted_files_purged: int = 0
    errors: list[str] = field(default_factory=list)


class GarbageCollector:
    """Per-agent, policy-driven reclamation of old file versions."""

    def __init__(
        self,
        sim: Simulation,
        policy: GarbageCollectionPolicy,
        metadata_service: MetadataService,
        storage_service: StorageService,
        backend: StorageBackend,
    ):
        self.sim = sim
        self.policy = policy
        self.metadata = metadata_service
        self.storage = storage_service
        self.backend = backend
        self._bytes_at_last_run = 0
        self.runs = 0
        self.last_report: GCReport | None = None

    # ------------------------------------------------------------------ policy

    def should_activate(self) -> bool:
        """True once more than W bytes were written since the last run."""
        if not self.policy.enabled:
            return False
        written = self.storage.bytes_pushed - self._bytes_at_last_run
        return written >= self.policy.written_bytes_threshold

    def maybe_schedule(self) -> bool:
        """Schedule a background collection run if the policy says so.

        The run is scheduled as a deferred task (the paper starts it "as a
        separated thread that runs in parallel with the rest of the system").
        Returns True when a run was scheduled.
        """
        if not self.should_activate():
            return False
        self._bytes_at_last_run = self.storage.bytes_pushed
        self.sim.schedule(0.0, self.run, name="garbage-collection")
        return True

    # --------------------------------------------------------------------- run

    def run(self) -> GCReport:
        """Collect now (synchronously); returns a report of what was reclaimed.

        The collector never charges foreground latency: all its cloud accesses
        use the backend's uncharged mode, modelling the background thread of
        the paper.  (Its monetary cost is still recorded by the providers'
        cost trackers — the paper notes it costs about one LIST per cloud.)
        """
        report = GCReport()
        with self.backend.uncharged(), self._coordination_uncharged():
            for path in self.metadata.owned_paths():
                meta = self.metadata.lookup(path, use_cache=False)
                if meta is None or not meta.is_file or not meta.file_id:
                    continue
                report.files_examined += 1
                try:
                    self._collect_file(meta, report)
                except (CloudError, ReproError) as exc:
                    report.errors.append(f"{path}: {exc}")
        self.runs += 1
        self.last_report = report
        return report

    @contextlib.contextmanager
    def _coordination_uncharged(self):
        """Suspend coordination latency charging while the collector runs.

        The collector models the paper's background thread: its metadata reads
        and deletions must not inflate the foreground latency of the client.
        """
        rsm = getattr(self.metadata.coordination, "rsm", None)
        if rsm is None:
            yield
            return
        previous = rsm.charge_latency
        rsm.charge_latency = False
        try:
            yield
        finally:
            rsm.charge_latency = previous

    def _collect_file(self, meta, report: GCReport) -> None:
        versions = self.backend.list_versions(meta.file_id)
        if meta.deleted and self.policy.purge_deleted_files:
            # No anchored-digest guard here: the file is deleted, so no reader
            # anchors any of its versions, and the guard would stop the purge
            # as soon as the current version's own record was removed.
            for ref in versions:
                self.backend.delete_version(meta.file_id, ref.digest)
                self.storage.forget(meta.file_id, ref.digest)
                report.versions_deleted += 1
                report.bytes_reclaimed += ref.size
            self.metadata.remove(meta.path)
            report.deleted_files_purged += 1
            return
        # Keep the current version plus the most recent V-1 others.
        keep: set[str] = {meta.digest}
        ordered = [ref for ref in versions if ref.digest != meta.digest]
        for ref in reversed(ordered):
            if len(keep) >= self.policy.versions_to_keep:
                break
            keep.add(ref.digest)
        # Refined policy (§2.5.3): also keep the newest version of each time
        # bucket (e.g. one version per day/week) for long-term recovery.
        if self.policy.keep_interval_seconds:
            interval = self.policy.keep_interval_seconds
            newest_per_bucket: dict[int, str] = {}
            for ref in versions:
                bucket = int(ref.created_at // interval)
                newest_per_bucket[bucket] = ref.digest  # versions are ordered oldest-first
            keep.update(newest_per_bucket.values())
        for ref in versions:
            if ref.digest in keep:
                continue
            # ``anchored_digest`` lets the backend refuse to rewrite shared
            # metadata from a history that does not yet include the current
            # anchored version (eventual-consistency lag) — rewriting from it
            # would erase the freshly committed record.
            self.backend.delete_version(meta.file_id, ref.digest,
                                        anchored_digest=meta.digest)
            self.storage.forget(meta.file_id, ref.digest)
            report.versions_deleted += 1
            report.bytes_reclaimed += ref.size
