"""SCFS — the Shared Cloud-backed File System (the paper's primary contribution).

The package mirrors the component structure of §2/§3 of the paper:

* :mod:`~repro.core.config` / :mod:`~repro.core.modes` — configuration of the
  six SCFS variants of Table 2 (blocking, non-blocking, non-sharing × AWS, CoC);
* :mod:`~repro.core.backend` — the storage backplane: a single-cloud backend
  (SCFS-AWS) and a DepSky cloud-of-clouds backend (SCFS-CoC);
* :mod:`~repro.core.consistency` — the consistency-anchor algorithm of
  Figure 3, decoupled from the file system;
* :mod:`~repro.core.cache` — memory/disk LRU data caches and the short-lived
  metadata cache;
* :mod:`~repro.core.metadata` — metadata tuples (files, directories, links,
  ACLs) and their serialisation;
* :mod:`~repro.core.metadata_service`, :mod:`~repro.core.storage_service`,
  :mod:`~repro.core.lock_service` — the three local services of the SCFS Agent
  (§2.5.1);
* :mod:`~repro.core.pns` — Private Name Spaces (§2.7);
* :mod:`~repro.core.gc` — the versioned garbage collector (§2.5.3);
* :mod:`~repro.core.agent` — the SCFS Agent implementing the call flows of
  Figure 4 with consistency-on-close semantics;
* :mod:`~repro.core.filesystem` — the POSIX-like façade (open/read/write/
  close/fsync/mkdir/rename/...) applications program against;
* :mod:`~repro.core.deployment` — helpers that assemble complete deployments
  (clouds + coordination + agents) for each Table 2 variant.
"""

from repro.core.config import SCFSConfig, BackendKind, GarbageCollectionPolicy, CacheConfig
from repro.core.modes import OperationMode, VariantSpec, VARIANTS, variant
from repro.core.metadata import FileMetadata, FileType
from repro.core.backend import StorageBackend, SingleCloudBackend, CloudOfCloudsBackend
from repro.core.consistency import AnchoredStorage, ConsistencyAnchor, DictConsistencyAnchor
from repro.core.filesystem import SCFSFileSystem, DurabilityLevel
from repro.core.agent import SCFSAgent, OpenFlags
from repro.core.deployment import SCFSDeployment

__all__ = [
    "SCFSConfig",
    "BackendKind",
    "GarbageCollectionPolicy",
    "CacheConfig",
    "OperationMode",
    "VariantSpec",
    "VARIANTS",
    "variant",
    "FileMetadata",
    "FileType",
    "StorageBackend",
    "SingleCloudBackend",
    "CloudOfCloudsBackend",
    "AnchoredStorage",
    "ConsistencyAnchor",
    "DictConsistencyAnchor",
    "SCFSFileSystem",
    "DurabilityLevel",
    "SCFSAgent",
    "OpenFlags",
    "SCFSDeployment",
]
