"""The SCFS Agent's local caches (§2.5.1).

Three caches exist, each with a distinct role:

* the **memory cache** — an LRU cache of hundreds of MBs holding the data of
  *open* files; reads and writes of an open file are served here
  (Table 1, durability level 0);
* the **disk cache** — an LRU file cache with GBs of space acting as a large,
  long-term cache of whole files; its content is validated against the
  coordination service before being returned, so it never serves stale data
  (level 1);
* the **metadata cache** — a small, *short-lived* main-memory cache of
  metadata tuples whose only purpose is to absorb the bursts of metadata
  accesses that a single high-level action generates (e.g. the five ``stat``
  calls of opening a file in an editor); entries expire after a few hundred
  milliseconds (Figure 10(a) studies this expiration time).

Cache entries for file data are keyed by ``(file_id, digest)``: a given key is
immutable (a new version has a new digest), so cached data can never be stale
— at worst it is unused.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator

from repro.simenv.clock import SimClock
from repro.simenv.latency import DISK_LATENCY, MEMORY_LATENCY, LatencyModel


class LRUByteCache:
    """A capacity-bounded LRU cache of byte strings.

    ``latency`` models the cost of one access (memory vs disk); it is charged
    to the simulated clock on every hit and store.
    """

    def __init__(self, capacity_bytes: int, clock: SimClock,
                 latency: LatencyModel = MEMORY_LATENCY, name: str = "cache"):
        if capacity_bytes < 0:
            raise ValueError("cache capacity must be non-negative")
        self.capacity_bytes = capacity_bytes
        self.clock = clock
        self.latency = latency
        self.name = name
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- internals -----------------------------------------------------------

    def _charge(self, payload: int) -> None:
        self.clock.advance(self.latency.sample(payload))

    def _evict_until_fits(self, incoming: int) -> list[tuple[str, bytes]]:
        evicted: list[tuple[str, bytes]] = []
        while self._entries and self._used + incoming > self.capacity_bytes:
            key, value = self._entries.popitem(last=False)
            self._used -= len(value)
            self.evictions += 1
            evicted.append((key, value))
        return evicted

    # -- API -------------------------------------------------------------------

    def get(self, key: str) -> bytes | None:
        """Return the cached value (charging one access latency) or None."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        self._charge(len(value))
        return value

    def contains(self, key: str) -> bool:
        """Membership test without charging latency or touching LRU order."""
        return key in self._entries

    def put(self, key: str, value: bytes) -> list[tuple[str, bytes]]:
        """Store ``value``; returns the entries evicted to make room.

        Values larger than the whole cache are not stored (the paper's caches
        hold whole files; a file bigger than the memory cache simply stays on
        disk).
        """
        self._charge(len(value))
        if len(value) > self.capacity_bytes:
            return []
        if key in self._entries:
            self._used -= len(self._entries[key])
            del self._entries[key]
        evicted = self._evict_until_fits(len(value))
        self._entries[key] = value
        self._used += len(value)
        return evicted

    def remove(self, key: str) -> None:
        """Drop an entry if present (no latency charged)."""
        value = self._entries.pop(key, None)
        if value is not None:
            self._used -= len(value)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()
        self._used = 0

    @property
    def used_bytes(self) -> int:
        """Bytes currently cached."""
        return self._used

    def __len__(self) -> int:
        return len(self._entries)

    def keys(self) -> Iterator[str]:
        """Iterate over cached keys, least recently used first."""
        return iter(self._entries.keys())


def make_memory_cache(capacity_bytes: int, clock: SimClock) -> LRUByteCache:
    """The main-memory open-file cache (durability level 0)."""
    return LRUByteCache(capacity_bytes, clock, latency=MEMORY_LATENCY, name="memory")


def make_disk_cache(capacity_bytes: int, clock: SimClock) -> LRUByteCache:
    """The local-disk long-term file cache (durability level 1)."""
    return LRUByteCache(capacity_bytes, clock, latency=DISK_LATENCY, name="disk")


@dataclass
class _MetadataEntry:
    value: object
    stored_at: float


class MetadataCache:
    """Short-lived cache of metadata tuples (expiration in the hundreds of ms).

    The objective of this cache is only "to reuse the data fetched from the
    coordination service for at least the amount of time spent to obtain it
    from the network" (§2.5.1) — entries older than ``expiration`` seconds are
    treated as absent, which keeps consistency violations bounded to a single
    high-level action.
    """

    def __init__(self, clock: SimClock, expiration: float = 0.5):
        if expiration < 0:
            raise ValueError("expiration must be non-negative")
        self.clock = clock
        self.expiration = expiration
        self._entries: dict[str, _MetadataEntry] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: str):
        """Return the cached value if present and fresh, else None."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        if self.expiration == 0 or self.clock.now() - entry.stored_at > self.expiration:
            del self._entries[key]
            self.misses += 1
            return None
        self.hits += 1
        return entry.value

    def put(self, key: str, value) -> None:
        """Cache ``value`` with the current timestamp."""
        if self.expiration == 0:
            return
        self._entries[key] = _MetadataEntry(value=value, stored_at=self.clock.now())

    def invalidate(self, key: str) -> None:
        """Drop one entry (called after local updates to keep the cache coherent)."""
        self._entries.pop(key, None)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)
