"""Configuration of an SCFS agent/deployment.

Defaults follow the values used in the paper's evaluation (§4.1): 500 ms
metadata cache expiration, no private name spaces (worst case, 100 % sharing),
f = 1 for the CoC backend, memory cache of hundreds of MBs and a disk cache of
GBs, and a garbage collector keeping the last versions of each file.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError
from repro.common.units import GB, MB
from repro.clouds.dispatch import DispatchPolicy
from repro.clouds.health import CloudHealthTracker, SuspicionPolicy
from repro.core.modes import BackendKind, OperationMode


@dataclass(frozen=True)
class CacheConfig:
    """Sizes and policies of the SCFS Agent's local caches (§2.5.1)."""

    #: Main-memory LRU cache for open files ("hundreds of MBs").
    memory_bytes: int = 256 * MB
    #: Local-disk LRU file cache ("GBs of space", long-term).
    disk_bytes: int = 16 * GB
    #: Expiration of the short-lived metadata cache in seconds (paper: 500 ms).
    metadata_expiration: float = 0.5

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical sizes."""
        if self.memory_bytes < 0 or self.disk_bytes < 0:
            raise ConfigurationError("cache sizes must be non-negative")
        if self.metadata_expiration < 0:
            raise ConfigurationError("metadata cache expiration must be non-negative")


@dataclass(frozen=True)
class GarbageCollectionPolicy:
    """Parameters of the per-agent garbage collector (§2.5.3).

    ``written_bytes_threshold`` (W) — the collector is activated every time the
    agent writes more than W bytes; ``versions_to_keep`` (V) — number of most
    recent versions preserved per file.
    """

    written_bytes_threshold: int = 128 * MB
    versions_to_keep: int = 3
    #: Also purge files the user deleted (their versions and metadata entries).
    purge_deleted_files: bool = True
    #: Refined policy (§2.5.3): additionally keep the newest version of each
    #: ``keep_interval_seconds`` bucket (e.g. 86400 for one version per day).
    #: ``None`` disables the age-based retention.
    keep_interval_seconds: float | None = None
    #: Disable automatic activation entirely (collection only via explicit call).
    enabled: bool = True

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical parameters."""
        if self.versions_to_keep < 1:
            raise ConfigurationError("garbage collector must keep at least one version")
        if self.written_bytes_threshold <= 0:
            raise ConfigurationError("written-bytes threshold must be positive")
        if self.keep_interval_seconds is not None and self.keep_interval_seconds <= 0:
            raise ConfigurationError("the version-retention interval must be positive")


@dataclass(frozen=True)
class DispatchPolicyConfig:
    """Config-level knobs of the quorum dispatch engine and health tracking.

    Mirrors :class:`~repro.clouds.dispatch.DispatchPolicy` (per-request
    timeout, bounded retries, hedged fallback dispatch) and the suspicion
    model of :class:`~repro.clouds.health.SuspicionPolicy`, so that agents and
    benchmark variants enable the whole stack from configuration alone.
    ``suspicion_threshold = 0`` (the default) disables health tracking; any
    positive value builds a per-client
    :class:`~repro.clouds.health.CloudHealthTracker` with the probe-backoff
    and degradation knobs below.
    """

    #: Abandon any single cloud request after this many seconds (None: wait).
    timeout: float | None = None
    #: Extra attempts after a failed or timed-out request.
    retries: int = 0
    #: Dispatch the fallback stage this many seconds after the current stage
    #: started whenever the quorum has not been reached (None: no hedging).
    hedge_delay: float | None = None
    #: Consecutive failures/timeouts that put a cloud on the suspect list
    #: (0 disables health tracking altogether).
    suspicion_threshold: int = 0
    #: First probe window after a suspicion, in simulated seconds.
    probe_backoff: float = 10.0
    #: Multiplier applied to the probe window after each failed probe.
    probe_backoff_factor: float = 2.0
    #: Upper bound of the probe window.
    probe_backoff_max: float = 300.0
    #: Latency-EWMA multiple over the peer median that flags a straggler.
    degraded_factor: float = 3.0
    #: Coalesce identical metadata read quorums issued in the same virtual
    #: instant through one deployment-wide
    #: :class:`~repro.clouds.dispatch.InstantCoalescer` (the scale-out
    #: optimisation; off by default so existing variants replay unchanged).
    coalesce_instant: bool = False

    @property
    def tracks_health(self) -> bool:
        """True when this config enables suspect-list tracking."""
        return self.suspicion_threshold > 0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical dispatch knobs."""
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError("the per-request timeout must be positive")
        if self.retries < 0:
            raise ConfigurationError("the retry count must be non-negative")
        if self.hedge_delay is not None and self.hedge_delay <= 0:
            raise ConfigurationError("the hedge delay must be positive")
        if self.suspicion_threshold < 0:
            raise ConfigurationError("the suspicion threshold must be non-negative")
        if self.tracks_health:
            try:
                self.suspicion().validate()
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from exc

    def to_policy(self) -> DispatchPolicy:
        """The engine-level :class:`~repro.clouds.dispatch.DispatchPolicy`."""
        return DispatchPolicy(timeout=self.timeout, retries=self.retries,
                              hedge_delay=self.hedge_delay)

    def suspicion(self) -> SuspicionPolicy:
        """The suspicion knobs as a :class:`~repro.clouds.health.SuspicionPolicy`."""
        return SuspicionPolicy(
            threshold=max(1, self.suspicion_threshold),
            probe_backoff=self.probe_backoff,
            probe_backoff_factor=self.probe_backoff_factor,
            probe_backoff_max=self.probe_backoff_max,
            degraded_factor=self.degraded_factor,
        )

    def make_tracker(self) -> CloudHealthTracker | None:
        """Build the per-client health tracker, or ``None`` when disabled."""
        if not self.tracks_health:
            return None
        return CloudHealthTracker(self.suspicion())


@dataclass(frozen=True)
class SCFSConfig:
    """Full configuration of one SCFS agent."""

    mode: OperationMode = OperationMode.BLOCKING
    backend: BackendKind = BackendKind.COC
    #: Number of faulty providers/replicas tolerated by the CoC backend.
    fault_tolerance: int = 1
    #: Which coordination service to use ("depspace" or "zookeeper").
    coordination_kind: str = "depspace"
    #: Number of independent coordination services the namespace is partitioned
    #: over (the §5 scalability extension; 1 = the paper's base design).
    coordination_partitions: int = 1
    #: Enable Private Name Spaces for files not shared with other users (§2.7).
    private_name_spaces: bool = False
    #: Encrypt file data before it leaves the client (always on for CoC in the paper).
    encrypt_data: bool = True
    caches: CacheConfig = field(default_factory=CacheConfig)
    gc: GarbageCollectionPolicy = field(default_factory=GarbageCollectionPolicy)
    #: Quorum dispatch policy (timeouts/retries/hedging) and cloud health
    #: tracking (suspect lists) of this agent's storage backend.
    dispatch: DispatchPolicyConfig = field(default_factory=DispatchPolicyConfig)
    #: Lease of coordination-service sessions/locks in seconds.
    lock_lease: float = 30.0
    #: Interval between retries of the consistency-anchor read loop (Figure 3, r2).
    read_retry_interval: float = 0.5
    #: Maximum retries of the read loop before giving up (bounds simulations).
    read_retry_limit: int = 240

    def validate(self) -> None:
        """Check cross-field consistency; raise :class:`ConfigurationError` otherwise."""
        self.caches.validate()
        self.gc.validate()
        self.dispatch.validate()
        if self.fault_tolerance < 0:
            raise ConfigurationError("fault tolerance must be non-negative")
        if self.coordination_kind not in ("depspace", "zookeeper"):
            raise ConfigurationError(f"unknown coordination service {self.coordination_kind!r}")
        if self.coordination_partitions < 1:
            raise ConfigurationError("at least one coordination partition is required")
        if self.mode is OperationMode.NON_SHARING and not self.private_name_spaces:
            # The non-sharing mode stores *all* metadata in the PNS by definition.
            raise ConfigurationError("the non-sharing mode requires private name spaces")
        if self.lock_lease <= 0:
            raise ConfigurationError("the lock lease must be positive")
        if self.read_retry_interval <= 0:
            raise ConfigurationError("read retry interval must be positive")
        if self.read_retry_limit < 0:
            raise ConfigurationError("the read retry limit must be non-negative")
        if self.dispatch.hedge_delay is not None and self.backend is not BackendKind.COC:
            # Hedging dispatches a *fallback stage* early; only the
            # cloud-of-clouds backend has one (the single-cloud backend's
            # requests are sequential, so there is nothing to hedge with).
            raise ConfigurationError(
                "hedge_delay requires the cloud-of-clouds backend "
                "(a fallback stage must exist to hedge with)"
            )

    def with_mode(self, mode: OperationMode) -> "SCFSConfig":
        """Return a copy with a different operation mode (PNS forced on for NS)."""
        pns = self.private_name_spaces or mode is OperationMode.NON_SHARING
        return replace(self, mode=mode, private_name_spaces=pns)

    @staticmethod
    def for_variant(name: str, **overrides) -> "SCFSConfig":
        """Build the configuration of one of the Table 2 variants by name."""
        from repro.core.modes import variant  # local import avoids a cycle at module load

        spec = variant(name)
        pns = spec.mode is OperationMode.NON_SHARING or overrides.pop("private_name_spaces", False)
        config = SCFSConfig(
            mode=spec.mode,
            backend=spec.backend,
            fault_tolerance=1 if spec.backend is BackendKind.COC else 0,
            encrypt_data=spec.backend is BackendKind.COC,
            private_name_spaces=pns,
            **overrides,
        )
        config.validate()
        return config
