"""Configuration of an SCFS agent/deployment.

Defaults follow the values used in the paper's evaluation (§4.1): 500 ms
metadata cache expiration, no private name spaces (worst case, 100 % sharing),
f = 1 for the CoC backend, memory cache of hundreds of MBs and a disk cache of
GBs, and a garbage collector keeping the last versions of each file.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.common.errors import ConfigurationError
from repro.common.units import GB, MB
from repro.core.modes import BackendKind, OperationMode


@dataclass(frozen=True)
class CacheConfig:
    """Sizes and policies of the SCFS Agent's local caches (§2.5.1)."""

    #: Main-memory LRU cache for open files ("hundreds of MBs").
    memory_bytes: int = 256 * MB
    #: Local-disk LRU file cache ("GBs of space", long-term).
    disk_bytes: int = 16 * GB
    #: Expiration of the short-lived metadata cache in seconds (paper: 500 ms).
    metadata_expiration: float = 0.5

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical sizes."""
        if self.memory_bytes < 0 or self.disk_bytes < 0:
            raise ConfigurationError("cache sizes must be non-negative")
        if self.metadata_expiration < 0:
            raise ConfigurationError("metadata cache expiration must be non-negative")


@dataclass(frozen=True)
class GarbageCollectionPolicy:
    """Parameters of the per-agent garbage collector (§2.5.3).

    ``written_bytes_threshold`` (W) — the collector is activated every time the
    agent writes more than W bytes; ``versions_to_keep`` (V) — number of most
    recent versions preserved per file.
    """

    written_bytes_threshold: int = 128 * MB
    versions_to_keep: int = 3
    #: Also purge files the user deleted (their versions and metadata entries).
    purge_deleted_files: bool = True
    #: Refined policy (§2.5.3): additionally keep the newest version of each
    #: ``keep_interval_seconds`` bucket (e.g. 86400 for one version per day).
    #: ``None`` disables the age-based retention.
    keep_interval_seconds: float | None = None
    #: Disable automatic activation entirely (collection only via explicit call).
    enabled: bool = True

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical parameters."""
        if self.versions_to_keep < 1:
            raise ConfigurationError("garbage collector must keep at least one version")
        if self.written_bytes_threshold <= 0:
            raise ConfigurationError("written-bytes threshold must be positive")
        if self.keep_interval_seconds is not None and self.keep_interval_seconds <= 0:
            raise ConfigurationError("the version-retention interval must be positive")


@dataclass(frozen=True)
class SCFSConfig:
    """Full configuration of one SCFS agent."""

    mode: OperationMode = OperationMode.BLOCKING
    backend: BackendKind = BackendKind.COC
    #: Number of faulty providers/replicas tolerated by the CoC backend.
    fault_tolerance: int = 1
    #: Which coordination service to use ("depspace" or "zookeeper").
    coordination_kind: str = "depspace"
    #: Number of independent coordination services the namespace is partitioned
    #: over (the §5 scalability extension; 1 = the paper's base design).
    coordination_partitions: int = 1
    #: Enable Private Name Spaces for files not shared with other users (§2.7).
    private_name_spaces: bool = False
    #: Encrypt file data before it leaves the client (always on for CoC in the paper).
    encrypt_data: bool = True
    caches: CacheConfig = field(default_factory=CacheConfig)
    gc: GarbageCollectionPolicy = field(default_factory=GarbageCollectionPolicy)
    #: Lease of coordination-service sessions/locks in seconds.
    lock_lease: float = 30.0
    #: Interval between retries of the consistency-anchor read loop (Figure 3, r2).
    read_retry_interval: float = 0.5
    #: Maximum retries of the read loop before giving up (bounds simulations).
    read_retry_limit: int = 240

    def validate(self) -> None:
        """Check cross-field consistency; raise :class:`ConfigurationError` otherwise."""
        self.caches.validate()
        self.gc.validate()
        if self.fault_tolerance < 0:
            raise ConfigurationError("fault tolerance must be non-negative")
        if self.coordination_kind not in ("depspace", "zookeeper"):
            raise ConfigurationError(f"unknown coordination service {self.coordination_kind!r}")
        if self.coordination_partitions < 1:
            raise ConfigurationError("at least one coordination partition is required")
        if self.mode is OperationMode.NON_SHARING and not self.private_name_spaces:
            # The non-sharing mode stores *all* metadata in the PNS by definition.
            raise ConfigurationError("the non-sharing mode requires private name spaces")
        if self.read_retry_interval <= 0:
            raise ConfigurationError("read retry interval must be positive")

    def with_mode(self, mode: OperationMode) -> "SCFSConfig":
        """Return a copy with a different operation mode (PNS forced on for NS)."""
        pns = self.private_name_spaces or mode is OperationMode.NON_SHARING
        return replace(self, mode=mode, private_name_spaces=pns)

    @staticmethod
    def for_variant(name: str, **overrides) -> "SCFSConfig":
        """Build the configuration of one of the Table 2 variants by name."""
        from repro.core.modes import variant  # local import avoids a cycle at module load

        spec = variant(name)
        pns = spec.mode is OperationMode.NON_SHARING or overrides.pop("private_name_spaces", False)
        config = SCFSConfig(
            mode=spec.mode,
            backend=spec.backend,
            fault_tolerance=1 if spec.backend is BackendKind.COC else 0,
            encrypt_data=spec.backend is BackendKind.COC,
            private_name_spaces=pns,
            **overrides,
        )
        config.validate()
        return config
