"""Configuration of an SCFS agent/deployment.

Defaults follow the values used in the paper's evaluation (§4.1): 500 ms
metadata cache expiration, no private name spaces (worst case, 100 % sharing),
f = 1 for the CoC backend, memory cache of hundreds of MBs and a disk cache of
GBs, and a garbage collector keeping the last versions of each file.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.common.errors import ConfigurationError
from repro.common.units import GB, MB
from repro.clouds.dispatch import DispatchPolicy
from repro.clouds.health import CloudHealthTracker, SuspicionPolicy
from repro.clouds.quorums import (
    ExplicitQuorumSystem,
    QuorumSystem,
    WeightedQuorumSystem,
)
from repro.core.modes import BackendKind, OperationMode

#: Quorum-system modes accepted by :class:`QuorumConfig`.
QUORUM_MODES = ("threshold", "weighted", "explicit")


@dataclass(frozen=True)
class CacheConfig:
    """Sizes and policies of the SCFS Agent's local caches (§2.5.1)."""

    #: Main-memory LRU cache for open files ("hundreds of MBs").
    memory_bytes: int = 256 * MB
    #: Local-disk LRU file cache ("GBs of space", long-term).
    disk_bytes: int = 16 * GB
    #: Expiration of the short-lived metadata cache in seconds (paper: 500 ms).
    metadata_expiration: float = 0.5

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical sizes."""
        if self.memory_bytes < 0 or self.disk_bytes < 0:
            raise ConfigurationError("cache sizes must be non-negative")
        if self.metadata_expiration < 0:
            raise ConfigurationError("metadata cache expiration must be non-negative")


@dataclass(frozen=True)
class GarbageCollectionPolicy:
    """Parameters of the per-agent garbage collector (§2.5.3).

    ``written_bytes_threshold`` (W) — the collector is activated every time the
    agent writes more than W bytes; ``versions_to_keep`` (V) — number of most
    recent versions preserved per file.
    """

    written_bytes_threshold: int = 128 * MB
    versions_to_keep: int = 3
    #: Also purge files the user deleted (their versions and metadata entries).
    purge_deleted_files: bool = True
    #: Refined policy (§2.5.3): additionally keep the newest version of each
    #: ``keep_interval_seconds`` bucket (e.g. 86400 for one version per day).
    #: ``None`` disables the age-based retention.
    keep_interval_seconds: float | None = None
    #: Disable automatic activation entirely (collection only via explicit call).
    enabled: bool = True

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical parameters."""
        if self.versions_to_keep < 1:
            raise ConfigurationError("garbage collector must keep at least one version")
        if self.written_bytes_threshold <= 0:
            raise ConfigurationError("written-bytes threshold must be positive")
        if self.keep_interval_seconds is not None and self.keep_interval_seconds <= 0:
            raise ConfigurationError("the version-retention interval must be positive")


@dataclass(frozen=True)
class DispatchPolicyConfig:
    """Config-level knobs of the quorum dispatch engine and health tracking.

    Mirrors :class:`~repro.clouds.dispatch.DispatchPolicy` (per-request
    timeout, bounded retries, hedged fallback dispatch) and the suspicion
    model of :class:`~repro.clouds.health.SuspicionPolicy`, so that agents and
    benchmark variants enable the whole stack from configuration alone.
    ``suspicion_threshold = 0`` (the default) disables health tracking; any
    positive value builds a per-client
    :class:`~repro.clouds.health.CloudHealthTracker` with the probe-backoff
    and degradation knobs below.
    """

    #: Abandon any single cloud request after this many seconds (None: wait).
    timeout: float | None = None
    #: Extra attempts after a failed or timed-out request.
    retries: int = 0
    #: Dispatch the fallback stage this many seconds after the current stage
    #: started whenever the quorum has not been reached (None: no hedging).
    hedge_delay: float | None = None
    #: Consecutive failures/timeouts that put a cloud on the suspect list
    #: (0 disables health tracking altogether).
    suspicion_threshold: int = 0
    #: First probe window after a suspicion, in simulated seconds.
    probe_backoff: float = 10.0
    #: Multiplier applied to the probe window after each failed probe.
    probe_backoff_factor: float = 2.0
    #: Upper bound of the probe window.
    probe_backoff_max: float = 300.0
    #: Latency-EWMA multiple over the peer median that flags a straggler.
    degraded_factor: float = 3.0
    #: Coalesce identical metadata read quorums issued in the same virtual
    #: instant through one deployment-wide
    #: :class:`~repro.clouds.dispatch.InstantCoalescer` (the scale-out
    #: optimisation; off by default so existing variants replay unchanged).
    coalesce_instant: bool = False
    #: Blend the health tracker's per-cloud latency EWMAs into the backend's
    #: read/write latency *estimates* (the values the non-blocking mode uses
    #: to schedule background-upload completions), so scheduling routes
    #: around known-slow providers.  Off by default: the estimates feed the
    #: background-task timeline, so enabling this shifts event schedules (and
    #: therefore scenario replay fingerprints).
    ewma_estimates: bool = False
    #: Warm-start snapshot for the health tracker, as produced by
    #: :meth:`~repro.clouds.health.CloudHealthTracker.export_state`.  An agent
    #: restarted with its predecessor's snapshot resumes with a warm suspect
    #: list instead of re-detecting every known-bad provider from scratch.
    health_snapshot: tuple = ()

    @property
    def tracks_health(self) -> bool:
        """True when this config enables suspect-list tracking."""
        return self.suspicion_threshold > 0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical dispatch knobs."""
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError("the per-request timeout must be positive")
        if self.retries < 0:
            raise ConfigurationError("the retry count must be non-negative")
        if self.hedge_delay is not None and self.hedge_delay <= 0:
            raise ConfigurationError("the hedge delay must be positive")
        if self.suspicion_threshold < 0:
            raise ConfigurationError("the suspicion threshold must be non-negative")
        if self.health_snapshot and not self.tracks_health:
            raise ConfigurationError(
                "health_snapshot requires suspicion tracking "
                "(set suspicion_threshold > 0, or drop the snapshot)")
        if self.tracks_health:
            try:
                self.suspicion().validate()
            except ValueError as exc:
                raise ConfigurationError(str(exc)) from exc

    def to_policy(self) -> DispatchPolicy:
        """The engine-level :class:`~repro.clouds.dispatch.DispatchPolicy`."""
        return DispatchPolicy(timeout=self.timeout, retries=self.retries,
                              hedge_delay=self.hedge_delay)

    def suspicion(self) -> SuspicionPolicy:
        """The suspicion knobs as a :class:`~repro.clouds.health.SuspicionPolicy`."""
        return SuspicionPolicy(
            threshold=max(1, self.suspicion_threshold),
            probe_backoff=self.probe_backoff,
            probe_backoff_factor=self.probe_backoff_factor,
            probe_backoff_max=self.probe_backoff_max,
            degraded_factor=self.degraded_factor,
        )

    def make_tracker(self) -> CloudHealthTracker | None:
        """Build the per-client health tracker, or ``None`` when disabled.

        A configured :attr:`health_snapshot` is restored into the fresh
        tracker, warming its suspect list across agent restarts.
        """
        if not self.tracks_health:
            return None
        tracker = CloudHealthTracker(self.suspicion())
        if self.health_snapshot:
            tracker.restore_state(self.health_snapshot)
        return tracker


@dataclass(frozen=True)
class QuorumConfig:
    """Quorum-system selection of the cloud-of-clouds backend.

    The default ``threshold`` mode reproduces the paper's uniform quorums
    (``n - f`` acknowledgements, ``f + 1`` matching digests) byte-identically
    — the backend keeps passing bare counts to the dispatch engine.  The
    ``weighted`` and ``explicit`` modes build a
    :class:`~repro.clouds.quorums.QuorumSystem` over the deployment's
    providers and thread it through every DepSky quorum call; ``planner``
    additionally ranks candidate quorums by expected cost × latency (see
    :class:`~repro.clouds.health.QuorumPlanner`).
    """

    mode: str = "threshold"
    #: Per-provider trust weights, e.g. ``(("amazon-s3", 1.2), ...)``
    #: (``weighted`` mode; must cover the deployment's providers exactly).
    weights: tuple[tuple[str, float], ...] = ()
    #: Total weight of providers that may fail simultaneously (``weighted``).
    fault_budget: float | None = None
    #: Explicit quorum list (``explicit`` mode).
    quorums: tuple[tuple[str, ...], ...] = ()
    #: Fail-prone sets of the explicit system (``explicit`` mode).
    fault_sets: tuple[tuple[str, ...], ...] = ()
    #: Rank candidate quorums by expected cost × latency before dispatch
    #: (non-threshold modes only).
    planner: bool = True

    @property
    def enabled(self) -> bool:
        """True when a non-threshold quorum system is configured."""
        return self.mode != "threshold"

    def _build(self, universe: tuple[str, ...]) -> QuorumSystem:
        if self.mode == "weighted":
            return WeightedQuorumSystem(universe=universe, weights=self.weights,
                                        fault_budget=self.fault_budget or 0.0)
        return ExplicitQuorumSystem(universe=universe, quorums=self.quorums,
                                    fault_sets=self.fault_sets)

    def validate(self) -> None:
        """Reject structurally invalid *and* infeasible quorum configurations.

        Feasibility (quorum intersection + availability under the configured
        fault structure) is checked here, at config time, against the
        provider names the config itself names — not deferred to the first
        quorum call.  :meth:`system_for` re-validates against the actual
        deployment's providers.
        """
        if self.mode not in QUORUM_MODES:
            raise ConfigurationError(
                f"unknown quorum mode {self.mode!r}; known modes: {QUORUM_MODES}")
        if not self.enabled:
            if self.weights or self.fault_budget is not None or self.quorums or self.fault_sets:
                raise ConfigurationError(
                    "threshold quorum mode takes no weights, fault budget, "
                    "quorums or fault sets — set mode='weighted' or 'explicit'")
            return
        if self.mode == "weighted":
            if not self.weights:
                raise ConfigurationError("weighted quorum mode needs per-provider weights")
            if self.fault_budget is None or self.fault_budget <= 0:
                raise ConfigurationError("weighted quorum mode needs a positive fault budget")
            universe = tuple(name for name, _ in self.weights)
        else:
            if not self.quorums:
                raise ConfigurationError("explicit quorum mode needs at least one quorum")
            universe = tuple(sorted(
                {name for quorum in self.quorums for name in quorum}
                | {name for fault_set in self.fault_sets for name in fault_set}))
        try:
            self._build(universe).validate()
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc

    def system_for(self, clouds: Sequence[str], f: int) -> QuorumSystem | None:
        """The validated quorum system over the deployment's actual providers.

        Returns ``None`` in threshold mode: the backend then keeps the legacy
        integer counts (``n - f`` / ``f + 1``) so the default path stays
        byte-identical.  Raises :class:`ConfigurationError` when the
        configured provider names do not match the deployment, or when the
        system fails its intersection/availability checks.
        """
        if not self.enabled:
            return None
        names = tuple(clouds)
        if self.mode == "weighted":
            configured = {name for name, _ in self.weights}
            if configured != set(names):
                raise ConfigurationError(
                    f"weighted quorum weights name providers "
                    f"{sorted(configured)} but the deployment has {sorted(names)}")
        else:
            configured = ({name for quorum in self.quorums for name in quorum}
                          | {name for fault_set in self.fault_sets for name in fault_set})
            if not configured <= set(names):
                raise ConfigurationError(
                    f"explicit quorum system names providers "
                    f"{sorted(configured - set(names))} outside the deployment")
        system = self._build(names)
        try:
            system.validate()
        except ValueError as exc:
            raise ConfigurationError(str(exc)) from exc
        return system


@dataclass(frozen=True)
class TransactionConfig:
    """Knobs of the transactional commit layer (``repro.transactions``).

    A transaction commit is optimistic: reads record the version they saw, and
    the commit re-validates them under the file locks before the per-file
    version CAS.  A failed attempt raises
    :class:`~repro.common.errors.TransactionConflictError`;
    :meth:`~repro.transactions.TransactionManager.run` retries the whole body
    with bounded exponential backoff before giving up with
    :class:`~repro.common.errors.TransactionAbortedError`.
    """

    #: Total commit attempts of :meth:`TransactionManager.run` (first try
    #: included) before the transaction aborts.
    max_attempts: int = 4
    #: Backoff before the first retry, in simulated seconds.
    backoff: float = 0.2
    #: Multiplier applied to the backoff after each failed attempt.
    backoff_factor: float = 2.0
    #: Upper bound of the backoff.
    backoff_max: float = 5.0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on nonsensical retry knobs."""
        if self.max_attempts < 1:
            raise ConfigurationError("a transaction needs at least one commit attempt")
        if self.backoff < 0:
            raise ConfigurationError("the transaction backoff must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("the transaction backoff factor must be >= 1")
        if self.backoff_max < self.backoff:
            raise ConfigurationError("the transaction backoff cap is below the initial backoff")


@dataclass(frozen=True)
class SCFSConfig:
    """Full configuration of one SCFS agent."""

    mode: OperationMode = OperationMode.BLOCKING
    backend: BackendKind = BackendKind.COC
    #: Number of faulty providers/replicas tolerated by the CoC backend.
    fault_tolerance: int = 1
    #: Which coordination service to use ("depspace" or "zookeeper").
    coordination_kind: str = "depspace"
    #: Number of independent coordination services the namespace is partitioned
    #: over (the §5 scalability extension; 1 = the paper's base design).
    coordination_partitions: int = 1
    #: Enable Private Name Spaces for files not shared with other users (§2.7).
    private_name_spaces: bool = False
    #: Encrypt file data before it leaves the client (always on for CoC in the paper).
    encrypt_data: bool = True
    caches: CacheConfig = field(default_factory=CacheConfig)
    gc: GarbageCollectionPolicy = field(default_factory=GarbageCollectionPolicy)
    #: Quorum dispatch policy (timeouts/retries/hedging) and cloud health
    #: tracking (suspect lists) of this agent's storage backend.
    dispatch: DispatchPolicyConfig = field(default_factory=DispatchPolicyConfig)
    #: Quorum-system structure of the CoC backend (threshold/weighted/explicit);
    #: the default threshold mode keeps the legacy integer-count quorums.
    quorum: QuorumConfig = field(default_factory=QuorumConfig)
    #: Retry/backoff policy of the transactional commit layer.
    transactions: TransactionConfig = field(default_factory=TransactionConfig)
    #: Lease of coordination-service sessions/locks in seconds.
    lock_lease: float = 30.0
    #: Interval between retries of the consistency-anchor read loop (Figure 3, r2).
    read_retry_interval: float = 0.5
    #: Maximum retries of the read loop before giving up (bounds simulations).
    read_retry_limit: int = 240

    def validate(self) -> None:
        """Check cross-field consistency; raise :class:`ConfigurationError` otherwise."""
        self.caches.validate()
        self.gc.validate()
        self.dispatch.validate()
        self.quorum.validate()
        self.transactions.validate()
        if self.fault_tolerance < 0:
            raise ConfigurationError("fault tolerance must be non-negative")
        if self.quorum.enabled and self.backend is not BackendKind.COC:
            raise ConfigurationError(
                "weighted/explicit quorum systems require the cloud-of-clouds "
                "backend (a single cloud has no quorum structure)")
        if self.coordination_kind not in ("depspace", "zookeeper"):
            raise ConfigurationError(f"unknown coordination service {self.coordination_kind!r}")
        if self.coordination_partitions < 1:
            raise ConfigurationError("at least one coordination partition is required")
        if self.mode is OperationMode.NON_SHARING and not self.private_name_spaces:
            # The non-sharing mode stores *all* metadata in the PNS by definition.
            raise ConfigurationError("the non-sharing mode requires private name spaces")
        if self.lock_lease <= 0:
            raise ConfigurationError("the lock lease must be positive")
        if self.read_retry_interval <= 0:
            raise ConfigurationError("read retry interval must be positive")
        if self.read_retry_limit < 0:
            raise ConfigurationError("the read retry limit must be non-negative")
        if self.dispatch.hedge_delay is not None and self.backend is not BackendKind.COC:
            # Hedging dispatches a *fallback stage* early; only the
            # cloud-of-clouds backend has one (the single-cloud backend's
            # requests are sequential, so there is nothing to hedge with).
            raise ConfigurationError(
                "hedge_delay requires the cloud-of-clouds backend "
                "(a fallback stage must exist to hedge with)"
            )

    def with_mode(self, mode: OperationMode) -> "SCFSConfig":
        """Return a copy with a different operation mode (PNS forced on for NS)."""
        pns = self.private_name_spaces or mode is OperationMode.NON_SHARING
        return replace(self, mode=mode, private_name_spaces=pns)

    @staticmethod
    def for_variant(name: str, **overrides) -> "SCFSConfig":
        """Build the configuration of one of the Table 2 variants by name."""
        from repro.core.modes import variant  # local import avoids a cycle at module load

        spec = variant(name)
        pns = spec.mode is OperationMode.NON_SHARING or overrides.pop("private_name_spaces", False)
        config = SCFSConfig(
            mode=spec.mode,
            backend=spec.backend,
            fault_tolerance=1 if spec.backend is BackendKind.COC else 0,
            encrypt_data=spec.backend is BackendKind.COC,
            private_name_spaces=pns,
            **overrides,
        )
        config.validate()
        return config
