"""The SCFS Agent's metadata service (§2.5.1).

The metadata service mediates every access to file-system metadata.  It
combines three sources, in order:

1. the short-lived **metadata cache**, which absorbs the bursts of ``stat``
   style calls a single application action generates;
2. the user's **Private Name Space**, which holds the metadata of non-shared
   files locally (no coordination access at all);
3. the **coordination service**, holding one entry per *shared* file system
   object, protected by per-entry ACLs.

Every metadata tuple carries the ``(file_id, digest)`` pair of the current
data version, making the coordination service the consistency anchor of the
file data (§2.4).
"""

from __future__ import annotations

from repro.common.errors import (
    ConflictError,
    FileExistsErrorFS,
    FileNotFoundErrorFS,
    PermissionDeniedError,
    TupleNotFoundError,
)
from repro.common.types import Permission, Principal
from repro.coordination.base import CoordinationService, Session
from repro.core.cache import MetadataCache
from repro.core.metadata import FileMetadata, FileType, normalize_path, parent_path
from repro.core.pns import PrivateNameSpace
from repro.simenv.environment import Simulation

#: Prefix of file-system metadata entries in the coordination service.
META_PREFIX = "meta:"


class MetadataService:
    """Metadata lookups/updates with caching and PNS integration."""

    def __init__(
        self,
        sim: Simulation,
        principal: Principal,
        cache: MetadataCache,
        coordination: CoordinationService | None = None,
        session: Session | None = None,
        pns: PrivateNameSpace | None = None,
    ):
        if coordination is None and pns is None:
            raise ValueError("a metadata service needs a coordination service, a PNS, or both")
        self.sim = sim
        self.principal = principal
        self.cache = cache
        self.coordination = coordination
        self.session = session
        self.pns = pns
        #: Statistics used by tests and benchmark reports.
        self.coordination_reads = 0
        self.coordination_writes = 0

    # ------------------------------------------------------------------ keys

    @staticmethod
    def entry_key(path: str) -> str:
        """Coordination-service key of the metadata entry for ``path``."""
        return META_PREFIX + normalize_path(path)

    # ----------------------------------------------------------------- lookup

    def lookup(self, path: str, use_cache: bool = True) -> FileMetadata | None:
        """Return the metadata of ``path`` or None when it does not exist.

        The root directory always exists (it has an implicit entry owned by
        the mounting user).
        """
        path = normalize_path(path)
        if path == "/":
            return FileMetadata(path="/", file_type=FileType.DIRECTORY,
                                owner=self.principal.name)
        if use_cache:
            cached = self.cache.get(path)
            if cached is not None:
                return cached.copy()
        if self.pns is not None and self.pns.contains(path):
            meta = self.pns.get(path)
            if meta is not None:
                self.cache.put(path, meta.copy())
            return meta
        if self.pns is not None and self._under_private_directory(path):
            # Children of a private directory are private by construction, so a
            # miss in the PNS means the object does not exist — no need to ask
            # the coordination service (§2.7).
            return None
        if self.coordination is None:
            return None
        try:
            entry = self.coordination.get(self.entry_key(path), self.session)
            self.coordination_reads += 1
        except TupleNotFoundError:
            self.coordination_reads += 1
            return None
        except ConflictError as exc:
            # The entry exists but its ACL does not allow this principal to
            # read it: surface the POSIX-flavoured error (EACCES).
            self.coordination_reads += 1
            raise PermissionDeniedError(str(exc)) from exc
        meta = FileMetadata.from_bytes(entry.value)
        self.cache.put(path, meta.copy())
        return meta

    def _under_private_directory(self, path: str) -> bool:
        """True when the nearest existing ancestor of ``path`` is in the PNS."""
        if self.pns is None:
            return False
        parent = parent_path(path)
        return parent != path and self.pns.contains(parent)

    def lookup_versioned(self, path: str) -> tuple[FileMetadata, int] | None:
        """Authoritative lookup returning ``(metadata, entry_version)``.

        The entry version is the coordination service's own version counter of
        the metadata tuple — the token :meth:`update_cas` compares against.
        Only shared (coordination-anchored) entries have one; private/PNS
        entries return ``None`` (transactions require the anchor).
        """
        path = normalize_path(path)
        if self.coordination is None or (self.pns is not None and self.pns.contains(path)):
            return None
        try:
            entry = self.coordination.get(self.entry_key(path), self.session)
            self.coordination_reads += 1
        except TupleNotFoundError:
            self.coordination_reads += 1
            return None
        except ConflictError as exc:
            self.coordination_reads += 1
            raise PermissionDeniedError(str(exc)) from exc
        meta = FileMetadata.from_bytes(entry.value)
        self.cache.put(path, meta.copy())
        return meta, entry.version

    def get(self, path: str, use_cache: bool = True) -> FileMetadata:
        """Like :meth:`lookup` but raises ``FileNotFoundErrorFS`` when absent."""
        meta = self.lookup(path, use_cache=use_cache)
        if meta is None or meta.deleted:
            raise FileNotFoundErrorFS(f"no such file or directory: {path}")
        return meta

    def exists(self, path: str) -> bool:
        """True when ``path`` exists and is not marked deleted."""
        meta = self.lookup(path)
        return meta is not None and not meta.deleted

    # ----------------------------------------------------------------- update

    def _store(self, metadata: FileMetadata, private: bool) -> None:
        if private:
            if self.pns is None:
                raise PermissionDeniedError("private name spaces are disabled")
            self.pns.put(metadata)
        else:
            if self.coordination is None:
                raise PermissionDeniedError(
                    "this agent has no coordination service; only private files are supported"
                )
            self.coordination.put(self.entry_key(metadata.path), metadata.to_bytes(), self.session)
            self.coordination_writes += 1
        self.cache.put(metadata.path, metadata.copy())

    def is_private(self, metadata: FileMetadata) -> bool:
        """True when the object's metadata lives in the PNS rather than the anchor."""
        if self.pns is None:
            return False
        if self.pns.contains(metadata.path):
            return True
        return False

    def create(self, metadata: FileMetadata, shared: bool = False) -> FileMetadata:
        """Create a new metadata entry.

        ``shared`` forces the entry into the coordination service even when a
        PNS is available; otherwise new objects start private whenever PNSs
        are enabled (they have no grants yet, §2.7).
        """
        path = metadata.path
        private = self.pns is not None and not shared and not metadata.grants
        if self.coordination is None:
            private = True
        if private:
            # Private files live in the user's own name space: the existence
            # check does not need to consult the coordination service (§2.7).
            existing = self.pns.get(path) if self.pns is not None else None
        else:
            existing = self.lookup(path, use_cache=False)
        if existing is not None and not existing.deleted:
            raise FileExistsErrorFS(f"file exists: {path}")
        self._store(metadata, private)
        return metadata

    def update(self, metadata: FileMetadata) -> None:
        """Persist an updated metadata tuple (same placement as it currently has)."""
        if not metadata.allows(self.principal.name, Permission.WRITE):
            raise PermissionDeniedError(
                f"{self.principal.name} may not modify metadata of {metadata.path}"
            )
        self._store(metadata, private=self.is_private(metadata))

    def update_cas(self, metadata: FileMetadata, expected_version: int) -> None:
        """Persist an updated tuple iff its entry version is still ``expected_version``.

        The conditional form of :meth:`update` used by the transactional
        commit layer: the coordination service applies the put only when the
        entry's version counter still matches the one
        :meth:`lookup_versioned` observed, and raises
        :class:`~repro.common.errors.ConflictError` otherwise.  This is the
        per-file version CAS that prevents a lock-lease usurper and the
        original holder from both anchoring the same version (a fork).
        """
        if not metadata.allows(self.principal.name, Permission.WRITE):
            raise PermissionDeniedError(
                f"{self.principal.name} may not modify metadata of {metadata.path}"
            )
        if self.coordination is None:
            raise PermissionDeniedError(
                "conditional metadata updates require a coordination service")
        self.coordination.put(self.entry_key(metadata.path), metadata.to_bytes(),
                              self.session, expected_version=expected_version)
        self.coordination_writes += 1
        self.cache.put(metadata.path, metadata.copy())

    def remove(self, path: str) -> None:
        """Erase a metadata entry (used by rmdir, rename and the garbage collector)."""
        path = normalize_path(path)
        if self.pns is not None and self.pns.contains(path):
            self.pns.remove(path)
        elif self.coordination is not None:
            self.coordination.delete(self.entry_key(path), self.session)
            self.coordination_writes += 1
        self.cache.invalidate(path)

    def mark_deleted(self, metadata: FileMetadata) -> None:
        """Mark a file as deleted without erasing it (recoverable until GC runs)."""
        metadata.deleted = True
        self._store(metadata, private=self.is_private(metadata))

    # ------------------------------------------------------------- directories

    def list_children(self, directory: str) -> list[FileMetadata]:
        """Metadata of every live child of ``directory`` (shared and private)."""
        directory = normalize_path(directory)
        children: dict[str, FileMetadata] = {}
        if self.coordination is not None:
            prefix = self.entry_key(directory if directory.endswith("/") else directory + "/")
            for key in self.coordination.list_prefix(prefix, self.session):
                path = key[len(META_PREFIX):]
                if parent_path(path) != directory:
                    continue
                meta = self.lookup(path)
                if meta is not None and not meta.deleted:
                    children[path] = meta
            self.coordination_reads += 1
        if self.pns is not None:
            for meta in self.pns.children_of(directory):
                if not meta.deleted:
                    children.setdefault(meta.path, meta)
        return [children[p] for p in sorted(children)]

    # ------------------------------------------------------------------ rename

    def rename(self, old_path: str, new_path: str) -> FileMetadata:
        """Move a metadata entry (and, for directories, all its descendants)."""
        old_path, new_path = normalize_path(old_path), normalize_path(new_path)
        meta = self.get(old_path)
        if not meta.allows(self.principal.name, Permission.WRITE):
            raise PermissionDeniedError(f"{self.principal.name} may not rename {old_path}")
        if self.exists(new_path):
            raise FileExistsErrorFS(f"file exists: {new_path}")
        renamed = meta.renamed(new_path)
        private = self.is_private(meta)
        # Move descendants first (directories only).
        if meta.is_directory:
            self._rename_descendants(old_path, new_path)
        self.remove(old_path)
        self._store(renamed, private)
        return renamed

    def _rename_descendants(self, old_dir: str, new_dir: str) -> None:
        old_prefix = old_dir if old_dir.endswith("/") else old_dir + "/"
        new_prefix = new_dir if new_dir.endswith("/") else new_dir + "/"
        if self.pns is not None:
            for path in [p for p in self.pns.paths() if p.startswith(old_prefix)]:
                meta = self.pns.remove(path)
                if meta is not None:
                    self.pns.put(meta.renamed(new_prefix + path[len(old_prefix):]))
                self.cache.invalidate(path)
        if self.coordination is None:
            return
        # DepSpace exposes the rename trigger (one round trip); other services
        # fall back to a read-rewrite loop.
        rename_trigger = getattr(self.coordination, "rename_prefix", None)
        keys = self.coordination.list_prefix(self.entry_key(old_prefix), self.session)
        self.coordination_reads += 1
        if not keys:
            return
        if rename_trigger is not None:
            # The trigger rewrites the key embedded in each tuple; here keys are
            # separate from values, so we still rewrite entries client-side but
            # in a single batch whose latency matches one coordination access.
            for key in keys:
                old_entry_path = key[len(META_PREFIX):]
                entry_meta = self.get(old_entry_path, use_cache=False)
                moved = entry_meta.renamed(new_prefix + old_entry_path[len(old_prefix):])
                self.coordination.delete(key, self.session)
                self.coordination.put(self.entry_key(moved.path), moved.to_bytes(), self.session)
                self.cache.invalidate(old_entry_path)
            self.coordination_writes += 1
        else:
            for key in keys:
                old_entry_path = key[len(META_PREFIX):]
                entry_meta = self.get(old_entry_path, use_cache=False)
                moved = entry_meta.renamed(new_prefix + old_entry_path[len(old_prefix):])
                self.coordination.delete(key, self.session)
                self.coordination.put(self.entry_key(moved.path), moved.to_bytes(), self.session)
                self.coordination_writes += 2
                self.cache.invalidate(old_entry_path)

    # --------------------------------------------------------------------- ACLs

    def promote_to_shared(self, metadata: FileMetadata) -> None:
        """Move a private file's metadata from the PNS to the coordination service.

        Called when permissions change on a private file (§2.7): the metadata
        is removed from the PNS and a dedicated tuple is created.
        """
        if self.coordination is None:
            raise PermissionDeniedError("cannot share files without a coordination service")
        if self.pns is not None and self.pns.contains(metadata.path):
            self.pns.remove(metadata.path)
        self._store(metadata, private=False)

    def demote_to_private(self, metadata: FileMetadata) -> None:
        """Move a no-longer-shared file's metadata back into the PNS."""
        if self.pns is None:
            return
        if self.coordination is not None:
            self.coordination.delete(self.entry_key(metadata.path), self.session)
            self.coordination_writes += 1
        self.pns.put(metadata)
        self.cache.put(metadata.path, metadata.copy())

    def set_entry_grant(self, metadata: FileMetadata, user: str, permission: Permission) -> None:
        """Reflect a grant change on the coordination-service entry ACL (§2.6)."""
        if self.coordination is None or self.is_private(metadata):
            return
        self.coordination.set_entry_acl(self.entry_key(metadata.path), user, permission,
                                        self.session)
        self.coordination_writes += 1

    # ----------------------------------------------------------------- listing

    def owned_paths(self) -> list[str]:
        """Paths of every object owned by this principal (garbage collection)."""
        paths: set[str] = set()
        if self.pns is not None:
            paths.update(self.pns.paths())
        if self.coordination is not None:
            for key in self.coordination.list_prefix(META_PREFIX, self.session):
                path = key[len(META_PREFIX):]
                meta = self.lookup(path)
                if meta is not None and meta.owner == self.principal.name:
                    paths.add(path)
            self.coordination_reads += 1
        return sorted(paths)
