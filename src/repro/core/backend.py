"""The SCFS storage backplane.

SCFS "provides a pluggable backplane that allows it to work with various
storage clouds or a cloud-of-clouds" (§1).  The agent's storage service talks
to a :class:`StorageBackend`, of which two implementations exist, matching the
two backends evaluated in the paper (Figure 5):

* :class:`SingleCloudBackend` — file data stored as one object per version in
  a single storage cloud (SCFS-AWS, also the substrate of the S3FS/S3QL
  baselines);
* :class:`CloudOfCloudsBackend` — file data stored through the DepSky
  protocols over ``3f+1`` clouds (SCFS-CoC).

Every version of a file is immutable and identified by ``(file_id, digest)`` —
the pair anchored in the coordination service by the consistency-anchor
algorithm (Figure 3).
"""

from __future__ import annotations

import abc
import contextlib
from dataclasses import dataclass
from typing import Iterator

from repro.common.errors import CloudError, ObjectNotFoundError
from repro.common.types import ObjectRef, Permission, Principal
from repro.clouds.dispatch import BENIGN_ERRORS, DispatchPolicy, QuorumCall, QuorumRequest
from repro.clouds.eventual import EventuallyConsistentStore
from repro.clouds.health import CloudHealthTracker, HealthStats, QuorumPlanner
from repro.crypto.hashing import content_digest
from repro.depsky.protocol import DepSkyClient, DepSkyReadResult
from repro.simenv.environment import Simulation


@dataclass
class ReadPathStats:
    """Which decode path served the cloud reads of a CoC backend.

    Aggregated per backend (one per agent) and summed across agents by the
    benchmark reports: the preferred-quorum hit rate under fault injection is
    the figure the ROADMAP asked to surface.
    """

    systematic: int = 0
    coded: int = 0
    #: Reads whose block fetch dispatched the parity fallback stage.
    fallback_reads: int = 0
    #: Backup requests dispatched as hedges across all reads.
    hedged_requests: int = 0
    #: Requests demoted out of their stage because the cloud was suspected.
    demoted_requests: int = 0
    #: Background probes dispatched at suspected clouds.
    probe_requests: int = 0

    @property
    def total(self) -> int:
        """Number of cloud reads recorded."""
        return self.systematic + self.coded

    @property
    def systematic_rate(self) -> float:
        """Fraction of cloud reads served by the systematic (preferred) path."""
        return self.systematic / self.total if self.total else 0.0

    def record(self, result: DepSkyReadResult) -> None:
        """Account one DepSky read result."""
        if result.path == "systematic":
            self.systematic += 1
        else:
            self.coded += 1
        for stats in (result.stats, result.meta_stats):
            if stats is None:
                continue
            self.hedged_requests += stats.hedged
            self.demoted_requests += len(stats.demoted)
            self.probe_requests += stats.probes
        if result.stats is not None and result.stats.fallback_dispatched:
            self.fallback_reads += 1

    def merge(self, other: "ReadPathStats") -> "ReadPathStats":
        """Return the sum of two accumulators (used to aggregate across agents)."""
        return ReadPathStats(
            systematic=self.systematic + other.systematic,
            coded=self.coded + other.coded,
            fallback_reads=self.fallback_reads + other.fallback_reads,
            hedged_requests=self.hedged_requests + other.hedged_requests,
            demoted_requests=self.demoted_requests + other.demoted_requests,
            probe_requests=self.probe_requests + other.probe_requests,
        )


class StorageBackend(abc.ABC):
    """Versioned, content-addressed storage of whole files in the cloud(s)."""

    name: str = "abstract"

    @abc.abstractmethod
    def write_version(self, file_id: str, data: bytes,
                      min_version: int | None = None) -> ObjectRef:
        """Store ``data`` as a new version of ``file_id``; returns its reference.

        ``min_version`` is a lower bound on the backend's internal version
        number, supplied by callers that hold a strongly consistent version
        counter (the agent passes the anchored ``data_version``); backends
        without version counters ignore it.
        """

    @abc.abstractmethod
    def read_version(self, file_id: str, digest: str) -> bytes:
        """Return the version of ``file_id`` whose content hash is ``digest``.

        Raises :class:`~repro.common.errors.ObjectNotFoundError` when the
        version is not (yet) visible — the caller implements the retry loop of
        Figure 3 (step r2).
        """

    @abc.abstractmethod
    def delete_version(self, file_id: str, digest: str,
                       anchored_digest: str | None = None) -> None:
        """Delete one version (used by the garbage collector).

        ``anchored_digest`` names the version the caller knows to be current;
        backends with shared metadata use it to refuse rewrites from a stale
        history (see :meth:`DepSkyClient.delete_version`).
        """

    @abc.abstractmethod
    def list_versions(self, file_id: str) -> list[ObjectRef]:
        """List the stored versions of ``file_id``, oldest first."""

    @abc.abstractmethod
    def set_acl(self, file_id: str, grantee: Principal, permission: Permission) -> None:
        """Grant cloud-side access to every (current and future) version of ``file_id``."""

    @abc.abstractmethod
    def destroy(self, file_id: str) -> None:
        """Remove every version of ``file_id`` from the cloud(s)."""

    @abc.abstractmethod
    def estimate_write_latency(self, num_bytes: int) -> float:
        """Expected seconds to push a ``num_bytes`` version to the cloud(s).

        Used by the non-blocking mode to schedule the completion of background
        uploads on the simulated clock.
        """

    @abc.abstractmethod
    def estimate_read_latency(self, num_bytes: int) -> float:
        """Expected seconds to fetch a ``num_bytes`` version from the cloud(s)."""

    @abc.abstractmethod
    def stored_bytes(self, file_id: str) -> int:
        """Total bytes the cloud(s) currently hold for ``file_id`` (cost analysis)."""

    @abc.abstractmethod
    def storage_overhead(self) -> float:
        """Ratio of stored bytes to logical bytes for one version (≈1.0 or ≈1.5)."""

    @abc.abstractmethod
    @contextlib.contextmanager
    def uncharged(self) -> Iterator[None]:
        """Context manager suspending latency charging (background uploads)."""

    #: Per-backend cloud health tracker (``None`` when tracking is disabled).
    health: CloudHealthTracker | None = None

    def health_stats(self) -> HealthStats | None:
        """Snapshot of the suspicion counters, or ``None`` without tracking."""
        return self.health.snapshot() if self.health is not None else None


class SingleCloudBackend(StorageBackend):
    """Whole-file versions stored as objects of a single storage cloud (SCFS-AWS).

    ``dispatch`` is the agent's
    :class:`~repro.core.config.DispatchPolicyConfig`.  A single cloud has no
    quorum to re-plan, so only the health-tracking half applies: request
    outcomes feed a :class:`~repro.clouds.health.CloudHealthTracker`, making
    outage detection visible to reports even for the SCFS-AWS variants.
    """

    def __init__(self, sim: Simulation, store: EventuallyConsistentStore, principal: Principal,
                 dispatch=None):
        self.sim = sim
        self.store = store
        self.principal = principal
        self.name = f"single-cloud({store.name})"
        self.health: CloudHealthTracker | None = (
            dispatch.make_tracker() if dispatch is not None else None
        )
        self._ewma_estimates = bool(getattr(dispatch, "ewma_estimates", False))

    def _observed(self, operation):
        """Run one store operation, feeding its outcome to the health tracker.

        A benign error (not-found / access-denied) is an authoritative answer
        — proof of liveness — so it counts as a contact success: polling a
        not-yet-visible version under eventual consistency must not put the
        only cloud on the suspect list.
        """
        if self.health is None:
            return operation()
        start = self.sim.now()
        try:
            result = operation()
        except CloudError as exc:
            self.health.observe(self.store.name, succeeded=isinstance(exc, BENIGN_ERRORS),
                                latency=self.sim.now() - start, now=self.sim.now())
            raise
        self.health.observe(self.store.name, succeeded=True,
                            latency=self.sim.now() - start, now=self.sim.now())
        return result

    # -- key scheme -----------------------------------------------------------

    @staticmethod
    def _prefix(file_id: str) -> str:
        return f"scfs/{file_id}/"

    @classmethod
    def _key(cls, file_id: str, digest: str) -> str:
        return f"{cls._prefix(file_id)}{digest}"

    # -- StorageBackend --------------------------------------------------------

    def write_version(self, file_id: str, data: bytes,
                      min_version: int | None = None) -> ObjectRef:
        # min_version is irrelevant here: each version is its own digest-named
        # object, so concurrent writers cannot clobber one another's versions.
        digest = content_digest(data)
        self._observed(lambda: self.store.put(self._key(file_id, digest), data, self.principal))
        return ObjectRef(key=file_id, digest=digest, size=len(data))

    def read_version(self, file_id: str, digest: str) -> bytes:
        data = self._observed(lambda: self.store.get(self._key(file_id, digest), self.principal))
        if content_digest(data) != digest:
            # The provider returned corrupted data for this version; surface it
            # as "not found" so the caller's retry loop can try again (and
            # eventually give up) instead of silently accepting bad data.
            raise ObjectNotFoundError(
                f"version {digest[:12]}… of {file_id!r} failed its integrity check"
            )
        return data

    def delete_version(self, file_id: str, digest: str,
                       anchored_digest: str | None = None) -> None:
        self.store.delete(self._key(file_id, digest), self.principal)

    def list_versions(self, file_id: str) -> list[ObjectRef]:
        listing = self.store.list_keys(self._prefix(file_id), self.principal)
        refs = []
        for key in listing.keys:
            digest = key.rsplit("/", 1)[1]
            try:
                version = self.store.head(key, self.principal)
            except ObjectNotFoundError:
                continue
            refs.append(ObjectRef(key=file_id, digest=digest, size=version.size,
                                  created_at=version.created_at))
        return sorted(refs, key=lambda r: (r.created_at, r.digest))

    def set_acl(self, file_id: str, grantee: Principal, permission: Permission) -> None:
        canonical = grantee.canonical_id(self.store.name)
        self.store.set_bucket_policy(self._prefix(file_id), canonical, permission, self.principal)

    def destroy(self, file_id: str) -> None:
        listing = self.store.list_keys(self._prefix(file_id), self.principal)
        for key in listing.keys:
            self.store.delete(key, self.principal)

    def _estimated(self, kind: str, num_bytes: int) -> float:
        # Deterministic expectation: estimates must not consume RNG draws (and
        # previously dropped the jitter term silently by passing no RNG).
        # With ``ewma_estimates`` on, the health tracker's observed latency
        # EWMA raises the estimate for a provider that is actually slower
        # than its profile claims (a gray failure the profile cannot know).
        expected = self.store.expected_request_latency(kind, num_bytes)
        if self._ewma_estimates and self.health is not None:
            record = self.health.health(self.store.name)
            if (record.ewma_latency is not None
                    and record.samples >= self.health.policy.min_samples):
                expected = max(expected, record.ewma_latency)
        return expected

    def estimate_write_latency(self, num_bytes: int) -> float:
        return self._estimated("object_put", num_bytes)

    def estimate_read_latency(self, num_bytes: int) -> float:
        return self._estimated("object_get", num_bytes)

    def stored_bytes(self, file_id: str) -> int:
        return self.store.list_keys(self._prefix(file_id), self.principal).total_bytes

    def storage_overhead(self) -> float:
        return 1.0

    @contextlib.contextmanager
    def uncharged(self) -> Iterator[None]:
        previous = self.store.charge_latency
        self.store.charge_latency = False
        try:
            yield
        finally:
            self.store.charge_latency = previous


class CloudOfCloudsBackend(StorageBackend):
    """Whole-file versions stored through DepSky over ``3f+1`` clouds (SCFS-CoC).

    ``dispatch`` is the agent's
    :class:`~repro.core.config.DispatchPolicyConfig`: it supplies both the
    engine-level :class:`~repro.clouds.dispatch.DispatchPolicy`
    (timeouts/retries/hedging) and, when suspicion is enabled, the per-client
    :class:`~repro.clouds.health.CloudHealthTracker` that demotes suspected
    clouds out of the primary quorum stage.  An explicit ``policy`` argument
    overrides the one derived from ``dispatch``.  ``coalescer`` is the
    deployment-wide :class:`~repro.clouds.dispatch.InstantCoalescer` (or
    ``None``): it is *shared* across the backends of all agents so that
    identical same-instant metadata reads coalesce across clients.
    """

    def __init__(
        self,
        sim: Simulation,
        clouds: list[EventuallyConsistentStore],
        principal: Principal,
        f: int = 1,
        encrypt: bool = True,
        policy: DispatchPolicy | None = None,
        dispatch=None,
        coalescer=None,
        quorum=None,
    ):
        self.sim = sim
        self.principal = principal
        if policy is None and dispatch is not None:
            policy = dispatch.to_policy()
        self.health: CloudHealthTracker | None = (
            dispatch.make_tracker() if dispatch is not None else None
        )
        self._ewma_estimates = bool(getattr(dispatch, "ewma_estimates", False))
        self._stores = {cloud.name: cloud for cloud in clouds}
        # ``quorum`` is the agent's :class:`~repro.core.config.QuorumConfig`
        # (or None).  In threshold mode ``system_for`` returns None and the
        # client keeps its legacy integer counts — byte-identical dispatch.
        system = quorum.system_for([c.name for c in clouds], f) if quorum is not None else None
        planner = None
        if system is not None and getattr(quorum, "planner", False):
            planner = QuorumPlanner(
                latency_of=lambda cloud, kind, payload: self._cloud_latency(
                    cloud, kind, payload, ewma=True),
                cost_of=lambda cloud, kind, payload: self._stores[
                    cloud].costs.pricing.request_cost(kind, payload),
                tracker=self.health,
            )
        self.client = DepSkyClient(
            sim, clouds, principal, f=f, encrypt=encrypt, preferred_quorums=True,
            policy=policy, health=self.health, coalescer=coalescer,
            quorum=system, planner=planner,
        )
        self.name = f"cloud-of-clouds(f={f}, n={self.client.n})"
        self.read_paths = ReadPathStats()

    # -- StorageBackend ----------------------------------------------------------

    def write_version(self, file_id: str, data: bytes,
                      min_version: int | None = None) -> ObjectRef:
        record = self.client.write(file_id, data, min_version=min_version)
        return ObjectRef(key=file_id, digest=record.data_digest, size=record.size)

    def read_version(self, file_id: str, digest: str) -> bytes:
        result = self.client.read_matching(file_id, digest)
        self.read_paths.record(result)
        return result.data

    def delete_version(self, file_id: str, digest: str,
                       anchored_digest: str | None = None) -> None:
        for record in self.client.list_versions(file_id):
            if record.data_digest == digest:
                self.client.delete_version(file_id, record.version,
                                           anchored_digest=anchored_digest)

    def list_versions(self, file_id: str) -> list[ObjectRef]:
        records = sorted(self.client.list_versions(file_id), key=lambda r: r.version)
        return [ObjectRef(key=file_id, digest=r.data_digest, size=r.size,
                          created_at=r.created_at) for r in records]

    def set_acl(self, file_id: str, grantee: Principal, permission: Permission) -> None:
        self.client.set_acl(file_id, grantee, permission)

    def destroy(self, file_id: str) -> None:
        self.client.destroy_unit(file_id)

    def _cloud_latency(self, cloud_name: str, kind: str, payload: int,
                       ewma: bool) -> float:
        """Deterministic latency estimate for one request against one cloud.

        With ``ewma`` the health tracker's observed latency EWMA raises the
        estimate above the profile expectation for providers that are actually
        slower than their profile claims (gray failures); a *suspected*
        provider is additionally floored at the per-request timeout — the wait
        a call that insists on it would actually pay.
        """
        store = self._stores[cloud_name]
        expected = store.expected_request_latency(kind, payload)
        if not ewma or self.health is None:
            return expected
        record = self.health.health(cloud_name)
        if (record.ewma_latency is not None
                and record.samples >= self.health.policy.min_samples):
            expected = max(expected, record.ewma_latency)
        if self.health.is_suspected(cloud_name):
            policy = self.client.policy
            if policy is not None and policy.timeout is not None:
                expected = max(expected, policy.timeout)
        return expected

    def _expected_quorum(self, clouds: list[EventuallyConsistentStore], kind: str,
                         payload: int, required: int) -> float:
        """Expected wait of one quorum stage, computed by the dispatch engine.

        The requests carry deterministic expected latencies (no RNG draws, so
        estimating never perturbs the simulation's random stream) and no side
        effects; the engine's m-th-success semantics do the rest.  With
        ``ewma_estimates`` configured, the per-cloud estimates blend in the
        health tracker's observed EWMAs, so a known-slow provider inflates the
        estimate exactly when the quorum cannot complete without it — and the
        non-blocking mode's background-upload schedule routes around it.
        """
        requests = [
            QuorumRequest(
                cloud=cloud.name,
                send=lambda: None,
                latency=lambda _value, cloud=cloud: self._cloud_latency(
                    cloud.name, kind, payload, ewma=self._ewma_estimates),
            )
            for cloud in clouds
        ]
        return QuorumCall(self.client.policy).stage(requests).execute(required=required).charged

    def estimate_write_latency(self, num_bytes: int) -> float:
        client = self.client
        block_bytes = client.coder.block_size(num_bytes + 64)
        quorum = client.n - client.f
        return (
            self._expected_quorum(client.clouds, "object_get", 512, client.k)
            + self._expected_quorum(client.clouds[:quorum], "object_put", block_bytes, quorum)
            + self._expected_quorum(client.clouds, "object_put", 1024, quorum)
        )

    def estimate_read_latency(self, num_bytes: int) -> float:
        client = self.client
        block_bytes = client.coder.block_size(num_bytes + 64)
        return (
            self._expected_quorum(client.clouds, "object_get", 1024, client.k)
            + self._expected_quorum(client.clouds[:client.k], "object_get", block_bytes, client.k)
        )

    def stored_bytes(self, file_id: str) -> int:
        return self.client.stored_bytes(file_id)

    def storage_overhead(self) -> float:
        return self.client.coder.storage_overhead()

    @contextlib.contextmanager
    def uncharged(self) -> Iterator[None]:
        previous = self.client.charge_latency
        self.client.charge_latency = False
        try:
            yield
        finally:
            self.client.charge_latency = previous
