"""The consistency-anchor algorithm (Figure 3), decoupled from the file system.

The technique composes two storage systems: a small *consistency anchor* (CA)
offering the desired consistency (e.g. linearizability) and a large *storage
service* (SS) that may only be eventually consistent.  The composition
satisfies the CA's consistency even though the bulk data lives in the SS:

``WRITE(id, v)``
    w1. ``h ← Hash(v)``
    w2. ``SS.write(id|h, v)``
    w3. ``CA.write(id, h)``

``READ(id)``
    r1. ``h ← CA.read(id)``
    r2. ``do v ← SS.read(id|h) while v = null``
    r3. ``return (Hash(v) = h) ? v : null``

In SCFS the CA is the coordination service (the metadata tuple holds the hash)
and the SS is the cloud backend; the agent implements the same steps inline in
its open/close paths.  This module provides the algorithm in its generic form
— as presented in §2.4 — so that it can be unit- and property-tested in
isolation and reused outside the file system.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.common.errors import IntegrityError, ObjectNotFoundError, QuorumNotReachedError
from repro.common.types import ObjectRef
from repro.core.backend import StorageBackend
from repro.crypto.hashing import content_digest
from repro.simenv.environment import Simulation


class ConsistencyAnchor(abc.ABC):
    """A small storage system with strong consistency, mapping ids to hashes."""

    @abc.abstractmethod
    def write_hash(self, object_id: str, digest: str) -> None:
        """Store the current hash of ``object_id`` (step w3)."""

    @abc.abstractmethod
    def read_hash(self, object_id: str) -> str | None:
        """Return the current hash of ``object_id`` (step r1), or None."""


@dataclass
class DictConsistencyAnchor(ConsistencyAnchor):
    """A trivially linearizable in-memory anchor (used by tests and examples)."""

    hashes: dict[str, str] = field(default_factory=dict)

    def write_hash(self, object_id: str, digest: str) -> None:
        self.hashes[object_id] = digest

    def read_hash(self, object_id: str) -> str | None:
        return self.hashes.get(object_id)


class CoordinationConsistencyAnchor(ConsistencyAnchor):
    """An anchor storing hashes as entries of a coordination service."""

    def __init__(self, service, session, prefix: str = "anchor/"):
        self.service = service
        self.session = session
        self.prefix = prefix

    def write_hash(self, object_id: str, digest: str) -> None:
        self.service.put(self.prefix + object_id, digest.encode(), self.session)

    def read_hash(self, object_id: str) -> str | None:
        from repro.common.errors import TupleNotFoundError

        try:
            return self.service.get(self.prefix + object_id, self.session).value.decode()
        except TupleNotFoundError:
            return None


class AnchoredStorage:
    """Strongly consistent object storage built from a CA and a weak SS.

    Parameters
    ----------
    sim:
        Simulation environment; the read loop waits ``retry_interval`` between
        attempts by advancing the simulated clock.
    anchor:
        The consistency anchor (strongly consistent, small capacity).
    backend:
        The storage service holding the data (possibly eventually consistent).
    retry_interval / retry_limit:
        Backoff policy of the ``do … while`` read loop (step r2).
    """

    def __init__(
        self,
        sim: Simulation,
        anchor: ConsistencyAnchor,
        backend: StorageBackend,
        retry_interval: float = 0.5,
        retry_limit: int = 240,
    ):
        self.sim = sim
        self.anchor = anchor
        self.backend = backend
        self.retry_interval = retry_interval
        self.retry_limit = retry_limit

    def write(self, object_id: str, data: bytes) -> ObjectRef:
        """WRITE(id, v): push the data to the SS, then anchor its hash in the CA."""
        digest = content_digest(data)                      # w1
        ref = self.backend.write_version(object_id, data)  # w2
        if ref.digest != digest:
            raise AssertionError("backend returned a reference with a different digest")
        self.anchor.write_hash(object_id, digest)          # w3
        return ref

    def read(self, object_id: str) -> bytes | None:
        """READ(id): fetch the anchored hash, then poll the SS until it appears.

        A response whose hash does not match the anchored digest (step r3) is
        treated like an absent one: the SS returned a *stale visible version*
        (or corrupted data), so the loop keeps polling.  Unlike a plain
        not-found, exhausting the retries after observing mismatching data
        raises :class:`~repro.common.errors.IntegrityError` — the object
        demonstrably exists but the SS never produced the anchored version,
        which must not be reported as "file absent".
        """
        digest = self.anchor.read_hash(object_id)          # r1
        if digest is None:
            return None
        attempts = 0
        mismatches = 0
        while True:                                        # r2
            data = None
            try:
                data = self.backend.read_version(object_id, digest)
            except (ObjectNotFoundError, QuorumNotReachedError):
                # Not visible yet (eventual consistency) or not enough clouds
                # hold the blocks yet — keep polling, as the algorithm requires.
                pass
            if data is not None:
                if content_digest(data) == digest:         # r3
                    return data
                mismatches += 1                            # stale visible version
            attempts += 1
            if attempts > self.retry_limit:
                if mismatches:
                    raise IntegrityError(
                        f"storage service never produced the anchored version of "
                        f"{object_id!r} (digest {digest[:12]}…): got {mismatches} "
                        f"mismatching response(s) over {attempts} attempts"
                    )
                return None
            self.sim.advance(self.retry_interval)
